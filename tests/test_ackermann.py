"""Unit tests for Ackermann's function and the paper's inverse alpha."""

import pytest

from repro.unionfind.ackermann import (
    ackermann,
    ackermann_exceeds,
    alpha,
    ilog2,
    inverse_ackermann,
)


class TestIlog2:
    def test_powers_of_two(self):
        for k in range(20):
            assert ilog2(2**k) == k

    def test_between_powers(self):
        assert ilog2(3) == 1
        assert ilog2(5) == 2
        assert ilog2(1023) == 9
        assert ilog2(1025) == 10

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            ilog2(0)
        with pytest.raises(ValueError):
            ilog2(-4)


class TestAckermann:
    """Closed forms for the first rows of the Tarjan convention:
    A(0,n)=n+1, A(1,n)=n+2, A(2,n)=2n+3, A(3,n)=2^(n+3)-3."""

    def test_row_zero(self):
        for n in range(50):
            assert ackermann(0, n) == n + 1

    def test_row_one(self):
        for n in range(50):
            assert ackermann(1, n) == n + 2

    def test_row_two(self):
        for n in range(30):
            assert ackermann(2, n) == 2 * n + 3

    def test_row_three(self):
        for n in range(8):
            assert ackermann(3, n) == 2 ** (n + 3) - 3

    def test_row_four_base(self):
        # A(4,0) = A(3,1) = 2^4 - 3 = 13.
        assert ackermann(4, 0) == 13

    def test_clamp_reports_above(self):
        # A(4,2) is astronomically large; the clamp caps the report.
        assert ackermann(4, 2, clamp=1000) == 1001

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            ackermann(-1, 0)
        with pytest.raises(ValueError):
            ackermann(0, -1)


class TestAckermannExceeds:
    def test_exact_threshold_boundary(self):
        # A(2, 5) = 13: exceeds 12, does not exceed 13.
        assert ackermann_exceeds(2, 5, 12)
        assert not ackermann_exceeds(2, 5, 13)

    def test_negative_threshold_always_exceeded(self):
        assert ackermann_exceeds(0, 0, -1)

    def test_huge_value_vs_small_threshold(self):
        assert ackermann_exceeds(4, 4, 10**9)


class TestAlpha:
    def test_tiny_universe(self):
        assert alpha(0, 1) == 1
        assert alpha(10, 1) == 1
        assert alpha(1, 2) == 1

    def test_practical_values_are_small(self):
        # alpha is <= 3 for every n below 2^16 and <= 4 for anything that
        # fits in a universe of physical computers.
        assert alpha(100, 100) <= 3
        assert alpha(10**6, 10**6) <= 4
        assert alpha(10**9, 10**9) <= 4

    def test_more_operations_never_increase_alpha(self):
        for n in (4, 64, 4096):
            values = [alpha(m, n) for m in (n, 2 * n, 8 * n, 64 * n)]
            assert values == sorted(values, reverse=True)

    def test_matches_definition_bruteforce(self):
        # Independently evaluate min{i : A(i, m//n) > log2 n} with the
        # closed forms of the first rows.
        def closed(i, j):
            if i == 1:
                return j + 2
            if i == 2:
                return 2 * j + 3
            if i == 3:
                return 2 ** (j + 3) - 3
            raise AssertionError("test only covers i <= 3")

        for n in (2, 7, 100, 5000):
            for m in (n, 3 * n, 10 * n):
                threshold = ilog2(n)
                expected = next(
                    i for i in (1, 2, 3) if closed(i, m // n) > threshold
                )
                assert inverse_ackermann(m, n) == expected

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            alpha(10, 0)
        with pytest.raises(ValueError):
            alpha(-1, 10)

    def test_alias(self):
        assert alpha(123, 45) == inverse_ackermann(123, 45)
