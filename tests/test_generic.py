"""Integration tests for the Generic (Oblivious) algorithm."""

import math

import pytest

from repro.core.generic import run_generic
from repro.graphs.generators import (
    complete_binary_tree,
    complete_graph,
    dense_layered,
    directed_cycle,
    directed_path,
    disjoint_union,
    erdos_renyi,
    inverted_star,
    preferential_attachment,
    random_weakly_connected,
    star,
)
from repro.graphs.knowledge_graph import KnowledgeGraph
from repro.sim.scheduler import GlobalFifoScheduler, LifoScheduler
from tests.conftest import run_and_verify

FAMILIES = [
    ("star", lambda: star(40)),
    ("inverted-star", lambda: inverted_star(40)),
    ("path", lambda: directed_path(40)),
    ("cycle", lambda: directed_cycle(40)),
    ("tree", lambda: complete_binary_tree(5)),
    ("random-sparse", lambda: random_weakly_connected(40, 20, seed=1)),
    ("random-dense", lambda: random_weakly_connected(40, 200, seed=2)),
    ("er", lambda: erdos_renyi(30, 0.15, seed=3)),
    ("layered", lambda: dense_layered(4, 6)),
    ("preferential", lambda: preferential_attachment(40, 3, seed=4)),
    ("complete", lambda: complete_graph(16)),
]


@pytest.mark.parametrize("name,maker", FAMILIES, ids=[n for n, _ in FAMILIES])
@pytest.mark.parametrize("seed", [None, 1, 2])
def test_families(name, maker, seed):
    run_and_verify("generic", maker(), seed=seed)


def test_lifo_schedule():
    graph = random_weakly_connected(50, 100, seed=9)
    run_and_verify("generic", graph, scheduler=LifoScheduler())


def test_multi_component():
    graph = disjoint_union(star(8), directed_path(5), complete_binary_tree(3))
    result = run_and_verify("generic", graph)
    assert len(result.leaders) == 3


def test_single_node_graph():
    result = run_and_verify("generic", KnowledgeGraph([42]))
    assert result.leaders == [42]
    assert result.total_messages == 0


def test_all_isolated_nodes():
    result = run_and_verify("generic", KnowledgeGraph(range(5)))
    assert len(result.leaders) == 5
    assert result.total_messages == 0


def test_wake_order_does_not_break_anything():
    graph = random_weakly_connected(30, 60, seed=5)
    for order in (graph.nodes, list(reversed(graph.nodes))):
        run_and_verify("generic", graph, wake_order=order)


def test_message_complexity_is_n_log_n_shaped():
    """Theorem 5: messages / (n log n) must not grow with n."""
    ratios = []
    for n in (32, 128, 512):
        graph = random_weakly_connected(n, 2 * n, seed=n)
        result = run_and_verify("generic", graph, seed=0)
        ratios.append(result.total_messages / (n * math.log2(n)))
    assert ratios[-1] <= ratios[0] * 1.25


def test_leader_phase_is_maximal():
    """Lemma 5.1's survivor argument: the final leader was never outranked.
    (Inactive nodes inherit their conqueror's phase through conquer
    messages, so only the phase -- not the (phase, id) pair -- is
    comparable across final states.)"""
    graph = random_weakly_connected(40, 120, seed=6)
    from repro.core.runner import build_simulation

    sim, nodes = build_simulation(graph, "generic", seed=3)
    sim.run(10**7)
    leader = next(n for n in nodes.values() if n.is_leader)
    assert leader.phase == max(n.phase for n in nodes.values())


def test_result_fields_consistent():
    graph = star(10)
    result = run_and_verify("generic", graph)
    assert result.n == 10
    assert result.n_edges == 9
    assert set(result.leader_of) == set(graph.nodes)
    assert set(result.statuses) == set(graph.nodes)
    assert result.max_path_length <= 1
    assert "generic" in result.summary()


def test_no_internal_messages_counted():
    """A pure star where the center wins immediately: the center's
    self-queries are internal and must not appear in the accounting."""
    graph = KnowledgeGraph([5, 1], [(5, 1)])
    result = run_and_verify("generic", graph)
    assert result.leaders == [5]
    # 5 searches 1, 1 merges: search + release + accept + info + conquer +
    # more-done and possibly queries to 1; but no query to 5 itself.
    assert result.stats.messages_by_type.get("query", 0) <= 2
