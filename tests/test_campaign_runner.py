"""Tests for the campaign worker loop (repro.campaign.runner)."""

import pytest

from repro.campaign import CampaignRunner, CampaignStore
from repro.parallel import Job, sweep_jobs

TOY = "tests.test_parallel:exp_toy"
FLAKY = "tests.test_parallel:exp_flaky"
FLAKY_ONCE = "tests.test_parallel:exp_flaky_once"


def make_store(tmp_path, jobs, **kwargs):
    kwargs.setdefault("backoff", 0.0)
    return CampaignStore.create(tmp_path / "campaign.db", jobs, **kwargs)


class TestDrain:
    def test_drains_serial(self, tmp_path):
        jobs = sweep_jobs(TOY, range(5), {"scale": 2})
        store = make_store(tmp_path, jobs)
        report = CampaignRunner(store, handle_signals=False).run()
        assert report.computed == 5
        assert report.stored == 5
        assert report.redundant == 0
        assert report.drained
        assert store.counts()["done"] == 5
        assert store.compute_stats() == {"computed": 5, "redundant": 0}

    def test_drains_with_pool_workers(self, tmp_path):
        jobs = sweep_jobs(TOY, range(8), {"scale": 3})
        store = make_store(tmp_path, jobs)
        report = CampaignRunner(store, workers=2, handle_signals=False).run()
        assert report.stored == 8
        assert report.drained
        for job in jobs:
            cell = store.cell(job.key())
            assert cell.result["rows"] == [["toy", 3, (job.seed + 1) * 3]]

    def test_max_cells_interrupts_gracefully(self, tmp_path):
        jobs = sweep_jobs(TOY, range(6), {"scale": 2})
        store = make_store(tmp_path, jobs)
        first = CampaignRunner(
            store, chunk=2, max_cells=4, handle_signals=False
        ).run()
        assert first.computed == 4
        assert not first.drained
        assert store.counts()["claimed"] == 0  # leases released on exit
        # a second runner finishes the job with zero recomputes
        second = CampaignRunner(store, handle_signals=False).run()
        assert second.computed == 2
        assert second.drained
        assert store.compute_stats() == {"computed": 6, "redundant": 0}

    def test_request_stop_checkpoints(self, tmp_path):
        jobs = sweep_jobs(TOY, range(4), {"scale": 2})
        store = make_store(tmp_path, jobs)
        runner = CampaignRunner(store, chunk=2, handle_signals=False)
        runner.request_stop()
        report = runner.run()
        assert report.interrupted
        assert report.computed == 0
        assert store.counts()["pending"] == 4


class TestFailureHandling:
    def test_deterministic_failure_goes_permanent(self, tmp_path):
        # exp_flaky raises the same error every time for seed 1.
        jobs = sweep_jobs(FLAKY, range(3))
        store = make_store(tmp_path, jobs)
        report = CampaignRunner(store, handle_signals=False).run()
        counts = store.counts()
        assert counts["done"] == 2
        assert counts["failed"] == 1
        assert report.failed_permanent == 1
        assert report.retried >= 1  # the first occurrence retried
        assert not report.drained
        failed = store.cell(jobs[1].key())
        assert failed.attempts == 2  # first try + reproduce-check, no more
        assert "boom" in failed.error

    def test_transient_failure_recovers_on_retry(self, tmp_path):
        jobs = sweep_jobs(FLAKY_ONCE, range(3), {"flag_dir": str(tmp_path / "f")})
        store = make_store(tmp_path, jobs)
        report = CampaignRunner(store, handle_signals=False).run()
        assert report.drained
        assert store.counts()["done"] == 3
        for job in jobs:
            cell = store.cell(job.key())
            assert cell.attempts == 1  # one *failed* attempt, then done
            assert cell.compute_count == 2

    def test_attempt_cap_is_enforced(self, tmp_path):
        jobs = [Job.create(FLAKY, {}, seed=1)]
        store = make_store(tmp_path, jobs, max_attempts=2)
        CampaignRunner(store, handle_signals=False).run()
        cell = store.cell(jobs[0].key())
        assert cell.status == "failed"
        assert cell.attempts == 2

    def test_timeout_is_transient(self, tmp_path):
        sleepy = "tests.test_parallel:exp_sleepy"
        jobs = [Job.create(sleepy, {"duration": 30.0}, seed=0)]
        store = make_store(tmp_path, jobs, max_attempts=2)
        report = CampaignRunner(
            store, workers=2, timeout=0.3, handle_signals=False
        ).run()
        cell = store.cell(jobs[0].key())
        assert cell.status == "failed"  # capped after 2 transient attempts
        assert cell.attempts == 2
        assert report.failed_permanent == 1


class TestWaiting:
    def test_waits_out_anothers_lease_then_takes_over(self, tmp_path):
        """A second worker must not spin or exit while a dead worker's
        lease is live: it waits, takes over, and finishes the campaign."""
        jobs = sweep_jobs(TOY, range(3), {"scale": 2})
        store = make_store(tmp_path, jobs, lease=0.4)
        # "dead" worker claims one cell and never comes back
        other = CampaignStore.open(tmp_path / "campaign.db")
        other.claim("dead-worker", 1)

        slept = []
        runner = CampaignRunner(
            store,
            handle_signals=False,
            sleep=lambda s: slept.append(s) or __import__("time").sleep(s),
            max_wait=0.1,
        )
        report = runner.run()
        assert report.drained
        assert report.computed == 3
        assert slept  # it actually waited for the lease to expire
        assert report.waited_s > 0
        assert store.compute_stats() == {"computed": 3, "redundant": 0}
        other.close()


class TestSignals:
    def test_signal_handlers_only_on_main_thread(self, tmp_path):
        import threading

        jobs = sweep_jobs(TOY, range(2), {"scale": 2})
        store_path = tmp_path / "campaign.db"
        make_store(tmp_path, jobs).close()
        failures = []

        def work():
            # SQLite connections are thread-bound: open inside the thread.
            store = CampaignStore.open(store_path)
            try:
                report = CampaignRunner(store, handle_signals=True).run()
                if not report.drained:
                    failures.append("did not drain")
            except Exception as exc:  # signal.signal off-main raises
                failures.append(repr(exc))
            finally:
                store.close()

        thread = threading.Thread(target=work)
        thread.start()
        thread.join(timeout=60)
        assert failures == []
