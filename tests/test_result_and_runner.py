"""Unit tests for result collection and runner plumbing."""

import pytest

from repro.core.node import DiscoveryNode
from repro.core.result import DiscoveryResult, collect_result, resolve_leader
from repro.core.runner import build_simulation, default_step_budget, id_bits_for
from repro.graphs.generators import random_weakly_connected, star
from repro.graphs.knowledge_graph import KnowledgeGraph
from repro.sim.network import Simulator
from repro.sim.trace import MessageStats


class TestIdBits:
    def test_values(self):
        assert id_bits_for(0) == 1
        assert id_bits_for(1) == 1
        assert id_bits_for(2) == 1
        assert id_bits_for(3) == 2
        assert id_bits_for(256) == 8
        assert id_bits_for(257) == 9


class TestStepBudget:
    def test_grows_with_graph(self):
        small = default_step_budget(star(10))
        large = default_step_budget(star(1000))
        assert large > small

    def test_dominates_real_executions(self):
        from repro.core.generic import run_generic

        graph = random_weakly_connected(60, 300, seed=1)
        result = run_generic(graph, seed=0)
        assert result.steps < default_step_budget(graph) / 10


class TestResolveLeader:
    def make_nodes(self):
        sim = Simulator()
        nodes = {}
        for node_id in (0, 1, 2):
            node = DiscoveryNode(node_id, frozenset())
            sim.add_node(node)
            nodes[node_id] = node
        return nodes

    def test_follows_chain(self):
        nodes = self.make_nodes()
        nodes[0].status = "wait"  # leader
        nodes[1].status = "inactive"
        nodes[1].next = 0
        nodes[2].status = "inactive"
        nodes[2].next = 1
        assert resolve_leader(nodes, 2) == 0
        assert resolve_leader(nodes, 0) == 0

    def test_stuck_chain_raises(self):
        nodes = self.make_nodes()
        nodes[0].status = "passive"  # not a leader, next == self
        with pytest.raises(RuntimeError, match="stuck"):
            resolve_leader(nodes, 0)

    def test_cycle_raises(self):
        nodes = self.make_nodes()
        for node in nodes.values():
            node.status = "inactive"
        nodes[0].next, nodes[1].next, nodes[2].next = 1, 2, 0
        with pytest.raises(RuntimeError):
            resolve_leader(nodes, 0)


class TestCollectResult:
    def test_multi_component_knowledge(self):
        from repro.graphs.generators import disjoint_union

        graph = disjoint_union(star(4), star(3))
        sim, nodes = build_simulation(graph, "adhoc")
        sim.run(10**6)
        result = collect_result(graph, nodes, sim, "adhoc")
        assert len(result.leaders) == 2
        sizes = sorted(len(result.knowledge[l]) for l in result.leaders)
        assert sizes == [3, 4]

    def test_summary_mentions_everything(self):
        graph = star(4)
        sim, nodes = build_simulation(graph, "generic")
        sim.run(10**6)
        result = collect_result(graph, nodes, sim, "generic")
        text = result.summary()
        for fragment in ("generic", "n=4", "leaders=1", "messages="):
            assert fragment in text

    def test_leader_for(self):
        graph = KnowledgeGraph([0, 1], [(1, 0)])
        sim, nodes = build_simulation(graph, "generic")
        sim.run(10**6)
        result = collect_result(graph, nodes, sim, "generic")
        assert result.leader_for(0) == result.leader_for(1) == result.leaders[0]


class TestBuildSimulation:
    def test_bounded_gets_component_sizes(self):
        from repro.graphs.generators import disjoint_union

        graph = disjoint_union(star(5), star(3))
        _, nodes = build_simulation(graph, "bounded")
        sizes = sorted({node.component_size for node in nodes.values()})
        assert sizes == [3, 5]

    def test_auto_wake_false_leaves_everyone_asleep(self):
        graph = star(4)
        sim, nodes = build_simulation(graph, "generic", auto_wake=False)
        sim.run(10**6)
        assert all(not node.awake for node in nodes.values())

    def test_custom_wake_order_is_respected_by_fifo(self):
        graph = KnowledgeGraph([0, 1])
        sim, nodes = build_simulation(graph, "generic", wake_order=[1, 0], keep_trace=True)
        sim.run(10**6)
        wake_order = [e.dst for e in sim.trace if e.kind == "wake"]
        assert wake_order == [1, 0]
