"""Tests for the report generator and its CLI command."""

import pytest

from repro.analysis.report import REPORT_SECTIONS, build_report
from repro.cli import main


class TestBuildReport:
    def test_single_quick_section(self):
        text = build_report(quick=True, only=["EXP-13"])
        assert "# Experiment report" in text
        assert "## EXP-13" in text
        assert "messages/n" in text
        assert "## EXP-3" not in text

    def test_unknown_section_rejected(self):
        with pytest.raises(ValueError, match="unknown section"):
            build_report(only=["EXP-99"])

    def test_sections_cover_all_cli_experiments(self):
        from repro.cli import EXPERIMENTS

        # EXP-16 lives only in the scale bench; everything else is here.
        names = {name for name, _ in REPORT_SECTIONS}
        assert names == set(EXPERIMENTS)


class TestCliReport:
    def test_report_to_stdout(self, capsys):
        assert main(["report", "--quick", "EXP-13"]) == 0
        assert "## EXP-13" in capsys.readouterr().out

    def test_report_to_file(self, tmp_path, capsys):
        out = tmp_path / "report.md"
        assert main(["report", "--quick", "EXP-13", "--out", str(out)]) == 0
        assert "wrote" in capsys.readouterr().out
        assert "## EXP-13" in out.read_text()

    def test_report_unknown_section(self, capsys):
        assert main(["report", "EXP-99"]) == 2
        assert "unknown" in capsys.readouterr().err
