"""CLI tests for ``repro trace`` and the ``--obs-out`` sweep/chaos flags."""

from repro.cli import main
from repro.obs import read_timeline


class TestTraceRecord:
    def test_record_then_summarize(self, tmp_path, capsys):
        out = tmp_path / "run.jsonl"
        assert main(
            ["trace", "record", "--n", "24", "--seed", "1", "--out", str(out)]
        ) == 0
        assert "wrote" in capsys.readouterr().out
        assert main(["trace", "summarize", str(out)]) == 0
        text = capsys.readouterr().out
        assert "timeline:" in text
        assert "sends by type" in text
        assert "final sample" in text

    def test_record_with_profile_prints_hot_paths(self, tmp_path, capsys):
        out = tmp_path / "run.jsonl"
        assert main(
            [
                "trace", "record", "--n", "16", "--out", str(out), "--profile",
            ]
        ) == 0
        text = capsys.readouterr().out
        assert "hot paths" in text
        assert "dispatch.deliver" in text

    def test_record_under_scenario(self, tmp_path):
        out = tmp_path / "chaos.jsonl"
        assert main(
            [
                "trace", "record", "--n", "16", "--scenario", "loss-10",
                "--out", str(out),
            ]
        ) == 0
        timeline = read_timeline(out)
        assert timeline.meta["scenario"] == "loss-10"
        assert timeline.events

    def test_record_rejects_unknown_scenario(self, tmp_path, capsys):
        assert main(
            [
                "trace", "record", "--scenario", "nope",
                "--out", str(tmp_path / "x.jsonl"),
            ]
        ) == 2
        assert "unknown scenario" in capsys.readouterr().err


class TestTraceSummarize:
    def test_empty_timeline_exits_1(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text('{"line": "header", "schema": 1, "meta": {}}\n')
        assert main(["trace", "summarize", str(path)]) == 1
        assert "no events" in capsys.readouterr().err

    def test_missing_file_exits_2(self, tmp_path, capsys):
        assert main(["trace", "summarize", str(tmp_path / "absent.jsonl")]) == 2
        assert "cannot read" in capsys.readouterr().err


class TestTraceDiff:
    def test_identical_and_divergent(self, tmp_path, capsys):
        a = tmp_path / "a.jsonl"
        b = tmp_path / "b.jsonl"
        c = tmp_path / "c.jsonl"
        for path, seed in ((a, "1"), (b, "1"), (c, "2")):
            assert main(
                ["trace", "record", "--n", "16", "--seed", seed, "--out", str(path)]
            ) == 0
        capsys.readouterr()
        assert main(["trace", "diff", str(a), str(b)]) == 0
        assert "identical" in capsys.readouterr().out
        assert main(["trace", "diff", str(a), str(c)]) == 1
        assert "diverge at event" in capsys.readouterr().out


class TestObsOutFlags:
    def test_chaos_obs_out(self, tmp_path, capsys):
        out = tmp_path / "chaos.jsonl"
        assert main(
            [
                "chaos", "--scenarios", "baseline", "--n", "12",
                "--seeds", "0:1", "--no-progress", "--obs-out", str(out),
            ]
        ) == 0
        assert f"wrote {out}" in capsys.readouterr().out
        timeline = read_timeline(out)
        assert timeline.meta["command"] == "chaos"
        assert timeline.meta["outcome"]
        assert timeline.events

    def test_sweep_obs_out_one_job_event_per_seed(self, tmp_path, capsys):
        out = tmp_path / "jobs.jsonl"
        assert main(
            [
                "sweep", "--exp", "generic-scaling", "--quick",
                "--seeds", "0:2", "--no-cache", "--no-progress",
                "--obs-out", str(out),
            ]
        ) == 0
        timeline = read_timeline(out)
        assert timeline.counts_by_kind() == {"job": 2}
        assert [event.node for event in timeline.events] == [0, 1]
        for event in timeline.events:
            assert event.value["status"] in ("done", "cached")
            assert event.value["wall_s"] >= 0
