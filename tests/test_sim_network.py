"""Unit tests for the asynchronous simulator core."""

import pytest

from repro.sim.events import DeliverToken, WakeToken
from repro.sim.network import (
    SimNode,
    SimulationError,
    Simulator,
    StepLimitExceeded,
    StuckExecutionError,
)
from repro.sim.scheduler import AdversarialScheduler, Adversary, GlobalFifoScheduler
from repro.sim.trace import bits_for_ids


class Ping:
    msg_type = "ping"

    def __init__(self, tag=0):
        self.tag = tag

    def bit_size(self, id_bits):
        return bits_for_ids(1, id_bits)


class Recorder(SimNode):
    """Records deliveries; can forward on wake or receipt."""

    def __init__(self, node_id, forward_to=None, send_on_wake=None):
        super().__init__(node_id)
        self.received = []
        self.woken = False
        self.forward_to = forward_to
        self.send_on_wake = send_on_wake

    def on_wake(self):
        self.woken = True
        if self.send_on_wake is not None:
            self.send(self.send_on_wake, Ping())

    def on_message(self, sender, message):
        self.received.append((sender, message.tag))
        if self.forward_to is not None:
            self.send(self.forward_to, Ping(message.tag))


def make_pair():
    sim = Simulator()
    a, b = Recorder("a"), Recorder("b")
    sim.add_node(a)
    sim.add_node(b)
    return sim, a, b


class TestBasics:
    def test_wake_then_quiesce(self):
        sim, a, b = make_pair()
        sim.schedule_wake("a")
        sim.run()
        assert a.woken and not b.woken
        assert sim.is_quiescent

    def test_message_wakes_sleeping_node(self):
        sim = Simulator()
        a = Recorder("a", send_on_wake="b")
        b = Recorder("b")
        sim.add_node(a)
        sim.add_node(b)
        sim.schedule_wake("a")
        sim.run()
        assert b.woken
        assert b.received == [("a", 0)]

    def test_wake_is_idempotent(self):
        sim, a, _ = make_pair()
        sim.schedule_wake("a")
        sim.schedule_wake("a")
        sim.run()
        assert a.woken

    def test_duplicate_node_rejected(self):
        sim, _, _ = make_pair()
        with pytest.raises(ValueError):
            sim.add_node(Recorder("a"))

    def test_unknown_wake_rejected(self):
        sim, _, _ = make_pair()
        with pytest.raises(KeyError):
            sim.schedule_wake("zzz")

    def test_self_send_rejected(self):
        sim = Simulator()
        node = Recorder("a", send_on_wake="a")
        sim.add_node(node)
        sim.schedule_wake("a")
        with pytest.raises(SimulationError):
            sim.run()

    def test_send_to_unknown_rejected(self):
        sim, a, _ = make_pair()
        a.bind(sim)
        with pytest.raises(KeyError):
            a.send("nope", Ping())

    def test_message_without_type_rejected(self):
        sim, a, _ = make_pair()
        with pytest.raises(TypeError):
            sim.transmit("a", "b", object())

    def test_stats_accounting(self):
        sim, a, b = make_pair()
        a.awake = b.awake = True
        a.send("b", Ping())
        a.send("b", Ping())
        sim.run()
        assert sim.stats.total_messages == 2
        assert sim.stats.messages_by_type == {"ping": 2}
        assert sim.stats.total_bits == 2 * bits_for_ids(1, sim.id_bits)


class TestFifo:
    def test_per_channel_fifo_order(self):
        sim, a, b = make_pair()
        a.awake = b.awake = True
        for tag in range(10):
            a.send("b", Ping(tag))
        sim.run()
        assert [tag for _, tag in b.received] == list(range(10))

    def test_fifo_preserved_under_interleaving(self):
        """Messages on one channel stay ordered even when another channel's
        deliveries interleave."""
        from repro.sim.scheduler import RandomScheduler

        for seed in range(5):
            sim = Simulator(RandomScheduler(seed))
            a, b, c = Recorder("a"), Recorder("b"), Recorder("c")
            for node in (a, b, c):
                sim.add_node(node)
                node.awake = True
            for tag in range(8):
                a.send("c", Ping(tag))
                b.send("c", Ping(100 + tag))
            sim.run()
            from_a = [t for s, t in c.received if s == "a"]
            from_b = [t for s, t in c.received if s == "b"]
            assert from_a == list(range(8))
            assert from_b == [100 + t for t in range(8)]


class TestRunFor:
    def test_budget_exhaustion_is_not_an_error(self):
        sim = Simulator()
        a = Recorder("a", forward_to="b")
        b = Recorder("b", forward_to="a")
        sim.add_node(a)
        sim.add_node(b)
        a.awake = b.awake = True
        a.send("b", Ping())  # infinite ping-pong
        assert sim.run_for(50) == 50
        assert sim.run_for(7) == 7  # resumable: the backlog is still live

    def test_stops_early_at_quiescence(self):
        sim, a, b = make_pair()
        sim.schedule_wake("a")
        executed = sim.run_for(10_000)
        assert 0 < executed < 10_000
        assert sim.run_for(10_000) == 0  # already quiescent

    def test_zero_budget_executes_nothing(self):
        sim, a, b = make_pair()
        sim.schedule_wake("a")
        assert sim.run_for(0) == 0
        assert a.woken is False

    def test_negative_budget_rejected(self):
        sim, _a, _b = make_pair()
        with pytest.raises(ValueError, match="max_steps"):
            sim.run_for(-1)


class TestLimitsAndErrors:
    def test_step_limit(self):
        sim = Simulator()
        a = Recorder("a", forward_to="b")
        b = Recorder("b", forward_to="a")
        sim.add_node(a)
        sim.add_node(b)
        a.awake = b.awake = True
        a.send("b", Ping())
        with pytest.raises(StepLimitExceeded):
            sim.run(max_steps=50)

    def test_stuck_adversary_raises(self):
        class BlockEverything(Adversary):
            def blocks(self, token, sim):
                return isinstance(token, DeliverToken)

            def on_stall(self, sim):
                return False

        sim = Simulator(AdversarialScheduler(BlockEverything()))
        a = Recorder("a", send_on_wake="b")
        b = Recorder("b")
        sim.add_node(a)
        sim.add_node(b)
        sim.schedule_wake("a")
        with pytest.raises(StuckExecutionError):
            sim.run()

    def test_rebind_to_other_sim_rejected(self):
        sim1, a, _ = make_pair()
        sim2 = Simulator()
        with pytest.raises(SimulationError):
            sim2.add_node(a)

    def test_unbound_node_cannot_send(self):
        node = Recorder("x")
        with pytest.raises(SimulationError):
            node.send("y", Ping())


class TestTraceAndObservers:
    def test_trace_records_steps(self):
        sim = Simulator(keep_trace=True)
        a = Recorder("a", send_on_wake="b")
        b = Recorder("b")
        sim.add_node(a)
        sim.add_node(b)
        sim.schedule_wake("a")
        sim.run()
        kinds = [event.kind for event in sim.trace]
        assert kinds == ["wake", "wake", "deliver"]
        assert sim.trace.fingerprint() == sim.trace.fingerprint()

    def test_send_observer(self):
        sim, a, b = make_pair()
        seen = []
        sim.add_send_observer(lambda src, dst, msg: seen.append((src, dst)))
        a.awake = True
        a.send("b", Ping())
        assert seen == [("a", "b")]

    def test_in_flight_and_backlog(self):
        sim, a, b = make_pair()
        a.awake = b.awake = True
        a.send("b", Ping())
        a.send("b", Ping())
        assert sim.in_flight() == 2
        assert sim.channel_backlog("a", "b") == 2
        assert sim.channel_backlog("b", "a") == 0
        sim.run()
        assert sim.in_flight() == 0

    def test_id_bits_validation(self):
        with pytest.raises(ValueError):
            Simulator(id_bits=0)


class TimerRecorder(SimNode):
    """Records timer firings with the step they fired at."""

    def __init__(self, node_id):
        super().__init__(node_id)
        self.fired = []

    def on_wake(self):
        pass

    def on_timer(self, tag):
        self.fired.append((self.sim.steps, tag))


class TestStepBudget:
    def test_budget_equal_to_run_length_is_enough(self):
        """Pin the off-by-one: ``max_steps=k`` must admit a k-step run."""
        sim, a, b = make_pair()
        sim.schedule_wake("a")
        needed = sim.run()
        sim2, a2, b2 = make_pair()
        sim2.schedule_wake("a")
        assert sim2.run(max_steps=needed) == needed

    def test_budget_is_never_overrun(self):
        """The limit is the number of steps actually executed, exactly."""
        sim = Simulator()
        a = Recorder("a", forward_to="b")
        b = Recorder("b", forward_to="a")
        sim.add_node(a)
        sim.add_node(b)
        a.awake = b.awake = True
        a.send("b", Ping())
        with pytest.raises(StepLimitExceeded):
            sim.run(max_steps=50)
        assert sim.steps == 50


class TestTimers:
    def test_timer_fires_at_or_after_due_step(self):
        sim = Simulator()
        node = TimerRecorder("t")
        sim.add_node(node)
        token = sim.schedule_timer("t", 5, tag="tick")
        sim.run()
        assert node.fired and node.fired[0][1] == "tick"
        assert node.fired[0][0] >= token.due

    def test_not_yet_due_timer_charges_steps_until_due(self):
        # A timer is the only pending token: popping it early must still
        # advance the clock, so the due step is always reached (no livelock).
        sim = Simulator()
        node = TimerRecorder("t")
        sim.add_node(node)
        sim.schedule_timer("t", 7)
        executed = sim.run()
        assert executed >= 7
        assert len(node.fired) == 1

    def test_cancelled_timer_never_fires_and_quiesces(self):
        sim = Simulator()
        node = TimerRecorder("t")
        sim.add_node(node)
        token = sim.schedule_timer("t", 5)
        sim.cancel_timer(token)
        assert sim.is_quiescent
        sim.run()
        assert node.fired == []
        assert sim.is_quiescent

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        node = TimerRecorder("t")
        sim.add_node(node)
        token = sim.schedule_timer("t", 5)
        sim.cancel_timer(token)
        sim.cancel_timer(token)
        assert sim.is_quiescent

    def test_timer_validation(self):
        sim = Simulator()
        sim.add_node(TimerRecorder("t"))
        with pytest.raises(ValueError):
            sim.schedule_timer("t", 0)
        with pytest.raises(KeyError):
            sim.schedule_timer("ghost", 1)
