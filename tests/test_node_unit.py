"""Unit tests for the node state machine (scripted small scenarios)."""

import pytest

from repro.core.messages import Conquer, MergeAccept, Query, QueryReply, Search
from repro.core.node import DiscoveryNode, ProtocolError
from repro.core.runner import build_simulation
from repro.graphs.knowledge_graph import KnowledgeGraph
from repro.sim.network import Simulator


def standalone(node_id=0, local=(), variant="generic", **kwargs):
    """A node bound to a throwaway simulator (for helper-level tests)."""
    sim = Simulator()
    node = DiscoveryNode(node_id, frozenset(local), variant=variant, **kwargs)
    sim.add_node(node)
    return sim, node


class TestConstruction:
    def test_initial_state_matches_figure_2(self):
        _, node = standalone(7, local=(1, 2))
        assert node.status == "asleep"
        assert node.local == {1, 2}
        assert node.next == 7
        assert node.phase == 1
        assert node.more == {7}
        assert node.done == set()
        assert node.unexplored == set()
        assert len(node.previous) == 0

    def test_own_id_excluded_from_local(self):
        _, node = standalone(7, local=(7, 1))
        assert node.local == {1}

    def test_variant_validation(self):
        with pytest.raises(ValueError):
            DiscoveryNode(0, frozenset(), variant="nope")
        with pytest.raises(ValueError):
            DiscoveryNode(0, frozenset(), variant="bounded")  # needs size
        with pytest.raises(ValueError):
            DiscoveryNode(0, frozenset(), variant="bounded", component_size=0)

    def test_repr(self):
        _, node = standalone(3)
        assert "DiscoveryNode(3" in repr(node)


class TestHelpers:
    def test_local_query_answer_exhausts(self):
        _, node = standalone(0, local=(1, 2, 3))
        reply = node._answer_query_locally(5)
        assert reply.done_flag
        assert reply.ids == frozenset({1, 2, 3})
        assert node.local == set()

    def test_local_query_answer_partial_is_deterministic(self):
        _, a = standalone(0, local=range(1, 10))
        _, b = standalone(0, local=range(1, 10))
        ra, rb = a._answer_query_locally(4), b._answer_query_locally(4)
        assert ra.ids == rb.ids
        assert not ra.done_flag
        assert len(a.local) == 5

    def test_pop_unexplored_skips_members(self):
        _, node = standalone(0)
        node._add_unexplored(1)
        node._add_unexplored(2)
        node._add_unexplored(0)  # self: must be skipped
        node.done.add(1)  # cluster member: must be skipped
        assert node._pop_unexplored() == 2
        assert node._pop_unexplored() is None

    def test_more_heap_tracks_moves(self):
        _, node = standalone(0)
        node._add_more(5)
        node._move_more_to_done(5)
        assert node._peek_more() == 0  # only self remains
        node._move_done_to_more(5)
        assert 5 in node.more

    def test_knowledge_includes_self(self):
        _, node = standalone(9)
        assert node.knowledge == frozenset({9})


class TestSingleNode:
    def test_isolated_node_becomes_idle_leader(self):
        sim, node = standalone(0)
        sim.schedule_wake(0)
        sim.run()
        assert node.is_leader
        assert node.status == "wait"
        assert node.done == {0}  # self-query exhausted internally
        assert sim.stats.total_messages == 0  # everything was internal

    def test_isolated_bounded_node_terminates(self):
        sim, node = standalone(0, variant="bounded", component_size=1)
        sim.schedule_wake(0)
        sim.run()
        assert node.status == "terminated"
        assert sim.stats.total_messages == 0


class TestTwoNodeConquest:
    def run_pair(self, variant, edge=(0, 1)):
        graph = KnowledgeGraph([0, 1], [edge])
        sim, nodes = build_simulation(graph, variant)
        sim.run(10_000)
        return sim, nodes

    def test_higher_id_wins_when_lower_knows_higher(self, variant):
        # 0 knows 1: 0's search reaches 1, (1,0) < (1,1) => 0 aborted, and
        # 1 must then discover 0 through the new-flag bookkeeping.
        sim, nodes = self.run_pair(variant, edge=(0, 1))
        assert not nodes[0].is_leader
        assert nodes[1].is_leader
        assert nodes[1].knowledge == frozenset({0, 1})
        assert nodes[0].next == 1

    def test_higher_id_wins_when_higher_knows_lower(self, variant):
        # 1 knows 0: 1's search reaches 0, (1,1) > (1,0) => 0 merges in.
        sim, nodes = self.run_pair(variant, edge=(1, 0))
        assert nodes[1].is_leader
        assert nodes[1].knowledge == frozenset({0, 1})

    def test_idle_wait_revival_is_what_saves_the_abort_case(self):
        """The 0->1 case exercises interpretation rule 2: leader 1 sits in
        idle wait, the incoming search replenishes its sets, and it must
        resume exploring; quiescence with 1 ignorant of 0 is a failure."""
        sim, nodes = self.run_pair("generic", edge=(0, 1))
        assert 0 in nodes[1].done | nodes[1].more


class TestStateErrors:
    def test_query_at_leader_raises(self):
        sim, node = standalone(0)
        sim.schedule_wake(0)
        sim.run()
        with pytest.raises(ProtocolError):
            node._dispatch(99, Query(3))

    def test_merge_accept_outside_conquered_raises(self):
        sim, node = standalone(0)
        sim.schedule_wake(0)
        sim.run()
        with pytest.raises(ProtocolError):
            node._dispatch(99, MergeAccept())

    def test_conquer_at_leader_raises(self):
        sim, node = standalone(0)
        sim.schedule_wake(0)
        sim.run()
        with pytest.raises(ProtocolError):
            node._dispatch(99, Conquer(99, 5))

    def test_probe_requires_adhoc(self):
        sim, node = standalone(0, variant="generic")
        sim.schedule_wake(0)
        sim.run()
        with pytest.raises(ProtocolError):
            node.initiate_probe()

    def test_probe_requires_awake(self):
        _, node = standalone(0, variant="adhoc")
        with pytest.raises(ProtocolError):
            node.initiate_probe()


class TestDeferral:
    def test_search_deferred_while_querying(self):
        """A search that arrives while the leader awaits a query reply is
        parked and processed after the explore step completes."""
        graph = KnowledgeGraph([0, 1, 2], [(2, 0), (2, 1)])
        sim, nodes = build_simulation(graph, "generic")
        sim.run(10_000)
        # Everything must resolve to a single leader despite interleaving.
        leaders = [n for n in nodes.values() if n.is_leader]
        assert len(leaders) == 1
        assert leaders[0].knowledge == frozenset({0, 1, 2})


class TestNotifyNewLink:
    def test_leader_revives_on_new_link(self):
        graph = KnowledgeGraph([0, 1])
        sim, nodes = build_simulation(graph, "adhoc")
        sim.run(10_000)
        # Two isolated leaders; now 1 learns about 0.
        assert nodes[0].is_leader and nodes[1].is_leader
        nodes[1].notify_new_link(0)
        sim.run(10_000)
        leaders = [i for i, n in nodes.items() if n.is_leader]
        assert leaders == [1]
        assert nodes[1].knowledge == frozenset({0, 1})

    def test_duplicate_link_is_noop(self):
        graph = KnowledgeGraph([0, 1], [(1, 0)])
        sim, nodes = build_simulation(graph, "adhoc")
        sim.run(10_000)
        before = sim.stats.total_messages
        nodes[1].notify_new_link(0)
        sim.run(10_000)
        # 0 is already known (reported or pending): no new traffic at all
        # beyond possibly a notification that resolves quickly.
        assert sim.stats.total_messages == before

    def test_inactive_with_exhausted_local_sends_notification(self):
        graph = KnowledgeGraph([0, 1, 2], [(1, 0)])
        sim, nodes = build_simulation(graph, "adhoc")
        sim.run(10_000)
        # 1 leads {0, 1}; 2 is an isolated leader. 0 is inactive, exhausted.
        assert nodes[0].status == "inactive"
        assert nodes[0].local == set()
        before = sim.stats.snapshot()
        nodes[0].notify_new_link(2)
        sim.run(10_000)
        delta = sim.stats.delta_since(before)
        assert delta.messages_by_type.get("search", 0) >= 1
        # The leader must eventually absorb 2's component.
        leaders = [i for i, n in nodes.items() if n.is_leader]
        assert len(leaders) == 1
        assert nodes[leaders[0]].knowledge == frozenset({0, 1, 2})
