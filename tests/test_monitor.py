"""Tests for the stepwise safety monitor (and, through it, the claim that
the safety properties hold at every step of every schedule)."""

import pytest

from repro.core.runner import build_simulation
from repro.graphs.generators import (
    complete_binary_tree,
    directed_path,
    random_weakly_connected,
    star,
)
from repro.verification.invariants import verify_discovery
from repro.verification.monitor import SafetyViolation, StepwiseMonitor, check_safety_now
from repro.core.result import collect_result


class TestStepwiseSafety:
    @pytest.mark.parametrize(
        "maker",
        [
            lambda: star(12),
            lambda: directed_path(12),
            lambda: complete_binary_tree(4),
            lambda: random_weakly_connected(20, 50, seed=3),
        ],
        ids=["star", "path", "tree", "random"],
    )
    @pytest.mark.parametrize("variant", ["generic", "bounded", "adhoc"])
    @pytest.mark.parametrize("seed", [0, 5])
    def test_invariants_hold_every_step(self, maker, variant, seed):
        graph = maker()
        sim, nodes = build_simulation(graph, variant, seed=seed)
        monitor = StepwiseMonitor(sim, nodes)
        monitor.run()
        assert monitor.steps_checked > 0
        verify_discovery(collect_result(graph, nodes, sim, variant), graph)

    def test_every_parameter_subsamples(self):
        graph = random_weakly_connected(15, 30, seed=1)
        sim, nodes = build_simulation(graph, "generic", seed=1)
        monitor = StepwiseMonitor(sim, nodes, every=10)
        steps = monitor.run()
        assert monitor.steps_checked <= steps // 10 + 2

    def test_every_validation(self):
        graph = star(3)
        sim, nodes = build_simulation(graph, "generic")
        with pytest.raises(ValueError):
            StepwiseMonitor(sim, nodes, every=0)


class TestViolationDetection:
    """The monitor must catch fabricated corruption."""

    def quiesced(self):
        graph = random_weakly_connected(10, 20, seed=2)
        sim, nodes = build_simulation(graph, "generic", seed=2)
        sim.run(10**6)
        return nodes

    def test_detects_pointer_cycle(self):
        nodes = self.quiesced()
        inactive = [n for n in nodes.values() if n.status == "inactive"]
        a, b = inactive[0], inactive[1]
        a.next, b.next = b.node_id, a.node_id
        with pytest.raises(SafetyViolation, match="cycle"):
            check_safety_now(nodes)

    def test_detects_double_ownership(self):
        nodes = self.quiesced()
        leader = next(n for n in nodes.values() if n.is_leader)
        other = next(n for n in nodes.values() if not n.is_leader)
        member = next(iter(leader.done - {other.node_id, leader.node_id}))
        other.status = "passive"  # make it an owning state
        other.next = other.node_id
        other.done.add(member)
        with pytest.raises(SafetyViolation, match="owned by both"):
            check_safety_now(nodes)

    def test_detects_more_done_overlap(self):
        nodes = self.quiesced()
        leader = next(n for n in nodes.values() if n.is_leader)
        member = next(iter(leader.done - {leader.node_id}))
        leader.more.add(member)
        with pytest.raises(SafetyViolation, match="overlap"):
            check_safety_now(nodes)

    def test_detects_lost_self_entry(self):
        nodes = self.quiesced()
        leader = next(n for n in nodes.values() if n.is_leader)
        leader.more.discard(leader.node_id)
        leader.done.discard(leader.node_id)
        with pytest.raises(SafetyViolation, match="lost its own entry"):
            check_safety_now(nodes)

    def test_detects_inactive_self_pointer(self):
        nodes = self.quiesced()
        inactive = next(n for n in nodes.values() if n.status == "inactive")
        inactive.next = inactive.node_id
        with pytest.raises(SafetyViolation, match="points at itself"):
            check_safety_now(nodes)
