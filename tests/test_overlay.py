"""Tests for the post-discovery ring overlay."""

import math

import pytest

from repro.core.adhoc import run_adhoc
from repro.graphs.generators import random_weakly_connected
from repro.overlay import RingOverlay, ring_position


class TestRingPosition:
    def test_stable_across_calls(self):
        assert ring_position("peer-1") == ring_position("peer-1")
        assert ring_position(42) == ring_position(42)

    def test_distinct_ids_rarely_collide(self):
        positions = {ring_position(i) for i in range(1000)}
        assert len(positions) >= 999  # 32-bit space, 1000 draws

    def test_bits_parameter(self):
        assert 0 <= ring_position("x", bits=8) < 256


class TestConstruction:
    def test_deterministic_and_canonical(self):
        members = ["a", "b", "c", "d"]
        a = RingOverlay.from_membership(members)
        b = RingOverlay.from_membership(reversed(members))
        assert a.order == b.order
        assert a.fingers == b.fingers

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            RingOverlay.from_membership([])

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError):
            RingOverlay.from_membership(["x", "x"])

    def test_finger_table_size_is_logarithmic(self):
        ring = RingOverlay.from_membership(range(64))
        for member in ring.order:
            assert len(ring.fingers[member]) == 6  # ceil(log2 64)

    def test_singleton_ring(self):
        ring = RingOverlay.from_membership(["solo"])
        assert ring.successor("solo") == "solo"
        assert ring.lookup_path("solo", "anything") == ["solo"]


class TestLookup:
    def test_every_lookup_resolves(self):
        ring = RingOverlay.from_membership(range(40))
        for start in list(ring.order)[:10]:
            for key in list(ring.order)[:10]:
                path = ring.lookup_path(start, key)
                assert path[0] == start
                assert path[-1] == ring.responsible_for(key)

    def test_hops_are_logarithmic(self):
        for n in (16, 64, 256):
            ring = RingOverlay.from_membership(range(n))
            # Sample the diagonal rather than all n^2 pairs at 256.
            worst = 0
            for i in range(0, n, max(1, n // 16)):
                path = ring.lookup_path(ring.order[i], ring.order[(i + n // 2) % n])
                worst = max(worst, len(path) - 1)
            assert worst <= math.log2(n) + 1

    def test_max_hops_exhaustive_small(self):
        ring = RingOverlay.from_membership(range(32))
        assert ring.max_lookup_hops() <= 6  # log2(32) + 1

    def test_unknown_start_rejected(self):
        ring = RingOverlay.from_membership(range(4))
        with pytest.raises(KeyError):
            ring.lookup_path("ghost", 1)


class TestDiscoveryIntegration:
    def test_overlay_from_discovered_membership(self):
        """The paper's motivating pipeline end-to-end: discover, then every
        peer independently computes the same overlay."""
        graph = random_weakly_connected(50, 120, seed=9)
        result = run_adhoc(graph, seed=9)
        members = result.knowledge[result.leaders[0]]
        assert members == frozenset(graph.nodes)
        ring_at_leader = RingOverlay.from_membership(members)
        ring_at_peer = RingOverlay.from_membership(sorted(members))
        assert ring_at_leader.order == ring_at_peer.order
        # Routing works between arbitrary discovered peers.
        path = ring_at_leader.lookup_path(ring_at_leader.order[0], ring_at_leader.order[-1])
        assert len(path) - 1 <= math.log2(50) + 1
