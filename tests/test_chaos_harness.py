"""The chaos harness: trials, the acceptance scenario, the table, the CLI."""

import json

import pytest

from repro.cli import main
from repro.core.runner import build_simulation, default_step_budget
from repro.faults import (
    CHAOS_HEADERS,
    CrashSpec,
    FaultInjector,
    FaultPlan,
    chaos_report,
    exp_chaos,
    run_chaos_trial,
)
from repro.graphs.generators import random_weakly_connected
from repro.verification.degradation import (
    OUTCOME_OK,
    OUTCOME_VIOLATED,
    verify_surviving,
)
from repro.verification.monitor import StepwiseMonitor


class TestRunChaosTrial:
    def test_fault_free_baseline_is_ok_without_transport(self):
        trial = run_chaos_trial("baseline", n=16, seed=1, reliable=False)
        assert trial.outcome == OUTCOME_OK
        assert trial.quiesced and trial.safety_ok and trial.properties_ok
        assert trial.faults_injected == 0
        assert trial.retransmissions == 0

    def test_fault_free_baseline_is_ok_with_transport(self):
        trial = run_chaos_trial("baseline", n=16, seed=1, reliable=True)
        assert trial.outcome == OUTCOME_OK
        assert trial.overhead_messages > 0  # acks are never free

    @pytest.mark.parametrize(
        "scenario", ["loss-20", "dup-10", "partition-heal", "delay-burst"]
    )
    def test_transport_fully_recovers_channel_faults(self, scenario):
        # Channel faults (no crashed nodes) are exactly what the transport
        # repairs: the run must be indistinguishable from fault-free.
        trial = run_chaos_trial(scenario, n=20, seed=3, reliable=True)
        assert trial.safety_ok, trial.detail
        assert trial.outcome == OUTCOME_OK, (trial.outcome, trial.detail)

    def test_stress_scenario_keeps_safety(self):
        # Stress crashes nodes that survivors may reference, so liveness
        # can legitimately degrade -- but safety never may.
        trial = run_chaos_trial("stress", n=20, seed=3, reliable=True)
        assert trial.safety_ok, trial.detail
        assert trial.outcome != OUTCOME_VIOLATED

    def test_raw_protocol_degrades_but_never_corrupts(self):
        trial = run_chaos_trial(
            "loss-20", n=20, seed=0, reliable=False, budget_factor=2
        )
        assert trial.outcome != OUTCOME_VIOLATED
        assert trial.safety_ok

    def test_trial_carries_its_plan(self):
        trial = run_chaos_trial("loss-10", n=12, seed=0, reliable=True)
        assert trial.plan.loss == 0.10
        assert "loss=0.1" in trial.plan.describe()


class TestAcceptanceScenario:
    """The PR's acceptance bar: loss <= 20% plus <= 2 crashed non-leader
    nodes; Generic under the reliable transport must reach quiescence with
    all three problem properties on every surviving component and zero
    stepwise safety violations."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_generic_survives_loss20_plus_two_crashes(self, seed):
        graph = random_weakly_connected(20, 20, seed=seed)
        # Two extra source nodes: out-edges only, so their ids are in
        # nobody's initial local set ("unknown" nodes, paper section 1.2).
        graph.add_node("s1")
        graph.add_node("s2")
        graph.add_edge("s1", 0)
        graph.add_edge("s2", 1)
        crashed = frozenset({"s1", "s2"})
        plan = FaultPlan(
            loss=0.20, crashes=tuple(CrashSpec(node) for node in crashed)
        )
        injector = FaultInjector(plan, seed=seed)
        sim, nodes = build_simulation(
            graph, "generic", seed=seed, faults=injector, reliable=True
        )
        monitor = StepwiseMonitor(sim, nodes)
        # Raises SafetyViolation on any I1-I4 breach, SimulationError on
        # budget exhaustion -- either fails the test.
        monitor.run(8 * default_step_budget(graph))
        assert sim.is_quiescent
        report = verify_surviving(graph, nodes, sim, "generic", crashed)
        assert report.n_survivors == 20
        assert report.properties_ok, report.detail
        assert report.n_orphans == 0


class TestExpChaosTable:
    def test_table_shape_and_flag_encoding(self):
        headers, rows = exp_chaos(
            scenarios=("baseline", "loss-10"), n=12, seed=0
        )
        assert headers == CHAOS_HEADERS
        assert len(rows) == 2
        for row in rows:
            assert len(row) == len(headers)
            for flag in ("quiesced", "safe", "props"):
                value = row[headers.index(flag)]
                assert isinstance(value, int) and value in (0, 1)

    def test_multiple_variants_multiply_rows(self):
        headers, rows = exp_chaos(
            scenarios=("baseline",), variants=("generic", "bounded"), n=12, seed=0
        )
        assert [row[1] for row in rows] == ["generic", "bounded"]

    def test_registry_and_quick_kwargs(self):
        from repro.analysis.experiments import (
            QUICK_SWEEP_KWARGS,
            SWEEPABLE_EXPERIMENTS,
        )

        assert "chaos" in SWEEPABLE_EXPERIMENTS
        kwargs = dict(QUICK_SWEEP_KWARGS["chaos"])
        headers, rows = SWEEPABLE_EXPERIMENTS["chaos"](seed=1, **kwargs)
        assert headers == CHAOS_HEADERS and rows


class TestChaosReport:
    def test_report_mentions_every_trial_and_verdict(self):
        trials = [
            run_chaos_trial("baseline", n=12, seed=0, reliable=True),
            run_chaos_trial("loss-10", n=12, seed=0, reliable=True),
        ]
        text = chaos_report(trials)
        assert "baseline" in text and "loss-10" in text
        assert "safety: clean" in text


class TestChaosCli:
    def test_chaos_smoke(self, capsys):
        assert (
            main(
                [
                    "chaos",
                    "--scenarios",
                    "baseline,loss-10",
                    "--n",
                    "12",
                    "--seeds",
                    "0:2",
                    "--no-progress",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "safety: clean" in out
        assert "loss-10" in out

    def test_chaos_bench_out(self, capsys, tmp_path):
        out_path = tmp_path / "BENCH_chaos.json"
        assert (
            main(
                [
                    "chaos",
                    "--scenarios",
                    "baseline",
                    "--n",
                    "12",
                    "--seeds",
                    "0:2",
                    "--no-progress",
                    "--bench-out",
                    str(out_path),
                ]
            )
            == 0
        )
        payload = json.loads(out_path.read_text())
        assert payload["headers"] == CHAOS_HEADERS
        assert payload["seeds"] == [0, 1]

    def test_chaos_rejects_unknown_scenario(self, capsys):
        assert main(["chaos", "--scenarios", "nope"]) == 2

    def test_chaos_rejects_bad_variants(self, capsys):
        assert main(["chaos", "--variants", "nope"]) == 2

    def test_chaos_raw_mode(self, capsys):
        assert (
            main(
                [
                    "chaos",
                    "--scenarios",
                    "baseline",
                    "--n",
                    "12",
                    "--seeds",
                    "0:1",
                    "--raw",
                    "--no-progress",
                ]
            )
            == 0
        )
        assert "raw (no recovery)" in capsys.readouterr().out
