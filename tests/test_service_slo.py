"""SLO computation and the Theorem 8 amortized-cost bound under load."""

import pytest

from repro.core.adhoc import AdhocNetwork
from repro.graphs.generators import random_weakly_connected
from repro.obs.timeline import read_timeline, write_timeline
from repro.service import (
    ServiceDriver,
    amortized_table,
    build_workload,
    service_timeline,
    slo_table,
    summarize_service,
)
from repro.service.workload import EventMix
from repro.unionfind.ackermann import alpha

#: msgs/(op * alpha(m, n+n-hat)) must stay below this constant at every
#: scale -- the empirical form of Theorem 8's O(m alpha(m, n + n-hat)).
AMORTIZED_CEILING = 8.0


def _report(kind="poisson", *, n=32, rate=10.0, duration=2000, seed=5, **kwargs):
    graph = random_weakly_connected(n, int(1.5 * n), seed=0)
    workload = build_workload(kind, graph, rate=rate, duration=duration, seed=seed)
    net = AdhocNetwork(graph, seed=0)
    return ServiceDriver(net, workload, **kwargs).run()


class TestTheorem8:
    def test_amortized_cost_bounded_across_scales(self):
        """The acceptance criterion: three operation-count scales, each
        within the alpha-normalized ceiling, with m growing ~4x per step."""
        ops_seen = []
        for duration in (1000, 4000, 16000):
            report = _report(rate=10.0, duration=duration, seed=11)
            summary = summarize_service(report)
            assert not report.budget_exhausted
            ops_seen.append(summary.operations)
            assert summary.amortized_over_alpha <= AMORTIZED_CEILING, (
                f"duration={duration}: msgs/(op*alpha) = "
                f"{summary.amortized_over_alpha:.2f}"
            )
        assert ops_seen == sorted(ops_seen) and ops_seen[0] < ops_seen[-1]

    def test_curve_checkpoints_stay_bounded(self):
        report = _report(rate=15.0, duration=8000, seed=4)
        joined = report.injected.get("join", 0)
        n_hat = report.n_initial + joined
        # Skip the first few checkpoints: constant startup costs dominate
        # until a handful of operations amortize them away.
        for operations, messages in report.curve:
            if operations < 8:
                continue
            bound = alpha(operations, n_hat)
            assert messages / operations <= AMORTIZED_CEILING * max(1, bound)


class TestReconvergence:
    def test_bursts_reconverge_to_a_verified_census(self):
        report = _report(
            "bursty",
            rate=8.0,
            duration=2500,
            seed=3,
            verify_on_reconvergence=True,
        )
        summary = summarize_service(report)
        assert summary.bursts_total >= 3
        assert summary.bursts_reconverged == summary.bursts_total
        for burst in report.bursts:
            assert burst.reconverged_at is not None
            assert burst.verified is True
            assert burst.lag >= 0
        assert summary.reconvergence_lag_mean is not None
        assert summary.reconvergence_lag_max >= summary.reconvergence_lag_mean


class TestSummaries:
    def test_summary_counts_are_consistent(self):
        report = _report(seed=8)
        summary = summarize_service(report)
        assert summary.operations == report.operations
        assert (
            summary.probes_completed + summary.probes_incomplete
            == summary.probes_total
        )
        assert summary.latency_p50 is not None
        assert summary.latency_p50 <= summary.latency_p95 <= summary.latency_p99
        assert summary.throughput_per_kstep <= summary.offered_per_kstep

    def test_probe_free_run_renders_dashes(self):
        graph = random_weakly_connected(16, 24, seed=0)
        workload = build_workload(
            "poisson",
            graph,
            rate=5.0,
            duration=1000,
            seed=1,
            mix=EventMix(join=0.5, link=0.5, probe=0.0),
        )
        report = ServiceDriver(AdhocNetwork(graph, seed=0), workload).run()
        summary = summarize_service(report)
        assert summary.latency_p50 is None
        headers, rows = slo_table(report, summary)
        cells = {row[0]: row[1] for row in rows}
        assert cells["probe latency p50 (steps)"] == "-"

    def test_slo_table_has_burst_rows_only_when_bursty(self):
        plain = _report(seed=2)
        _, plain_rows = slo_table(plain)
        assert not any(row[0] == "churn bursts" for row in plain_rows)
        bursty = _report("bursty", rate=8.0, duration=1500, seed=2)
        _, bursty_rows = slo_table(bursty)
        assert any(row[0] == "churn bursts" for row in bursty_rows)

    def test_amortized_table_matches_curve(self):
        report = _report(seed=6)
        headers, rows = amortized_table(report)
        assert headers[0] == "ops (m)"
        assert len(rows) == len(report.curve)
        assert [row[0] for row in rows] == [point[0] for point in report.curve]


class TestTimelineExport:
    def test_round_trip(self, tmp_path):
        report = _report(seed=9)
        timeline = service_timeline(report, meta={"note": "test"})
        path = write_timeline(tmp_path / "svc.jsonl", timeline)
        loaded = read_timeline(path)
        assert loaded.meta["command"] == "serve-sim"
        assert loaded.meta["note"] == "test"
        assert len(loaded.events) == len(report.completed_probes)
        assert all(event.kind == "service-op" for event in loaded.events)
        steps = [event.step for event in loaded.events]
        assert steps == sorted(steps)
        assert loaded.samples == timeline.samples
