"""End-to-end runs with non-integer node ids.

Ids in the model are opaque addresses (IP-like); everything must work for
any mutually-orderable hashable ids.  The Union-Find reduction already
uses string ids internally; these tests pin the full surface.
"""

import pytest

from repro.baselines import run_kpv_style, run_law_siu, run_name_dropper, verify_baseline
from repro.core.adhoc import AdhocNetwork
from repro.graphs.knowledge_graph import KnowledgeGraph
from tests.conftest import run_and_verify


def named_graph():
    peers = ["alice", "bob", "carol", "dave", "erin", "frank"]
    edges = [
        ("alice", "bob"),
        ("carol", "bob"),
        ("carol", "dave"),
        ("erin", "dave"),
        ("frank", "alice"),
        ("frank", "erin"),
    ]
    return KnowledgeGraph(peers, edges)


@pytest.mark.parametrize("seed", [None, 1, 2])
def test_core_variants_with_string_ids(variant, seed):
    graph = named_graph()
    result = run_and_verify(variant, graph, seed=seed)
    assert result.leaders[0] in graph.nodes


def test_lexicographic_tiebreak_decides_leader():
    """(phase, id) comparisons use the ids' native order: on a two-node
    mutual-knowledge graph the lexicographically larger name wins."""
    graph = KnowledgeGraph(["ant", "zebra"], [("ant", "zebra"), ("zebra", "ant")])
    result = run_and_verify("generic", graph)
    assert result.leaders == ["zebra"]


def test_adhoc_dynamics_with_string_ids():
    net = AdhocNetwork(named_graph(), seed=3)
    net.run()
    net.add_node("grace", known=["alice"])
    net.add_link("bob", "grace")
    net.run()
    leader, members = net.probe("grace")
    assert members == frozenset(
        ["alice", "bob", "carol", "dave", "erin", "frank", "grace"]
    )


def test_baselines_with_string_ids():
    graph = named_graph()
    for runner in (
        lambda g: run_name_dropper(g, seed=1),
        lambda g: run_law_siu(g, seed=1),
        run_kpv_style,
    ):
        result = runner(graph)
        verify_baseline(result, graph)


def test_mixed_types_not_required_but_tuples_work():
    """Tuple ids (orderable, hashable) also work end-to-end."""
    nodes = [(0, "a"), (0, "b"), (1, "a")]
    graph = KnowledgeGraph(nodes, [((0, "a"), (0, "b")), ((1, "a"), (0, "a"))])
    result = run_and_verify("adhoc", graph)
    assert len(result.leaders) == 1
