"""Tests for the baseline algorithms."""

import math

import pytest

from repro.baselines import (
    run_flooding,
    run_kpv_style,
    run_law_siu,
    run_name_dropper,
    run_strong_election,
    verify_baseline,
)
from repro.graphs.generators import (
    complete_binary_tree,
    directed_cycle,
    directed_path,
    disjoint_union,
    random_strongly_connected,
    random_weakly_connected,
    star,
)
from repro.graphs.knowledge_graph import KnowledgeGraph

GRAPHS = [
    ("star", lambda: star(20)),
    ("path", lambda: directed_path(20)),
    ("tree", lambda: complete_binary_tree(4)),
    ("random", lambda: random_weakly_connected(25, 50, seed=6)),
    ("multi", lambda: disjoint_union(star(7), directed_path(5))),
    ("single", lambda: KnowledgeGraph([0])),
]

SYNC_BASELINES = [
    ("flooding", lambda g: run_flooding(g)),
    ("name-dropper", lambda g: run_name_dropper(g, seed=4)),
    ("law-siu", lambda g: run_law_siu(g, seed=4)),
    ("kpv-style", lambda g: run_kpv_style(g)),
]


@pytest.mark.parametrize("gname,maker", GRAPHS, ids=[g for g, _ in GRAPHS])
@pytest.mark.parametrize("bname,runner", SYNC_BASELINES, ids=[b for b, _ in SYNC_BASELINES])
def test_baseline_solves_discovery(gname, maker, bname, runner):
    graph = maker()
    result = runner(graph)
    verify_baseline(result, graph)


class TestFlooding:
    def test_everyone_knows_everyone(self):
        graph = random_weakly_connected(15, 30, seed=1)
        from repro.baselines.flooding import FloodingNode, run_flooding

        result = run_flooding(graph)
        assert result.knowledge[result.leaders[0]] == frozenset(graph.nodes)

    def test_most_expensive_in_bits(self):
        graph = random_weakly_connected(40, 120, seed=2)
        flood = run_flooding(graph)
        kpv = run_kpv_style(graph)
        assert flood.total_bits > 10 * kpv.total_bits


class TestNameDropper:
    def test_rounds_are_polylog(self):
        for n in (32, 128):
            graph = random_weakly_connected(n, 2 * n, seed=n)
            result = run_name_dropper(graph, seed=0)
            assert result.rounds <= 4 * math.log2(n) ** 2

    def test_seed_determinism(self):
        graph = random_weakly_connected(20, 40, seed=3)
        a = run_name_dropper(graph, seed=5)
        b = run_name_dropper(graph, seed=5)
        assert a.total_messages == b.total_messages
        assert a.rounds == b.rounds


class TestLawSiu:
    def test_rounds_are_logarithmic_ish(self):
        for n in (32, 128):
            graph = random_weakly_connected(n, 2 * n, seed=n)
            result = run_law_siu(graph, seed=0)
            assert result.rounds <= 30 * max(1, math.log2(n))

    def test_different_seeds_still_correct(self):
        graph = random_weakly_connected(30, 60, seed=7)
        for seed in range(6):
            verify_baseline(run_law_siu(graph, seed=seed), graph)


class TestKPVStyle:
    def test_fully_deterministic(self):
        graph = random_weakly_connected(30, 60, seed=8)
        a, b = run_kpv_style(graph), run_kpv_style(graph)
        assert a.total_messages == b.total_messages
        assert a.leaders == b.leaders

    def test_message_count_roughly_n_log_n(self):
        ratios = []
        for n in (32, 128, 512):
            graph = random_weakly_connected(n, 2 * n, seed=n)
            result = run_kpv_style(graph)
            ratios.append(result.total_messages / (n * math.log2(n)))
        assert max(ratios) <= 4.0


class TestStrongElection:
    def test_exact_message_count(self):
        """The Section 1 observation: 2(n-1) messages, token + broadcast."""
        for n in (1, 2, 10, 50):
            graph = random_strongly_connected(n, n, seed=n)
            result = run_strong_election(graph)
            verify_baseline(result, graph)
            assert result.total_messages == 2 * (n - 1)

    def test_max_id_elected(self):
        graph = directed_cycle(12)
        result = run_strong_election(graph)
        assert result.leaders == [11]

    def test_rejects_weakly_connected_input(self):
        with pytest.raises(ValueError):
            run_strong_election(directed_path(5))

    def test_custom_initiator(self):
        graph = directed_cycle(6)
        result = run_strong_election(graph, initiator=3)
        verify_baseline(result, graph)
