"""Crash-recovery fault model: checkpoints, epoch fencing, and rejoin.

Covers the whole recovery stack bottom-up: RecoverySpec/plan validation,
the injector's down-window semantics, lifecycle tokens, the checkpoint
store's cadence policy, the transport's epoch fence/teach/re-queue
machinery, and the end-to-end chaos outcomes -- including the pinned
acceptance scenario (20% loss plus two mid-run amnesia restarts that must
reconverge to a single verified leader, deterministically).
"""

import pytest

from repro.analysis.experiments import build_family
from repro.core.runner import build_simulation
from repro.faults import (
    CrashSpec,
    FaultInjector,
    FaultPlan,
    RECOVERY_SCENARIOS,
    RecoverySpec,
    ReliableNode,
    attach_recovery,
    run_chaos_trial,
)
from repro.faults.recovery import CheckpointStore, RecoveryManager
from repro.faults.scenarios import FAULT_SCENARIOS, pick_crash_victims
from repro.obs import Recorder
from repro.sim.events import LifecycleToken
from repro.sim.network import SimNode, SimulationError, Simulator
from repro.sim.scheduler import GlobalFifoScheduler
from repro.verification.degradation import OUTCOME_RECOVERED, OUTCOMES

from tests.test_reliable_transport import Burst, Ping, Sink


class TestRecoverySpecValidation:
    def test_windows_must_be_ordered(self):
        RecoverySpec("a", crash_step=1, recover_step=2)
        with pytest.raises(ValueError):
            RecoverySpec("a", crash_step=5, recover_step=5)
        with pytest.raises(ValueError):
            RecoverySpec("a", crash_step=9, recover_step=3)
        with pytest.raises(ValueError):
            RecoverySpec("a", crash_step=0, recover_step=5)

    def test_plan_rejects_duplicate_recoveries(self):
        with pytest.raises(ValueError):
            FaultPlan(
                recoveries=(
                    RecoverySpec("a", crash_step=1, recover_step=5),
                    RecoverySpec("a", crash_step=2, recover_step=9),
                )
            )

    def test_plan_rejects_crash_recovery_overlap(self):
        # A node either stays down (CrashSpec) or comes back (RecoverySpec).
        with pytest.raises(ValueError):
            FaultPlan(
                crashes=(CrashSpec("a"),),
                recoveries=(RecoverySpec("a", crash_step=1, recover_step=5),),
            )

    def test_recoveries_count_as_faults(self):
        plan = FaultPlan(recoveries=(RecoverySpec("a", crash_step=1, recover_step=5),))
        assert not plan.is_fault_free
        assert "recoveries=1" in plan.describe()

    def test_plans_with_recoveries_are_picklable(self):
        import pickle

        plan = FaultPlan(
            loss=0.2,
            recoveries=(RecoverySpec("a", crash_step=1, recover_step=5, amnesia=True),),
        )
        assert pickle.loads(pickle.dumps(plan)) == plan


class TestInjectorDownWindow:
    def test_crashed_only_inside_window(self):
        plan = FaultPlan(recoveries=(RecoverySpec("a", crash_step=5, recover_step=10),))
        injector = FaultInjector(plan)
        assert not injector.crashed("a", 4)
        assert injector.crashed("a", 5)
        assert injector.crashed("a", 9)
        assert not injector.crashed("a", 10)  # recovered: half-open window
        assert not injector.crashed("a", 1000)

    def test_crashed_nodes_unions_stops_and_windows(self):
        plan = FaultPlan(
            crashes=(CrashSpec("dead", at_step=0),),
            recoveries=(RecoverySpec("back", crash_step=5, recover_step=10),),
        )
        injector = FaultInjector(plan)
        assert injector.crashed_nodes(7) == frozenset({"dead", "back"})
        # After recovery only the crash-stop victim is excluded from
        # verification -- recovered nodes must be held to the properties.
        assert injector.crashed_nodes(50) == frozenset({"dead"})


class _Lifecycle(SimNode):
    """Records the crash/recover callbacks the simulator dispatches."""

    def __init__(self, node_id):
        super().__init__(node_id)
        self.calls = []

    def on_wake(self):
        pass

    def on_message(self, sender, message):
        pass

    def on_crash(self):
        self.calls.append(("crash", self.sim.steps))

    def on_recover(self):
        self.calls.append(("recover", self.sim.steps))


class TestLifecycleTokens:
    def test_schedule_validation(self):
        sim = Simulator()
        sim.add_node(_Lifecycle("a"))
        with pytest.raises(KeyError):
            sim.schedule_lifecycle("ghost", 5, "crash")
        with pytest.raises(ValueError):
            sim.schedule_lifecycle("a", 5, "explode")
        with pytest.raises(ValueError):
            sim.schedule_lifecycle("a", 0, "crash")

    def test_fires_at_due_step_and_holds_quiescence(self):
        sim = Simulator(GlobalFifoScheduler())
        node = _Lifecycle("a")
        sim.add_node(node)
        token = sim.schedule_lifecycle("a", 5, "crash")
        assert isinstance(token, LifecycleToken)
        assert token.channel is None
        # The pending token keeps the simulator from quiescing early: each
        # premature pop re-enqueues and charges a step until the due step.
        assert not sim.is_quiescent
        sim.run()
        assert node.calls == [("crash", 5)]
        assert sim.is_quiescent

    def test_recover_rewakes_a_sleeping_node(self):
        sim = Simulator(GlobalFifoScheduler())
        node = _Lifecycle("a")
        sim.add_node(node)
        assert not node.awake
        sim.schedule_lifecycle("a", 3, "recover")
        sim.run()
        # on_recover left the node asleep, so the simulator scheduled a
        # fresh spontaneous wake for it.
        assert node.awake
        assert node.calls[0] == ("recover", 3)


class _FakeInner:
    """Just the Figure 2 durable surface the checkpoint store snapshots."""

    def __init__(self, node_id):
        self.node_id = node_id
        self.status = "asleep"
        self.next = node_id
        self.phase = 0
        self.local = {node_id + "x"}
        self.more = {node_id}
        self.done = set()
        self.unaware = set()
        self.unexplored = set()


class TestCheckpointStore:
    def test_cadence_every_k_events(self):
        store = CheckpointStore(every=3)
        inner = _FakeInner("a")
        store.register(inner)
        assert store.taken["a"] == 1  # the baseline
        for step in range(1, 7):
            inner.phase = step  # durable drift, same status
            store.observe(inner, step)
        # Events 3 and 6 hit the cadence; nothing else snapshots.
        assert store.taken["a"] == 3
        assert store.latest("a").phase == 6
        assert store.baseline("a").phase == 0

    def test_status_change_forces_a_snapshot(self):
        store = CheckpointStore(every=1000)
        inner = _FakeInner("a")
        store.register(inner)
        inner.status = "conqueror"
        store.observe(inner, 1)
        # Ownership transfers ride status transitions; the forced snapshot
        # is what keeps a restart from resurrecting a handed-over cluster.
        assert store.taken["a"] == 2
        assert store.latest("a").status == "conqueror"

    def test_snapshots_do_not_alias_live_state(self):
        store = CheckpointStore()
        inner = _FakeInner("a")
        store.register(inner)
        inner.local.add("zz")
        assert "zz" not in store.baseline("a").local

    def test_cadence_validation(self):
        with pytest.raises(ValueError):
            CheckpointStore(every=0)


def _two_node_sim(count=3, seed=0):
    sim = Simulator(GlobalFifoScheduler())
    sender = ReliableNode(Burst("a", "b", count), base_timeout=4, max_retries=4)
    receiver = ReliableNode(Sink("b"), base_timeout=4, max_retries=4)
    sim.add_node(sender)
    sim.add_node(receiver)
    sim.schedule_wake("a")
    sim.schedule_wake("b")
    return sim, sender, receiver


class TestEpochFencing:
    def test_begin_epoch_must_increase(self):
        _sim, sender, _receiver = _two_node_sim()
        sender.begin_epoch(3)
        assert sender.epoch == 3
        with pytest.raises(SimulationError):
            sender.begin_epoch(3)
        with pytest.raises(SimulationError):
            sender.begin_epoch(1)

    def test_begin_epoch_abandons_own_outstanding(self):
        sim, sender, receiver = _two_node_sim(count=0)
        sim.run()
        sender.reliable_send("b", Ping(1))  # in flight, unacked
        assert sender.outstanding_total == 1
        sender.begin_epoch(1)
        # The new incarnation does not resurrect its own conversations --
        # rejoin re-issues what still matters.
        assert sender.outstanding_total == 0
        assert [msg.tag for _dst, msg in sender.undeliverable] == [1]

    def test_fence_teaches_and_sender_requeues(self):
        sim, sender, receiver = _two_node_sim(count=3)
        sim.run()
        assert [tag for _s, tag in receiver.inner.received] == [0, 1, 2]
        # The receiver restarts; the sender still believes epoch 0.
        receiver.begin_epoch(1)
        sender.reliable_send("b", Ping(99))
        sim.run()
        # The stale-belief frame was fenced, the fence taught the sender the
        # new epoch, and the transport re-queued the payload to the new
        # incarnation: exactly-once delivery survives the restart.
        assert [tag for _s, tag in receiver.inner.received] == [0, 1, 2, 99]
        assert receiver.epoch_fenced >= 1
        assert sender.epoch_resets == 1
        assert sender._peer_epochs["b"] == 1
        assert sender.outstanding_total == 0

    def test_transport_totals_reports_fences(self):
        from repro.faults import transport_totals

        sim, sender, receiver = _two_node_sim(count=1)
        sim.run()
        receiver.begin_epoch(1)
        sender.reliable_send("b", Ping(7))
        sim.run()
        totals = transport_totals({"a": sender, "b": receiver})
        assert totals["epoch_fenced"] == sender.epoch_fenced + receiver.epoch_fenced
        assert totals["epoch_fenced"] >= 1


class TestRecoveryManagerWiring:
    def test_spec_for_unknown_node_is_rejected(self):
        graph = build_family("sparse-random", 8, 0)
        plan = FaultPlan(recoveries=(RecoverySpec("ghost", 8, 32),))
        injector = FaultInjector(plan, seed=0)
        sim, _nodes = build_simulation(graph, "generic", seed=0, faults=injector, reliable=True)
        with pytest.raises(KeyError):
            attach_recovery(sim, injector)

    def test_recovery_requires_reliable_transport(self):
        plan = FaultPlan(recoveries=(RecoverySpec(0, 8, 32),))
        with pytest.raises(ValueError):
            run_chaos_trial(plan, "generic", n=8, seed=0, reliable=False)

    def test_fault_free_plan_attaches_nothing(self):
        graph = build_family("sparse-random", 8, 0)
        injector = FaultInjector(FaultPlan(), seed=0)
        sim, _nodes = build_simulation(graph, "generic", seed=0, faults=injector, reliable=True)
        assert attach_recovery(sim, injector) is None

    def test_empty_manager_is_rejected(self):
        with pytest.raises(ValueError):
            RecoveryManager(())


class TestEndToEndRecovery:
    def test_amnesia_restart_reconverges(self):
        # Two low-degree victims crash at step n and restart with amnesia at
        # 4n; the run must quiesce with every survivor *and both recovered
        # nodes* agreeing on one verified leader.
        trial = run_chaos_trial("recover-2", "generic", n=16, seed=0)
        assert trial.outcome == OUTCOME_RECOVERED
        assert trial.safety_ok
        assert trial.properties_ok
        assert trial.n_recovered == 2
        assert trial.survival.n_survivors == 16  # recovered nodes count
        assert trial.reconverge_steps > 0
        assert trial.epoch_fences >= 1

    def test_recovered_nodes_are_reintegrated(self):
        graph = build_family("sparse-random", 16, 0)
        from repro.faults.scenarios import build_scenario

        plan = build_scenario("recover-2", graph, 0)
        injector = FaultInjector(plan, seed=0, keep_log=False)
        sim, nodes = build_simulation(
            graph, "generic", seed=0, faults=injector, reliable=True
        )
        manager = attach_recovery(sim, injector)
        sim.run(max_steps=8 * 16 * 64)
        for spec in plan.recoveries:
            wrapper = sim.nodes[spec.node]
            inner = nodes[spec.node]
            assert wrapper.epoch == 1
            assert manager.epochs[spec.node] == 1
            assert inner.awake
            assert inner._restarted
            assert inner.status in ("inactive", "passive", "explore", "wait",
                                    "conqueror", "terminated")
        assert manager.crashes == 2
        assert manager.n_recovered == 2
        assert sorted(manager.recovered_at) == sorted(s.node for s in plan.recoveries)

    def test_checkpoint_restart_reconverges(self):
        trial = run_chaos_trial("recover-ckpt", "generic", n=16, seed=0)
        assert trial.outcome == OUTCOME_RECOVERED
        assert trial.safety_ok

    def test_obs_emits_lifecycle_and_fence_events(self):
        recorder = Recorder()
        trial = run_chaos_trial(
            "recover-2", "generic", n=16, seed=0, recorder=recorder
        )
        assert trial.outcome == OUTCOME_RECOVERED
        assert recorder.counts["crash"] == 2
        assert recorder.counts["recover"] == 2
        assert recorder.counts["epoch-fence"] == trial.epoch_fences
        fences = [e for e in recorder.events if e.kind == "epoch-fence"]
        assert all(e.peer is not None and e.value for e in fences)

    def test_recovery_scenarios_registered(self):
        assert set(RECOVERY_SCENARIOS) <= set(FAULT_SCENARIOS)
        assert OUTCOME_RECOVERED in OUTCOMES


class TestPinnedAcceptance:
    """The ISSUE's pinned scenario: 20% loss + two mid-run amnesia crashes."""

    N = 20
    SEED = 0

    def _plan(self):
        graph = build_family("sparse-random", self.N, self.SEED)
        victims = pick_crash_victims(graph, 2, self.SEED)
        return FaultPlan(
            loss=0.20,
            recoveries=tuple(
                RecoverySpec(v, crash_step=self.N, recover_step=4 * self.N, amnesia=True)
                for v in victims
            ),
        )

    def test_reconverges_to_single_verified_leader(self):
        trial = run_chaos_trial(self._plan(), "generic", n=self.N, seed=self.SEED)
        assert trial.outcome == OUTCOME_RECOVERED
        assert trial.safety_ok  # zero stepwise violations
        assert trial.properties_ok  # survivors + recovered all verified
        assert trial.survival.n_components == 1  # single leader
        assert trial.survival.n_orphans == 0
        assert trial.n_recovered == 2
        assert trial.reconverge_steps > 0

    def test_identical_plan_and_seed_replays_identically(self):
        plan = self._plan()
        first = run_chaos_trial(plan, "generic", n=self.N, seed=self.SEED)
        second = run_chaos_trial(plan, "generic", n=self.N, seed=self.SEED)
        assert first.epoch_fences == second.epoch_fences
        assert first.steps == second.steps
        assert first.total_messages == second.total_messages
        assert first.retransmissions == second.retransmissions
