"""Tests for ``python -m repro campaign ...``.

The in-process tests drive :func:`repro.cli.main` directly; the
acceptance-grade kill-and-resume test runs a real subprocess, SIGKILLs it
mid-campaign, resumes, and checks the zero-recompute audit plus bitwise
report identity against an uninterrupted control campaign.
"""

import json
import os
import pathlib
import signal
import subprocess
import sys
import time

import pytest

from repro.campaign.cli import parse_grid
from repro.cli import main

TOY = "tests.test_parallel:exp_toy"
SLEEPY = "tests.test_parallel:exp_sleepy"

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def subprocess_env():
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


def run_cli(*argv, **kwargs):
    return subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        cwd=REPO_ROOT,
        env=subprocess_env(),
        capture_output=True,
        text=True,
        timeout=kwargs.pop("timeout", 120),
        **kwargs,
    )


class TestGridParsing:
    def test_cross_product(self):
        combos = parse_grid(["n=16,24", "family=ring,tree"])
        assert len(combos) == 4
        assert {"n": 16, "family": "ring"} in combos
        assert {"n": 24, "family": "tree"} in combos

    def test_bracketed_values_stay_whole(self):
        combos = parse_grid(["ns=[16,32],[64,128]"])
        assert combos == [{"ns": [16, 32]}, {"ns": [64, 128]}]

    def test_strings_pass_through(self):
        assert parse_grid(["family=sparse-random"]) == [
            {"family": "sparse-random"}
        ]

    def test_no_axes_is_single_empty_combo(self):
        assert parse_grid([]) == [{}]

    def test_malformed_axis_rejected(self):
        with pytest.raises(ValueError, match="KEY=V1"):
            parse_grid(["scale"])
        with pytest.raises(ValueError, match="no values"):
            parse_grid(["scale="])


class TestCampaignCommands:
    def test_init_run_status_report_roundtrip(self, tmp_path, capsys):
        db = str(tmp_path / "c.db")
        assert main(
            [
                "campaign", "init", "--db", db, "--exp", TOY,
                "--seeds", "0:4", "--grid", "scale=2,3",
            ]
        ) == 0
        assert "8 cells" in capsys.readouterr().out

        assert main(["campaign", "run", "--db", db, "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "computed 8 cell(s) (8 stored, 0 redundant" in out

        assert main(
            [
                "campaign", "status", "--db", db,
                "--assert-complete", "--assert-no-recompute",
            ]
        ) == 0
        assert "done=8" in capsys.readouterr().out

        bench = tmp_path / "bench.json"
        assert main(
            ["campaign", "report", "--db", db, "--bench-out", str(bench)]
        ) == 0
        out = capsys.readouterr().out
        assert "folded 8 new cell(s)" in out
        payload = json.loads(bench.read_text())
        assert {group["kwargs"]["scale"] for group in payload} == {2, 3}
        assert all(group["cells"] == 4 for group in payload)

    def test_status_json(self, tmp_path, capsys):
        db = str(tmp_path / "c.db")
        main(["campaign", "init", "--db", db, "--exp", TOY, "--seeds", "0:2"])
        capsys.readouterr()
        assert main(["campaign", "status", "--db", db, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["cells"] == 2
        assert payload["pending"] == 2
        assert payload["redundant"] == 0

    def test_run_resume_is_idempotent(self, tmp_path, capsys):
        db = str(tmp_path / "c.db")
        main(["campaign", "init", "--db", db, "--exp", TOY, "--seeds", "0:3"])
        assert main(["campaign", "run", "--db", db, "--quiet"]) == 0
        capsys.readouterr()
        assert main(["campaign", "resume", "--db", db, "--quiet"]) == 0
        assert "computed 0 cell(s)" in capsys.readouterr().out

    def test_max_cells_then_resume(self, tmp_path, capsys):
        db = str(tmp_path / "c.db")
        main(["campaign", "init", "--db", db, "--exp", TOY, "--seeds", "0:6"])
        assert main(
            ["campaign", "run", "--db", db, "--max-cells", "2", "--quiet"]
        ) == 0
        out = capsys.readouterr().out
        assert "computed 2 cell(s)" in out
        assert main(["campaign", "resume", "--db", db, "--quiet"]) == 0
        assert main(
            [
                "campaign", "status", "--db", db,
                "--assert-complete", "--assert-no-recompute",
            ]
        ) == 0

    def test_failed_cells_reported_with_nonzero_exit(self, tmp_path, capsys):
        flaky = "tests.test_parallel:exp_flaky"
        db = str(tmp_path / "c.db")
        main(
            [
                "campaign", "init", "--db", db, "--exp", flaky,
                "--seeds", "0:3", "--backoff", "0",
            ]
        )
        capsys.readouterr()
        assert main(["campaign", "run", "--db", db, "--quiet"]) == 1
        captured = capsys.readouterr()
        assert "failed=1" in captured.out
        assert "failed permanently" in captured.err
        assert "boom" in captured.err

    def test_assert_flags_fail_on_incomplete(self, tmp_path, capsys):
        db = str(tmp_path / "c.db")
        main(["campaign", "init", "--db", db, "--exp", TOY, "--seeds", "0:2"])
        capsys.readouterr()
        assert main(["campaign", "status", "--db", db, "--assert-complete"]) == 1
        assert "assert-complete failed" in capsys.readouterr().err

    def test_missing_db_is_a_clean_error(self, tmp_path, capsys):
        assert main(
            ["campaign", "run", "--db", str(tmp_path / "nope.db"), "--quiet"]
        ) == 2
        assert "campaign init" in capsys.readouterr().err

    def test_code_drift_refused_unless_allowed(self, tmp_path, capsys, monkeypatch):
        db = str(tmp_path / "c.db")
        main(["campaign", "init", "--db", db, "--exp", TOY, "--seeds", "0:2"])
        capsys.readouterr()
        monkeypatch.setattr(
            "repro.campaign.store.protocol_code_digest", lambda: "deadbeef"
        )
        assert main(["campaign", "run", "--db", db, "--quiet"]) == 2
        assert "source changed" in capsys.readouterr().err
        assert main(
            ["campaign", "run", "--db", db, "--quiet", "--allow-code-drift"]
        ) == 0


class TestKillAndResume:
    """The acceptance scenario: SIGKILL a campaign worker mid-flight,
    resume, and demand zero recomputed done cells plus a report bitwise
    identical to an uninterrupted control campaign."""

    GRID = ["--seeds", "0:10", "--grid", "duration=0.25", "--lease", "1"]

    def init(self, db):
        result = run_cli(
            "campaign", "init", "--db", db, "--exp", SLEEPY, *self.GRID
        )
        assert result.returncode == 0, result.stderr

    def test_sigkill_then_resume_recomputes_nothing(self, tmp_path):
        db = str(tmp_path / "killed.db")
        self.init(db)
        worker = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "campaign", "run",
                "--db", db, "--workers", "2", "--quiet",
            ],
            cwd=REPO_ROOT,
            env=subprocess_env(),
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        # Let it get a few cells done (10 cells x 0.25s / 2 workers).
        time.sleep(1.6)
        worker.send_signal(signal.SIGKILL)
        worker.wait(timeout=30)

        status = run_cli("campaign", "status", "--db", db, "--json")
        before = json.loads(status.stdout)
        assert 0 < before["done"] < 10, (
            f"kill landed outside the campaign window: {before}"
        )

        resumed = run_cli(
            "campaign", "resume", "--db", db, "--workers", "2", "--quiet",
            timeout=300,
        )
        assert resumed.returncode == 0, resumed.stderr
        audit = run_cli(
            "campaign", "status", "--db", db,
            "--assert-complete", "--assert-no-recompute",
        )
        assert audit.returncode == 0, audit.stdout + audit.stderr

        after = json.loads(
            run_cli("campaign", "status", "--db", db, "--json").stdout
        )
        assert after["done"] == 10
        assert after["redundant"] == 0
        # computed == done + any transient retries; with none expected here
        # the resumed campaign did exactly the missing work.
        assert after["computed"] == 10

        # Bitwise-identical report vs an uninterrupted control campaign.
        control_db = str(tmp_path / "control.db")
        self.init(control_db)
        control = run_cli(
            "campaign", "run", "--db", control_db, "--workers", "2", "--quiet",
            timeout=300,
        )
        assert control.returncode == 0, control.stderr
        killed_bench = tmp_path / "killed.json"
        control_bench = tmp_path / "control.json"
        run_cli("campaign", "report", "--db", db, "--bench-out", str(killed_bench))
        run_cli(
            "campaign", "report", "--db", control_db,
            "--bench-out", str(control_bench),
        )
        assert killed_bench.read_bytes() == control_bench.read_bytes()
