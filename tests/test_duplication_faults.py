"""ABL-4 / finding F7: exactly-once delivery IS load-bearing.

The model (Section 1.2) assumes reliable channels.  Injecting message
*duplication* breaks the protocol -- the ``previous``-queue release
matching and the one-shot merge handshake rely on one-reply-per-request --
but it breaks **loudly**: every observed failure is a ``ProtocolError``
(an impossible message/state combination detected at the receiving node),
never a silent wrong answer.  Contrast with finding F6: channel *order*
is not load-bearing, channel *multiplicity* is.
"""

import pytest

# These tests deliberately drive the deprecated duplicate_probability shim
# (its own deprecation contract is pinned in test_obs_regressions).
pytestmark = pytest.mark.filterwarnings(
    "ignore:Simulator.duplicate_probability.*:DeprecationWarning"
)

from repro.core.node import DiscoveryNode, ProtocolError
from repro.core.result import collect_result
from repro.core.runner import default_step_budget, id_bits_for
from repro.graphs.generators import random_weakly_connected
from repro.sim.network import Simulator
from repro.sim.scheduler import RandomScheduler
from repro.verification.invariants import InvariantViolation, verify_discovery


def run_with_duplication(graph, seed, probability):
    sim = Simulator(
        RandomScheduler(seed),
        id_bits=id_bits_for(graph.n),
        duplicate_probability=probability,
        channel_seed=seed,
    )
    nodes = {}
    for node_id in graph.nodes:
        node = DiscoveryNode(node_id, graph.successors(node_id), variant="generic")
        nodes[node_id] = node
        sim.add_node(node)
    for node_id in graph.nodes:
        sim.schedule_wake(node_id)
    sim.run(default_step_budget(graph))
    return collect_result(graph, nodes, sim, "generic"), nodes


class TestDuplicationBreaksLoudly:
    def test_duplication_always_detected_never_silent(self):
        """Across many seeds at 10% duplication: every run either completes
        correctly or raises ProtocolError -- no run quiesces with wrong
        answers (fail-safe behaviour)."""
        graph = random_weakly_connected(25, 60, seed=7)
        outcomes = {"ok": 0, "detected": 0, "silent_corruption": 0}
        for seed in range(15):
            try:
                result, _ = run_with_duplication(graph, seed, probability=0.1)
                verify_discovery(result, graph)
                outcomes["ok"] += 1
            except ProtocolError:
                outcomes["detected"] += 1
            except (InvariantViolation, RuntimeError):
                outcomes["silent_corruption"] += 1
        assert outcomes["silent_corruption"] == 0, outcomes
        assert outcomes["detected"] > 0, outcomes  # the fault genuinely bites

    def test_zero_probability_is_the_normal_path(self):
        graph = random_weakly_connected(20, 40, seed=3)
        result, _ = run_with_duplication(graph, seed=1, probability=0.0)
        verify_discovery(result, graph)

    def test_probability_validation(self):
        with pytest.raises(ValueError, match="duplicate_probability"):
            Simulator(duplicate_probability=1.5)

    def test_duplicates_not_double_charged(self):
        """Stats count sends, not deliveries: a duplicated message is
        charged once (the sender sent once; the network misbehaved)."""
        from repro.sim.network import SimNode
        from repro.sim.trace import bits_for_ids

        class Msg:
            msg_type = "m"

            def bit_size(self, b):
                return bits_for_ids(0, b)

        class Sink(SimNode):
            def __init__(self, node_id):
                super().__init__(node_id)
                self.count = 0

            def on_message(self, sender, message):
                self.count += 1

        sim = Simulator(duplicate_probability=1.0, channel_seed=0)
        a, b = Sink("a"), Sink("b")
        sim.add_node(a)
        sim.add_node(b)
        a.awake = b.awake = True
        a.send("b", Msg())
        sim.run()
        assert b.count == 2  # delivered twice ...
        assert sim.stats.total_messages == 1  # ... charged once
