"""Property-style chaos: safety must survive *any* seeded fault plan.

The contract under test is the PR's central robustness claim: whatever a
:class:`FaultPlan` does -- lose, duplicate, crash, partition, delay, in any
combination -- the discovery protocols may stall or give partial answers
(liveness degrades), but the stepwise invariants I1-I4 and the at-rest
safety checks hold on every seed.  ``violated`` is the one outcome that
must never appear.
"""

import random

import pytest

from repro.faults import (
    CrashSpec,
    DelayBurst,
    FaultPlan,
    PartitionSpec,
    run_chaos_trial,
)
from repro.verification.degradation import OUTCOME_VIOLATED

N = 14  # graph size the plans are generated against (sparse-random family)


def arbitrary_plan(seed: int) -> FaultPlan:
    """A random-but-replayable fault plan over the n=N node id space."""
    rng = random.Random(seed)
    node_ids = list(range(N))
    crashes = ()
    if rng.random() < 0.5:
        victims = rng.sample(node_ids, k=rng.randint(1, 2))
        crashes = tuple(
            CrashSpec(node, at_step=rng.randint(0, 200)) for node in victims
        )
    partitions = ()
    if rng.random() < 0.5:
        island = frozenset(rng.sample(node_ids, k=rng.randint(1, N // 2)))
        start = rng.randint(0, 50)
        partitions = (
            PartitionSpec(island, start=start, heal=start + rng.randint(1, 150)),
        )
    delays = ()
    if rng.random() < 0.5:
        delays = (
            DelayBurst(
                start=rng.randint(0, 50),
                duration=rng.randint(1, 100),
                fraction=rng.choice([0.5, 1.0]),
            ),
        )
    return FaultPlan(
        loss=rng.choice([0.0, 0.05, 0.15, 0.30]),
        duplicate=rng.choice([0.0, 0.10, 0.30]),
        crashes=crashes,
        partitions=partitions,
        delays=delays,
    )


class TestSafetyUnderArbitraryPlans:
    @pytest.mark.parametrize("seed", range(12))
    def test_raw_generic_never_violates_safety(self, seed):
        trial = run_chaos_trial(
            arbitrary_plan(seed), "generic", n=N, seed=seed,
            reliable=False, budget_factor=2,
        )
        assert trial.outcome != OUTCOME_VIOLATED, trial.detail
        assert trial.safety_ok, trial.detail

    @pytest.mark.parametrize("seed", range(8))
    def test_reliable_generic_never_violates_safety(self, seed):
        trial = run_chaos_trial(
            arbitrary_plan(seed), "generic", n=N, seed=seed,
            reliable=True, budget_factor=4,
        )
        assert trial.outcome != OUTCOME_VIOLATED, trial.detail
        assert trial.safety_ok, trial.detail

    @pytest.mark.parametrize("variant", ["bounded", "adhoc"])
    @pytest.mark.parametrize("seed", range(4))
    def test_other_variants_never_violate_safety(self, variant, seed):
        trial = run_chaos_trial(
            arbitrary_plan(seed), variant, n=N, seed=seed,
            reliable=False, budget_factor=2,
        )
        assert trial.outcome != OUTCOME_VIOLATED, trial.detail
        assert trial.safety_ok, trial.detail

    def test_liveness_does_degrade_somewhere(self):
        # Sanity check on the generator: the plans are actually hostile --
        # at least one raw run fails to come out clean.
        outcomes = {
            run_chaos_trial(
                arbitrary_plan(seed), "generic", n=N, seed=seed,
                reliable=False, budget_factor=2,
            ).outcome
            for seed in range(12)
        }
        assert outcomes - {"ok"}, "every arbitrary plan ran clean; generator too tame"
