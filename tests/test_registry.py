"""Tests for experiment record persistence and drift detection."""

import pytest

from repro.analysis.registry import (
    ExperimentRecord,
    compare_records,
    load_record,
    save_record,
)


def make_record(rows=None):
    return ExperimentRecord(
        name="EXP-X",
        headers=["n", "messages", "ok"],
        rows=rows if rows is not None else [[10, 100, True], [20, 210, True]],
    )


class TestPersistence:
    def test_roundtrip(self, tmp_path):
        path = save_record(tmp_path, "EXP-X", ["a", "b"], [[1, 2.5], ["x", True]])
        assert path.exists()
        record = load_record(tmp_path, "EXP-X")
        assert record.headers == ["a", "b"]
        assert record.rows == [[1, 2.5], ["x", True]]
        assert "saved" in record.metadata

    def test_malformed_rejected(self):
        with pytest.raises(ValueError, match="missing fields"):
            ExperimentRecord.from_json('{"name": "x"}')


class TestCompare:
    def test_identical_records_have_no_drift(self):
        assert compare_records(make_record(), make_record()) == []

    def test_numeric_drift_within_tolerance_ignored(self):
        fresh = make_record([[10, 110, True], [20, 220, True]])
        assert compare_records(make_record(), fresh, rel_tolerance=0.25) == []

    def test_numeric_drift_beyond_tolerance_reported(self):
        fresh = make_record([[10, 400, True], [20, 210, True]])
        drifts = compare_records(make_record(), fresh, rel_tolerance=0.25)
        assert len(drifts) == 1
        assert "messages" in drifts[0]

    def test_boolean_flip_always_reported(self):
        fresh = make_record([[10, 100, False], [20, 210, True]])
        drifts = compare_records(make_record(), fresh)
        assert len(drifts) == 1
        assert "False" in drifts[0]

    def test_structural_changes_reported(self):
        other = ExperimentRecord("EXP-X", ["different"], [[1]])
        assert "headers changed" in compare_records(make_record(), other)[0]
        shorter = make_record([[10, 100, True]])
        assert "row count" in compare_records(make_record(), shorter)[0]

    def test_string_cell_change_reported(self):
        golden = ExperimentRecord("E", ["k"], [["alpha"]])
        fresh = ExperimentRecord("E", ["k"], [["beta"]])
        assert len(compare_records(golden, fresh)) == 1

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError):
            compare_records(make_record(), make_record(), rel_tolerance=-1)


class TestCompareEdgeCases:
    """The drift detector guards parallel-vs-serial equivalence, so its
    edge behaviour (mixed int/float cells, structural short-circuits,
    exact tolerance boundaries) is pinned here."""

    def test_int_vs_float_equal_values_no_drift(self):
        golden = make_record([[10, 100, True], [20, 210, True]])
        fresh = make_record([[10.0, 100.0, True], [20.0, 210.0, True]])
        assert compare_records(golden, fresh, rel_tolerance=0) == []

    def test_int_vs_float_differing_values_compared_numerically(self):
        golden = make_record([[10, 100, True], [20, 210, True]])
        fresh = make_record([[10, 100.4, True], [20, 210, True]])
        assert compare_records(golden, fresh, rel_tolerance=0.25) == []
        drifts = compare_records(golden, fresh, rel_tolerance=0)
        assert len(drifts) == 1 and "100" in drifts[0]

    def test_zero_tolerance_pins_exact_values(self):
        golden = make_record([[10, 100, True], [20, 210, True]])
        fresh = make_record([[10, 100.0001, True], [20, 210, True]])
        assert len(compare_records(golden, fresh, rel_tolerance=0)) == 1

    def test_drift_exactly_at_tolerance_not_reported(self):
        # |100 - 125| / 125 = 0.2: the comparison is strict (> tolerance).
        golden = make_record([[10, 100, True], [20, 210, True]])
        fresh = make_record([[10, 125, True], [20, 210, True]])
        assert compare_records(golden, fresh, rel_tolerance=0.2) == []
        assert len(compare_records(golden, fresh, rel_tolerance=0.19)) == 1

    def test_row_count_mismatch_short_circuits_cell_diffs(self):
        golden = make_record()
        fresh = make_record([[10, 99999, False]])
        drifts = compare_records(golden, fresh)
        assert drifts == ["row count changed: 2 -> 1"]

    def test_header_mismatch_short_circuits_row_checks(self):
        fresh = ExperimentRecord("EXP-X", ["n", "msgs", "ok"], [[1, 2, True]])
        drifts = compare_records(make_record(), fresh)
        assert len(drifts) == 1 and "headers changed" in drifts[0]

    def test_ragged_row_reported_once_then_skipped(self):
        golden = make_record()
        fresh = ExperimentRecord(
            "EXP-X", ["n", "messages", "ok"], [[10, 100], [20, 210, True]]
        )
        drifts = compare_records(golden, fresh)
        assert drifts == ["row 0: cell count changed"]

    def test_numeric_vs_string_cell_is_structural(self):
        golden = make_record([[10, 100, True], [20, 210, True]])
        fresh = make_record([[10, "100 [90, 110]", True], [20, 210, True]])
        drifts = compare_records(golden, fresh, rel_tolerance=1e9)
        assert len(drifts) == 1

    def test_bool_vs_int_compared_as_identity_not_number(self):
        # True == 1 numerically; the drift detector must still flag it.
        golden = ExperimentRecord("E", ["ok"], [[True]])
        fresh = ExperimentRecord("E", ["ok"], [[1]])
        assert len(compare_records(golden, fresh)) == 1

    def test_huge_tolerance_still_reports_sign_flips_within_it(self):
        golden = ExperimentRecord("E", ["v"], [[-100]])
        fresh = ExperimentRecord("E", ["v"], [[100]])
        assert len(compare_records(golden, fresh, rel_tolerance=1.9)) == 1
        assert compare_records(golden, fresh, rel_tolerance=2.1) == []


class TestBenchmarkIntegration:
    def test_results_dir_contains_json_twins(self):
        """After a bench run, every .txt table has a .json record."""
        import pathlib

        results = pathlib.Path("benchmarks/results")
        if not results.exists():
            pytest.skip("benchmarks not yet run")
        txts = {p.stem for p in results.glob("*.txt")}
        jsons = {p.stem for p in results.glob("*.json")}
        # JSON twins appear as benches rerun; at least the overlap loads.
        for name in txts & jsons:
            record = load_record(results, name)
            assert record.rows
