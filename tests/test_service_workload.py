"""Tests for the open-loop workload generators (``repro.service.workload``)."""

import pytest

from repro.core.dynamic import ChurnScenario
from repro.graphs.generators import random_weakly_connected
from repro.service.workload import (
    RATE_UNIT,
    EventMix,
    build_workload,
    bursty_workload,
    constant_workload,
    poisson_workload,
)


@pytest.fixture
def graph():
    return random_weakly_connected(32, 48, seed=0)


class TestShapes:
    def test_poisson_event_count_near_rate(self, graph):
        workload = poisson_workload(graph, rate=20.0, duration=5000, seed=3)
        expected = 20.0 * 5000 / RATE_UNIT
        assert 0.5 * expected <= len(workload.events) <= 2.0 * expected
        assert all(0 <= s.at < 5000 for s in workload.events)
        assert [s.at for s in workload.events] == sorted(
            s.at for s in workload.events
        )

    def test_constant_gaps_are_exact(self, graph):
        workload = constant_workload(graph, rate=10.0, duration=1000, seed=0)
        assert [s.at for s in workload.events] == [
            100 * k for k in range(1, 10)
        ]

    def test_bursty_records_windows(self, graph):
        workload = bursty_workload(
            graph, rate=5.0, duration=2000, seed=1, burst_every=500, burst_len=50
        )
        assert workload.bursts == [(500, 550), (1000, 1050), (1500, 1550)]
        assert [s.at for s in workload.events] == sorted(
            s.at for s in workload.events
        )
        # Burst windows are churn-only by default and dominated by the
        # multiplied rate: every burst window holds several arrivals.
        for start, end in workload.bursts:
            inside = [s for s in workload.events if start <= s.at < end]
            assert len(inside) >= 2

    def test_mix_weights_respected(self, graph):
        probe_only = poisson_workload(
            graph,
            rate=20.0,
            duration=2000,
            seed=2,
            mix=EventMix(join=0.0, link=0.0, probe=1.0),
        )
        assert set(probe_only.counts_by_kind()) == {"probe"}

    def test_describe_mentions_kind_and_bursts(self, graph):
        workload = bursty_workload(graph, rate=5.0, duration=1200, seed=0)
        text = workload.describe()
        assert "bursty" in text and "bursts" in text


class TestValidity:
    """Every generated schedule is a valid churn script by construction."""

    @pytest.mark.parametrize("kind", ["poisson", "constant", "bursty"])
    def test_events_form_a_valid_scenario(self, graph, kind):
        workload = build_workload(kind, graph, rate=15.0, duration=3000, seed=4)
        # ChurnScenario validation rejects references to unknown or
        # later-joining nodes; construction succeeding is the assertion.
        ChurnScenario(graph, [s.event for s in workload.events])


class TestDeterminism:
    @pytest.mark.parametrize("kind", ["poisson", "constant", "bursty"])
    def test_same_seed_same_schedule(self, graph, kind):
        a = build_workload(kind, graph, rate=12.0, duration=2500, seed=9)
        b = build_workload(kind, graph, rate=12.0, duration=2500, seed=9)
        assert a.events == b.events
        assert a.bursts == b.bursts

    def test_different_seed_different_schedule(self, graph):
        a = poisson_workload(graph, rate=12.0, duration=2500, seed=1)
        b = poisson_workload(graph, rate=12.0, duration=2500, seed=2)
        assert a.events != b.events


class TestArguments:
    def test_rejects_bad_rate_and_duration(self, graph):
        with pytest.raises(ValueError, match="rate"):
            poisson_workload(graph, rate=0.0, duration=100)
        with pytest.raises(ValueError, match="duration"):
            constant_workload(graph, rate=1.0, duration=0)

    def test_rejects_bad_mix(self, graph):
        with pytest.raises(ValueError, match="negative"):
            poisson_workload(
                graph, rate=1.0, duration=100, mix=EventMix(join=-1.0)
            )
        with pytest.raises(ValueError, match="positive"):
            EventMix(join=0.0, link=0.0, probe=0.0).validate()

    def test_rejects_bad_burst_shape(self, graph):
        with pytest.raises(ValueError, match="burst_every"):
            bursty_workload(graph, rate=1.0, duration=100, burst_every=0)
        with pytest.raises(ValueError, match="burst_factor"):
            bursty_workload(graph, rate=1.0, duration=100, burst_factor=0.0)

    def test_unknown_kind(self, graph):
        with pytest.raises(ValueError, match="unknown workload kind"):
            build_workload("fractal", graph, rate=1.0, duration=100)
