"""Differential equivalence of the compiled fast path vs the object path.

The fast loop (:mod:`repro.sim.fastcore`) promises *bit-identical*
executions: same trace, same per-type message/bit accounting, same step
count, same verification outcome -- for every configuration it accepts,
across every stock scheduler.  These tests pin that promise, plus the
transparent-fallback contract: any configuration the fast loop cannot
serve (fault plans, recorders, profilers, adversaries, monkeypatched
seams) silently takes the object path and still produces identical
results under ``fast=True`` and ``fast=False``.
"""

import pytest

from repro.analysis.experiments import build_family
from repro.core.result import collect_result
from repro.core.runner import build_simulation, default_step_budget
from repro.faults import FaultInjector, FaultPlan
from repro.obs import Recorder
from repro.sim import fastcore
from repro.sim.events import DeliverToken
from repro.sim.network import Simulator, StepLimitExceeded
from repro.sim.scheduler import (
    Adversary,
    AdversarialScheduler,
    GlobalFifoScheduler,
    LifoScheduler,
    RandomScheduler,
)
from repro.verification.invariants import verify_discovery

SCHEDULERS = {
    "fifo": GlobalFifoScheduler,
    "lifo": LifoScheduler,
    "random": lambda: RandomScheduler(seed=7),
}


def _execute(variant, scheduler_factory, *, n=48, seed=3, fast=True, **kwargs):
    """One full run; returns everything an execution can be compared on."""
    graph = build_family("sparse-random", n, seed)
    sim, nodes = build_simulation(
        graph,
        variant,
        scheduler=scheduler_factory(),
        keep_trace=True,
        fast=fast,
        **kwargs,
    )
    sim.run(default_step_budget(graph))
    result = collect_result(graph, nodes, sim, variant)
    report = verify_discovery(result, graph)  # raises on violation
    return {
        "trace": [event.as_tuple() for event in sim.trace.events],
        "messages": dict(sim.stats.messages_by_type),
        "bits": dict(sim.stats.bits_by_type),
        "steps": sim.steps,
        "leaders": result.leaders,
        "verified": (report.n_leaders, report.checks),
    }


class TestDifferentialEquivalence:
    """fast=True and fast=False must be indistinguishable, bit for bit."""

    @pytest.mark.parametrize("variant", ["generic", "bounded", "adhoc"])
    @pytest.mark.parametrize("policy", sorted(SCHEDULERS))
    def test_identical_executions(self, variant, policy):
        factory = SCHEDULERS[policy]
        legacy = _execute(variant, factory, fast=False)
        fast = _execute(variant, factory, fast=True)
        assert fast == legacy

    @pytest.mark.parametrize("seed", range(4))
    def test_random_schedules_across_seeds(self, seed):
        """The random fast pop replays the legacy RNG draw sequence."""
        factory = lambda: RandomScheduler(seed=seed)  # noqa: E731
        legacy = _execute("generic", factory, n=64, seed=seed, fast=False)
        fast = _execute("generic", factory, n=64, seed=seed, fast=True)
        assert fast == legacy

    def test_reliable_transport_timers(self):
        """ReliableNode schedules (and cancels) timers: the fast loop must
        execute live TimerTokens and drop cancelled ones exactly like the
        legacy loop."""
        legacy = _execute(
            "generic", GlobalFifoScheduler, fast=False, reliable=True
        )
        fast = _execute(
            "generic", GlobalFifoScheduler, fast=True, reliable=True
        )
        assert fast == legacy

    @pytest.mark.parametrize("order", ["fast_then_legacy", "legacy_then_fast"])
    def test_interrupted_run_resumes_on_either_path(self, order):
        """A step-limited run leaves the scheduler in a legal object-path
        state (int tokens materialized back to DeliverTokens), stats
        folded; the execution can then *continue* on either path and
        still match an uninterrupted legacy run."""
        first_fast = order == "fast_then_legacy"
        reference = _execute("generic", GlobalFifoScheduler, fast=False)

        graph = build_family("sparse-random", 48, 3)
        sim, nodes = build_simulation(
            graph, "generic", scheduler=GlobalFifoScheduler(),
            keep_trace=True, fast=first_fast,
        )
        with pytest.raises(StepLimitExceeded):
            sim.run(max_steps=60)
        # Mid-run observables are already equivalent: pending tokens are
        # real objects, message stats include everything sent so far.
        assert all(
            not isinstance(token, int) for token in sim.scheduler.pending()
        )
        assert sim.steps == 60
        assert sim.in_flight() > 0

        sim.fast = not first_fast
        sim.run(default_step_budget(graph))
        result = collect_result(graph, nodes, sim, "generic")
        report = verify_discovery(result, graph)
        assert {
            "trace": [event.as_tuple() for event in sim.trace.events],
            "messages": dict(sim.stats.messages_by_type),
            "bits": dict(sim.stats.bits_by_type),
            "steps": sim.steps,
            "leaders": result.leaders,
            "verified": (report.n_leaders, report.checks),
        } == reference


class _BlockNothing(Adversary):
    def blocks(self, token, sim):
        return False

    def on_stall(self, sim):  # pragma: no cover - never stalls
        return True


class TestTransparentFallback:
    """Configurations the fast loop cannot serve fall back silently."""

    def _fresh_sim(self, **kwargs):
        graph = build_family("sparse-random", 32, 1)
        sim, nodes = build_simulation(graph, "generic", **kwargs)
        return graph, sim, nodes

    def test_plain_sim_is_eligible(self):
        _graph, sim, _nodes = self._fresh_sim()
        assert fastcore.eligible(sim)

    def test_fault_plan_disables_fast_path_and_matches_legacy(self):
        runs = {}
        for fast in (False, True):
            graph, sim, nodes = self._fresh_sim(
                faults=FaultInjector(FaultPlan(loss=0.2), seed=5),
                reliable=True,
                seed=9,
                fast=fast,
            )
            if fast:
                assert not fastcore.eligible(sim)
            sim.run(default_step_budget(graph))
            result = collect_result(graph, nodes, sim, "generic")
            verify_discovery(result, graph)
            runs[fast] = (
                sim.steps,
                dict(sim.stats.messages_by_type),
                result.leaders,
            )
        assert runs[True] == runs[False]

    def test_recorder_disables_fast_path_and_sees_every_event(self):
        runs = {}
        for fast in (False, True):
            recorder = Recorder()
            graph, sim, _nodes = self._fresh_sim(obs=recorder, fast=fast)
            if fast:
                assert not fastcore.eligible(sim)
            sim.run(default_step_budget(graph))
            runs[fast] = (sim.steps, len(recorder.events))
            assert len(recorder.events) > 0
        assert runs[True] == runs[False]

    def test_profiler_instrumentation_disables_fast_path(self):
        from repro.obs.profile import Profiler

        _graph, sim, _nodes = self._fresh_sim()
        assert fastcore.eligible(sim)
        profiler = Profiler()
        profiler.instrument(sim)
        assert not fastcore.eligible(sim)

    def test_monkeypatched_transmit_disables_fast_path(self):
        _graph, sim, _nodes = self._fresh_sim()
        seen = []
        original = sim.transmit

        def spy(src, dst, message):
            seen.append((src, dst))
            return original(src, dst, message)

        sim.transmit = spy
        assert not fastcore.eligible(sim)
        sim.run()
        assert seen  # the spy saw every send; the fast loop would hide them

    def test_adversarial_scheduler_disables_fast_path(self):
        _graph, sim, _nodes = self._fresh_sim(
            scheduler=AdversarialScheduler(_BlockNothing())
        )
        assert not fastcore.eligible(sim)
        sim.run()

    def test_scheduler_subclass_disables_fast_path(self):
        class RecordingFifo(GlobalFifoScheduler):
            def pop(self, sim):  # pragma: no cover - selection untouched
                return super().pop(sim)

        _graph, sim, _nodes = self._fresh_sim(scheduler=RecordingFifo())
        assert not fastcore.eligible(sim)

    def test_non_fifo_channels_disable_fast_path(self):
        _graph, sim, _nodes = self._fresh_sim(
            channel_discipline="random", channel_seed=2
        )
        assert not fastcore.eligible(sim)


class TestSchedulerSeam:
    """The documented-internal pool seam fastcore relies on."""

    def test_stock_pools_exist(self):
        assert hasattr(GlobalFifoScheduler(), "_queue")
        assert hasattr(LifoScheduler(), "_stack")
        scheduler = RandomScheduler(seed=0)
        assert hasattr(scheduler, "_pool")
        assert hasattr(scheduler, "_rng")

    def test_len_counts_interned_tokens(self):
        """Quiescence detection reads len(scheduler); int tokens pushed by
        the fast transmit must count exactly like object tokens."""
        scheduler = GlobalFifoScheduler()
        scheduler._queue.append(3)
        scheduler.push(DeliverToken("a", "b"))
        assert len(scheduler) == 2
        assert list(scheduler.pending()) == [3, DeliverToken("a", "b")]

    def test_pending_is_lazy(self):
        scheduler = GlobalFifoScheduler()
        scheduler.push(DeliverToken("a", "b"))
        view = scheduler.pending()
        assert iter(view) is view  # an iterator, not a fresh tuple
