"""Regression tests for the trace/accounting bugfix batch.

Each test class pins one fix and fails against the pre-fix behaviour:

1. trace fingerprints ignored message payloads (envelope-only tuples);
2. bit accounting charged header-only messages when ``id_bits = 0``;
3. the ``duplicate_probability`` shim mirrored fault policy onto the
   simulator silently instead of deprecating;
4. result-cache keys ignored protocol/simulator code changes;
5. ``StepLimitExceeded`` escaped the chaos harness's taxonomy as
   ``detected`` (it is the definition of ``stalled``).
"""

import warnings

import pytest

from repro.analysis.experiments import build_family
from repro.core.generic import run_generic
from repro.core.runner import build_simulation, id_bits_for
from repro.faults.harness import run_chaos_trial
from repro.faults.plan import FaultInjector, FaultPlan
from repro.graphs.knowledge_graph import KnowledgeGraph
from repro.parallel.cache import ResultCache
from repro.parallel.jobs import (
    CACHE_SCHEMA_VERSION,
    Job,
    _digest_of_roots,
    protocol_code_digest,
)
from repro.sim.network import Simulator, StepLimitExceeded
from repro.sim.trace import HEADER_BITS, TraceEvent, bits_for_ids, payload_digest


class TestFingerprintSeesPayloads:
    def test_as_tuple_distinguishes_payloads(self):
        from repro.core.messages import QueryReply

        envelope = dict(step=4, kind="deliver", src="a", dst="b", msg_type="query-reply")
        one = TraceEvent(**envelope, detail=QueryReply(frozenset({1}), False))
        other = TraceEvent(**envelope, detail=QueryReply(frozenset({2}), False))
        assert one.as_tuple() != other.as_tuple()

    def test_wakeups_have_no_digest(self):
        event = TraceEvent(1, "wake", None, "a", None)
        assert event.as_tuple()[-1] is None

    def test_digest_is_order_insensitive(self):
        from repro.core.messages import QueryReply

        assert payload_digest(
            QueryReply(frozenset({3, 1, 2}), True)
        ) == payload_digest(QueryReply(frozenset({2, 3, 1}), True))

    def test_simulator_records_delivered_payloads(self):
        graph = build_family("sparse-random", 12, 0)
        sim, _nodes = build_simulation(graph, "generic", seed=0, keep_trace=True)
        sim.run()
        delivers = [event for event in sim.trace if event.kind == "deliver"]
        assert delivers
        assert all(event.detail is not None for event in delivers)
        # ... and the digest actually lands in the fingerprint tuples.
        assert all(
            event.as_tuple()[-1] == payload_digest(event.detail)
            for event in delivers
        )


class TestBitAccountingAtTinyN:
    def test_zero_id_bits_is_clamped(self):
        # Pre-fix: id_bits=0 collapsed every message to its header charge.
        assert bits_for_ids(3, 0) == HEADER_BITS + 3
        assert bits_for_ids(0, 0, extra_ints=2) == HEADER_BITS + 2

    def test_id_bits_for_floors_at_one(self):
        assert id_bits_for(1) == 1
        assert id_bits_for(2) == 1
        assert id_bits_for(3) == 2

    def test_n1_system_runs_clean(self):
        result = run_generic(KnowledgeGraph([0]))
        assert result.stats.total_bits >= 0

    def test_n2_messages_charge_more_than_headers(self):
        result = run_generic(KnowledgeGraph([0, 1], [(0, 1)]))
        stats = result.stats
        assert stats.total_messages > 0
        # With the clamp, id-carrying traffic exceeds the pure header sum.
        assert stats.total_bits > HEADER_BITS * stats.total_messages


class TestDuplicateShimDeprecation:
    def test_shim_warns_and_keeps_no_attribute(self):
        with pytest.warns(DeprecationWarning, match="duplicate_probability"):
            sim = Simulator(duplicate_probability=0.5, channel_seed=0)
        # The policy lives on the fault layer only.
        assert not hasattr(sim, "duplicate_probability")
        assert sim.faults is not None

    def test_clean_construction_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            Simulator()

    @staticmethod
    def _run_workload(sim):
        from repro.sim.network import SimNode
        from repro.sim.trace import bits_for_ids as _bits

        class Msg:
            def __init__(self, tag):
                self.msg_type = tag

            def bit_size(self, id_bits):
                return _bits(1, id_bits)

        class Sink(SimNode):
            def __init__(self, node_id):
                super().__init__(node_id)
                self.received = []

            def on_message(self, sender, message):
                self.received.append(message.msg_type)

        a, b = Sink("a"), Sink("b")
        sim.add_node(a)
        sim.add_node(b)
        a.awake = b.awake = True
        for index in range(20):
            a.send("b", Msg(f"m{index % 3}"))
        sim.run()
        return b.received

    def test_shim_equivalent_to_explicit_plan(self):
        with pytest.warns(DeprecationWarning):
            shim_sim = Simulator(duplicate_probability=0.4, channel_seed=5)
        shim_received = self._run_workload(shim_sim)
        explicit_sim = Simulator(
            faults=FaultInjector(FaultPlan(duplicate=0.4), seed=5), channel_seed=5
        )
        explicit_received = self._run_workload(explicit_sim)
        assert shim_received == explicit_received
        assert shim_sim.stats.messages_by_type == explicit_sim.stats.messages_by_type
        assert shim_sim.stats.bits_by_type == explicit_sim.stats.bits_by_type


class TestCacheKeysTrackCode:
    def test_spec_carries_code_digest_and_schema(self):
        spec = Job.create("generic-scaling", {}, seed=0).spec()
        assert spec["version"] == CACHE_SCHEMA_VERSION >= 2
        assert spec["code"] == protocol_code_digest()

    def test_touching_source_changes_keys(self, tmp_path, monkeypatch):
        root = tmp_path / "core"
        root.mkdir()
        source = root / "algo.py"
        source.write_text("STATE = 1\n")
        from repro.parallel import jobs

        monkeypatch.setattr(jobs, "_default_code_roots", lambda: (root,))
        _digest_of_roots.cache_clear()
        job = Job.create("generic-scaling", {}, seed=0)
        key_before = job.key()
        source.write_text("STATE = 2\n")
        _digest_of_roots.cache_clear()
        assert job.key() != key_before

    def test_code_change_invalidates_cached_record(self, tmp_path, monkeypatch):
        from repro.analysis.registry import ExperimentRecord
        from repro.parallel import jobs

        root = tmp_path / "core"
        root.mkdir()
        source = root / "algo.py"
        source.write_text("STATE = 1\n")
        monkeypatch.setattr(jobs, "_default_code_roots", lambda: (root,))
        _digest_of_roots.cache_clear()
        cache = ResultCache(tmp_path / "cache")
        job = Job.create("generic-scaling", {}, seed=0)
        cache.put(job, ExperimentRecord("x", ["a"], [[1]], {"job": job.spec()}))
        assert cache.get(job) is not None
        source.write_text("STATE = 2\n")
        _digest_of_roots.cache_clear()
        assert cache.get(job) is None  # same params, new code => miss

    def test_digest_cleanup(self):
        # The monkeypatched tests above poisoned the memo; restore it so
        # later tests (and other files) see the real source digest.
        _digest_of_roots.cache_clear()


class TestStepLimitClassifiedAsStalled:
    def test_step_limit_is_stalled_not_detected(self, monkeypatch):
        original = Simulator.step
        budget = {"left": 40}

        def exhausted(self):
            if budget["left"] <= 0:
                raise StepLimitExceeded("no quiescence within 40 steps")
            budget["left"] -= 1
            return original(self)

        monkeypatch.setattr(Simulator, "step", exhausted)
        trial = run_chaos_trial("baseline", "generic", n=16, seed=0)
        assert trial.outcome == "stalled"
        assert "no quiescence" in trial.detail

    def test_step_limit_does_not_poison_a_sweep(self, monkeypatch):
        from repro.faults.harness import exp_chaos

        original = Simulator.step
        budget = {"left": 40}

        def exhausted(self):
            if budget["left"] <= 0:
                raise StepLimitExceeded("budget gone")
            budget["left"] -= 1
            return original(self)

        monkeypatch.setattr(Simulator, "step", exhausted)
        headers, rows = exp_chaos(("baseline",), ("generic",), n=16, seed=0)
        assert len(rows) == 1  # the shard completed despite the exhaustion
        quiesced = rows[0][headers.index("quiesced")]
        assert quiesced == 0
