"""Tests for protocol profiling -- including the log n phase bound."""

import pytest

from repro.analysis.protocol_stats import profile_execution
from repro.core.result import collect_result
from repro.core.runner import build_simulation
from repro.graphs.generators import (
    complete_binary_tree,
    directed_path,
    random_weakly_connected,
    star,
)


def run_and_profile(graph, variant="generic", seed=None):
    sim, nodes = build_simulation(graph, variant, seed=seed)
    sim.run(10**7)
    return profile_execution(nodes, sim.stats), nodes


class TestPhaseBound:
    """Lemma 5.8's companion: max phase <= log2 n (+1)."""

    @pytest.mark.parametrize(
        "maker",
        [
            lambda: star(64),
            lambda: directed_path(64),
            lambda: complete_binary_tree(6),
            lambda: random_weakly_connected(128, 400, seed=3),
        ],
        ids=["star", "path", "tree", "random"],
    )
    @pytest.mark.parametrize("variant", ["generic", "bounded", "adhoc"])
    def test_holds_everywhere(self, maker, variant):
        profile, _ = run_and_profile(maker(), variant)
        assert profile.phase_bound_holds, profile.summary()

    @pytest.mark.parametrize("seed", range(8))
    def test_holds_under_random_schedules(self, seed):
        graph = random_weakly_connected(100, 300, seed=1)
        profile, _ = run_and_profile(graph, seed=seed)
        assert profile.phase_bound_holds, profile.summary()

    def test_phases_actually_grow(self):
        """Phases are not stuck at 1: a real merge tree builds rank."""
        graph = random_weakly_connected(200, 600, seed=5)
        profile, _ = run_and_profile(graph)
        assert profile.max_phase >= 3


class TestHistograms:
    def test_phase_histogram_accounts_everyone(self):
        graph = random_weakly_connected(50, 100, seed=2)
        profile, _ = run_and_profile(graph)
        assert sum(profile.phase_histogram.values()) == graph.n

    def test_depth_histogram_matches_result_paths(self):
        graph = directed_path(30)
        sim, nodes = build_simulation(graph, "adhoc", seed=4)
        sim.run(10**7)
        profile = profile_execution(nodes, sim.stats)
        result = collect_result(graph, nodes, sim, "adhoc")
        assert profile.max_depth == result.max_path_length
        assert sum(profile.depth_histogram.values()) == graph.n

    def test_direct_pointers_for_generic(self):
        graph = random_weakly_connected(40, 120, seed=6)
        profile, _ = run_and_profile(graph, "generic")
        assert profile.max_depth <= 1


class TestShares:
    def test_shares_sum_to_one(self):
        graph = random_weakly_connected(40, 120, seed=7)
        profile, _ = run_and_profile(graph)
        assert sum(profile.message_share.values()) == pytest.approx(1.0)
        assert sum(profile.bit_share.values()) == pytest.approx(1.0)

    def test_search_release_dominate_messages(self):
        """The Union-Find traffic is the protocol's bulk."""
        graph = random_weakly_connected(100, 300, seed=8)
        profile, _ = run_and_profile(graph, "adhoc")
        assert profile.message_share["search"] + profile.message_share["release"] > 0.4

    def test_summary_format(self):
        graph = star(8)
        profile, _ = run_and_profile(graph)
        assert "max_phase=" in profile.summary()
