"""Unit tests for the probe machinery's transient-state paths."""

import pytest

from repro.core.messages import MergeAccept, MergeFail, Probe, ProbeReply
from repro.core.node import DiscoveryNode, ProtocolError
from repro.sim.network import Simulator


def adhoc_node(status, node_id=5, **fields):
    sim = Simulator()
    node = DiscoveryNode(node_id, frozenset(), variant="adhoc")
    sim.add_node(node)
    # Peers the node may address during the test.
    for other in (7, 9):
        sim.add_node(DiscoveryNode(other, frozenset(), variant="adhoc"))
    node.awake = True
    node.status = status
    for name, value in fields.items():
        setattr(node, name, value)
    return sim, node


class TestProbeFromTransientStates:
    def test_probe_parks_while_conquered_then_follows_new_leader(self):
        """A probe issued from a conquered node waits until the node
        resolves to inactive and then routes along the fresh pointer."""
        sim, node = adhoc_node("conquered")
        assert node.initiate_probe() is None
        # Parked: nothing sent yet, the probe sits in the deferred queue.
        assert sim.in_flight() == 0
        assert any(
            isinstance(msg, Probe) for _s, msg in node._deferred
        )
        # The merge completes: node becomes inactive with next = 7 ...
        node.on_message(7, MergeAccept())
        assert node.status == "inactive"
        assert node.next == 7
        # ... and the parked probe was forwarded to the new leader: the
        # channel to 7 now carries the info message plus the probe.
        assert sim.channel_backlog(5, 7) == 2

    def test_probe_parks_while_passive(self):
        sim, node = adhoc_node("conquered")
        node.initiate_probe()
        node.on_message(7, MergeFail())
        assert node.status == "passive"
        # Still parked -- passive nodes have no leader to route to yet.
        assert sim.in_flight() == 0
        assert any(isinstance(msg, Probe) for _s, msg in node._deferred)

    def test_inactive_routes_own_probe_without_queueing(self):
        sim, node = adhoc_node("inactive", next=7)
        node.initiate_probe()
        assert sim.channel_backlog(5, 7) == 1
        assert len(node.probe_previous) == 0  # own probes bypass the queue

    def test_foreign_probe_queues_and_forwards(self):
        sim, node = adhoc_node("inactive", next=7)
        node.on_message(9, Probe(initiator=9))
        assert len(node.probe_previous) == 1
        assert sim.channel_backlog(5, 7) == 1
        # A second foreign probe queues but does not forward (discipline).
        node.on_message(9, Probe(initiator=99))
        assert len(node.probe_previous) == 2
        assert sim.channel_backlog(5, 7) == 1

    def test_probe_reply_pops_queue_compresses_and_releases_next(self):
        sim, node = adhoc_node("inactive", next=7)
        node.on_message(9, Probe(initiator=9))
        node.on_message(9, Probe(initiator=99))
        reply = ProbeReply(leader=9, ids=frozenset({1}), initiator=9)
        node.on_message(7, reply)
        assert node.next == 9  # compressed toward the answering leader
        assert len(node.probe_previous) == 1
        # The reply went back to 9 and the pending probe went out to the
        # new next (also 9 here).
        assert sim.channel_backlog(5, 9) == 2

    def test_own_reply_consumed(self):
        sim, node = adhoc_node("inactive", next=7)
        node._probe_outstanding = True
        node.on_message(7, ProbeReply(leader=7, ids=frozenset({5, 7}), initiator=5))
        assert node.probe_results == [(7, frozenset({5, 7}))]
        assert not node._probe_outstanding

    def test_leader_answers_probe_directly(self):
        sim, node = adhoc_node("wait")
        node.on_message(9, Probe(initiator=9))
        assert sim.channel_backlog(5, 9) == 1
