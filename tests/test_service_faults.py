"""Faults in the service loop: ``FaultPlan.shifted`` and the
``ServiceDriver(faults=...)`` composition seam.

The driver anchors a *window-relative* plan to the steps warmup actually
consumed and attaches a seeded injector to the live simulator, so the
steady-state SLO regime -- not the initial census -- absorbs the chaos.
These tests pin the shift arithmetic, the end-to-end wiring (fault
counts and transport telemetry land in the report), determinism, and the
double-injector guard.
"""

import dataclasses

import pytest

from repro.core.adhoc import AdhocNetwork
from repro.faults.plan import (
    CrashSpec,
    DelayBurst,
    FaultInjector,
    FaultPlan,
    PartitionSpec,
    RecoverySpec,
)
from repro.graphs.generators import random_weakly_connected
from repro.service.driver import ServiceDriver
from repro.service.workload import poisson_workload


def _graph(seed=0):
    return random_weakly_connected(24, 36, seed=seed)


def _workload(graph, *, rate=8.0, duration=1500, seed=5):
    return poisson_workload(graph, rate=rate, duration=duration, seed=seed)


class TestFaultPlanShifted:
    def test_zero_offset_is_identity(self):
        plan = FaultPlan(loss=0.1, crashes=(CrashSpec("x", at_step=7),))
        assert plan.shifted(0) is plan

    def test_negative_offset_raises(self):
        with pytest.raises(ValueError):
            FaultPlan().shifted(-1)

    def test_all_time_anchored_specs_shift(self):
        plan = FaultPlan(
            loss=0.2,
            duplicate=0.05,
            crashes=(CrashSpec("a", at_step=10),),
            partitions=(PartitionSpec(frozenset({"a", "b"}), start=5, heal=40),),
            delays=(DelayBurst(start=3, duration=9, fraction=0.5),),
            recoveries=(RecoverySpec("c", crash_step=12, recover_step=80),),
        )
        shifted = plan.shifted(100)
        # Rate faults are time-free and carry over unchanged.
        assert shifted.loss == plan.loss
        assert shifted.duplicate == plan.duplicate
        assert shifted.crashes == (CrashSpec("a", at_step=110),)
        assert shifted.partitions == (
            PartitionSpec(frozenset({"a", "b"}), start=105, heal=140),
        )
        assert shifted.delays == (DelayBurst(start=103, duration=9, fraction=0.5),)
        assert shifted.recoveries == (
            RecoverySpec("c", crash_step=112, recover_step=180),
        )

    def test_shift_composes(self):
        plan = FaultPlan(crashes=(CrashSpec("a", at_step=1),))
        assert plan.shifted(10).shifted(20) == plan.shifted(30)

    def test_shifted_plan_is_a_new_immutable_plan(self):
        plan = FaultPlan(delays=(DelayBurst(start=0, duration=4),))
        shifted = plan.shifted(8)
        assert shifted is not plan
        assert dataclasses.is_dataclass(shifted)
        assert plan.delays[0].start == 0  # original untouched


class TestServiceDriverFaults:
    def _run(self, *, faults=None, fault_seed=0, reliable=False, seed=5):
        graph = _graph()
        net = AdhocNetwork(graph, seed=0, reliable=reliable)
        driver = ServiceDriver(
            net, _workload(graph, seed=seed), faults=faults, fault_seed=fault_seed
        )
        return driver.run()

    def test_fault_free_run_has_empty_fault_counts(self):
        report = self._run()
        assert report.fault_counts == {}
        assert report.transport_totals == {}

    def test_loss_plan_on_reliable_network_degrades_but_serves(self):
        report = self._run(faults=FaultPlan(loss=0.15), reliable=True)
        # The injector really fired during the window...
        assert report.fault_counts.get("loss", 0) > 0
        # ...the transport repaired it (telemetry aggregated into the report)...
        assert report.transport_totals["retransmissions"] > 0
        assert report.transport_totals["undeliverable"] == 0
        # ...and the service still completed its whole schedule.
        assert not report.budget_exhausted
        assert report.incomplete_probes == 0
        for probe in report.completed_probes:
            assert probe.latency >= 0

    def test_crash_plan_is_window_relative(self):
        # at_step=0 in window-relative time: the victim crashes the moment
        # the measurement window opens, i.e. *after* warmup converged.
        victim = sorted(_graph().nodes)[0]
        report = self._run(
            faults=FaultPlan(loss=0.1, crashes=(CrashSpec(victim, at_step=0),)),
            reliable=True,
        )
        assert report.warmup_steps > 0  # warmup ran clean before the injector
        assert report.fault_counts.get("loss", 0) > 0
        # The run terminates even with probes addressed to a dead node:
        # they are deferred and eventually dropped, never hung.
        assert not report.budget_exhausted

    def test_same_fault_seed_is_replayable(self):
        def once():
            report = self._run(faults=FaultPlan(loss=0.2), reliable=True, fault_seed=3)
            return (
                report.fault_counts,
                report.transport_totals,
                [(p.at, p.target, p.completed_at) for p in report.probes],
                report.service_messages,
                report.clock,
            )

        assert once() == once()

    def test_different_fault_seed_changes_the_execution(self):
        runs = {
            self._run(
                faults=FaultPlan(loss=0.2), reliable=True, fault_seed=fault_seed
            ).fault_counts.get("loss", 0)
            for fault_seed in range(4)
        }
        assert len(runs) > 1

    def test_double_injector_is_rejected(self):
        graph = _graph()
        net = AdhocNetwork(
            graph,
            seed=0,
            reliable=True,
            faults=FaultInjector(FaultPlan(loss=0.1), seed=0),
        )
        with pytest.raises(ValueError, match="already has a fault injector"):
            ServiceDriver(net, _workload(graph), faults=FaultPlan(loss=0.1))

    def test_transport_totals_present_without_faults(self):
        # A reliable network reports transport telemetry even fault-free
        # (acks are real traffic the SLO accounting must see).
        report = self._run(reliable=True)
        assert report.transport_totals["undeliverable"] == 0
        assert (
            report.transport_totals["acks_piggybacked"]
            + report.transport_totals["acks_delayed"]
            + report.transport_totals["acks_immediate"]
            > 0
        )
