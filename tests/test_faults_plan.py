"""Unit tests for the declarative fault layer (repro.faults.plan/scenarios)."""

import pytest

from repro.faults import (
    FAULT_SCENARIOS,
    CrashSpec,
    DelayBurst,
    FaultInjector,
    FaultPlan,
    PartitionSpec,
    build_scenario,
    pick_crash_victims,
)
from repro.graphs.generators import random_weakly_connected, star
from repro.graphs.knowledge_graph import KnowledgeGraph
from repro.sim.network import DEFER, DELIVER, DROP, SimNode, Simulator
from repro.sim.events import DeliverToken, TimerToken


class TestPlanValidation:
    def test_default_plan_is_fault_free(self):
        plan = FaultPlan()
        assert plan.is_fault_free
        assert plan.describe() == "fault-free"

    def test_loss_range(self):
        FaultPlan(loss=0.0)
        FaultPlan(loss=0.999)
        with pytest.raises(ValueError):
            FaultPlan(loss=1.0)
        with pytest.raises(ValueError):
            FaultPlan(loss=-0.1)

    def test_duplicate_range(self):
        FaultPlan(duplicate=1.0)
        with pytest.raises(ValueError):
            FaultPlan(duplicate=1.5)

    def test_duplicate_crash_specs_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan(crashes=(CrashSpec("a"), CrashSpec("a", at_step=5)))

    def test_partition_window_validation(self):
        with pytest.raises(ValueError):
            PartitionSpec(frozenset(), start=0, heal=10)
        with pytest.raises(ValueError):
            PartitionSpec(frozenset({"a"}), start=10, heal=10)

    def test_delay_burst_validation(self):
        with pytest.raises(ValueError):
            DelayBurst(start=0, duration=0)
        with pytest.raises(ValueError):
            DelayBurst(start=0, duration=5, fraction=0.0)

    def test_describe_composes(self):
        plan = FaultPlan(loss=0.1, crashes=(CrashSpec("a"),))
        assert "loss=0.1" in plan.describe()
        assert "crashes=1" in plan.describe()

    def test_plans_are_picklable(self):
        import pickle

        plan = FaultPlan(
            loss=0.1,
            duplicate=0.05,
            crashes=(CrashSpec("a", at_step=3),),
            partitions=(PartitionSpec(frozenset({"a", "b"}), start=1, heal=9),),
            delays=(DelayBurst(start=0, duration=4, fraction=0.5),),
        )
        assert pickle.loads(pickle.dumps(plan)) == plan


class TestPartitionSemantics:
    def test_severs_only_cut_crossing_during_window(self):
        spec = PartitionSpec(frozenset({"a", "b"}), start=10, heal=20)
        assert spec.severs("a", "x", 10)
        assert spec.severs("x", "a", 19)
        assert not spec.severs("a", "b", 15)  # inside the island
        assert not spec.severs("x", "y", 15)  # inside the mainland
        assert not spec.severs("a", "x", 9)  # before the window
        assert not spec.severs("a", "x", 20)  # healed


class TestInjector:
    def _sim(self):
        return Simulator()

    def test_fault_free_plan_is_identity(self):
        injector = FaultInjector(FaultPlan(), seed=1)
        sim = self._sim()
        assert injector.copies(sim, "a", "b", object()) == 1
        assert injector.deliver_action(sim, DeliverToken("a", "b")) == DELIVER
        assert injector.wake_allowed(sim, "a")
        assert injector.total_injected == 0

    def test_seeded_decisions_replay(self):
        plan = FaultPlan(loss=0.3, duplicate=0.2)
        first = [
            FaultInjector(plan, seed=7).copies(self._sim(), "a", "b", object())
            for _ in range(1)
        ]
        runs = []
        for _ in range(2):
            injector = FaultInjector(plan, seed=7)
            sim = self._sim()
            runs.append(
                [injector.copies(sim, "a", "b", object()) for _ in range(200)]
            )
        assert runs[0] == runs[1]
        assert first[0] == runs[0][0]

    def test_loss_and_duplicate_rates_roughly_hold(self):
        injector = FaultInjector(FaultPlan(loss=0.25), seed=3)
        sim = self._sim()
        outcomes = [injector.copies(sim, "a", "b", object()) for _ in range(2000)]
        lost = outcomes.count(0)
        assert 0.18 < lost / 2000 < 0.32
        assert injector.counts["loss"] == lost

    def test_crashed_source_sends_nothing(self):
        injector = FaultInjector(FaultPlan(crashes=(CrashSpec("a", at_step=0),)))
        sim = self._sim()
        assert injector.copies(sim, "a", "b", object()) == 0
        assert injector.counts["crash-drop"] == 1

    def test_crashed_destination_drops_delivery(self):
        injector = FaultInjector(FaultPlan(crashes=(CrashSpec("b", at_step=0),)))
        sim = self._sim()
        assert injector.deliver_action(sim, DeliverToken("a", "b")) == DROP
        assert not injector.wake_allowed(sim, "b")

    def test_crash_at_future_step_spares_early_traffic(self):
        injector = FaultInjector(FaultPlan(crashes=(CrashSpec("a", at_step=100),)))
        sim = self._sim()
        assert injector.copies(sim, "a", "b", object()) == 1
        assert not injector.crashed("a", 99)
        assert injector.crashed("a", 100)
        assert injector.crashed_nodes(100) == frozenset({"a"})

    def test_delay_burst_defers_within_window_only(self):
        plan = FaultPlan(delays=(DelayBurst(start=0, duration=5, fraction=1.0),))
        injector = FaultInjector(plan)
        sim = self._sim()
        assert injector.deliver_action(sim, DeliverToken("a", "b")) == DEFER
        sim.steps = 5
        assert injector.deliver_action(sim, DeliverToken("a", "b")) == DELIVER

    def test_event_log_and_null_log(self):
        plan = FaultPlan(crashes=(CrashSpec("a", at_step=0),))
        logged = FaultInjector(plan, keep_log=True)
        logged.copies(self._sim(), "a", "b", object())
        assert len(logged.log) == 1 and logged.log[0].kind == "crash-drop"
        silent = FaultInjector(plan, keep_log=False)
        silent.copies(self._sim(), "a", "b", object())
        assert len(silent.log) == 0
        assert silent.counts["crash-drop"] == 1  # counters still maintained

    def test_crashed_node_timers_are_suppressed(self):
        injector = FaultInjector(FaultPlan(crashes=(CrashSpec("a", at_step=0),)))
        sim = self._sim()
        assert not injector.timer_allowed(sim, TimerToken("a", due=0))
        assert injector.timer_allowed(sim, TimerToken("b", due=0))
        assert injector.counts["timer-suppressed"] == 1
        suppressed = [e for e in injector.log if e.kind == "timer-suppressed"]
        assert len(suppressed) == 1
        assert suppressed[0].dst == "a" and suppressed[0].src is None

    def test_crash_drop_attributes_real_msg_type(self):
        # Delivery-time drops peek at the channel head so the fault log
        # records what kind of message died, not just that one did.
        class _Node(SimNode):
            def on_message(self, sender, message):
                pass

        class _Probe:
            msg_type = "probe"
            bit_size = staticmethod(lambda id_bits: 1)

        sim = Simulator()
        sim.add_node(_Node("a"))
        sim.add_node(_Node("b"))
        sim.transmit("a", "b", _Probe())
        injector = FaultInjector(FaultPlan(crashes=(CrashSpec("b", at_step=0),)))
        assert injector.deliver_action(sim, DeliverToken("a", "b")) == DROP
        drops = [e for e in injector.log if e.kind == "crash-drop"]
        assert len(drops) == 1
        assert drops[0].msg_type == "probe"


class TestScenarios:
    def test_every_scenario_builds(self):
        graph = random_weakly_connected(24, 24, seed=5)
        for name in FAULT_SCENARIOS:
            plan = build_scenario(name, graph, seed=5)
            assert isinstance(plan, FaultPlan)

    def test_unknown_scenario_lists_known_names(self):
        graph = star(4)
        with pytest.raises(ValueError, match="baseline"):
            build_scenario("nope", graph, seed=0)

    def test_scenarios_are_seed_deterministic(self):
        graph = random_weakly_connected(24, 24, seed=5)
        assert build_scenario("stress", graph, 3) == build_scenario("stress", graph, 3)

    def test_pick_crash_victims_prefers_unknown_nodes(self):
        # b and c have in-degree 0; everything else is pointed at.
        graph = KnowledgeGraph(
            ["a", "b", "c", "d", "e"],
            [("b", "a"), ("c", "a"), ("d", "e"), ("e", "d"), ("a", "d")],
        )
        victims = set(pick_crash_victims(graph, 2, seed=0))
        assert victims == {"b", "c"}

    def test_pick_crash_victims_never_kills_everyone(self):
        graph = star(3)
        assert len(pick_crash_victims(graph, 10, seed=0)) == graph.n - 1
