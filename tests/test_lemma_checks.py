"""Unit tests for the complexity-lemma checkers."""

from repro.sim.trace import MessageStats
from repro.verification.lemmas import (
    check_all_lemmas,
    lemma_5_5_queries,
    lemma_5_6_search_release,
    lemma_5_7_merges,
    lemma_5_8_conquers,
    theorem_7_bits,
)


def stats_with(**counts):
    stats = MessageStats()
    for msg_type, count in counts.items():
        for _ in range(count):
            stats.record(msg_type.replace("_", "-"), 8)
    return stats


class TestIndividualLemmas:
    def test_query_bound(self):
        ok = lemma_5_5_queries(stats_with(query=10, query_reply=10), n=10)
        assert ok.holds
        bad = lemma_5_5_queries(stats_with(query=50, query_reply=50), n=10)
        assert not bad.holds
        assert bad.measured == 100

    def test_merge_bound_uses_corrected_3n(self):
        # 2n < measured <= 3n must pass (finding F1).
        edge = lemma_5_7_merges(
            stats_with(merge_accept=10, merge_fail=8, info=10), n=10
        )
        assert edge.measured == 28
        assert edge.holds
        over = lemma_5_7_merges(stats_with(info=31), n=10)
        assert not over.holds

    def test_conquer_bound_by_variant(self):
        stats = stats_with(conquer=25, more_done=25)
        assert lemma_5_8_conquers(stats, n=16, variant="generic").holds
        assert not lemma_5_8_conquers(stats, n=16, variant="bounded").holds
        assert not lemma_5_8_conquers(stats, n=16, variant="adhoc").holds
        assert lemma_5_8_conquers(MessageStats(), n=16, variant="adhoc").holds

    def test_search_release_scales_with_alpha(self):
        stats = stats_with(search=100, release=100)
        assert lemma_5_6_search_release(stats, n=100).holds
        assert not lemma_5_6_search_release(stats, n=2).holds

    def test_bits_bound(self):
        stats = MessageStats()
        stats.record("x", 10_000)
        assert theorem_7_bits(stats, n=100, n_edges=200).holds
        stats.record("x", 10**9)
        assert not theorem_7_bits(stats, n=100, n_edges=200).holds


class TestCheckAll:
    def test_returns_all_seven_checks(self):
        checks = check_all_lemmas(MessageStats(), 10, 20, "generic")
        assert len(checks) == 7
        assert all(c.holds for c in checks)

    def test_id_reconstruction_lemmas(self):
        from repro.sim.trace import bits_for_ids
        from repro.verification.lemmas import lemma_5_9_reply_ids, lemma_5_10_info_ids

        stats = MessageStats()
        # 3 query replies carrying 4 ids each with id_bits=8.
        for _ in range(3):
            stats.record("query-reply", bits_for_ids(4, 8) + 1)
        check = lemma_5_9_reply_ids(stats, n=10, n_edges=20, id_bits=8)
        assert check.measured == 12
        assert check.holds
        # 2 infos carrying 5 ids each (+1 phase int each).
        for _ in range(2):
            stats.record("info", bits_for_ids(5, 8, extra_ints=1))
        check = lemma_5_10_info_ids(stats, n=10, id_bits=8)
        assert check.measured == 10
        assert check.holds

    def test_ratio_and_str(self):
        check = lemma_5_5_queries(stats_with(query=30), n=10)
        assert 0 < check.ratio <= 1
        assert "ok" in str(check)
        bad = lemma_5_5_queries(stats_with(query=100), n=10)
        assert "FAIL" in str(bad)
