"""Tests for Section 6: dynamic node and link additions (Ad-hoc)."""

import random

import pytest

from repro.core.adhoc import AdhocNetwork, run_adhoc
from repro.graphs.generators import random_weakly_connected, star
from repro.graphs.knowledge_graph import KnowledgeGraph
from repro.verification.invariants import verify_discovery


def quiescent_network(n=30, seed=7):
    graph = random_weakly_connected(n, 2 * n, seed=seed)
    net = AdhocNetwork(graph, seed=seed)
    net.run()
    return net


class TestAddNode:
    def test_join_merges_components(self):
        net = quiescent_network()
        net.add_node(1000, known=[0, 5])
        net.run()
        result = net.result()
        verify_discovery(result, net.graph)
        assert 1000 in result.knowledge[result.leaders[0]]

    def test_join_with_no_knowledge_is_isolated_leader(self):
        net = quiescent_network()
        net.add_node(1000)
        net.run()
        result = net.result()
        verify_discovery(result, net.graph)
        assert 1000 in result.leaders

    def test_join_referencing_unknown_node_rejected(self):
        net = quiescent_network()
        with pytest.raises(KeyError):
            net.add_node(1000, known=["ghost"])

    def test_many_sequential_joins(self):
        net = quiescent_network(n=20)
        for i in range(20, 40):
            net.add_node(i, known=[i - 1])
            net.run()
        result = net.result()
        verify_discovery(result, net.graph)
        assert len(result.leaders) == 1
        assert result.knowledge[result.leaders[0]] == frozenset(range(40))

    def test_concurrent_joins(self):
        """Several joins pending before any runs to quiescence."""
        net = quiescent_network(n=15)
        for i in range(15, 25):
            net.add_node(i, known=[i % 15])
        net.run()
        verify_discovery(net.result(), net.graph)


class TestAddLink:
    def test_link_merges_two_components(self):
        graph = KnowledgeGraph(range(6), [(0, 1), (1, 2), (3, 4), (4, 5)])
        net = AdhocNetwork(graph, seed=1)
        net.run()
        assert len(net.result().leaders) == 2
        net.add_link(2, 3)
        net.run()
        result = net.result()
        verify_discovery(result, net.graph)
        assert len(result.leaders) == 1

    def test_link_endpoints_must_exist(self):
        net = quiescent_network()
        with pytest.raises(KeyError):
            net.add_link(0, "ghost")
        with pytest.raises(KeyError):
            net.add_link("ghost", 0)

    def test_duplicate_and_self_links_are_harmless(self):
        net = quiescent_network()
        before = net.stats.total_messages
        existing = next(iter(net.graph.edges()))
        net.add_link(*existing)
        net.add_link(0, 0)
        net.run()
        verify_discovery(net.result(), net.graph)
        assert net.stats.total_messages == before

    def test_random_link_storm(self):
        net = quiescent_network(n=25, seed=3)
        rng = random.Random(5)
        for _ in range(30):
            u, v = rng.sample(net.graph.nodes, k=2)
            net.add_link(u, v)
        net.run()
        verify_discovery(net.result(), net.graph)


class TestTheorem8:
    def test_incremental_cheaper_than_rerun(self):
        """Theorem 8's point: incorporating additions costs far less than
        running the whole algorithm again."""
        net = quiescent_network(n=120, seed=2)
        rng = random.Random(9)
        before = net.stats.snapshot()
        for i in range(120, 140):
            net.add_node(i, known=rng.sample(net.graph.nodes, k=2))
            net.run()
        marginal = net.stats.delta_since(before).total_messages
        rerun = run_adhoc(net.graph, seed=2).total_messages
        assert marginal < rerun / 2

    def test_marginal_cost_per_join_is_small(self):
        net = quiescent_network(n=100, seed=4)
        rng = random.Random(3)
        costs = []
        for i in range(100, 130):
            before = net.stats.snapshot()
            net.add_node(i, known=rng.sample(net.graph.nodes, k=2))
            net.run()
            costs.append(net.stats.delta_since(before).total_messages)
        # Near-constant marginal cost: no join should cost anything close
        # to a fresh n-node run.
        assert max(costs) <= 60
