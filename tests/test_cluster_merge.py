"""Unit tests for the cluster-merge skeleton shared by Law-Siu / KPV-style."""

from repro.baselines.cluster_merge import (
    Call,
    ClusterMergeNode,
    Relabel,
    Transfer,
    YouJoinMe,
)
from repro.baselines.kpv_style import run_kpv_style
from repro.graphs.generators import random_weakly_connected
from repro.graphs.knowledge_graph import KnowledgeGraph


class AlwaysMerge(ClusterMergeNode):
    def may_call(self, round_no):
        return True

    def decide(self, call, round_no):
        return "merge"

    def pick_target(self, round_no):
        return min(self.frontier, key=repr)


def make(node_id, initial=()):
    return AlwaysMerge(node_id, frozenset(initial))


class TestDirectionRule:
    def test_smaller_id_callee_absorbs_larger_caller(self):
        callee = make(1)
        out = []
        callee._send = lambda dst, msg: out.append((dst, msg))
        callee._leader_on_call(Call(origin=5, size=1, target=1), 1)
        assert len(out) == 1
        dst, msg = out[0]
        assert dst == 5 and isinstance(msg, YouJoinMe)
        assert callee.is_leader

    def test_larger_id_callee_transfers_itself(self):
        callee = make(9, initial=(1,))
        out = []
        callee._send = lambda dst, msg: out.append((dst, msg))
        callee._leader_on_call(Call(origin=2, size=1, target=9), 1)
        assert not callee.is_leader
        assert callee.leader_ptr == 2
        dst, msg = out[0]
        assert dst == 2 and isinstance(msg, Transfer)
        assert msg.members == frozenset({9})

    def test_call_home_prunes_frontier(self):
        leader = make(1, initial=(7,))
        leader.members.add(7)
        leader.call_outstanding = True
        leader._leader_on_call(Call(origin=1, size=2, target=7), 1)
        assert 7 not in leader.frontier
        assert not leader.call_outstanding

    def test_you_join_me_toward_larger_id_is_dropped(self):
        """Forwarded you-join-me whose absorber is larger must be ignored,
        or the id-decreasing transfer invariant (no pointer cycles) breaks."""
        node = make(3)
        out = []
        node._send = lambda dst, msg: out.append((dst, msg))
        node._leader_on_you_join_me(YouJoinMe(absorber=8, origin=3))
        assert node.is_leader
        assert out == []

    def test_you_join_me_toward_smaller_id_complies(self):
        node = make(7)
        out = []
        node._send = lambda dst, msg: out.append((dst, msg))
        node._leader_on_you_join_me(YouJoinMe(absorber=2, origin=7))
        assert not node.is_leader
        assert node.leader_ptr == 2


class TestTransferHandling:
    def test_absorb_merges_and_relabels(self):
        leader = make(1)
        out = []
        leader._send = lambda dst, msg: out.append((dst, msg))
        leader._leader_on_transfer(
            Transfer(from_leader=5, members=frozenset({5, 6, 7}), frontier=frozenset({8}))
        )
        assert leader.members == {1, 5, 6, 7}
        assert leader.frontier == {8}
        relabeled = {dst for dst, msg in out if isinstance(msg, Relabel)}
        assert relabeled == {6, 7}  # not the ex-leader, not self

    def test_frontier_pruned_against_members(self):
        leader = make(1, initial=(6,))
        leader._leader_on_transfer(
            Transfer(from_leader=6, members=frozenset({6}), frontier=frozenset({1}))
        )
        assert leader.frontier == set()


class TestForwarding:
    def test_non_leader_forwards_protocol_messages(self):
        node = make(4)
        node.is_leader = False
        node.leader_ptr = 2
        out = []
        node._send = lambda dst, msg: out.append((dst, msg))
        call = Call(origin=9, size=1, target=4)
        node._handle(9, call, 1)
        assert out == [(2, call)]

    def test_relabel_handled_even_when_leader_again(self):
        node = make(4)
        node._handle(2, Relabel(leader=2), 1)
        assert node.leader_ptr == 2


class TestEndToEndDeterminism:
    def test_kpv_identical_runs(self):
        graph = random_weakly_connected(25, 50, seed=12)
        a, b = run_kpv_style(graph), run_kpv_style(graph)
        assert a.stats.messages_by_type == b.stats.messages_by_type
        assert a.leader_of == b.leader_of

    def test_final_leader_is_component_minimum(self):
        """The id-ordered transfer rule funnels every cluster toward the
        smallest leader id in its component."""
        graph = random_weakly_connected(20, 60, seed=3)
        result = run_kpv_style(graph)
        assert result.leaders == [min(graph.nodes, key=repr)]
