"""Tests for the sharded multi-process execution engine (repro.parallel).

The acceptance-grade properties live here: worker-count invariance of the
aggregated tables (checked with ``compare_records`` at zero tolerance)
and full cache service of a repeated sweep.
"""

import io
import os
import pathlib
import time

import pytest

from repro.analysis.registry import ExperimentRecord, compare_records
from repro.analysis.sweep import aggregate_tables, sweep_seeds
from repro.parallel import (
    Job,
    JobFailure,
    ParallelExecutor,
    ProgressReporter,
    ResultCache,
    experiment_name,
    resolve_experiment,
    shard_seeds,
    sweep_jobs,
)

# ----------------------------------------------------------------------
# module-level toy experiments (importable by name from worker processes)
# ----------------------------------------------------------------------


def exp_toy(scale=1, seed=0):
    return ["case", "n", "messages"], [["toy", scale, (seed + 1) * scale]]


def exp_flaky(seed=0):
    if seed == 1:
        raise RuntimeError("boom")
    return ["case", "messages"], [["ok", seed * 10]]


def exp_sleepy(duration=3.0, seed=0):
    time.sleep(duration)
    return ["case", "messages"], [["slept", seed]]


def exp_counted(counter_dir="", seed=0):
    """Drops one marker file per execution, so tests can count runs."""
    path = pathlib.Path(counter_dir)
    path.mkdir(parents=True, exist_ok=True)
    (path / f"seed{seed}-{os.getpid()}-{time.monotonic_ns()}").touch()
    return ["case", "messages"], [["counted", seed * 10]]


def exp_killer(marker="", seed=0):
    """SIGKILLs its own worker process -- but only once per marker file,
    so the in-parent recovery re-run completes normally."""
    path = pathlib.Path(marker)
    if not path.exists():
        path.touch()
        os.kill(os.getpid(), 9)
    return ["case", "messages"], [["survived", seed]]


def exp_flaky_once(flag_dir="", seed=0):
    """Fails the first execution of each seed, succeeds after."""
    path = pathlib.Path(flag_dir)
    path.mkdir(parents=True, exist_ok=True)
    flag = path / f"seed{seed}"
    if not flag.exists():
        flag.touch()
        raise RuntimeError(f"transient glitch for seed {seed}")
    return ["case", "messages"], [["recovered", seed * 10]]


TOY = f"{__name__}:exp_toy"
FLAKY = f"{__name__}:exp_flaky"
SLEEPY = f"{__name__}:exp_sleepy"
COUNTED = f"{__name__}:exp_counted"
KILLER = f"{__name__}:exp_killer"
FLAKY_ONCE = f"{__name__}:exp_flaky_once"


class TestJobSpec:
    def test_kwargs_order_does_not_change_identity(self):
        a = Job.create(TOY, {"scale": 2, "seed": 0})
        b = Job.create(TOY, {"seed": 0, "scale": 2})
        assert a == b
        assert a.key() == b.key()

    def test_key_distinguishes_seed_and_kwargs(self):
        base = Job.create(TOY, {"scale": 2}, seed=0)
        assert base.key() != Job.create(TOY, {"scale": 2}, seed=1).key()
        assert base.key() != Job.create(TOY, {"scale": 3}, seed=0).key()
        assert base.key() != Job.create("strongly-connected", {"scale": 2}, seed=0).key()

    def test_spec_survives_json_roundtrip(self):
        import json

        job = Job.create(TOY, {"ns": (16, 32)}, seed=3)
        assert json.loads(json.dumps(job.spec())) == job.spec()

    def test_registry_callable_resolves_to_short_name(self):
        from repro.analysis.experiments import exp_strongly_connected

        assert experiment_name(exp_strongly_connected) == "strongly-connected"
        assert resolve_experiment("strongly-connected") is exp_strongly_connected

    def test_module_path_roundtrip(self):
        assert experiment_name(exp_toy) == TOY
        assert resolve_experiment(TOY) is exp_toy

    def test_lambda_rejected(self):
        with pytest.raises(ValueError, match="not importable"):
            experiment_name(lambda seed: None)

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown experiment"):
            experiment_name("no-such-exp")
        with pytest.raises(ValueError, match="unknown experiment"):
            resolve_experiment("no-such-exp")

    def test_sweep_jobs_in_seed_order(self):
        jobs = sweep_jobs(TOY, [5, 1, 3], {"scale": 2})
        assert [job.seed for job in jobs] == [5, 1, 3]
        assert all(job.experiment == TOY for job in jobs)


class TestSharding:
    def test_round_robin_partition(self):
        assert shard_seeds(range(7), 3) == [[0, 3, 6], [1, 4], [2, 5]]

    def test_partition_is_exact_cover(self):
        seeds = list(range(23))
        shards = shard_seeds(seeds, 4)
        flat = sorted(seed for shard in shards for seed in shard)
        assert flat == seeds

    def test_more_shards_than_seeds_drops_empties(self):
        assert shard_seeds([7, 9], 5) == [[7], [9]]

    def test_deterministic(self):
        assert shard_seeds(range(100), 8) == shard_seeds(range(100), 8)

    def test_invalid_shard_count(self):
        with pytest.raises(ValueError):
            shard_seeds(range(4), 0)


class TestCache:
    def test_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        job = Job.create(TOY, {"scale": 2}, seed=1)
        assert cache.get(job) is None
        record = ExperimentRecord(
            job.label(), ["a"], [[1]], metadata={"job": job.spec()}
        )
        cache.put(job, record)
        loaded = cache.get(job)
        assert loaded is not None
        assert loaded.rows == [[1]]
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.stores == 1

    def test_spec_mismatch_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        job = Job.create(TOY, {"scale": 2}, seed=1)
        record = ExperimentRecord(job.label(), ["a"], [[1]], metadata={"job": {}})
        cache.put(job, record)
        assert cache.get(job) is None

    def test_corrupt_file_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        job = Job.create(TOY, {}, seed=0)
        cache.path_for(job).parent.mkdir(parents=True, exist_ok=True)
        cache.path_for(job).write_text("{not json")
        assert cache.get(job) is None

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        job = Job.create(TOY, {}, seed=0)
        cache.put(job, ExperimentRecord("x", ["a"], [[1]], {"job": job.spec()}))
        assert cache.clear() == 1
        assert cache.get(job) is None


class TestSerialExecution:
    def test_results_align_with_jobs(self):
        executor = ParallelExecutor(workers=1)
        jobs = sweep_jobs(TOY, [3, 0, 2], {"scale": 5})
        results = executor.run(jobs)
        assert [r.job.seed for r in results] == [3, 0, 2]
        assert [r.table[1][0][2] for r in results] == [20, 5, 15]
        assert all(r.status == "done" for r in results)
        assert executor.executed == 3

    def test_crash_isolation(self):
        executor = ParallelExecutor(workers=1)
        results = executor.run(sweep_jobs(FLAKY, range(4)))
        statuses = [r.status for r in results]
        assert statuses == ["done", "failed", "done", "done"]
        assert "boom" in results[1].error
        with pytest.raises(JobFailure):
            results[1].table

    def test_messages_extracted_for_progress(self):
        executor = ParallelExecutor(workers=1)
        (result,) = executor.run([Job.create(TOY, {"scale": 4}, seed=1)])
        assert result.messages == 8

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            ParallelExecutor(workers=0)


class TestParallelExecution:
    def test_worker_count_invariance_and_cache_service(self, tmp_path):
        """Acceptance: identical tables for 1/2/4 workers at zero
        tolerance, and a repeat sweep served entirely from cache."""
        kwargs = {"ns": (16, 32)}
        records = {}
        for workers in (1, 2, 4):
            cache = ResultCache(tmp_path / f"w{workers}")
            executor = ParallelExecutor(workers=workers, cache=cache)
            headers, rows = executor.sweep(
                "strongly-connected", range(4), **kwargs
            )
            records[workers] = ExperimentRecord("sweep", headers, rows)
            assert executor.executed == 4
            assert cache.stats.stores == 4
        assert compare_records(records[1], records[2], rel_tolerance=0) == []
        assert compare_records(records[1], records[4], rel_tolerance=0) == []

        # Second run of the same sweep: zero executions, all cache hits,
        # identical output -- even at a different worker count.
        cache = ResultCache(tmp_path / "w2")
        executor = ParallelExecutor(workers=4, cache=cache)
        headers, rows = executor.sweep("strongly-connected", range(4), **kwargs)
        assert executor.executed == 0
        assert cache.stats.hits == 4
        rerun = ExperimentRecord("sweep", headers, rows)
        assert compare_records(records[2], rerun, rel_tolerance=0) == []

    def test_parallel_crash_isolation(self):
        executor = ParallelExecutor(workers=2)
        results = executor.run(sweep_jobs(FLAKY, range(4)))
        assert [r.status for r in results] == ["done", "failed", "done", "done"]

    def test_per_job_timeout(self):
        executor = ParallelExecutor(workers=2, timeout=0.3)
        jobs = [
            Job.create(SLEEPY, {"duration": 30.0}, seed=0),
            Job.create(TOY, {"scale": 2}, seed=1),
        ]
        start = time.perf_counter()
        results = executor.run(jobs)
        assert time.perf_counter() - start < 10
        assert results[0].status == "timeout"
        assert results[1].status == "done"

    def test_partial_cache_reuse(self, tmp_path):
        """A wider sweep reuses the overlapping prefix of a narrower one."""
        cache = ResultCache(tmp_path)
        ParallelExecutor(workers=1, cache=cache).run(sweep_jobs(TOY, range(2)))
        executor = ParallelExecutor(workers=1, cache=cache)
        results = executor.run(sweep_jobs(TOY, range(4)))
        assert executor.executed == 2
        assert [r.status for r in results] == ["cached", "cached", "done", "done"]


class TestSweepIntegration:
    def test_map_fn_plugs_into_sweep_seeds(self):
        from repro.analysis.experiments import exp_strongly_connected

        serial = sweep_seeds(
            lambda seed: exp_strongly_connected(ns=(16, 32), seed=seed),
            seeds=range(3),
        )
        executor = ParallelExecutor(workers=2)
        parallel = sweep_seeds(
            exp_strongly_connected,
            seeds=range(3),
            map_fn=lambda experiment, seeds: executor.map_seeds(
                experiment, seeds, ns=(16, 32)
            ),
        )
        assert serial == parallel

    def test_map_fn_result_count_checked(self):
        with pytest.raises(ValueError, match="map_fn returned"):
            sweep_seeds(
                exp_toy, seeds=range(3), map_fn=lambda exp, seeds: []
            )

    def test_map_seeds_raises_on_failure(self):
        executor = ParallelExecutor(workers=1)
        with pytest.raises(JobFailure, match="boom"):
            executor.map_seeds(FLAKY, range(3))

    def test_executor_sweep_aggregates(self):
        executor = ParallelExecutor(workers=1)
        headers, rows = executor.sweep(TOY, range(3), scale=2)
        assert headers == ["case", "n", "messages"]
        # seeds 0..2 -> messages 2, 4, 6 -> mean 4 [2, 6]
        assert rows == [["toy", 2, "4 [2, 6]"]]


class TestRetries:
    def test_no_retries_by_default(self, tmp_path):
        executor = ParallelExecutor(workers=1)
        results = executor.run(
            sweep_jobs(FLAKY_ONCE, range(3), {"flag_dir": str(tmp_path)})
        )
        assert [r.status for r in results] == ["failed"] * 3
        assert all(r.attempts == 1 for r in results)

    def test_retry_recovers_transient_failures(self, tmp_path):
        executor = ParallelExecutor(workers=1, retries=1)
        results = executor.run(
            sweep_jobs(FLAKY_ONCE, range(3), {"flag_dir": str(tmp_path)})
        )
        assert [r.status for r in results] == ["done"] * 3
        assert [r.attempts for r in results] == [2, 2, 2]
        # every attempt counts as an execution
        assert executor.executed == 6

    def test_retry_recovers_in_parallel_mode(self, tmp_path):
        executor = ParallelExecutor(workers=2, retries=1)
        results = executor.run(
            sweep_jobs(FLAKY_ONCE, range(4), {"flag_dir": str(tmp_path)})
        )
        assert [r.status for r in results] == ["done"] * 4
        assert all(r.attempts == 2 for r in results)

    def test_only_failed_jobs_are_retried(self, tmp_path):
        executor = ParallelExecutor(workers=1, retries=1)
        jobs = [
            Job.create(TOY, {"scale": 2}, seed=0),
            Job.create(FLAKY_ONCE, {"flag_dir": str(tmp_path)}, seed=1),
        ]
        results = executor.run(jobs)
        assert [r.status for r in results] == ["done", "done"]
        assert [r.attempts for r in results] == [1, 2]
        assert executor.executed == 3

    def test_retry_gives_up_after_budget(self):
        executor = ParallelExecutor(workers=1, retries=2)
        (result,) = executor.run([Job.create(FLAKY, {}, seed=1)])
        assert result.status == "failed"
        assert result.attempts == 3
        assert executor.executed == 3

    def test_retried_success_is_cached(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        executor = ParallelExecutor(workers=1, retries=1, cache=cache)
        executor.run(
            sweep_jobs(FLAKY_ONCE, range(2), {"flag_dir": str(tmp_path / "flags")})
        )
        assert cache.stats.stores == 2
        # A repeat sweep is served fully from cache, no re-execution.
        executor2 = ParallelExecutor(workers=1, retries=1, cache=cache)
        results = executor2.run(
            sweep_jobs(FLAKY_ONCE, range(2), {"flag_dir": str(tmp_path / "flags")})
        )
        assert [r.status for r in results] == ["cached", "cached"]
        assert executor2.executed == 0

    def test_attempts_recorded_in_metadata(self, tmp_path):
        executor = ParallelExecutor(workers=1, retries=1)
        (result,) = executor.run(
            [Job.create(FLAKY_ONCE, {"flag_dir": str(tmp_path)}, seed=0)]
        )
        assert result.to_record().metadata["attempts"] == 2

    def test_invalid_retry_params(self):
        with pytest.raises(ValueError):
            ParallelExecutor(retries=-1)
        with pytest.raises(ValueError):
            ParallelExecutor(backoff=-0.5)


class TestBrokenPoolRecovery:
    def test_completed_prefix_of_broken_batch_not_recomputed(self, tmp_path):
        """Regression: a worker crash used to re-run its *whole* batch
        serially, recomputing jobs that had already finished.  The spool
        makes recovery resume from the first unfinished job."""
        counter = tmp_path / "counts"
        # workers=2, batches_per_worker=1, 3 jobs -> round-robin batches
        # [[job0, job2], [job1]]: job0 completes, then job2 kills the pool.
        jobs = [
            Job.create(COUNTED, {"counter_dir": str(counter)}, seed=0),
            Job.create(TOY, {"scale": 2}, seed=1),
            Job.create(KILLER, {"marker": str(tmp_path / "marker")}, seed=2),
        ]
        executor = ParallelExecutor(workers=2, batches_per_worker=1)
        results = executor.run(jobs)
        assert [r.status for r in results] == ["done", "done", "done"]
        # job0's result came from the spool: executed exactly once.
        assert len(list(counter.iterdir())) == 1
        # job2 was re-run in-process after killing its worker.
        assert results[2].rows == [["survived", 2]]

    def test_batch_after_break_recovers_or_reuses(self, tmp_path):
        """Batches queued behind the poisoned one still produce correct
        results (finished futures are reused, dead ones recovered)."""
        jobs = [Job.create(KILLER, {"marker": str(tmp_path / "marker")}, seed=0)]
        jobs += sweep_jobs(TOY, range(1, 6), {"scale": 3})
        executor = ParallelExecutor(workers=2, batches_per_worker=1)
        results = executor.run(jobs)
        assert [r.status for r in results] == ["done"] * 6
        assert [r.table[1][0][2] for r in results[1:]] == [6, 9, 12, 15, 18]

    def test_timeout_salvages_finished_batch_mates(self, tmp_path):
        """A batch timeout only charges the jobs that did not finish."""
        counter = tmp_path / "counts"
        # batches [[job0, job2], [job1]]: job0 finishes fast and spools,
        # job2 sleeps past the pooled budget.
        jobs = [
            Job.create(COUNTED, {"counter_dir": str(counter)}, seed=0),
            Job.create(TOY, {"scale": 2}, seed=1),
            Job.create(SLEEPY, {"duration": 30.0}, seed=2),
        ]
        executor = ParallelExecutor(workers=2, batches_per_worker=1, timeout=0.4)
        start = time.perf_counter()
        results = executor.run(jobs)
        assert time.perf_counter() - start < 10
        assert [r.status for r in results] == ["done", "done", "timeout"]
        assert len(list(counter.iterdir())) == 1


class TestCacheDegradation:
    def test_unwritable_cache_directory_disables_cache(self, tmp_path, capsys):
        blocker = tmp_path / "not-a-dir"
        blocker.write_text("a file where the cache directory should go")
        cache = ResultCache(blocker)
        job = Job.create(TOY, {"scale": 2}, seed=0)
        record = ExperimentRecord(job.label(), ["a"], [[1]], {"job": job.spec()})
        assert cache.put(job, record) is None
        assert cache.disabled
        assert cache.stats.stores == 0
        err = capsys.readouterr().err
        assert "cache disabled" in err
        # Only one warning, and subsequent gets are silent misses.
        cache.put(job, record)
        assert cache.get(job) is None
        assert capsys.readouterr().err == ""

    def test_sweep_survives_unwritable_cache(self, tmp_path):
        blocker = tmp_path / "not-a-dir"
        blocker.write_text("")
        executor = ParallelExecutor(workers=1, cache=ResultCache(blocker))
        results = executor.run(sweep_jobs(TOY, range(3), {"scale": 2}))
        assert [r.status for r in results] == ["done"] * 3


class TestProgress:
    def test_stream_lines(self):
        stream = io.StringIO()
        executor = ParallelExecutor(
            workers=1, progress=ProgressReporter(stream=stream)
        )
        executor.run(sweep_jobs(FLAKY, range(2)))
        out = stream.getvalue()
        assert "queued 2 job(s)" in out
        assert "done" in out
        assert "failed" in out and "boom" in out
        assert "sweep finished" in out

    def test_disabled_reporter_is_silent(self):
        stream = io.StringIO()
        executor = ParallelExecutor(
            workers=1, progress=ProgressReporter(stream=stream, enabled=False)
        )
        executor.run([Job.create(TOY, {}, seed=0)])
        assert stream.getvalue() == ""
