"""Error-path unit tests: every ProtocolError branch fires when it should.

These construct impossible message/state combinations directly; the
protocol proves they cannot occur in real executions, and the node must
fail loudly (not corrupt state) if an implementation bug ever produces one.
"""

import pytest

from repro.core.messages import (
    ABORT,
    MERGE,
    Info,
    MergeFail,
    MoreDone,
    Probe,
    ProbeReply,
    Query,
    QueryReply,
    Release,
    Search,
)
from repro.core.node import DiscoveryNode, ProtocolError
from repro.sim.network import Simulator


def make_node(status, node_id=5, variant="generic", **fields):
    sim = Simulator()
    node = DiscoveryNode(
        node_id,
        frozenset(),
        variant=variant,
        component_size=3 if variant == "bounded" else None,
    )
    sim.add_node(node)
    node.awake = True
    node.status = status
    for name, value in fields.items():
        setattr(node, name, value)
    return node


class TestReleaseErrors:
    def test_release_at_idle_wait_raises(self):
        node = make_node("wait", _awaiting_release=False)
        with pytest.raises(ProtocolError, match="own release"):
            node._dispatch(1, Release(1, ABORT, 5, 1))

    def test_release_at_conqueror_raises(self):
        node = make_node("conqueror", _awaiting_info=True)
        with pytest.raises(ProtocolError):
            node._dispatch(1, Release(1, ABORT, 5, 1))

    def test_foreign_release_at_leader_raises(self):
        node = make_node("wait", _awaiting_release=True)
        with pytest.raises(ProtocolError, match="route releases"):
            node._dispatch(1, Release(1, ABORT, 99, 1))

    def test_route_release_with_empty_queue_raises(self):
        node = make_node("inactive", next=7)
        with pytest.raises(ProtocolError, match="previous queue empty"):
            node._dispatch(1, Release(1, MERGE, 99, 1))


class TestMergeErrors:
    def test_merge_fail_outside_conquered_raises(self):
        for status in ("wait", "passive", "inactive"):
            node = make_node(status)
            with pytest.raises(ProtocolError):
                node._dispatch(1, MergeFail())

    def test_info_outside_conqueror_raises(self):
        node = make_node("wait")
        empty = frozenset()
        with pytest.raises(ProtocolError):
            node._dispatch(1, Info(1, empty, empty, empty, empty))

    def test_info_after_info_raises(self):
        node = make_node("conqueror", _awaiting_info=False)
        empty = frozenset()
        with pytest.raises(ProtocolError):
            node._dispatch(1, Info(1, empty, empty, empty, empty))


class TestConquerErrors:
    def test_more_done_from_stranger_raises(self):
        node = make_node("conqueror", _awaiting_info=False)
        node.unaware = {3}
        with pytest.raises(ProtocolError, match="not in unaware"):
            node._dispatch(4, MoreDone(False))

    def test_more_done_while_awaiting_info_raises(self):
        node = make_node("conqueror", _awaiting_info=True)
        with pytest.raises(ProtocolError):
            node._dispatch(3, MoreDone(False))

    def test_terminated_leader_outranked_raises(self):
        node = make_node("terminated", variant="bounded", phase=1)
        with pytest.raises(ProtocolError, match="unsound"):
            node._dispatch(1, Search(initiator=9, phase=5, target=5, new=False))


class TestQueryErrors:
    def test_unexpected_query_reply_raises(self):
        node = make_node("explore", _awaiting_query_from=3)
        with pytest.raises(ProtocolError, match="unexpected query-reply"):
            node._dispatch(4, QueryReply(frozenset(), True))

    def test_query_at_passive_raises(self):
        node = make_node("passive")
        with pytest.raises(ProtocolError, match="inactive"):
            node._dispatch(1, Query(2))


class TestProbeErrors:
    def test_probe_reply_routing_without_queue_raises(self):
        node = make_node("inactive", variant="adhoc", next=7)
        with pytest.raises(ProtocolError, match="probe queue empty"):
            node._dispatch(1, ProbeReply(7, frozenset(), 99))

    def test_probe_reply_at_conquered_raises(self):
        node = make_node("conquered", variant="adhoc")
        with pytest.raises(ProtocolError):
            node._dispatch(1, ProbeReply(7, frozenset(), 99))

    def test_double_probe_rejected(self):
        node = make_node("inactive", variant="adhoc", next=7)
        node._probe_outstanding = True
        with pytest.raises(ProtocolError, match="outstanding"):
            node.initiate_probe()


class TestDispatchErrors:
    def test_unknown_message_type_raises(self):
        class Weird:
            msg_type = "weird"

            def bit_size(self, b):
                return 1

        node = make_node("wait")
        with pytest.raises(ProtocolError, match="unknown message type"):
            node._dispatch(1, Weird())

    def test_deferred_messages_are_parked_not_lost(self):
        node = make_node("conquered")
        search = Search(initiator=1, phase=1, target=5, new=False)
        node.on_message(1, search)
        assert node._deferred == [(1, search)]
