"""Hypothesis stateful testing: arbitrary interleavings of Section 6
operations against a live Ad-hoc network, with every invariant checked
after every operation."""

import hypothesis.strategies as st
from hypothesis import HealthCheck, settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.core.adhoc import AdhocNetwork
from repro.graphs.generators import star
from repro.verification.invariants import verify_discovery
from repro.verification.monitor import check_safety_now


class AdhocDynamicsMachine(RuleBasedStateMachine):
    """Random joins, links and probes must never break the properties."""

    def __init__(self):
        super().__init__()
        self.net = AdhocNetwork(star(3), seed=0)
        self.net.run()
        self.next_id = 3

    def _ids(self):
        return self.net.graph.nodes

    @rule(data=st.data())
    def join(self, data):
        ids = self._ids()
        k = data.draw(st.integers(min_value=0, max_value=min(3, len(ids))))
        known = data.draw(
            st.lists(st.sampled_from(ids), min_size=k, max_size=k, unique=True)
        ) if k else []
        self.net.add_node(self.next_id, known)
        self.next_id += 1
        self.net.run()

    @rule(data=st.data())
    def link(self, data):
        ids = self._ids()
        u = data.draw(st.sampled_from(ids))
        v = data.draw(st.sampled_from(ids))
        self.net.add_link(u, v)
        self.net.run()

    @rule(data=st.data())
    def probe(self, data):
        node_id = data.draw(st.sampled_from(self._ids()))
        leader, members = self.net.probe(node_id)
        result = self.net.result()
        assert leader == result.leader_of[node_id]
        assert members == result.knowledge[leader]

    @invariant()
    def all_properties_hold(self):
        check_safety_now(self.net.nodes)
        verify_discovery(self.net.result(), self.net.graph)


AdhocDynamicsMachine.TestCase.settings = settings(
    max_examples=12,
    stateful_step_count=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

TestAdhocDynamics = AdhocDynamicsMachine.TestCase
