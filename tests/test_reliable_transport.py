"""The ack/retransmit transport restores exactly-once FIFO over chaos."""

import pytest

from repro.faults import (
    CrashSpec,
    FaultInjector,
    FaultPlan,
    ReliableNode,
    retransmission_overhead,
    transport_totals,
)
from repro.sim.network import SimNode, SimulationError, Simulator
from repro.sim.scheduler import GlobalFifoScheduler, RandomScheduler
from repro.sim.trace import bits_for_ids


class Ping:
    msg_type = "ping"

    def __init__(self, tag):
        self.tag = tag

    def bit_size(self, id_bits):
        return bits_for_ids(1, id_bits)


class Burst(SimNode):
    """Sends ``count`` tagged pings to ``target`` on wake-up."""

    def __init__(self, node_id, target, count):
        super().__init__(node_id)
        self.target = target
        self.count = count

    def on_wake(self):
        for i in range(self.count):
            self.send(self.target, Ping(i))

    def on_message(self, sender, message):
        pass


class Sink(SimNode):
    def __init__(self, node_id):
        super().__init__(node_id)
        self.received = []

    def on_wake(self):
        pass

    def on_message(self, sender, message):
        self.received.append((sender, message.tag))


def run_burst(
    count=20,
    *,
    loss=0.0,
    duplicate=0.0,
    crashes=(),
    channel_discipline="fifo",
    seed=0,
    base_timeout=16,
    max_retries=6,
    transport="sr",
):
    plan = FaultPlan(loss=loss, duplicate=duplicate, crashes=crashes)
    injector = FaultInjector(plan, seed=seed)
    sim = Simulator(
        RandomScheduler(seed),
        faults=injector,
        channel_discipline=channel_discipline,
        channel_seed=seed,
    )
    sender = ReliableNode(
        Burst("a", "b", count),
        base_timeout=base_timeout,
        max_retries=max_retries,
        transport=transport,
    )
    receiver = ReliableNode(
        Sink("b"),
        base_timeout=base_timeout,
        max_retries=max_retries,
        transport=transport,
    )
    sim.add_node(sender)
    sim.add_node(receiver)
    sim.schedule_wake("a")
    sim.schedule_wake("b")
    sim.run()
    return sim, sender, receiver


@pytest.mark.parametrize("transport", ["sr", "gbn"])
class TestExactlyOnceFifo:
    def test_clean_channel(self, transport):
        sim, sender, receiver = run_burst(20, transport=transport)
        assert receiver.inner.received == [("a", i) for i in range(20)]
        assert sender.outstanding_total == 0

    def test_heavy_loss(self, transport):
        sim, sender, receiver = run_burst(20, loss=0.4, seed=2, transport=transport)
        assert receiver.inner.received == [("a", i) for i in range(20)]
        assert sender.retransmissions > 0

    def test_heavy_duplication(self, transport):
        sim, sender, receiver = run_burst(
            20, duplicate=0.5, seed=3, transport=transport
        )
        assert receiver.inner.received == [("a", i) for i in range(20)]
        assert receiver.duplicates_discarded > 0

    def test_reordering_channels(self, transport):
        # channel_discipline="random" delivers each channel out of order;
        # the transport's reorder buffer must restore sequence order.
        sim, sender, receiver = run_burst(
            20, channel_discipline="random", seed=4, transport=transport
        )
        assert receiver.inner.received == [("a", i) for i in range(20)]
        assert receiver.reordered_buffered > 0

    def test_loss_duplication_and_reordering_together(self, transport):
        sim, sender, receiver = run_burst(
            30,
            loss=0.25,
            duplicate=0.25,
            channel_discipline="random",
            seed=5,
            transport=transport,
        )
        assert receiver.inner.received == [("a", i) for i in range(30)]

    @pytest.mark.parametrize("seed", range(6))
    def test_many_seeds(self, transport, seed):
        sim, sender, receiver = run_burst(
            15,
            loss=0.3,
            duplicate=0.2,
            channel_discipline="random",
            seed=seed,
            transport=transport,
        )
        assert receiver.inner.received == [("a", i) for i in range(15)]


class TestOverheadAccounting:
    def test_first_copies_keep_payload_type(self):
        sim, sender, receiver = run_burst(20, loss=0.3, seed=1)
        # Every payload is charged exactly once under its own type; the
        # price of reliability sits in rt-retrans / rt-ack.
        assert sim.stats.messages("ping") == 20
        overhead = retransmission_overhead(sim.stats)
        assert overhead["protocol_messages"] == 20
        assert overhead["overhead_messages"] > 0
        assert (
            overhead["overhead_messages"] + overhead["protocol_messages"]
            == sim.stats.total_messages
        )

    def test_clean_channel_overhead_is_acks_only_gbn(self):
        # v1 go-back-N acks every frame: 10 frames -> 10 standalone acks.
        sim, sender, receiver = run_burst(10, transport="gbn")
        assert sim.stats.messages("rt-retrans") == sender.retransmissions
        assert sim.stats.messages("rt-ack") == 10
        assert sender.retransmissions == 0

    def test_clean_channel_sr_batches_acks(self):
        # Selective repeat only sends standalone acks when the delayed-ack
        # timer fires, batching a whole burst into a few cumulative acks.
        sim, sender, receiver = run_burst(10, transport="sr")
        assert sender.retransmissions == 0
        assert receiver.nacks_sent == 0
        assert sim.stats.messages("rt-ack") == receiver.acks_delayed
        assert 0 < sim.stats.messages("rt-ack") < 10

    def test_transport_totals_aggregates(self):
        sim, sender, receiver = run_burst(20, loss=0.4, seed=2)
        totals = transport_totals({"a": sender, "b": receiver})
        assert totals["retransmissions"] == sender.retransmissions
        assert totals["undeliverable"] == 0


class TestGiveUp:
    @pytest.mark.parametrize(
        "transport,expected_retrans",
        [("gbn", 2 * 5), ("sr", 2)],  # full-window rounds vs head-of-line only
    )
    def test_crashed_peer_gives_up_and_quiesces(self, transport, expected_retrans):
        sim, sender, receiver = run_burst(
            5,
            crashes=(CrashSpec("b", at_step=0),),
            base_timeout=4,
            max_retries=2,
            transport=transport,
        )
        # The run returned, so the system quiesced despite the dead peer.
        assert sim.is_quiescent
        assert receiver.inner.received == []
        undeliverable_tags = [msg.tag for dst, msg in sender.undeliverable]
        assert undeliverable_tags == list(range(5))
        assert sender.outstanding_total == 0
        assert sender.retransmissions == expected_retrans

    @pytest.mark.parametrize("transport", ["sr", "gbn"])
    @pytest.mark.parametrize("max_retries", [0, 2, 3])
    def test_give_up_horizon_is_exact(self, transport, max_retries):
        # One ping into a dead peer under deterministic FIFO scheduling.
        # The timers double each round, so the transport abandons the
        # conversation after a bounded number of waiting steps; the two
        # extra steps are the wake-ups.  This pins the worst-case latency
        # bound any caller of reliable_send can rely on.  A dead peer
        # never acks, so the sr estimator never gets a sample: its first
        # RTO is the no-sample probe window (2 * base_timeout) and later
        # rounds double from there, capped at max_rto (8 * base_timeout).
        base_timeout = 2
        plan = FaultPlan(crashes=(CrashSpec("b", at_step=0),))
        sim = Simulator(GlobalFifoScheduler(), faults=FaultInjector(plan, seed=0))
        sender = ReliableNode(
            Burst("a", "b", 1),
            base_timeout=base_timeout,
            max_retries=max_retries,
            transport=transport,
        )
        sim.add_node(sender)
        sim.add_node(
            ReliableNode(Sink("b"), base_timeout=base_timeout, transport=transport)
        )
        sim.schedule_wake("a")
        sim.schedule_wake("b")
        sim.run()
        if transport == "gbn":
            # Two extra steps: both wake-ups precede the first timeout.
            horizon = 2 + base_timeout * (2 ** (max_retries + 1) - 1)
        else:
            # One extra step: the wider first probe window already covers
            # the second wake-up and the doomed delivery attempt.
            timeout, horizon = 2 * base_timeout, 1
            for _ in range(max_retries + 1):
                horizon += timeout
                timeout = min(8 * base_timeout, timeout * 2)
        assert sim.steps == horizon
        assert sender.retransmissions == max_retries
        assert [msg.tag for _dst, msg in sender.undeliverable] == [0]
        assert sender.outstanding_total == 0


class TestWiring:
    def test_wrapping_a_bound_node_is_rejected(self):
        sim = Simulator()
        inner = Sink("x")
        sim.add_node(inner)
        with pytest.raises(SimulationError):
            ReliableNode(inner)

    def test_self_send_is_rejected(self):
        sim = Simulator()
        node = ReliableNode(Burst("a", "a", 1))
        sim.add_node(node)
        sim.schedule_wake("a")
        with pytest.raises(SimulationError):
            sim.run()

    def test_raw_message_to_wrapped_node_is_rejected(self):
        sim = Simulator()
        wrapped = ReliableNode(Sink("b"))
        raw = Burst("a", "b", 1)
        sim.add_node(wrapped)
        sim.add_node(raw)
        sim.schedule_wake("a")
        with pytest.raises(SimulationError):
            sim.run()

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            ReliableNode(Sink("a"), base_timeout=0)
        with pytest.raises(ValueError):
            ReliableNode(Sink("b"), max_retries=-1)
        with pytest.raises(ValueError):
            ReliableNode(Sink("c"), backoff=0.5)

    def test_inner_sim_facade_forwards(self):
        sim = Simulator()
        node = ReliableNode(Sink("a"))
        sim.add_node(node)
        # Protocol code reading its environment through self.sim must see
        # the real simulator's attributes.
        assert node.inner.sim.id_bits == sim.id_bits
        assert node.inner.sim.stats is sim.stats
