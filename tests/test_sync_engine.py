"""Unit tests for the synchronous round engine."""

import pytest

from repro.sim.trace import bits_for_ids
from repro.sync.engine import RoundLimitExceeded, SyncNode, SyncSimulator


class Msg:
    msg_type = "m"

    def __init__(self, tag):
        self.tag = tag

    def bit_size(self, id_bits):
        return bits_for_ids(1, id_bits)


class Relay(SyncNode):
    """Sends `count` messages to `target` on round 1, then echoes inbox."""

    def __init__(self, node_id, target=None, count=0, echo=False):
        super().__init__(node_id)
        self.target = target
        self.count = count
        self.echo = echo
        self.seen = []

    def on_round(self, round_no, inbox):
        out = []
        for sender, msg in inbox:
            self.seen.append((round_no, sender, msg.tag))
            if self.echo:
                out.append((sender, Msg(msg.tag + 1)))
        if round_no == 1 and self.target is not None:
            out.extend((self.target, Msg(i)) for i in range(self.count))
        return out


class TestRounds:
    def test_delivery_next_round(self):
        sim = SyncSimulator()
        a = Relay("a", target="b", count=1)
        b = Relay("b")
        sim.add_node(a)
        sim.add_node(b)
        sim.run()
        assert b.seen == [(2, "a", 0)]
        assert sim.rounds == 2

    def test_silence_terminates(self):
        sim = SyncSimulator()
        sim.add_node(Relay("a"))
        assert sim.run() == 1

    def test_round_limit(self):
        sim = SyncSimulator()
        a = Relay("a", target="b", count=1, echo=True)
        b = Relay("b", echo=True)
        sim.add_node(a)
        sim.add_node(b)
        with pytest.raises(RoundLimitExceeded):
            sim.run(max_rounds=10)

    def test_stats(self):
        sim = SyncSimulator(id_bits=8)
        a = Relay("a", target="b", count=3)
        sim.add_node(a)
        sim.add_node(Relay("b"))
        sim.run()
        assert sim.stats.total_messages == 3
        assert sim.stats.total_bits == 3 * bits_for_ids(1, 8)

    def test_pending(self):
        sim = SyncSimulator()
        a = Relay("a", target="b", count=2)
        sim.add_node(a)
        sim.add_node(Relay("b"))
        sim.step_round()
        assert sim.pending() == 2


class TestValidation:
    def test_self_send_rejected(self):
        sim = SyncSimulator()
        sim.add_node(Relay("a", target="a", count=1))
        with pytest.raises(ValueError):
            sim.step_round()

    def test_unknown_target_rejected(self):
        sim = SyncSimulator()
        sim.add_node(Relay("a", target="ghost", count=1))
        with pytest.raises(KeyError):
            sim.step_round()

    def test_duplicate_node_rejected(self):
        sim = SyncSimulator()
        sim.add_node(Relay("a"))
        with pytest.raises(ValueError):
            sim.add_node(Relay("a"))
