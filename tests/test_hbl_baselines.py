"""Tests for the Swamping and Random Pointer Jump baselines ([2])."""

import pytest

from repro.baselines import (
    PointerJumpDiverged,
    run_name_dropper,
    run_pointer_jump,
    run_swamping,
    verify_baseline,
)
from repro.graphs.generators import (
    directed_cycle,
    directed_path,
    disjoint_union,
    random_strongly_connected,
    random_weakly_connected,
    star,
)
from repro.graphs.knowledge_graph import KnowledgeGraph


class TestSwamping:
    @pytest.mark.parametrize(
        "maker",
        [
            lambda: star(15),
            lambda: directed_path(12),
            lambda: random_weakly_connected(25, 50, seed=4),
            lambda: disjoint_union(star(6), directed_cycle(5)),
            lambda: KnowledgeGraph([0]),
        ],
        ids=["star", "path", "random", "multi", "single"],
    )
    def test_solves_discovery(self, maker):
        graph = maker()
        result = run_swamping(graph)
        verify_baseline(result, graph)

    def test_converges_faster_than_name_dropper(self):
        """[2]: swamping is the round-count champion."""
        graph = random_weakly_connected(80, 160, seed=5)
        swamp = run_swamping(graph)
        nd = run_name_dropper(graph, seed=5)
        assert swamp.rounds <= nd.rounds

    def test_pays_in_messages(self):
        graph = random_weakly_connected(80, 160, seed=5)
        swamp = run_swamping(graph)
        nd = run_name_dropper(graph, seed=5)
        assert swamp.total_messages > 5 * nd.total_messages


class TestPointerJump:
    @pytest.mark.parametrize("n", [2, 8, 30, 80])
    def test_converges_on_strongly_connected(self, n):
        graph = random_strongly_connected(n, n, seed=n)
        result = run_pointer_jump(graph, seed=1)
        verify_baseline(result, graph)

    def test_single_node(self):
        result = run_pointer_jump(KnowledgeGraph([0]))
        assert result.leaders == [0]

    def test_rejects_weak_graph_by_default(self):
        with pytest.raises(ValueError, match="strongly connected"):
            run_pointer_jump(directed_path(5))

    def test_divergence_on_star_reproduces_hbl_observation(self):
        """[2]'s negative result: pointer jumping never informs the hub's
        children of each other on a pure out-star (knowledge only flows
        back along requests)."""
        with pytest.raises(PointerJumpDiverged):
            run_pointer_jump(star(6), seed=0, require_strong=False, max_rounds=300)

    def test_two_messages_per_node_per_round(self):
        graph = random_strongly_connected(40, 40, seed=2)
        result = run_pointer_jump(graph, seed=3)
        # request + reply per node per round, minus slack for the final round
        assert result.total_messages <= 2 * graph.n * result.rounds

    def test_seed_determinism(self):
        graph = random_strongly_connected(20, 20, seed=9)
        a = run_pointer_jump(graph, seed=7)
        b = run_pointer_jump(graph, seed=7)
        assert a.rounds == b.rounds
        assert a.total_messages == b.total_messages
