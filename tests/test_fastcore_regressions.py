"""Regression tests for the fast-loop parity bugfix batch (ISSUE 9).

Two historical divergence surfaces between :func:`repro.sim.fastcore.run_fast`
and the legacy :meth:`Simulator.run` loop:

* **Step-limit boundary**: the fast loop used to re-derive the quiescence
  predicate from its local pool binding (``len(pool) - _cancelled_timers``)
  instead of consulting :attr:`Simulator.is_quiescent` -- the single
  definition the legacy loop reads.  For the stock schedulers the two
  expressions are numerically equal, but the duplication meant any
  refinement of quiescence diverged silently.
  ``test_fast_loop_consults_is_quiescent`` fails against the pre-fix loop;
  the matrix tests pin (raise/no-raise, ``sim.steps``, folded stats) at
  exactly ``max_steps`` with cancelled timers still in the pool.

* **``fast_transmit`` error paths**: the interned-channel send used to
  create the ``out_by_src`` map entry, the channel deque *on the
  simulator's ``_channels`` dict*, and the channel-id interning row before
  validating the message, so a missing-``msg_type`` ``TypeError`` leaked a
  half-created channel that legacy ``Simulator.transmit`` (validate first,
  mutate last) never creates.  ``test_missing_msg_type_leaves_no_channel``
  fails against the pre-fix loop; the rest pin the two raise sites and the
  resumed-run behaviour against the legacy path.
"""

import pytest

from repro.sim import fastcore
from repro.sim.network import SimNode, Simulator, StepLimitExceeded
from repro.sim.scheduler import (
    GlobalFifoScheduler,
    LifoScheduler,
    RandomScheduler,
)
from repro.sim.trace import bits_for_ids

SCHEDULERS = {
    "fifo": GlobalFifoScheduler,
    "lifo": LifoScheduler,
    "random": lambda: RandomScheduler(seed=11),
}


class Ping:
    msg_type = "ping"

    def __init__(self, tag=0):
        self.tag = tag

    def bit_size(self, id_bits):
        return bits_for_ids(1, id_bits)


class Relay(SimNode):
    """Forwards a ping around a ring ``hops`` times; optionally arms and
    cancels timers on wake so cancelled TimerTokens sit in the pool."""

    def __init__(self, node_id, peer, hops, timers=0, cancel=0):
        super().__init__(node_id)
        self.peer = peer
        self.hops = hops
        self.timers = timers
        self.cancel = cancel
        self.fired = 0
        self.received = 0

    def on_wake(self):
        tokens = [
            self.sim.schedule_timer(self.node_id, delay=1)
            for _ in range(self.timers)
        ]
        for token in tokens[: self.cancel]:
            self.sim.cancel_timer(token)
        self.send(self.peer, Ping())

    def on_message(self, sender, message):
        self.received += 1
        if message.tag + 1 < self.hops:
            self.send(self.peer, Ping(message.tag + 1))

    def on_timer(self, tag):
        self.fired += 1


def _ring(scheduler_factory, *, hops=6, timers=0, cancel=0, fast=True):
    sim = Simulator(scheduler_factory(), fast=fast)
    sim.add_node(Relay("a", "b", hops, timers=timers, cancel=cancel))
    sim.add_node(Relay("b", "a", hops, timers=timers, cancel=cancel))
    sim.schedule_wake("a")
    sim.schedule_wake("b")
    return sim


def _outcome(sim, max_steps):
    """(raised, steps, folded stats, channel keys) -- everything the
    boundary decision can observably change."""
    raised = False
    try:
        sim.run(max_steps)
    except StepLimitExceeded:
        raised = True
    return (
        raised,
        sim.steps,
        dict(sim.stats.messages_by_type),
        dict(sim.stats.bits_by_type),
        sorted(sim._channels.keys()),
    )


class TestStepLimitBoundary:
    """Satellite 1: the raise/no-raise decision at exactly ``max_steps``."""

    @pytest.mark.parametrize("sched", sorted(SCHEDULERS))
    @pytest.mark.parametrize("timers,cancel", [(0, 0), (3, 3), (4, 2)])
    def test_boundary_matrix(self, sched, timers, cancel):
        # Total step count of the quiesced run, measured once; then sweep
        # max_steps across the whole range including the exact boundary.
        probe = _ring(SCHEDULERS[sched], timers=timers, cancel=cancel, fast=True)
        probe.run()
        total = probe.steps
        for limit in [1, 2, total - 1, total, total + 1]:
            if limit < 1:
                continue
            fast = _outcome(
                _ring(SCHEDULERS[sched], timers=timers, cancel=cancel, fast=True),
                limit,
            )
            legacy = _outcome(
                _ring(SCHEDULERS[sched], timers=timers, cancel=cancel, fast=False),
                limit,
            )
            assert fast == legacy, f"boundary divergence at max_steps={limit}"

    def test_exact_limit_with_cancelled_timers_no_raise(self):
        # Cancelled timers still in the pool after the limit-th step must
        # not count as pending work: both paths finish without raising.
        sim = _ring(GlobalFifoScheduler, timers=2, cancel=2, fast=True)
        probe = _ring(GlobalFifoScheduler, timers=2, cancel=2, fast=False)
        probe.run()
        sim.run(probe.steps)  # exactly the boundary; raise would fail this
        assert sim.steps == probe.steps
        assert sim._last_run_path in ("fast", "array")
        assert probe._last_run_path == "legacy"

    def test_fast_loop_consults_is_quiescent(self):
        # Failing-pre-fix: quiescence is one simulator-defined predicate.
        # A subclass refining it (e.g. "external work still pending") must
        # steer the fast loop's boundary decision exactly like the legacy
        # loop's -- the pre-fix loop re-derived the predicate from its
        # local pool binding and ran to completion without raising.
        class NeverQuiescent(Simulator):
            is_quiescent = property(lambda self: False)

        def build():
            sim = NeverQuiescent(GlobalFifoScheduler())
            sim.add_node(Relay("a", "b", hops=4))
            sim.add_node(Relay("b", "a", hops=4))
            sim.schedule_wake("a")
            sim.schedule_wake("b")
            return sim

        legacy = build()
        legacy.run()  # drains; total steps of the workload
        total = legacy.steps

        legacy_limited = build()
        with pytest.raises(StepLimitExceeded):
            legacy_limited.run(total)  # run() on a subclass: legacy loop

        fast_limited = build()
        with pytest.raises(StepLimitExceeded):
            fastcore.run_fast(fast_limited, total)
        assert fast_limited.steps == legacy_limited.steps


class Bogus:
    """No ``msg_type`` attribute: transmit must reject before mutating."""

    def bit_size(self, id_bits):  # pragma: no cover - never reached
        return 1


class ErrNode(SimNode):
    """Sends a good ping to ``peer``, then one configurable bad send.

    The bad send targets ``bad_dst`` ("c" by default -- a *known* node
    with no pre-existing channel, so a leaked half-created channel is
    distinguishable from the good ping's legitimate one).
    """

    def __init__(self, node_id, peer, bad_dst=None, bad_msg=None):
        super().__init__(node_id)
        self.peer = peer
        self.bad_dst = bad_dst
        self.bad_msg = bad_msg
        self.received = 0

    def on_wake(self):
        self.send(self.peer, Ping())
        if self.bad_dst is not None or self.bad_msg is not None:
            self.send(
                self.bad_dst if self.bad_dst is not None else "c",
                self.bad_msg if self.bad_msg is not None else Ping(),
            )

    def on_message(self, sender, message):
        self.received += 1


def _err_sim(fast, **kwargs):
    sim = Simulator(GlobalFifoScheduler(), fast=fast)
    sim.add_node(ErrNode("a", "b", **kwargs))
    sim.add_node(SilentNode("b"))
    sim.add_node(SilentNode("c"))
    sim.schedule_wake("a")
    return sim


class SilentNode(SimNode):
    def __init__(self, node_id):
        super().__init__(node_id)
        self.received = 0

    def on_wake(self):
        pass

    def on_message(self, sender, message):
        self.received += 1


def _post_raise_state(sim):
    return (
        sorted(sim._channels.keys()),
        {k: len(q) for k, q in sim._channels.items()},
        dict(sim.stats.messages_by_type),
        dict(sim.stats.bits_by_type),
        sim.steps,
        len(sim.scheduler),
    )


class TestTransmitErrorPaths:
    """Satellite 2: raising sends leave identical state on both paths."""

    def test_unknown_destination_parity(self):
        fast = _err_sim(True, bad_dst="ghost")
        legacy = _err_sim(False, bad_dst="ghost")
        with pytest.raises(KeyError, match="unknown node 'ghost'"):
            fast.run()
        with pytest.raises(KeyError, match="unknown node 'ghost'"):
            legacy.run()
        assert _post_raise_state(fast) == _post_raise_state(legacy)

    def test_missing_msg_type_leaves_no_channel(self):
        # Failing-pre-fix: the fast path created the ('a','b') channel on
        # ``sim._channels`` (and its interning row) before discovering the
        # message has no msg_type; legacy validates first.
        fast = _err_sim(True, bad_msg=Bogus())
        legacy = _err_sim(False, bad_msg=Bogus())
        with pytest.raises(TypeError, match="lacks a msg_type"):
            fast.run()
        with pytest.raises(TypeError, match="lacks a msg_type"):
            legacy.run()
        # The good ping's ('a','b') channel is the only one allowed to
        # exist; the raising send to 'c' must leave no trace.
        assert ("a", "c") not in fast._channels
        assert _post_raise_state(fast) == _post_raise_state(legacy)

    def test_keyerror_precedence_over_typeerror(self):
        # Unknown destination *and* malformed message: the destination
        # check fires first on both paths.
        for fast_flag in (True, False):
            sim = _err_sim(fast_flag, bad_dst="ghost", bad_msg=Bogus())
            with pytest.raises(KeyError, match="unknown node 'ghost'"):
                sim.run()

    @pytest.mark.parametrize("bad", ["dst", "msg"])
    def test_resumed_run_equivalence(self, bad):
        # After the raise, drop the faulty send and resume: both paths
        # must drain the surviving traffic to the same final state.
        kwargs = {"bad_dst": "ghost"} if bad == "dst" else {"bad_msg": Bogus()}
        exc = KeyError if bad == "dst" else TypeError

        def drive(fast_flag):
            sim = _err_sim(fast_flag, **kwargs)
            with pytest.raises(exc):
                sim.run()
            a = sim.nodes["a"]
            a.bad_dst = a.bad_msg = None
            sim.run()
            return (
                _post_raise_state(sim),
                sim.nodes["b"].received,
                sim.is_quiescent,
            )

        assert drive(True) == drive(False)
