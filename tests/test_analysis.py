"""Unit tests for fitting, tables, and the experiment runners."""

import math

import pytest

from repro.analysis.experiments import (
    GRAPH_FAMILIES,
    build_family,
    exp_adhoc_probes,
    exp_baseline_comparison,
    exp_bit_complexity,
    exp_dynamic_additions,
    exp_generic_scaling,
    exp_message_lemmas,
    exp_near_linear_scaling,
    exp_sequential_unionfind,
    exp_strongly_connected,
    exp_tree_lower_bound,
    exp_unionfind_reduction,
)
from repro.analysis.fitting import COST_MODELS, best_model, fit_model, ratio_series
from repro.analysis.tables import format_number, render_table
from repro.graphs.components import is_weakly_connected


class TestFitting:
    NS = [32, 64, 128, 256, 512, 1024]

    def test_perfect_linear_series(self):
        ys = [3.0 * n for n in self.NS]
        fit = fit_model(self.NS, ys, COST_MODELS["n"])
        assert fit.constant == pytest.approx(3.0)
        assert fit.max_relative_residual < 1e-9

    def test_best_model_identifies_nlogn(self):
        ys = [2.0 * n * math.log2(n) for n in self.NS]
        fit = best_model(self.NS, ys, candidates=("n", "n log n", "n^2"))
        assert fit.model.name == "n log n"

    def test_best_model_identifies_quadratic(self):
        ys = [0.5 * n * n for n in self.NS]
        fit = best_model(self.NS, ys, candidates=("n", "n log n", "n^2"))
        assert fit.model.name == "n^2"

    def test_ratio_series(self):
        series = ratio_series([10, 20], [30.0, 60.0], "n")
        assert series == [(10, 3.0), (20, 3.0)]

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            fit_model([], [], COST_MODELS["n"])
        with pytest.raises(ValueError):
            fit_model([1, 2], [1.0], COST_MODELS["n"])

    def test_fit_str(self):
        fit = fit_model([4, 8], [4.0, 8.0], COST_MODELS["n"])
        assert "c=1.000" in str(fit)


class TestTables:
    def test_render_basic(self):
        out = render_table(["a", "bb"], [[1, 2.5], [3000, "x"]])
        lines = out.splitlines()
        assert lines[0].split() == ["a", "bb"]
        assert "3,000" in out
        assert "2.5" in out

    def test_row_length_mismatch(self):
        with pytest.raises(ValueError):
            render_table(["a"], [[1, 2]])

    def test_format_number(self):
        assert format_number(True) == "yes"
        assert format_number(False) == "no"
        assert format_number(0.0) == "0"
        assert format_number(1234567) == "1,234,567"
        assert format_number(0.125) == "0.125"
        assert format_number("text") == "text"
        assert format_number(12345.6) == "12,346"


class TestGraphFamilies:
    @pytest.mark.parametrize("family", sorted(GRAPH_FAMILIES))
    def test_families_build_connected_graphs(self, family):
        graph = build_family(family, 40, seed=1)
        assert graph.n >= 7
        assert is_weakly_connected(graph)


class TestExperimentRunners:
    """Each runner must produce a well-formed table on tiny parameters.
    The heavier shape assertions live in the benchmarks; here we pin the
    schema and basic sanity so EXPERIMENTS.md stays regenerable."""

    def test_generic_scaling(self):
        headers, rows = exp_generic_scaling(ns=(16, 32), families=("star",))
        assert headers[0] == "family"
        assert len(rows) == 2
        assert all(row[3] > 0 for row in rows)

    def test_near_linear(self):
        headers, rows = exp_near_linear_scaling(
            ns=(16, 32), variants=("adhoc",), families=("sparse-random",)
        )
        assert len(rows) == 2
        assert all(row[4] < 20 for row in rows)  # msgs/(n alpha) sane

    def test_bits(self):
        headers, rows = exp_bit_complexity(ns=(16, 32), families=("sparse-random",))
        assert all(row[4] < 24 for row in rows)

    def test_lemmas_table(self):
        headers, rows = exp_message_lemmas(ns=(16,), variants=("generic",))
        assert len(rows) == 7
        assert all(row[-1] for row in rows)  # all bounds hold

    def test_tree_lower_bound_table(self):
        headers, rows = exp_tree_lower_bound(heights=(2, 3))
        assert all(row[-1] for row in rows)  # floor holds

    def test_reduction_table(self):
        headers, rows = exp_unionfind_reduction(ns=(8,))
        assert len(rows) == 3

    def test_dynamic_table(self):
        headers, rows = exp_dynamic_additions(n_initial=24, n_new=6, links_new=6)
        values = {row[0]: row[1] for row in rows}
        assert values["per node join"] < 60

    def test_baseline_comparison_table(self):
        headers, rows = exp_baseline_comparison(n=32)
        names = [row[0] for row in rows]
        assert "flooding" in names
        assert any("ad-hoc" in name for name in names)
        flooding = next(row for row in rows if row[0] == "flooding")
        adhoc = next(row for row in rows if "ad-hoc" in row[0])
        assert flooding[2] > adhoc[2]  # flooding costs more messages

    def test_probe_table(self):
        headers, rows = exp_adhoc_probes(n=32, probes=20)
        values = {row[0]: row[1] for row in rows}
        assert values["per probe"] <= 10

    def test_strongly_connected_table(self):
        headers, rows = exp_strongly_connected(ns=(16, 32))
        assert all(abs(row[2] - 2.0) < 0.2 for row in rows)  # ~2 msgs/node

    def test_sequential_unionfind_table(self):
        headers, rows = exp_sequential_unionfind(ns=(64,))
        assert {row[0] for row in rows} == {"rank/random", "naive/chain"}
        assert {row[2] for row in rows} == {"compress", "halve", "none"}


class TestCrossover:
    def test_a_wins_everywhere(self):
        from repro.analysis.fitting import crossover

        assert crossover([1, 2, 3], [1, 1, 1], [2, 2, 2]) == ("a_wins", pytest.approx(float("nan"), nan_ok=True))

    def test_b_wins_everywhere(self):
        from repro.analysis.fitting import crossover

        kind, _ = crossover([1, 2], [5, 5], [1, 1])
        assert kind == "b_wins"

    def test_interpolated_crossing(self):
        from repro.analysis.fitting import crossover

        kind, x = crossover([0, 10], [0, 10], [5, 5])
        assert kind == "crossover"
        assert x == pytest.approx(5.0)

    def test_exact_touch(self):
        from repro.analysis.fitting import crossover

        kind, x = crossover([1, 2, 3], [0, 2, 4], [4, 2, 0])
        assert kind == "crossover"
        assert x == pytest.approx(2.0)

    def test_validation(self):
        from repro.analysis.fitting import crossover

        with pytest.raises(ValueError):
            crossover([1], [1], [1])
        with pytest.raises(ValueError):
            crossover([1, 2], [1], [1, 2])
