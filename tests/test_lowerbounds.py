"""Tests for the two lower-bound constructions."""

import math

import pytest

from repro.graphs.generators import complete_binary_tree
from repro.graphs.reduction import (
    FindOp,
    UnionOp,
    binomial_merge_schedule,
    build_reduction_graph,
    interleaved_find_schedule,
    random_schedule,
)
from repro.lowerbounds.tree_adversary import (
    TreeAdversary,
    run_tree_lower_bound,
    theorem_1_floor,
)
from repro.lowerbounds.unionfind_reduction import ReductionDriver, run_reduction
from repro.sim.events import DeliverToken, WakeToken
from repro.unionfind.ackermann import alpha
from repro.verification.invariants import verify_discovery


class TestTheorem1Floor:
    def test_closed_form(self):
        # i * 2^(i-1) - 2
        assert theorem_1_floor(2) == 2
        assert theorem_1_floor(3) == 10
        assert theorem_1_floor(4) == 30
        assert theorem_1_floor(1) == 0

    def test_equals_half_n_log_n(self):
        for i in (3, 6, 10):
            n = 2**i - 1
            assert theorem_1_floor(i) >= 0.5 * n * math.log2(n + 1) - 2


class TestTreeAdversary:
    def test_release_order_is_deepest_first(self):
        adversary = TreeAdversary(4)  # 15 nodes, internal 0..6
        depths = [TreeAdversary._depth(k) for k in adversary._release_queue]
        assert depths == sorted(depths, reverse=True)
        assert adversary._release_queue[-1] == 0  # the root goes last

    def test_leaves_start_released(self):
        adversary = TreeAdversary(3)
        assert adversary.released == {3, 4, 5, 6}

    def test_blocks_only_unreleased_senders(self):
        adversary = TreeAdversary(3)
        assert adversary.blocks(DeliverToken(0, 1), None)
        assert not adversary.blocks(DeliverToken(3, 1), None)
        assert not adversary.blocks(WakeToken(0), None)

    def test_on_stall_exhausts(self):
        adversary = TreeAdversary(2)  # one internal node: the root
        assert adversary.on_stall(None)
        assert not adversary.on_stall(None)

    def test_height_validation(self):
        with pytest.raises(ValueError):
            TreeAdversary(0)


class TestTreeLowerBound:
    @pytest.mark.parametrize("height", [2, 3, 4, 5, 6, 7])
    def test_floor_respected_and_execution_correct(self, height):
        outcome = run_tree_lower_bound(height)
        assert outcome.respects_floor, outcome.summary()
        verify_discovery(outcome.result, complete_binary_tree(height))

    def test_adversary_forces_more_messages_than_fifo(self):
        """The adversarial schedule must not be cheaper than a benign one
        by a large margin (it exists to force work)."""
        from repro.core.generic import run_generic

        height = 6
        graph = complete_binary_tree(height)
        benign = run_generic(graph)
        adversarial = run_tree_lower_bound(height)
        assert adversarial.measured_messages >= 0.8 * benign.total_messages

    def test_summary_format(self):
        outcome = run_tree_lower_bound(3)
        assert "T(3)" in outcome.summary()


class TestReductionSchedules:
    def test_random_schedule_is_valid(self):
        ops = random_schedule(10, 5, seed=2)
        unions = [op for op in ops if isinstance(op, UnionOp)]
        finds = [op for op in ops if isinstance(op, FindOp)]
        assert len(unions) == 9
        assert len(finds) == 5
        # Valid = compiles without the disjointness check firing.
        build_reduction_graph(10, ops)

    def test_binomial_rounds_down_to_power_of_two(self):
        ops = binomial_merge_schedule(10, 1, seed=0)  # uses 8 sets
        unions = [op for op in ops if isinstance(op, UnionOp)]
        assert len(unions) == 7

    def test_interleaved_finds(self):
        ops = interleaved_find_schedule(5, 3, seed=0)
        assert sum(isinstance(op, FindOp) for op in ops) == 4 * 3

    def test_build_validates_indices(self):
        with pytest.raises(ValueError):
            build_reduction_graph(3, [UnionOp(0, 5)])
        with pytest.raises(ValueError):
            build_reduction_graph(3, [UnionOp(1, 1)])
        with pytest.raises(TypeError):
            build_reduction_graph(3, ["not-an-op"])

    def test_build_rejects_too_many_unions(self):
        with pytest.raises(ValueError):
            build_reduction_graph(2, [UnionOp(0, 1), UnionOp(0, 1)])

    def test_graph_structure(self):
        reduction = build_reduction_graph(3, [UnionOp(0, 1), FindOp(2)])
        g = reduction.graph
        assert g.n == 5  # 3 set nodes + 1 union node + 1 find node
        assert g.out_degree(reduction.wake_schedule[0]) == 2
        assert g.out_degree(reduction.wake_schedule[1]) == 1
        assert reduction.n_sets == 3


class TestReductionDriver:
    def test_semantics_verified_against_quickfind(self):
        # verify=True cross-checks the full partition after every operation.
        run_reduction(8, random_schedule(8, 8, seed=5), verify=True)

    def test_chain_schedule_semantics(self):
        run_reduction(6, interleaved_find_schedule(6, 2, seed=1), verify=True)

    def test_per_operation_cost_is_bounded(self):
        """Theorem 6 meets Lemma 3.1: amortized messages per operation stay
        below a constant times alpha."""
        outcome = run_reduction(32, random_schedule(32, 32, seed=0), verify=False)
        per_op = outcome.total_messages / outcome.n_operations
        assert per_op <= 30

    def test_alpha_ratio_bounded_across_sizes(self):
        ratios = []
        for n in (8, 32, 64):
            outcome = run_reduction(
                n, binomial_merge_schedule(n, 1, seed=1), verify=False
            )
            ratios.append(outcome.alpha_bound_ratio)
        assert max(ratios) <= 12
        # And the trend must not be increasing by much (near-linearity).
        assert ratios[-1] <= ratios[0] * 1.5

    def test_union_merges_leaders(self):
        reduction = build_reduction_graph(2, [UnionOp(0, 1)])
        driver = ReductionDriver(reduction)
        outcome = driver.drive()
        assert outcome.n_operations == 1
        assert outcome.total_messages > 0
