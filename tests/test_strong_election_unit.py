"""Unit tests for the token-traversal election internals."""

import pytest

from repro.baselines.strong_election import Elected, Token, TraversalNode, run_strong_election
from repro.graphs.generators import directed_cycle, random_strongly_connected
from repro.graphs.knowledge_graph import KnowledgeGraph
from repro.sim.network import Simulator


def wired(nodes_spec):
    sim = Simulator()
    nodes = {}
    for node_id, local in nodes_spec.items():
        node = TraversalNode(node_id, frozenset(local))
        nodes[node_id] = node
        sim.add_node(node)
    return sim, nodes


class TestTraversal:
    def test_non_initiator_wake_is_silent(self):
        sim, nodes = wired({0: {1}, 1: {0}})
        nodes[0].awake = True
        nodes[0].on_wake()
        assert sim.in_flight() == 0

    def test_token_jumps_to_min_unvisited(self):
        sim, nodes = wired({0: {1, 2}, 1: set(), 2: set()})
        nodes[0].awake = True
        nodes[0].initiator = True
        nodes[0].on_wake()
        assert sim.channel_backlog(0, 1) == 1  # min(unvisited) first

    def test_completion_broadcast(self):
        sim, nodes = wired({0: {1}, 1: set()})
        nodes[1].awake = True
        nodes[1].on_message(
            0, Token(visited=frozenset({0}), pool=frozenset({0, 1}))
        )
        # 1 completes the traversal: pool exhausted -> elects max id 1,
        # broadcasts Elected to node 0.
        assert nodes[1].leader == 1
        assert sim.channel_backlog(1, 0) == 1

    def test_elected_message_adopted(self):
        sim, nodes = wired({0: set(), 1: set()})
        nodes[0].awake = True
        nodes[0].on_message(1, Elected(leader=1, ids=frozenset({0, 1})))
        assert nodes[0].leader == 1
        assert nodes[0].known == frozenset({0, 1})

    def test_unexpected_message_rejected(self):
        class Junk:
            msg_type = "junk"

            def bit_size(self, b):
                return 1

        sim, nodes = wired({0: set()})
        nodes[0].awake = True
        with pytest.raises(ValueError):
            nodes[0].on_message(1, Junk())


class TestRunnerEdges:
    def test_unknown_initiator_rejected(self):
        with pytest.raises(KeyError):
            run_strong_election(directed_cycle(4), initiator="ghost")

    def test_bit_heaviness_is_real(self):
        """The token carries O(n) ids: bits grow quadratically even though
        messages stay linear (the trade the docstring promises)."""
        small = run_strong_election(random_strongly_connected(32, 32, seed=1))
        large = run_strong_election(random_strongly_connected(128, 128, seed=1))
        msg_growth = large.total_messages / small.total_messages
        bit_growth = large.total_bits / small.total_bits
        assert bit_growth > 3 * msg_growth
