"""Tests for schedule recording and replay."""

import pytest

from repro.core.result import collect_result
from repro.core.runner import build_simulation
from repro.graphs.generators import random_weakly_connected
from repro.sim.events import DeliverToken, WakeToken
from repro.sim.replay import RecordingScheduler, ReplayDivergence, ReplayScheduler
from repro.sim.scheduler import RandomScheduler
from repro.verification.invariants import verify_discovery


def record_run(graph, variant="generic", seed=13):
    scheduler = RecordingScheduler(RandomScheduler(seed))
    sim, nodes = build_simulation(graph, variant, scheduler=scheduler, keep_trace=True)
    sim.run(10**7)
    result = collect_result(graph, nodes, sim, variant)
    return scheduler.decisions, sim.trace.fingerprint(), result


class TestRecordReplay:
    @pytest.mark.parametrize("variant", ["generic", "bounded", "adhoc"])
    def test_replay_reproduces_execution_exactly(self, variant):
        graph = random_weakly_connected(20, 40, seed=6)
        decisions, fingerprint, result = record_run(graph, variant)
        replay = ReplayScheduler(decisions)
        sim, nodes = build_simulation(graph, variant, scheduler=replay, keep_trace=True)
        sim.run(10**7)
        replayed = collect_result(graph, nodes, sim, variant)
        assert sim.trace.fingerprint() == fingerprint
        assert replayed.stats.messages_by_type == result.stats.messages_by_type
        assert replayed.leaders == result.leaders
        verify_discovery(replayed, graph)
        assert replay.remaining_script == 0

    def test_recording_wraps_transparently(self):
        graph = random_weakly_connected(15, 30, seed=2)
        plain = build_simulation(graph, "generic", seed=7)[0]
        plain.run(10**7)
        recorded_sched = RecordingScheduler(RandomScheduler(7))
        recorded = build_simulation(graph, "generic", scheduler=recorded_sched)[0]
        recorded.run(10**7)
        assert recorded.stats.messages_by_type == plain.stats.messages_by_type
        assert len(recorded_sched.decisions) == recorded.steps


class TestDivergenceDetection:
    def test_wrong_graph_diverges(self):
        graph = random_weakly_connected(20, 40, seed=6)
        decisions, _, _ = record_run(graph)
        other = random_weakly_connected(20, 40, seed=7)
        replay = ReplayScheduler(decisions)
        sim, _ = build_simulation(other, "generic", scheduler=replay)
        with pytest.raises(ReplayDivergence):
            sim.run(10**7)

    def test_truncated_recording_detected(self):
        graph = random_weakly_connected(12, 24, seed=3)
        decisions, _, _ = record_run(graph)
        replay = ReplayScheduler(decisions[: len(decisions) // 2])
        sim, _ = build_simulation(graph, "generic", scheduler=replay)
        with pytest.raises(ReplayDivergence, match="exhausted"):
            sim.run(10**7)

    def test_unexpected_token_detected(self):
        replay = ReplayScheduler([DeliverToken("a", "b")])
        replay.push(WakeToken("a"))
        with pytest.raises(ReplayDivergence, match="not pending"):
            replay.pop(None)

    def test_pending_introspection(self):
        replay = ReplayScheduler([WakeToken("a")])
        replay.push(WakeToken("a"))
        assert len(replay) == 1
        assert list(replay.pending()) == [WakeToken("a")]
        assert replay.pop(None) == WakeToken("a")
        assert replay.pop(None) is None
