"""Unit tests for message/bit accounting and execution traces."""

from repro.sim.trace import (
    HEADER_BITS,
    ExecutionTrace,
    MessageStats,
    TraceEvent,
    bits_for_ids,
)


class TestBitsForIds:
    def test_header_only(self):
        assert bits_for_ids(0, 10) == HEADER_BITS

    def test_ids_and_ints(self):
        assert bits_for_ids(3, 10) == HEADER_BITS + 30
        assert bits_for_ids(1, 8, extra_ints=2) == HEADER_BITS + 24


class TestMessageStats:
    def test_record_and_totals(self):
        stats = MessageStats()
        stats.record("a", 10)
        stats.record("a", 5)
        stats.record("b", 1)
        assert stats.total_messages == 3
        assert stats.total_bits == 16
        assert stats.messages("a") == 2
        assert stats.messages("a", "b") == 3
        assert stats.bits("a") == 15
        assert stats.messages("missing") == 0

    def test_snapshot_is_independent(self):
        stats = MessageStats()
        stats.record("a", 1)
        snap = stats.snapshot()
        stats.record("a", 1)
        assert snap.total_messages == 1
        assert stats.total_messages == 2

    def test_delta_since(self):
        stats = MessageStats()
        stats.record("a", 4)
        before = stats.snapshot()
        stats.record("a", 4)
        stats.record("b", 2)
        delta = stats.delta_since(before)
        assert delta.messages_by_type == {"a": 1, "b": 1}
        assert delta.bits_by_type == {"a": 4, "b": 2}

    def test_merged_with(self):
        left = MessageStats({"a": 1}, {"a": 10})
        right = MessageStats({"a": 2, "b": 1}, {"a": 20, "b": 5})
        merged = left.merged_with(right)
        assert merged.messages_by_type == {"a": 3, "b": 1}
        assert merged.bits_by_type == {"a": 30, "b": 5}
        # Inputs untouched.
        assert left.messages_by_type == {"a": 1}

    def test_repr_mentions_totals(self):
        stats = MessageStats()
        stats.record("x", 2)
        assert "messages=1" in repr(stats)


class TestExecutionTrace:
    def test_append_iter_len(self):
        trace = ExecutionTrace()
        trace.append(TraceEvent(1, "wake", None, "a", None))
        trace.append(TraceEvent(2, "deliver", "a", "b", "ping"))
        assert len(trace) == 2
        assert [e.kind for e in trace] == ["wake", "deliver"]

    def test_fingerprint_equality(self):
        t1, t2 = ExecutionTrace(), ExecutionTrace()
        for t in (t1, t2):
            t.append(TraceEvent(1, "deliver", "a", "b", "m"))
        assert t1.fingerprint() == t2.fingerprint()
        t2.append(TraceEvent(2, "deliver", "b", "a", "m"))
        assert t1.fingerprint() != t2.fingerprint()
