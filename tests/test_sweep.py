"""Tests for multi-seed table aggregation."""

import pytest

from repro.analysis.sweep import aggregate_tables, sweep_seeds


def table(values):
    return (["name", "n", "msgs"], [["a", 10, values[0]], ["b", 20, values[1]]])


class TestAggregate:
    def test_identical_tables_stay_plain(self):
        headers, rows = aggregate_tables([table([5, 7]), table([5, 7])])
        assert rows == [["a", 10, 5], ["b", 20, 7]]

    def test_varying_numeric_cells_get_ranges(self):
        headers, rows = aggregate_tables([table([4, 7]), table([6, 7])])
        assert rows[0][2] == "5 [4, 6]"
        assert rows[1][2] == 7

    def test_identity_mismatch_rejected(self):
        other = (["name", "n", "msgs"], [["zzz", 10, 5], ["b", 20, 7]])
        with pytest.raises(ValueError, match="identity"):
            aggregate_tables([table([5, 7]), other])

    def test_header_mismatch_rejected(self):
        other = (["x"], [[1], [2]])
        with pytest.raises(ValueError, match="header"):
            aggregate_tables([table([5, 7]), other])

    def test_row_count_mismatch_rejected(self):
        other = (["name", "n", "msgs"], [["a", 10, 5]])
        with pytest.raises(ValueError, match="row-count"):
            aggregate_tables([table([5, 7]), other])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            aggregate_tables([])

    def test_booleans_are_identity_not_numbers(self):
        left = (["k", "ok"], [["x", True]])
        right = (["k", "ok"], [["x", True]])
        headers, rows = aggregate_tables([left, right])
        assert rows == [["x", True]]


class TestSweep:
    def test_sweeps_real_experiment(self):
        from repro.analysis.experiments import exp_strongly_connected

        headers, rows = sweep_seeds(
            lambda seed: exp_strongly_connected(ns=(16, 32), seed=seed),
            seeds=range(3),
        )
        # Message counts are schedule-independent here: exactly 2(n-1).
        assert rows[0][1] == 30
        assert rows[1][1] == 62

    def test_sweep_shows_randomized_spread(self):
        from repro.analysis.experiments import exp_generic_scaling

        headers, rows = sweep_seeds(
            lambda seed: exp_generic_scaling(
                ns=(32,), families=("sparse-random",), seed=seed
            ),
            seeds=range(3),
        )
        # Different seeds -> different graphs -> a spread cell somewhere.
        assert any(isinstance(cell, str) and "[" in str(cell) for cell in rows[0])

    def test_requires_seeds(self):
        with pytest.raises(ValueError):
            sweep_seeds(lambda seed: table([1, 2]), seeds=[])


class TestCliProfile:
    def test_profile_command(self, capsys):
        from repro.cli import main

        assert main(["profile", "--n", "48", "--variant", "adhoc"]) == 0
        out = capsys.readouterr().out
        assert "phase histogram" in out
        assert "traffic mix" in out
