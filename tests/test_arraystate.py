"""Tests for the array-backed protocol core (``repro.core.arraystate``).

Four layers:

* unit tests of the interning/order primitives (:class:`IdSpace`,
  :func:`rank_sorted`, :func:`k_smallest`) against their object-path
  definitions (``sorted(..., key=repr)`` et al.);
* engagement: the array core takes over eligible runs
  (``sim._last_run_path == "array"``) and declines -- simulator untouched,
  object fast loop proceeds -- on an empty/small pool or a monkeypatched
  :class:`DiscoveryNode`;
* differential: :func:`run_graph` (the object-free million-node driver)
  reproduces the object path's steps, per-type stats and leader set for
  every variant under both FIFO and seeded-random scheduling;
* the C loop: the compiled ``_arrayloop`` delivery loop and the pure-Python
  ``run_loop`` body produce identical results, including across a
  ``StepLimitExceeded`` boundary (the ``cell`` step-count protocol).
"""

import pytest

from repro.analysis.experiments import build_family
from repro.core import arrayloop
from repro.core.arraystate import (
    IdSpace,
    _Ineligible,
    k_smallest,
    rank_sorted,
    run_graph,
)
from repro.core.node import VARIANTS, DiscoveryNode, behavior_is_pristine
from repro.core.runner import build_simulation, default_step_budget
from repro.sim.network import StepLimitExceeded

FAMILY = "sparse-random"
N = 32
GRAPH_SEED = 1


def _graph(n=N, seed=GRAPH_SEED):
    return build_family(FAMILY, n, seed)


def _object_outcome(variant="generic", *, seed=None, fast=True, n=N):
    graph = _graph(n)
    sim, nodes = build_simulation(graph, variant, seed=seed, fast=fast)
    steps = sim.run(default_step_budget(graph))
    return {
        "steps": steps,
        "messages": dict(sim.stats.messages_by_type),
        "bits": dict(sim.stats.bits_by_type),
        "leaders": sorted(x for x, node in nodes.items() if node.is_leader),
        "path": sim._last_run_path,
    }


def _scale_outcome(variant="generic", *, seed=None, n=N):
    result = run_graph(_graph(n), variant, seed=seed)
    assert result.verified
    return {
        "steps": result.steps,
        "messages": dict(result.stats.messages_by_type),
        "bits": dict(result.stats.bits_by_type),
        "leaders": sorted(result.leaders),
    }


# ----------------------------------------------------------------------
# Interning and order primitives
# ----------------------------------------------------------------------
class TestIdSpace:
    def test_ranks_match_object_orders(self):
        ids = [5, 1, 12, 7, 103, 20]
        space = IdSpace(ids)
        by_repr = sorted(ids, key=repr)
        by_nat = sorted(ids)
        for i, x in enumerate(ids):
            assert space.repr_rank[i] == by_repr.index(x)
            assert space.nat_rank[i] == by_nat.index(x)
        assert [ids[i] for i in space.by_repr_rank] == by_repr
        assert space.index == {x: i for i, x in enumerate(ids)}

    def test_rejects_duplicate_reprs(self):
        class Blob:
            def __repr__(self):
                return "blob"

            def __lt__(self, other):
                return id(self) < id(other)

        with pytest.raises(_Ineligible, match="reprs are not unique"):
            IdSpace([Blob(), Blob()])

    def test_rejects_unorderable_ids(self):
        with pytest.raises(_Ineligible, match="not mutually orderable"):
            IdSpace([1, "a"])

    def test_rejects_equal_comparing_distinct_ids(self):
        # repr("1") != repr("1.0") but 1 < 1.0 is False both ways: the
        # natural order is not strict, so rank comparisons would invent
        # a tiebreak the object path's tuple comparison does not have.
        with pytest.raises(_Ineligible, match="not strictly totally ordered"):
            IdSpace([1, 1.0])


class TestRankOrders:
    def _space(self):
        return IdSpace(list(range(64)))

    @pytest.mark.parametrize(
        "members",
        [set(), {3}, {3, 17, 40, 9}, set(range(0, 64, 2)), set(range(64))],
        ids=["empty", "one", "sparse", "dense", "full"],
    )
    def test_rank_sorted_equals_sorted_by_repr(self, members):
        space = self._space()
        got = rank_sorted(members, space.repr_rank, space.by_repr_rank)
        assert got == sorted(members, key=lambda i: repr(space.ids[i]))

    @pytest.mark.parametrize("k", [0, 1, 3, 32, 64, 100])
    def test_k_smallest_equals_sorted_prefix(self, k):
        space = self._space()
        members = set(range(0, 64, 3))
        got = k_smallest(members, k, space.repr_rank)
        want = sorted(members, key=lambda i: repr(space.ids[i]))[:k]
        assert got == want


# ----------------------------------------------------------------------
# Engagement and decline
# ----------------------------------------------------------------------
class TestEngagement:
    def test_array_path_engages_on_stock_run(self):
        graph = _graph(48)
        sim, nodes = build_simulation(graph, "generic")
        sim.run(default_step_budget(graph))
        assert sim._last_run_path == "array"
        assert sim.is_quiescent
        assert any(node.is_leader for node in nodes.values())

    def test_empty_pool_declines_to_object_loop(self):
        graph = _graph(48)
        sim, _nodes = build_simulation(graph, "generic")
        sim.run(default_step_budget(graph))
        assert sim._last_run_path == "array"
        sim.run()  # nothing pending: the array core declines (pool << n)
        assert sim._last_run_path == "fast"

    def test_small_pool_declines(self):
        # Waking 2 of 48 nodes leaves the pool far below the engagement
        # threshold; the object fast loop must run the whole thing.
        graph = _graph(48)
        sim, _nodes = build_simulation(graph, "generic", auto_wake=False)
        for node_id in list(graph.nodes)[:2]:
            sim.schedule_wake(node_id)
        sim.run(default_step_budget(graph))
        assert sim._last_run_path == "fast"

    def test_monkeypatched_node_class_declines(self, monkeypatch):
        # The finding-regression suites monkeypatch DiscoveryNode methods
        # to reproduce historical bugs; the inlined array state machine
        # cannot honour a patched method, so it must stand down.
        calls = []
        orig = DiscoveryNode.on_wake

        def traced(self):
            calls.append(self.node_id)
            return orig(self)

        pristine = _object_outcome()
        monkeypatch.setattr(DiscoveryNode, "on_wake", traced)
        assert not behavior_is_pristine()
        patched = _object_outcome()
        assert patched["path"] == "fast"
        assert calls  # the patch actually took effect
        patched.pop("path")
        pristine.pop("path")
        assert patched == pristine


# ----------------------------------------------------------------------
# run_graph vs the object path
# ----------------------------------------------------------------------
class TestRunGraphDifferential:
    @pytest.mark.parametrize("variant", VARIANTS)
    @pytest.mark.parametrize("seed", [None, 3], ids=["fifo", "random"])
    def test_matches_object_path(self, variant, seed):
        scale = _scale_outcome(variant, seed=seed)
        obj = _object_outcome(variant, seed=seed)
        obj.pop("path")
        assert scale == obj

    def test_matches_legacy_loop(self):
        # Triangulation: the legacy object loop, the fast/array object
        # path and the graph driver all agree on one seeded workload.
        legacy = _object_outcome("generic", seed=3, fast=False)
        assert legacy.pop("path") == "legacy"
        assert _scale_outcome("generic", seed=3) == legacy

    def test_step_limit_raises_with_in_flight_count(self):
        graph = _graph()
        full = run_graph(graph, "generic")
        with pytest.raises(StepLimitExceeded, match="in flight"):
            run_graph(graph, "generic", max_steps=full.steps // 2)


# ----------------------------------------------------------------------
# Step-limit boundary and resumption through the array path
# ----------------------------------------------------------------------
class TestStepLimitAndResume:
    def _drive(self, fast):
        graph = _graph(48)
        sim, nodes = build_simulation(graph, "generic", fast=fast)
        probe, _ = build_simulation(graph, "generic", fast=fast)
        total = probe.run(default_step_budget(graph))
        cut = total // 2
        with pytest.raises(StepLimitExceeded):
            sim.run(cut)
        assert sim.steps == cut
        first_path = sim._last_run_path
        sim.run(default_step_budget(graph))  # resume to quiescence
        return (
            sim.steps,
            dict(sim.stats.messages_by_type),
            dict(sim.stats.bits_by_type),
            sorted(x for x, node in nodes.items() if node.is_leader),
        ), first_path

    def test_interrupted_run_resumes_to_identical_state(self):
        fast_final, fast_path = self._drive(fast=True)
        legacy_final, legacy_path = self._drive(fast=False)
        assert fast_path == "array"
        assert legacy_path == "legacy"
        assert fast_final == legacy_final


# ----------------------------------------------------------------------
# C loop vs pure-Python loop
# ----------------------------------------------------------------------
class TestCompiledLoop:
    def _pure_python(self, monkeypatch):
        # load() is memoized on _module; anything not the unset sentinel
        # is returned as-is, so this pins the pure-Python run_loop body.
        monkeypatch.setattr(arrayloop, "_module", None)

    @pytest.mark.parametrize("seed", [None, 3], ids=["fifo", "random"])
    def test_loops_identical(self, seed, monkeypatch):
        compiled = _scale_outcome("generic", seed=seed)
        self._pure_python(monkeypatch)
        assert arrayloop.load() is None
        assert _scale_outcome("generic", seed=seed) == compiled

    def test_loops_identical_across_limit_boundary(self, monkeypatch):
        # The cell protocol: the absolute step count must survive the
        # C/Python boundary on every exit, including the raising one.
        graph = _graph(48)
        full = run_graph(graph, "generic")
        cut = full.steps // 2

        def interrupted():
            with pytest.raises(StepLimitExceeded) as err:
                run_graph(graph, "generic", max_steps=cut)
            return str(err.value)

        compiled_msg = interrupted()
        self._pure_python(monkeypatch)
        assert interrupted() == compiled_msg
