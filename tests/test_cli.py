"""Tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, main


class TestRun:
    def test_run_default(self, capsys):
        assert main(["run", "--n", "32"]) == 0
        out = capsys.readouterr().out
        assert "generic: n=32" in out
        assert "complexity bounds" in out
        assert "verified" in out

    @pytest.mark.parametrize("variant", ["generic", "bounded", "adhoc"])
    def test_run_each_variant(self, capsys, variant):
        assert main(["run", "--variant", variant, "--n", "24", "--seed", "2"]) == 0
        assert f"{variant}: n=24" in capsys.readouterr().out

    @pytest.mark.parametrize("scheduler", ["fifo", "lifo", "random", "timed"])
    def test_run_each_scheduler(self, capsys, scheduler):
        assert main(["run", "--n", "16", "--scheduler", scheduler]) == 0
        out = capsys.readouterr().out
        if scheduler == "timed":
            assert "completion time" in out

    def test_run_greedy_ablation(self, capsys):
        assert main(["run", "--n", "24", "--greedy-queries"]) == 0

    def test_greedy_rejected_for_non_generic(self, capsys):
        assert main(["run", "--variant", "adhoc", "--greedy-queries"]) == 2
        assert "only applies" in capsys.readouterr().err

    def test_run_every_family(self, capsys):
        from repro.analysis.experiments import GRAPH_FAMILIES

        for family in sorted(GRAPH_FAMILIES):
            assert main(["run", "--family", family, "--n", "20"]) == 0


class TestExperiments:
    def test_quick_single(self, capsys):
        assert main(["experiments", "EXP-13", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "=== EXP-13 ===" in out
        assert "messages/n" in out

    def test_unknown_experiment(self, capsys):
        assert main(["experiments", "EXP-99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_all_quick_experiments_run(self, capsys):
        """Every registered experiment must work at quick size."""
        assert main(["experiments", *sorted(EXPERIMENTS), "--quick"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert f"=== {name} ===" in out


class TestOtherCommands:
    def test_compare(self, capsys):
        assert main(["compare", "--n", "32"]) == 0
        out = capsys.readouterr().out
        assert "flooding" in out
        assert "ad-hoc (this paper)" in out

    def test_lower_bound(self, capsys):
        assert main(["lower-bound", "--height", "4"]) == 0
        assert "floor holds" in capsys.readouterr().out

    def test_families(self, capsys):
        assert main(["families"]) == 0
        out = capsys.readouterr().out
        assert "sparse-random" in out
        assert "tree" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestChannelsFlag:
    def test_random_channels_run(self, capsys):
        assert main(["run", "--n", "24", "--channels", "random"]) == 0
        out = capsys.readouterr().out
        assert "channel discipline: random" in out
        assert "verified" in out


class TestSweep:
    def test_sweep_serial_quick(self, capsys, tmp_path):
        assert (
            main(
                [
                    "sweep", "--exp", "strongly-connected", "--seeds", "0:3",
                    "--quick", "--cache-dir", str(tmp_path), "--no-progress",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "=== strongly-connected x 3 seeds ===" in out
        assert "messages/n" in out

    def test_sweep_parallel_matches_serial(self, capsys, tmp_path):
        argv = [
            "sweep", "--exp", "strongly-connected", "--seeds", "0:3",
            "--quick", "--no-cache", "--no-progress",
        ]
        assert main(argv + ["--workers", "1"]) == 0
        serial_out = capsys.readouterr().out
        assert main(argv + ["--workers", "2"]) == 0
        parallel_out = capsys.readouterr().out
        assert serial_out == parallel_out

    def test_sweep_second_run_hits_cache(self, capsys, tmp_path):
        argv = [
            "sweep", "--exp", "strongly-connected", "--seeds", "0,2",
            "--quick", "--cache-dir", str(tmp_path),
        ]
        assert main(argv) == 0
        first = capsys.readouterr()
        assert "2 stores" in first.err
        assert main(argv) == 0
        second = capsys.readouterr()
        assert "2 hits" in second.err
        assert "cached" in second.err
        assert first.out == second.out

    def test_sweep_comma_seed_list(self, capsys, tmp_path):
        assert (
            main(
                [
                    "sweep", "--exp", "strongly-connected", "--seeds", "4,7",
                    "--quick", "--no-cache", "--no-progress",
                ]
            )
            == 0
        )
        assert "x 2 seeds" in capsys.readouterr().out

    def test_sweep_bad_seed_spec(self, capsys):
        assert main(["sweep", "--exp", "near-linear", "--seeds", "5:2"]) == 2
        assert "bad --seeds" in capsys.readouterr().err
        assert main(["sweep", "--exp", "near-linear", "--seeds", ","]) == 2
        assert "no seeds" in capsys.readouterr().err

    def test_sweep_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["sweep", "--exp", "nope", "--seeds", "0:2"])

    def test_sweep_unwritable_cache_dir_degrades_to_cache_off(
        self, capsys, tmp_path
    ):
        """A bad --cache-dir must not kill the sweep: warn once, run
        uncached, exit 0."""
        blocker = tmp_path / "cache-location"
        blocker.write_text("a file squatting on the cache path")
        assert (
            main(
                [
                    "sweep", "--exp", "strongly-connected", "--seeds", "0:2",
                    "--quick", "--cache-dir", str(blocker), "--no-progress",
                ]
            )
            == 0
        )
        captured = capsys.readouterr()
        assert "=== strongly-connected x 2 seeds ===" in captured.out
        assert "cache disabled" in captured.err

    def test_sweep_retries_recover_and_report(self, capsys, tmp_path, monkeypatch):
        """--retries re-runs failed jobs and the summary mentions it."""
        import functools

        from repro.analysis.experiments import SWEEPABLE_EXPERIMENTS
        from tests.test_parallel import exp_flaky_once

        monkeypatch.setitem(
            SWEEPABLE_EXPERIMENTS,
            "flaky-once",
            functools.partial(exp_flaky_once, flag_dir=str(tmp_path)),
        )
        argv = [
            "sweep", "--exp", "flaky-once", "--seeds", "0:2", "--no-cache",
            "--no-progress", "--retries", "1",
        ]
        assert main(argv) == 0
        err = capsys.readouterr().err
        assert "retries: 2 job(s) took multiple attempts (max 2)" in err


class TestServeSim:
    ARGS = [
        "serve-sim", "--rate", "8", "--duration", "1500",
        "--seed", "1", "--n", "32",
    ]

    def test_prints_slo_and_curve_tables(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "poisson workload" in out
        assert "probe latency p50 (steps)" in out
        assert "throughput (probes/kstep)" in out
        assert "Amortized cost curve (Theorem 8):" in out
        assert "msgs/(op*alpha)" in out

    def test_output_is_bitwise_deterministic(self, capsys):
        assert main(self.ARGS) == 0
        first = capsys.readouterr().out
        assert main(self.ARGS) == 0
        assert capsys.readouterr().out == first

    def test_bursty_reports_reconvergence(self, capsys):
        assert main(
            [
                "serve-sim", "--workload", "bursty", "--rate", "8",
                "--duration", "1500", "--seed", "2", "--n", "32", "--verify",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "churn bursts" in out
        assert "lag max (steps)" in out

    def test_burst_flag_implies_bursty(self, capsys):
        assert main(self.ARGS + ["--burst", "400:40:8"]) == 0
        assert "bursty workload" in capsys.readouterr().out

    def test_mix_flag(self, capsys):
        assert main(self.ARGS + ["--mix", "0:0:1"]) == 0
        out = capsys.readouterr().out
        assert "join: " not in out

    def test_bad_mix_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(self.ARGS + ["--mix", "1:2"])

    def test_bad_burst_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(self.ARGS + ["--burst", "oops"])

    def test_obs_out_writes_timeline(self, tmp_path, capsys):
        out_path = tmp_path / "svc.jsonl"
        assert main(self.ARGS + ["--obs-out", str(out_path)]) == 0
        assert out_path.exists()
        assert "timeline written to" in capsys.readouterr().out

    def test_exp_19_registered(self):
        assert "EXP-19" in EXPERIMENTS
