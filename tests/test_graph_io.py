"""Tests for knowledge-graph file I/O."""

import pytest

from repro.graphs.generators import disjoint_union, random_weakly_connected, star
from repro.graphs.io import (
    load_graph,
    read_edge_list,
    read_json,
    save_graph,
    write_edge_list,
    write_json,
)
from repro.graphs.knowledge_graph import KnowledgeGraph


class TestEdgeList:
    def test_roundtrip_integers(self, tmp_path):
        graph = random_weakly_connected(25, 40, seed=1)
        path = tmp_path / "g.edges"
        write_edge_list(graph, path)
        loaded = read_edge_list(path)
        assert sorted(loaded.nodes) == sorted(graph.nodes)
        assert sorted(loaded.edges()) == sorted(graph.edges())

    def test_roundtrip_strings(self, tmp_path):
        graph = KnowledgeGraph(["alpha", "beta", "gamma"], [("alpha", "beta")])
        path = tmp_path / "g.edges"
        write_edge_list(graph, path)
        loaded = read_edge_list(path)
        assert set(loaded.nodes) == {"alpha", "beta", "gamma"}
        assert loaded.has_edge("alpha", "beta")

    def test_isolated_nodes_preserved(self, tmp_path):
        graph = KnowledgeGraph([0, 1, 2], [(0, 1)])
        path = tmp_path / "g.edges"
        write_edge_list(graph, path)
        loaded = read_edge_list(path)
        assert 2 in loaded
        assert loaded.n == 3

    def test_comments_and_blanks(self, tmp_path):
        path = tmp_path / "g.edges"
        path.write_text("# comment\n\n1 2  # trailing\n3\n")
        graph = read_edge_list(path)
        assert graph.n == 3
        assert graph.has_edge(1, 2)

    def test_bad_line_rejected(self, tmp_path):
        path = tmp_path / "g.edges"
        path.write_text("1 2 3\n")
        with pytest.raises(ValueError, match="expected"):
            read_edge_list(path)


class TestJson:
    def test_roundtrip(self, tmp_path):
        graph = disjoint_union(star(4), random_weakly_connected(6, 5, seed=2))
        path = tmp_path / "g.json"
        write_json(graph, path)
        loaded = read_json(path)
        assert sorted(loaded.nodes) == sorted(graph.nodes)
        assert sorted(loaded.edges()) == sorted(graph.edges())

    def test_malformed_rejected(self, tmp_path):
        path = tmp_path / "g.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(ValueError):
            read_json(path)


class TestDispatch:
    def test_save_load_by_extension(self, tmp_path):
        graph = star(6)
        for name in ("g.json", "g.edges", "g.txt"):
            path = tmp_path / name
            save_graph(graph, path)
            loaded = load_graph(path)
            assert loaded.n == 6
            assert sorted(loaded.edges()) == sorted(graph.edges())


class TestCliIntegration:
    def test_run_with_graph_file(self, tmp_path, capsys):
        from repro.cli import main

        graph = random_weakly_connected(15, 20, seed=4)
        path = tmp_path / "g.edges"
        save_graph(graph, path)
        assert main(["run", "--graph-file", str(path), "--variant", "adhoc"]) == 0
        assert "n=15" in capsys.readouterr().out
