"""Test package marker.

Present so the suite's ``from tests.conftest import run_and_verify``
imports work under a bare ``pytest`` invocation as well as
``python -m pytest`` (pytest then treats the repo root as the package
root and puts it on ``sys.path``).
"""
