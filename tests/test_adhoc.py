"""Integration tests for Ad-hoc Resource Discovery (probes + relaxation)."""

import pytest

from repro.core.adhoc import AdhocNetwork, run_adhoc
from repro.graphs.generators import (
    directed_path,
    disjoint_union,
    random_weakly_connected,
    star,
)
from repro.graphs.knowledge_graph import KnowledgeGraph
from tests.conftest import run_and_verify


@pytest.mark.parametrize("seed", [None, 0, 5])
def test_random_graphs(seed):
    graph = random_weakly_connected(60, 150, seed=23)
    run_and_verify("adhoc", graph, seed=seed)


def test_never_sends_conquer_messages():
    graph = random_weakly_connected(80, 200, seed=2)
    result = run_and_verify("adhoc", graph)
    assert result.stats.messages("conquer") == 0
    assert result.stats.messages("more-done") == 0


def test_pointer_paths_allowed_to_be_long():
    """Property 3a/3b replaces the direct-pointer requirement; chains are
    legal (and do occur on path graphs)."""
    graph = directed_path(60)
    result = run_and_verify("adhoc", graph)
    assert result.max_path_length >= 1  # chains exist ...
    # ... and every chain resolves (verify_discovery already checked).


def test_fewer_messages_than_generic():
    from repro.core.generic import run_generic

    graph = random_weakly_connected(300, 900, seed=31)
    adhoc = run_and_verify("adhoc", graph)
    generic = run_and_verify("generic", graph)
    assert adhoc.total_messages < generic.total_messages


class TestProbes:
    def make_network(self, n=40, seed=5):
        graph = random_weakly_connected(n, 2 * n, seed=seed)
        net = AdhocNetwork(graph, seed=seed)
        net.run()
        return net

    def test_probe_from_leader_costs_nothing(self):
        net = self.make_network()
        result = net.result()
        leader = result.leaders[0]
        before = net.stats.total_messages
        got_leader, ids = net.probe(leader)
        assert got_leader == leader
        assert ids == result.knowledge[leader]
        assert net.stats.total_messages == before

    def test_probe_returns_full_snapshot(self):
        net = self.make_network()
        result = net.result()
        leader = result.leaders[0]
        for node_id in list(net.graph.nodes)[:10]:
            got_leader, ids = net.probe(node_id)
            assert got_leader == leader
            assert ids == frozenset(net.graph.nodes)

    def test_probe_compresses_paths(self):
        """Section 4.5.2: the probe reply performs path compression, so
        re-probing the same node costs at most the first probe's hops."""
        graph = directed_path(40)
        net = AdhocNetwork(graph, seed=0)
        net.run()
        result = net.result()
        deep = max(result.path_lengths, key=result.path_lengths.get)
        if result.path_lengths[deep] < 2:
            pytest.skip("schedule produced no long chain to compress")
        before = net.stats.snapshot()
        net.probe(deep)
        first_cost = net.stats.delta_since(before).total_messages
        before = net.stats.snapshot()
        net.probe(deep)
        second_cost = net.stats.delta_since(before).total_messages
        assert second_cost <= first_cost
        assert second_cost == 2  # one hop up, one reply

    def test_many_probes_amortize(self):
        """The total probe cost for m probes stays O((m+n) alpha)."""
        import random

        from repro.unionfind.ackermann import alpha

        net = self.make_network(n=60, seed=8)
        n = net.graph.n
        rng = random.Random(1)
        m = 200
        before = net.stats.snapshot()
        for _ in range(m):
            net.probe(rng.choice(net.graph.nodes))
        cost = net.stats.delta_since(before).total_messages
        assert cost <= 4 * (m + n) * alpha(m, n)

    def test_probe_on_multi_component(self):
        graph = disjoint_union(star(6), directed_path(4))
        net = AdhocNetwork(graph, seed=2)
        net.run()
        result = net.result()
        for node_id in net.graph.nodes:
            leader, ids = net.probe(node_id)
            assert leader == result.leader_of[node_id]
            assert ids == result.knowledge[leader]

    def test_probe_unknown_node(self):
        net = self.make_network()
        with pytest.raises(KeyError):
            net.probe("ghost")


class TestRunnerApi:
    def test_run_adhoc_one_shot(self):
        graph = star(10)
        result = run_adhoc(graph, seed=1)
        assert result.variant == "adhoc"
        assert len(result.leaders) == 1

    def test_network_reuses_graph_copy(self):
        graph = star(5)
        net = AdhocNetwork(graph)
        net.graph.add_node(99)
        assert 99 not in graph  # the caller's graph is untouched
