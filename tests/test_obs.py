"""Unit and integration tests for the observability layer (repro.obs)."""

import pytest

from repro.analysis.experiments import build_family
from repro.analysis.protocol_stats import phase_evolution, profile_execution
from repro.core.runner import build_simulation
from repro.faults.harness import run_chaos_trial
from repro.faults.plan import FaultPlan
from repro.obs import (
    EVENT_KINDS,
    MetricsRegistry,
    Profiler,
    Recorder,
    RunEvent,
    Timeline,
    attach_metrics,
    diff_timelines,
    read_timeline,
    timeline_from_run,
    write_timeline,
)


def _recorded_run(n=24, seed=0, cadence=32, variant="generic"):
    graph = build_family("sparse-random", n, seed)
    recorder = Recorder()
    sim, nodes = build_simulation(graph, variant, seed=seed, obs=recorder)
    metrics = attach_metrics(sim, recorder, cadence=cadence)
    sim.run()
    metrics.finish(sim.steps)
    return sim, nodes, recorder, metrics


class TestRecorder:
    def test_counts_and_events(self):
        recorder = Recorder()
        recorder.emit(RunEvent(1, "send", node="a", peer="b", msg_type="m"))
        recorder.emit(RunEvent(2, "deliver", node="b", peer="a", msg_type="m"))
        recorder.emit(RunEvent(3, "send", node="b", peer="a", msg_type="m"))
        assert recorder.counts == {"send": 2, "deliver": 1}
        assert recorder.total_events == 3
        assert len(recorder.of_kind("send")) == 2
        assert [e.step for e in recorder] == [1, 2, 3]

    def test_keep_events_off_still_counts(self):
        recorder = Recorder(keep_events=False)
        recorder.emit(RunEvent(1, "wake", node=0))
        assert recorder.counts == {"wake": 1}
        assert len(recorder) == 0

    def test_subscribers_see_every_event(self):
        recorder = Recorder()
        seen = []
        recorder.subscribe(seen.append)
        event = RunEvent(5, "timer", node=3)
        recorder.emit(event)
        assert seen == [event]


class TestSimulatorEmission:
    def test_event_mix_matches_accounting(self):
        sim, nodes, recorder, _metrics = _recorded_run()
        counts = recorder.counts
        # Every charged message was announced as a send event.
        assert counts["send"] == sim.stats.total_messages
        # Fault-free FIFO: every send is eventually delivered.
        assert counts["deliver"] == counts["send"]
        assert counts["wake"] == len(nodes)
        assert set(counts) <= set(EVENT_KINDS)

    def test_send_types_match_stats(self):
        sim, _nodes, recorder, _metrics = _recorded_run(seed=3)
        by_type = {}
        for event in recorder.of_kind("send"):
            by_type[event.msg_type] = by_type.get(event.msg_type, 0) + 1
        assert by_type == sim.stats.messages_by_type

    def test_phase_events_reach_final_histogram(self):
        sim, nodes, recorder, _metrics = _recorded_run(seed=1)
        profile = profile_execution(nodes, sim.stats)
        final_phases = {}
        for event in recorder.of_kind("phase-change"):
            final_phases[event.node] = int(event.value)
        # Every node that advanced past its initial phase emitted events,
        # and the last one lands on the node's final phase.
        for node_id, phase in final_phases.items():
            assert nodes[node_id].phase == phase
        assert max(final_phases.values()) == profile.max_phase

    def test_recorder_does_not_perturb_execution(self):
        graph = build_family("sparse-random", 20, 7)
        sim_plain, _ = build_simulation(graph, "generic", seed=7, keep_trace=True)
        sim_plain.run()
        sim_obs, _ = build_simulation(
            graph, "generic", seed=7, keep_trace=True, obs=Recorder()
        )
        sim_obs.run()
        assert sim_plain.trace.fingerprint() == sim_obs.trace.fingerprint()
        assert sim_plain.stats.messages_by_type == sim_obs.stats.messages_by_type


class TestMetrics:
    def test_registry_rejects_duplicate_names(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError, match="x"):
            registry.gauge("x", lambda: 0)

    def test_samples_on_cadence_and_final(self):
        sim, nodes, _recorder, metrics = _recorded_run(cadence=16)
        assert metrics.samples, "expected at least one sample"
        steps = [sample.step for sample in metrics.samples]
        assert steps == sorted(steps)
        last = metrics.last()
        assert last.step == sim.steps
        assert last.values["in-flight"] == 0
        assert last.values["messages-total"] == sim.stats.total_messages
        assert sum(last.values["census"].values()) == len(nodes)
        assert last.values["live-nodes"] == len(nodes)

    def test_series_extracts_one_metric(self):
        _sim, _nodes, _recorder, metrics = _recorded_run(cadence=16)
        series = metrics.series("messages-total")
        assert len(series) == len(metrics.samples)
        values = [value for _step, value in series]
        assert values == sorted(values)  # counters never decrease


class TestProfiler:
    def test_buckets_cover_dispatch_and_handlers(self):
        graph = build_family("sparse-random", 16, 0)
        sim, _nodes = build_simulation(graph, "generic", seed=0)
        profiler = Profiler()
        profiler.instrument(sim)
        sim.run()
        headers, rows = profiler.report()
        names = {row[0] for row in rows}
        assert {"step", "dispatch.deliver", "DiscoveryNode.on_message"} <= names
        step_bucket = profiler.buckets["step"]
        assert step_bucket.calls == sim.steps + 1  # final False-returning step
        assert step_bucket.total_ns > 0
        assert headers[0] == "bucket"

    def test_instrumentation_is_per_instance(self):
        graph = build_family("sparse-random", 12, 0)
        sim_a, _ = build_simulation(graph, "generic", seed=0)
        Profiler().instrument(sim_a)
        sim_b, _ = build_simulation(graph, "generic", seed=0)
        assert "step" in vars(sim_a)
        assert "step" not in vars(sim_b)  # class method untouched
        sim_b.run()

    def test_summary_renders(self):
        graph = build_family("sparse-random", 12, 0)
        sim, _ = build_simulation(graph, "generic", seed=0)
        profiler = Profiler()
        profiler.instrument(sim)
        sim.run()
        assert "step" in profiler.summary()


class TestTimelineRoundTrip:
    def test_chaos_run_with_faults_round_trips(self, tmp_path):
        recorder = Recorder()
        trial = run_chaos_trial(
            FaultPlan(loss=0.1),
            "generic",
            "sparse-random",
            n=20,
            seed=0,
            recorder=recorder,
        )
        assert trial.outcome in ("ok", "degraded", "stalled", "detected")
        timeline = timeline_from_run(
            recorder, meta={"scenario": "drop", "seed": 0}
        )
        # The lossy run must exercise the fault-path events.
        kinds = timeline.counts_by_kind()
        assert kinds.get("drop", 0) + kinds.get("retransmit", 0) > 0
        path = tmp_path / "chaos.jsonl"
        write_timeline(path, timeline)
        loaded = read_timeline(path)
        assert loaded.events == timeline.events
        assert loaded.meta == timeline.meta
        assert loaded.samples == timeline.samples

    def test_clean_run_round_trips_with_samples(self, tmp_path):
        _sim, _nodes, recorder, metrics = _recorded_run(n=16, cadence=16)
        timeline = timeline_from_run(recorder, metrics, meta={"n": 16})
        path = tmp_path / "clean.jsonl"
        write_timeline(path, timeline)
        loaded = read_timeline(path)
        assert loaded.events == timeline.events
        assert [(s.step, s.values) for s in loaded.samples] == [
            (s.step, s.values) for s in timeline.samples
        ]

    def test_reader_rejects_future_schema(self, tmp_path):
        path = tmp_path / "future.jsonl"
        path.write_text('{"line": "header", "schema": 999, "meta": {}}\n')
        with pytest.raises(ValueError, match="schema"):
            read_timeline(path)

    def test_reader_rejects_garbage(self, tmp_path):
        path = tmp_path / "garbage.jsonl"
        path.write_text("not json\n")
        with pytest.raises(ValueError, match="not JSON"):
            read_timeline(path)

    def test_reader_rejects_unknown_shape(self, tmp_path):
        path = tmp_path / "shape.jsonl"
        path.write_text('{"line": "mystery"}\n')
        with pytest.raises(ValueError, match="unknown line shape"):
            read_timeline(path)


class TestDiff:
    def test_identical(self):
        events = [RunEvent(1, "wake", node=0), RunEvent(2, "send", node=0, peer=1)]
        identical, report = diff_timelines(
            Timeline(events=list(events)), Timeline(events=list(events))
        )
        assert identical
        assert "identical" in report

    def test_divergence_reported(self):
        a = Timeline(events=[RunEvent(1, "send", node=0, peer=1, msg_type="m")])
        b = Timeline(
            events=[
                RunEvent(1, "send", node=0, peer=2, msg_type="m"),
                RunEvent(2, "send", node=2, peer=0, msg_type="m"),
            ]
        )
        identical, report = diff_timelines(a, b)
        assert not identical
        assert "diverge at event 0" in report
        assert "sends[m]: 1 -> 2" in report


class TestPhaseEvolution:
    def test_trajectory_climbs_to_final_profile(self):
        sim, nodes, recorder, metrics = _recorded_run(seed=2)
        timeline = timeline_from_run(recorder, metrics)
        snapshots = phase_evolution(timeline)
        assert snapshots, "a merging run must change phases"
        steps = [step for step, _hist in snapshots]
        assert steps == sorted(steps)
        profile = profile_execution(nodes, sim.stats)
        _final_step, final_hist = snapshots[-1]
        assert max(final_hist) == profile.max_phase

    def test_empty_timeline_gives_empty_trajectory(self):
        assert phase_evolution(Timeline()) == []
