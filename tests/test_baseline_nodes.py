"""Unit tests for the synchronous baseline node internals."""

import random

import pytest

from repro.baselines.common import IdSetMessage, SmallMessage
from repro.baselines.flooding import FloodingNode
from repro.baselines.law_siu import LawSiuNode
from repro.baselines.name_dropper import NameDropperNode
from repro.baselines.pointer_jump import PointerJumpNode
from repro.baselines.swamping import SwampingNode


class TestFloodingNode:
    def test_pushes_to_everyone_on_first_round(self):
        node = FloodingNode(0, frozenset({1, 2}))
        out = node.on_round(1, [])
        assert {dst for dst, _ in out} == {1, 2}
        payload = out[0][1]
        assert payload.ids == frozenset({0, 1, 2})

    def test_goes_quiet_without_news(self):
        node = FloodingNode(0, frozenset({1}))
        node.on_round(1, [])
        assert node.on_round(2, []) == []

    def test_reactivates_on_new_ids(self):
        node = FloodingNode(0, frozenset({1}))
        node.on_round(1, [])
        out = node.on_round(2, [(1, IdSetMessage(frozenset({2}), msg_type="flood"))])
        assert out  # learned 2 (and confirmed 1): pushes again
        assert node.known == {0, 1, 2}

    def test_sender_id_is_learned(self):
        node = FloodingNode(0, frozenset())
        node.on_round(1, [(9, IdSetMessage(frozenset(), msg_type="flood"))])
        assert 9 in node.known


class TestSwampingNode:
    def test_swamps_every_round_even_without_news(self):
        node = SwampingNode(0, frozenset({1}))
        assert node.on_round(1, [])
        assert node.on_round(2, [])  # flooding would be quiet here

    def test_isolated_node_is_silent(self):
        node = SwampingNode(0, frozenset())
        assert node.on_round(1, []) == []


class TestNameDropperNode:
    def test_sends_to_exactly_one_neighbor(self):
        node = NameDropperNode(0, frozenset({1, 2, 3}), random.Random(4))
        out = node.on_round(1, [])
        assert len(out) == 1
        dst, payload = out[0]
        assert dst in {1, 2, 3}
        assert payload.ids == frozenset({0, 1, 2, 3})

    def test_merges_incoming_without_self(self):
        node = NameDropperNode(0, frozenset({1}), random.Random(4))
        node.on_round(1, [(2, IdSetMessage(frozenset({0, 5}), msg_type="name-drop"))])
        assert node.neighbors == {1, 2, 5}  # self dropped, sender learned


class TestPointerJumpNode:
    def test_request_answered_with_full_set(self):
        node = PointerJumpNode(0, frozenset({1}), random.Random(2))
        out = node.on_round(1, [(9, SmallMessage("pj-request", n_ids=0))])
        replies = [(dst, m) for dst, m in out if m.msg_type == "pj-reply"]
        assert len(replies) == 1
        dst, reply = replies[0]
        assert dst == 9
        assert reply.ids == frozenset({0, 1})

    def test_absorbs_replies(self):
        node = PointerJumpNode(0, frozenset({1}), random.Random(2))
        node.on_round(1, [(1, IdSetMessage(frozenset({7}), msg_type="pj-reply"))])
        assert node.neighbors == {1, 7}

    def test_isolated_node_never_requests(self):
        node = PointerJumpNode(0, frozenset(), random.Random(2))
        assert node.on_round(1, []) == []


class TestLawSiuNode:
    def make(self, node_id, frontier, seed):
        return LawSiuNode(node_id, frozenset(frontier), random.Random(seed))

    def test_tails_never_calls(self):
        node = self.make(0, {1}, seed=0)
        called = rejected = 0
        for round_no in range(1, 40):
            out = node.on_round(round_no, [])
            if out:
                called += 1
                node.call_outstanding = False  # pretend the reply arrived
        # A fair coin: calls happen on roughly half the rounds, never all.
        assert 0 < called < 39

    def test_heads_callee_rejects(self):
        from repro.baselines.cluster_merge import Call

        node = self.make(1, {2}, seed=3)
        # Force a known coin by flipping until heads, then decide.
        node.begin_round(1)
        while not node._coin_heads:
            node.begin_round(1)
        assert node.decide(Call(9, 1, 1), 1) == "reject"

    def test_tails_callee_merges(self):
        from repro.baselines.cluster_merge import Call

        node = self.make(1, {2}, seed=3)
        node.begin_round(1)
        while node._coin_heads:
            node.begin_round(1)
        assert node.decide(Call(9, 1, 1), 1) == "merge"
