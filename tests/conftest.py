"""Shared helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.core.adhoc import run_adhoc
from repro.core.bounded import run_bounded
from repro.core.generic import run_generic
from repro.verification.invariants import verify_discovery
from repro.verification.lemmas import check_all_lemmas

RUNNERS = {
    "generic": run_generic,
    "bounded": run_bounded,
    "adhoc": run_adhoc,
}


def run_and_verify(variant, graph, **kwargs):
    """Run a variant to quiescence, check every invariant and lemma, and
    return the result.  The workhorse of the integration tests."""
    result = RUNNERS[variant](graph, **kwargs)
    verify_discovery(result, graph)
    failed = [
        str(check)
        for check in check_all_lemmas(result.stats, graph.n, graph.n_edges, variant)
        if not check.holds
    ]
    assert not failed, f"lemma violations on {variant}: {failed}"
    return result


@pytest.fixture(params=sorted(RUNNERS))
def variant(request):
    """Parametrize a test over all three algorithm variants."""
    return request.param
