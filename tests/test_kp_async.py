"""Tests for the KP-style asynchronous baseline ([3])."""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines import run_kp_async, verify_baseline
from repro.core.generic import run_generic
from repro.graphs.generators import (
    complete_binary_tree,
    directed_cycle,
    directed_path,
    disjoint_union,
    random_weakly_connected,
    star,
)
from repro.graphs.knowledge_graph import KnowledgeGraph


class TestCorrectness:
    @pytest.mark.parametrize(
        "maker",
        [
            lambda: star(15),
            lambda: directed_path(12),
            lambda: complete_binary_tree(4),
            lambda: random_weakly_connected(30, 90, seed=3),
            lambda: disjoint_union(star(5), directed_cycle(4), KnowledgeGraph([0])),
        ],
        ids=["star", "path", "tree", "random", "multi"],
    )
    @pytest.mark.parametrize("seed", [None, 1, 9])
    def test_solves_discovery(self, maker, seed):
        graph = maker()
        result = run_kp_async(graph, seed=seed)
        verify_baseline(result, graph)

    def test_single_node(self):
        result = run_kp_async(KnowledgeGraph(["only"]))
        assert result.leaders == ["only"]
        assert result.total_messages == 0

    def test_leader_is_component_minimum(self):
        graph = random_weakly_connected(25, 50, seed=8)
        result = run_kp_async(graph)
        assert result.leaders == [min(graph.nodes)]

    @settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(
        st.integers(min_value=1, max_value=18),
        st.integers(min_value=0, max_value=40),
        st.integers(min_value=0, max_value=2**16),
    )
    def test_property_any_digraph(self, n, n_edges, seed):
        rng = random.Random(seed)
        graph = KnowledgeGraph(range(n))
        for _ in range(n_edges):
            u, v = rng.randrange(n), rng.randrange(n)
            if u != v:
                graph.add_edge(u, v)
        result = run_kp_async(graph, seed=seed)
        verify_baseline(result, graph)


class TestCostSignature:
    def test_message_class_matches_generic(self):
        """[3] and the paper share O(n log n) messages."""
        import math

        graph = random_weakly_connected(512, 1024, seed=2)
        kp = run_kp_async(graph, seed=0)
        assert kp.total_messages <= 6 * 512 * math.log2(512)

    def test_bit_gap_grows_with_n_on_dense_graphs(self):
        """The paper's improvement: [3]'s bits carry an extra log factor."""
        ratios = []
        for n in (128, 1024):
            graph = random_weakly_connected(n, n * n.bit_length(), seed=n)
            kp = run_kp_async(graph, seed=0)
            gen = run_generic(graph, seed=0)
            ratios.append(kp.total_bits / gen.total_bits)
        assert ratios[1] > ratios[0]
        assert ratios[1] > 1.3

    def test_surrenders_ship_whole_frontiers(self):
        """The cost signature's mechanism: surrender payloads carry a large
        share of the bits (and an increasing one as graphs densify -- the
        asymptotic claim itself is pinned by the EXP-18 ratio trend)."""
        graph = random_weakly_connected(256, 2048, seed=5)
        result = run_kp_async(graph, seed=1)
        assert result.stats.bits("kp-surrender") > 0.3 * result.total_bits
