"""Property-based tests (hypothesis) on the core protocol and substrates."""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.adhoc import AdhocNetwork
from repro.core.runner import build_simulation
from repro.graphs.generators import random_weakly_connected
from repro.graphs.knowledge_graph import KnowledgeGraph
from repro.graphs.reduction import random_schedule
from repro.lowerbounds.unionfind_reduction import run_reduction
from repro.verification.invariants import verify_discovery
from repro.verification.lemmas import check_all_lemmas
from tests.conftest import run_and_verify

SLOW = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@st.composite
def knowledge_graphs(draw, max_n=24):
    """Arbitrary directed graphs -- *not* necessarily connected."""
    n = draw(st.integers(min_value=1, max_value=max_n))
    n_edges = draw(st.integers(min_value=0, max_value=3 * n))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    rng = random.Random(seed)
    graph = KnowledgeGraph(range(n))
    for _ in range(n_edges):
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v:
            graph.add_edge(u, v)
    return graph


@st.composite
def graph_and_seed(draw):
    return draw(knowledge_graphs()), draw(st.integers(min_value=0, max_value=1000))


class TestProtocolProperties:
    @SLOW
    @given(graph_and_seed())
    def test_generic_solves_any_graph_any_schedule(self, case):
        graph, seed = case
        run_and_verify("generic", graph, seed=seed)

    @SLOW
    @given(graph_and_seed())
    def test_bounded_solves_any_graph_any_schedule(self, case):
        graph, seed = case
        run_and_verify("bounded", graph, seed=seed)

    @SLOW
    @given(graph_and_seed())
    def test_adhoc_solves_any_graph_any_schedule(self, case):
        graph, seed = case
        run_and_verify("adhoc", graph, seed=seed)

    @SLOW
    @given(graph_and_seed())
    def test_wake_order_is_irrelevant_to_correctness(self, case):
        graph, seed = case
        order = list(graph.nodes)
        random.Random(seed).shuffle(order)
        run_and_verify("generic", graph, wake_order=order)

    @SLOW
    @given(graph_and_seed())
    def test_safety_holds_at_every_quiescent_prefix(self, case):
        """Stop the adhoc execution at quiescence after waking only a random
        prefix of the nodes: property (1)-(2) must hold among awake nodes
        (each is a leader or transitively attached to one that knows it)."""
        graph, seed = case
        rng = random.Random(seed)
        order = list(graph.nodes)
        rng.shuffle(order)
        cut = rng.randrange(1, len(order) + 1)
        net = AdhocNetwork(graph, seed=seed, auto_wake=False)
        for node_id in order[:cut]:
            net.wake(node_id)
        net.run()
        for node_id in order[:cut]:
            node = net.nodes[node_id]
            current = node_id
            hops = 0
            while not net.nodes[current].is_leader:
                current = net.nodes[current].next
                hops += 1
                assert hops <= graph.n, "pointer chain does not terminate"
            assert node_id in net.nodes[current].knowledge


class TestReductionProperty:
    @settings(max_examples=15, deadline=None)
    @given(
        st.integers(min_value=2, max_value=10),
        st.integers(min_value=0, max_value=10),
        st.integers(min_value=0, max_value=500),
    )
    def test_reduction_simulates_unionfind(self, n_sets, n_finds, seed):
        """Lemma 3.1's correctness direction, checked op-by-op inside the
        driver against a quick-find oracle."""
        schedule = random_schedule(n_sets, n_finds, seed=seed)
        run_reduction(n_sets, schedule, verify=True)


class TestDeterminism:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=2, max_value=30), st.integers(min_value=0, max_value=100))
    def test_same_seed_same_execution(self, n, seed):
        graph = random_weakly_connected(n, 2 * n, seed=seed)

        def trace_of():
            sim, nodes = build_simulation(graph, "generic", seed=seed, keep_trace=True)
            sim.run(10**7)
            return sim.trace.fingerprint(), sim.stats.total_messages

        first, second = trace_of(), trace_of()
        assert first == second


@st.composite
def shrinkable_graphs(draw, max_n=14):
    """A hypothesis-native graph strategy: edges are drawn directly (not
    via an opaque seed), so failing cases shrink to minimal topologies."""
    n = draw(st.integers(min_value=1, max_value=max_n))
    possible = [(u, v) for u in range(n) for v in range(n) if u != v]
    edges = draw(
        st.lists(st.sampled_from(possible), max_size=3 * n, unique=True)
        if possible
        else st.just([])
    )
    return KnowledgeGraph(range(n), edges)


class TestShrinkableProperties:
    """Same safety properties on a strategy that shrinks: a regression here
    produces a *minimal* failing graph + schedule seed."""

    @SLOW
    @given(shrinkable_graphs(), st.integers(min_value=0, max_value=50))
    def test_generic(self, graph, seed):
        run_and_verify("generic", graph, seed=seed)

    @SLOW
    @given(shrinkable_graphs(), st.integers(min_value=0, max_value=50))
    def test_bounded_terminates(self, graph, seed):
        result = run_and_verify("bounded", graph, seed=seed)
        assert all(result.statuses[l] == "terminated" for l in result.leaders)

    @SLOW
    @given(shrinkable_graphs(), st.integers(min_value=0, max_value=50))
    def test_adhoc_probe_everywhere(self, graph, seed):
        from repro.core.adhoc import AdhocNetwork

        net = AdhocNetwork(graph, seed=seed)
        net.run()
        result = net.result()
        verify_discovery(result, net.graph)
        for node_id in net.graph.nodes:
            leader, ids = net.probe(node_id)
            assert leader == result.leader_of[node_id]
