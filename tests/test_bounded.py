"""Integration tests for the Bounded variant (termination detection)."""

import pytest

from repro.core.bounded import run_bounded
from repro.graphs.generators import (
    complete_binary_tree,
    directed_path,
    disjoint_union,
    random_weakly_connected,
    star,
)
from repro.graphs.knowledge_graph import KnowledgeGraph
from tests.conftest import run_and_verify


@pytest.mark.parametrize("seed", [None, 1, 4, 9])
def test_random_graphs(seed):
    graph = random_weakly_connected(50, 120, seed=17)
    result = run_and_verify("bounded", graph, seed=seed)
    assert all(result.statuses[l] == "terminated" for l in result.leaders)


def test_termination_detected_per_component():
    """Theorem 4: each component's leader terminates knowing its own
    component size -- even with several components of different sizes."""
    graph = disjoint_union(star(12), directed_path(7), KnowledgeGraph([0]))
    result = run_and_verify("bounded", graph)
    assert len(result.leaders) == 3
    for leader in result.leaders:
        assert result.statuses[leader] == "terminated"


def test_final_broadcast_is_counted():
    """Lemma 5.8 (bounded): conquer traffic is one final broadcast --
    exactly n-1 conquer messages and n-1 acknowledgements per component."""
    n = 30
    graph = random_weakly_connected(n, 60, seed=3)
    result = run_and_verify("bounded", graph)
    assert result.stats.messages("conquer") == n - 1
    assert result.stats.messages("more-done") == n - 1


def test_bounded_uses_fewer_conquers_than_generic():
    from repro.core.generic import run_generic

    graph = random_weakly_connected(200, 500, seed=11)
    bounded = run_and_verify("bounded", graph)
    generic = run_and_verify("generic", graph)
    assert bounded.stats.messages("conquer") < generic.stats.messages("conquer")


def test_singleton_component_terminates_silently():
    result = run_and_verify("bounded", KnowledgeGraph(["only"]))
    assert result.statuses["only"] == "terminated"
    assert result.total_messages == 0


def test_two_node_component():
    result = run_and_verify("bounded", KnowledgeGraph([0, 1], [(0, 1)]))
    assert len(result.leaders) == 1
    leader = result.leaders[0]
    assert result.knowledge[leader] == frozenset({0, 1})


def test_stale_search_after_termination_is_aborted():
    """Drive many seeds on a small graph: the race where a parked search
    reaches the terminated leader must always resolve via an abort, never
    a protocol error (regression for the terminated-leader handler)."""
    graph = random_weakly_connected(5, 10, seed=3)
    for seed in range(30):
        run_and_verify("bounded", graph, seed=seed)
