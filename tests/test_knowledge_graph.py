"""Unit tests for the knowledge-graph model."""

import pytest

from repro.graphs.knowledge_graph import KnowledgeGraph


class TestConstruction:
    def test_empty(self):
        g = KnowledgeGraph([])
        assert g.n == 0
        assert g.n_edges == 0

    def test_nodes_and_edges(self):
        g = KnowledgeGraph([1, 2, 3], [(1, 2), (2, 3)])
        assert g.n == 3
        assert g.n_edges == 2
        assert g.has_edge(1, 2)
        assert not g.has_edge(2, 1)

    def test_duplicate_node_rejected(self):
        with pytest.raises(ValueError):
            KnowledgeGraph([1, 1])

    def test_edge_to_unknown_node_rejected(self):
        g = KnowledgeGraph([1])
        with pytest.raises(KeyError):
            g.add_edge(1, 2)
        with pytest.raises(KeyError):
            g.add_edge(2, 1)

    def test_self_loops_dropped(self):
        g = KnowledgeGraph([1], [(1, 1)])
        assert g.n_edges == 0
        assert not g.add_edge(1, 1)

    def test_parallel_edge_dropped(self):
        g = KnowledgeGraph([1, 2])
        assert g.add_edge(1, 2)
        assert not g.add_edge(1, 2)
        assert g.n_edges == 1

    def test_add_node(self):
        g = KnowledgeGraph([0])
        g.add_node(1)
        assert 1 in g
        with pytest.raises(ValueError):
            g.add_node(1)


class TestQueries:
    def test_degrees(self):
        g = KnowledgeGraph(range(4), [(0, 1), (0, 2), (3, 0)])
        assert g.out_degree(0) == 2
        assert g.in_degree(0) == 1
        assert g.successors(0) == frozenset({1, 2})
        assert g.predecessors(0) == frozenset({3})

    def test_undirected_neighbors(self):
        g = KnowledgeGraph(range(3), [(0, 1), (2, 0)])
        assert g.undirected_neighbors(0) == {1, 2}

    def test_edges_deterministic_order(self):
        g = KnowledgeGraph(range(4), [(0, 3), (0, 1), (2, 0)])
        assert list(g.edges()) == list(g.edges())

    def test_nodes_returns_copy(self):
        g = KnowledgeGraph([0, 1])
        nodes = g.nodes
        nodes.append(99)
        assert g.n == 2

    def test_repr(self):
        g = KnowledgeGraph(range(2), [(0, 1)])
        assert "n=2" in repr(g)
        assert "m=1" in repr(g)


class TestDerived:
    def test_copy_is_independent(self):
        g = KnowledgeGraph(range(3), [(0, 1)])
        h = g.copy()
        h.add_edge(1, 2)
        assert not g.has_edge(1, 2)
        assert h.has_edge(1, 2)

    def test_reversed(self):
        g = KnowledgeGraph(range(3), [(0, 1), (1, 2)])
        r = g.reversed()
        assert r.has_edge(1, 0)
        assert r.has_edge(2, 1)
        assert r.n_edges == 2
        assert not r.has_edge(0, 1)

    def test_string_ids(self):
        g = KnowledgeGraph(["a", "b"], [("a", "b")])
        assert g.has_edge("a", "b")
        assert g.successors("a") == frozenset({"b"})
