"""Tests for incremental campaign aggregation (repro.campaign.report).

The headline property: the rendered report depends only on the *set* of
done cells -- any fold order, any interruption pattern, any batch size
produces bitwise-identical tables, and those tables match
``aggregate_tables`` exactly.
"""

import pytest

from repro.analysis.sweep import aggregate_tables
from repro.campaign import CampaignStore, fold_done_cells, report_tables
from repro.campaign.store import CampaignError
from repro.parallel import Job, ParallelExecutor, sweep_jobs

TOY = "tests.test_parallel:exp_toy"


def make_store(tmp_path, jobs, name="campaign.db"):
    return CampaignStore.create(tmp_path / name, jobs)


def complete_cells(store, results):
    """Drive claimed cells to done with the given executor results."""
    for result in results:
        store.claim("w", 1)
        store.complete(
            result.job.key(),
            {
                "headers": result.headers,
                "rows": result.rows,
                "messages": result.messages,
            },
            wall=result.wall,
        )


def run_jobs(jobs):
    return ParallelExecutor(workers=1).run(jobs)


class TestFold:
    def test_report_matches_aggregate_tables_exactly(self, tmp_path):
        jobs = sweep_jobs(TOY, range(5), {"scale": 3})
        results = run_jobs(jobs)
        store = make_store(tmp_path, jobs)
        complete_cells(store, results)
        assert fold_done_cells(store) == 5
        ((descriptor, n_cells, table),) = report_tables(store)
        expected = aggregate_tables([r.table for r in results])
        assert table == expected
        assert n_cells == 5
        assert descriptor == {"experiment": TOY, "kwargs": {"scale": 3}}

    def test_fold_order_does_not_change_the_report(self, tmp_path):
        jobs = sweep_jobs(TOY, range(6), {"scale": 7})
        results = run_jobs(jobs)
        forward = make_store(tmp_path, jobs, "fwd.db")
        complete_cells(forward, results)
        fold_done_cells(forward)

        backward = make_store(tmp_path, jobs, "bwd.db")
        complete_cells(backward, list(reversed(results)))
        # fold in several incremental passes, interleaved with completions
        fold_done_cells(backward, batch=2)
        fold_done_cells(backward)
        assert report_tables(forward) == report_tables(backward)

    def test_fold_is_incremental_and_never_double_folds(self, tmp_path):
        jobs = sweep_jobs(TOY, range(4), {"scale": 2})
        results = run_jobs(jobs)
        store = make_store(tmp_path, jobs)
        complete_cells(store, results[:2])
        assert fold_done_cells(store) == 2
        assert fold_done_cells(store) == 0  # nothing new
        complete_cells(store, results[2:])
        assert fold_done_cells(store) == 2
        ((_, n_cells, table),) = report_tables(store)
        assert n_cells == 4
        assert table == aggregate_tables([r.table for r in results])

    def test_groups_split_by_kwargs(self, tmp_path):
        jobs = sweep_jobs(TOY, range(2), {"scale": 2}) + sweep_jobs(
            TOY, range(2), {"scale": 5}
        )
        results = run_jobs(jobs)
        store = make_store(tmp_path, jobs)
        complete_cells(store, results)
        fold_done_cells(store)
        groups = report_tables(store)
        assert len(groups) == 2
        assert {g[0]["kwargs"]["scale"] for g in groups} == {2, 5}
        assert all(n == 2 for _d, n, _t in groups)

    def test_identity_mismatch_rejected(self, tmp_path):
        jobs = [Job.create(TOY, {"scale": 2}, seed=s) for s in range(2)]
        store = make_store(tmp_path, jobs)
        store.claim("w", 2)
        store.complete(
            jobs[0].key(),
            {"headers": ["case", "n"], "rows": [["toy", 1]], "messages": None},
        )
        store.complete(
            jobs[1].key(),
            {"headers": ["case", "n"], "rows": [["OTHER", 2]], "messages": None},
        )
        with pytest.raises(CampaignError, match="identity"):
            fold_done_cells(store)

    def test_header_mismatch_rejected(self, tmp_path):
        jobs = [Job.create(TOY, {"scale": 2}, seed=s) for s in range(2)]
        store = make_store(tmp_path, jobs)
        store.claim("w", 2)
        store.complete(
            jobs[0].key(), {"headers": ["a"], "rows": [[1]], "messages": None}
        )
        store.complete(
            jobs[1].key(), {"headers": ["b"], "rows": [[1]], "messages": None}
        )
        with pytest.raises(CampaignError, match="headers"):
            fold_done_cells(store)
