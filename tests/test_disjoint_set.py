"""Unit and property tests for the disjoint-set forests."""

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.unionfind.disjoint_set import FIND_RULES, LINK_RULES, DisjointSet
from repro.unionfind.naive import QuickFind

ALL_CONFIGS = list(itertools.product(LINK_RULES, FIND_RULES))


class TestBasics:
    def test_singletons(self):
        ds = DisjointSet(range(5))
        assert len(ds) == 5
        assert ds.n_sets == 5
        for i in range(5):
            assert ds.find(i) == i

    def test_union_merges(self):
        ds = DisjointSet(range(4))
        ds.union(0, 1)
        assert ds.connected(0, 1)
        assert not ds.connected(0, 2)
        assert ds.n_sets == 3

    def test_union_idempotent(self):
        ds = DisjointSet(range(3))
        root = ds.union(0, 1)
        assert ds.union(0, 1) == root
        assert ds.n_sets == 2

    def test_set_size(self):
        ds = DisjointSet(range(6))
        ds.union(0, 1)
        ds.union(1, 2)
        assert ds.set_size(0) == 3
        assert ds.set_size(5) == 1

    def test_sets_grouping(self):
        ds = DisjointSet(range(4))
        ds.union(0, 3)
        groups = ds.sets()
        assert sorted(map(sorted, groups.values())) == [[0, 3], [1], [2]]

    def test_make_set_idempotent(self):
        ds = DisjointSet()
        ds.make_set("a")
        ds.make_set("a")
        assert len(ds) == 1

    def test_auto_create(self):
        ds = DisjointSet(auto_create=True)
        ds.union("x", "y")
        assert ds.connected("x", "y")

    def test_unknown_element_raises(self):
        ds = DisjointSet(range(2))
        with pytest.raises(KeyError):
            ds.find(99)
        with pytest.raises(KeyError):
            ds.union(0, 99)

    def test_bad_rules_rejected(self):
        with pytest.raises(ValueError):
            DisjointSet(link_rule="bogus")
        with pytest.raises(ValueError):
            DisjointSet(find_rule="bogus")

    def test_contains_and_iter(self):
        ds = DisjointSet(["a", "b"])
        assert "a" in ds
        assert "z" not in ds
        assert sorted(ds) == ["a", "b"]


class TestStructure:
    def test_union_by_rank_bounds_depth(self):
        """With union by rank (and no compression during unions beyond the
        find calls) tree depth is at most log2 n."""
        n = 1024
        ds = DisjointSet(range(n), link_rule="rank", find_rule="none")
        order = list(range(1, n))
        random.Random(0).shuffle(order)
        for i in order:
            ds.union(i - 1, i)
        max_depth = max(ds.depth_of(i) for i in range(n))
        assert max_depth <= 10  # log2(1024)

    def test_naive_linking_can_be_deep(self):
        n = 64
        ds = DisjointSet(range(n), link_rule="naive", find_rule="none")
        for i in range(1, n):
            # Always link the big tree under the new singleton.
            ds.union(0, i)
        assert ds.depth_of(0) == n - 1

    def test_compression_flattens(self):
        n = 64
        ds = DisjointSet(range(n), link_rule="naive", find_rule="compress")
        for i in range(1, n):
            ds._link(ds._root_of(i - 1), i)  # build a chain directly
        assert ds.depth_of(0) == n - 1
        ds.find(0)
        assert ds.depth_of(0) <= 1

    def test_halving_shortens_path(self):
        n = 32
        ds = DisjointSet(range(n), link_rule="naive", find_rule="halve")
        for i in range(1, n):
            ds._link(ds._root_of(i - 1), i)
        before = ds.depth_of(0)
        ds.find(0)
        assert ds.depth_of(0) <= before // 2 + 1

    def test_counters_accumulate(self):
        ds = DisjointSet(range(8))
        assert ds.counter.total == 0
        ds.union(0, 1)
        assert ds.counter.reads > 0
        assert ds.counter.writes >= 1


@st.composite
def operation_sequences(draw):
    n = draw(st.integers(min_value=2, max_value=24))
    n_ops = draw(st.integers(min_value=1, max_value=60))
    ops = []
    for _ in range(n_ops):
        kind = draw(st.sampled_from(["union", "find", "connected"]))
        a = draw(st.integers(min_value=0, max_value=n - 1))
        b = draw(st.integers(min_value=0, max_value=n - 1))
        ops.append((kind, a, b))
    return n, ops


class TestEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(operation_sequences())
    def test_every_config_matches_quickfind(self, case):
        """All link/find rule combinations implement the same partition
        semantics as the obviously-correct quick-find oracle."""
        n, ops = case
        structures = [
            DisjointSet(range(n), link_rule=lr, find_rule=fr)
            for lr, fr in ALL_CONFIGS
        ]
        oracle = QuickFind(range(n))
        for kind, a, b in ops:
            if kind == "union":
                oracle.union(a, b)
                for ds in structures:
                    ds.union(a, b)
            elif kind == "connected":
                expected = oracle.connected(a, b)
                for ds in structures:
                    assert ds.connected(a, b) == expected
            else:
                for ds in structures:
                    ds.find(a)
        # Final partitions are identical.
        for x in range(n):
            for y in range(x + 1, n):
                expected = oracle.connected(x, y)
                for ds in structures:
                    assert ds.connected(x, y) == expected

    @settings(max_examples=30, deadline=None)
    @given(operation_sequences())
    def test_n_sets_matches_oracle(self, case):
        n, ops = case
        ds = DisjointSet(range(n))
        oracle = QuickFind(range(n))
        for kind, a, b in ops:
            if kind == "union":
                ds.union(a, b)
                oracle.union(a, b)
        assert ds.n_sets == oracle.n_sets


class TestQuickFind:
    def test_members(self):
        qf = QuickFind(range(4))
        qf.union(0, 2)
        assert qf.members(0) == [0, 2]

    def test_len_and_contains(self):
        qf = QuickFind(["a"])
        assert len(qf) == 1
        assert "a" in qf
        qf.make_set("a")
        assert len(qf) == 1
