"""Connectivity computations, cross-checked against networkx."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.components import (
    component_of,
    is_strongly_connected,
    is_weakly_connected,
    strongly_connected_components,
    weakly_connected_components,
)
from repro.graphs.generators import (
    complete_binary_tree,
    directed_cycle,
    directed_path,
    disjoint_union,
    random_strongly_connected,
    star,
)
from repro.graphs.knowledge_graph import KnowledgeGraph


class TestWeak:
    def test_single_node(self):
        g = KnowledgeGraph([0])
        assert weakly_connected_components(g) == [{0}]
        assert is_weakly_connected(g)

    def test_empty_graph(self):
        assert is_weakly_connected(KnowledgeGraph([]))

    def test_direction_ignored(self):
        g = KnowledgeGraph(range(3), [(0, 1), (2, 1)])
        assert is_weakly_connected(g)

    def test_disjoint_union_components(self):
        g = disjoint_union(star(4), directed_path(3), directed_cycle(2))
        comps = weakly_connected_components(g)
        assert sorted(len(c) for c in comps) == [2, 3, 4]

    def test_component_of(self):
        g = disjoint_union(star(3), directed_path(2))
        assert component_of(g, 0) == {0, 1, 2}
        assert component_of(g, 4) == {3, 4}
        with pytest.raises(KeyError):
            component_of(g, 99)


class TestStrong:
    def test_cycle_is_strong(self):
        assert is_strongly_connected(directed_cycle(5))

    def test_path_is_not_strong(self):
        assert not is_strongly_connected(directed_path(4))

    def test_tree_sccs_are_singletons(self):
        g = complete_binary_tree(3)
        assert all(len(c) == 1 for c in strongly_connected_components(g))

    def test_generator_guarantee(self):
        for n in (1, 2, 5, 30):
            assert is_strongly_connected(random_strongly_connected(n, n, seed=n))

    def test_mixed_sccs(self):
        # 0 <-> 1 cycle, 2 dangling.
        g = KnowledgeGraph(range(3), [(0, 1), (1, 0), (1, 2)])
        sizes = sorted(len(c) for c in strongly_connected_components(g))
        assert sizes == [1, 2]


def _graph_strategy():
    return st.builds(
        lambda n, edges: KnowledgeGraph(
            range(n), [(a % n, b % n) for a, b in edges if a % n != b % n]
        ),
        st.integers(min_value=1, max_value=20),
        st.lists(
            st.tuples(st.integers(0, 40), st.integers(0, 40)), max_size=80
        ),
    )


class TestAgainstNetworkx:
    @settings(max_examples=80, deadline=None)
    @given(_graph_strategy())
    def test_weak_components_match(self, g):
        nxg = nx.DiGraph()
        nxg.add_nodes_from(g.nodes)
        nxg.add_edges_from(g.edges())
        ours = sorted(sorted(c) for c in weakly_connected_components(g))
        theirs = sorted(sorted(c) for c in nx.weakly_connected_components(nxg))
        assert ours == theirs

    @settings(max_examples=80, deadline=None)
    @given(_graph_strategy())
    def test_strong_components_match(self, g):
        nxg = nx.DiGraph()
        nxg.add_nodes_from(g.nodes)
        nxg.add_edges_from(g.edges())
        ours = sorted(sorted(c) for c in strongly_connected_components(g))
        theirs = sorted(sorted(c) for c in nx.strongly_connected_components(nxg))
        assert ours == theirs
