"""The invariant checker must actually catch violations (tests of the
test oracle itself, via fabricated results)."""

import pytest

from repro.core.result import DiscoveryResult
from repro.graphs.generators import star
from repro.sim.trace import MessageStats
from repro.verification.invariants import InvariantViolation, verify_discovery


def fabricate(graph, **overrides):
    """A correct-looking result for a star graph, with overridable fields."""
    n = graph.n
    leader = 0
    fields = dict(
        variant="generic",
        n=n,
        n_edges=graph.n_edges,
        leaders=[leader],
        leader_of={i: leader for i in range(n)},
        knowledge={leader: frozenset(range(n))},
        statuses={i: ("wait" if i == leader else "inactive") for i in range(n)},
        path_lengths={i: (0 if i == leader else 1) for i in range(n)},
        stats=MessageStats(),
        steps=0,
    )
    fields.update(overrides)
    return DiscoveryResult(**fields)


@pytest.fixture
def graph():
    return star(5)


def test_correct_result_passes(graph):
    report = verify_discovery(fabricate(graph), graph)
    assert report.n_leaders == 1
    assert len(report.checks) >= 4
    assert "one leader" in str(report)


def test_zero_leaders_caught(graph):
    bad = fabricate(graph, leaders=[])
    with pytest.raises(InvariantViolation, match="0 leaders"):
        verify_discovery(bad, graph)


def test_two_leaders_caught(graph):
    bad = fabricate(graph, leaders=[0, 1])
    with pytest.raises(InvariantViolation, match="2 leaders"):
        verify_discovery(bad, graph)


def test_incomplete_knowledge_caught(graph):
    bad = fabricate(graph, knowledge={0: frozenset({0, 1})})
    with pytest.raises(InvariantViolation, match="knowledge mismatch"):
        verify_discovery(bad, graph)


def test_extra_knowledge_caught(graph):
    bad = fabricate(graph, knowledge={0: frozenset(range(6))})
    with pytest.raises(InvariantViolation, match="knowledge mismatch"):
        verify_discovery(bad, graph)


def test_wrong_resolution_caught(graph):
    wrong = {i: 0 for i in range(5)}
    wrong[3] = 4
    bad = fabricate(graph, leader_of=wrong)
    with pytest.raises(InvariantViolation, match="resolves to"):
        verify_discovery(bad, graph)


def test_long_chain_caught_for_strict_variants(graph):
    lengths = {i: (0 if i == 0 else 1) for i in range(5)}
    lengths[2] = 3
    bad = fabricate(graph, path_lengths=lengths)
    with pytest.raises(InvariantViolation, match="point directly"):
        verify_discovery(bad, graph)


def test_long_chain_allowed_for_adhoc(graph):
    lengths = {i: (0 if i == 0 else 1) for i in range(5)}
    lengths[2] = 3
    ok = fabricate(graph, variant="adhoc", path_lengths=lengths)
    verify_discovery(ok, graph)


def test_transient_state_caught(graph):
    statuses = {i: ("wait" if i == 0 else "inactive") for i in range(5)}
    statuses[2] = "passive"
    bad = fabricate(graph, statuses=statuses)
    with pytest.raises(InvariantViolation, match="transient"):
        verify_discovery(bad, graph)


def test_unterminated_bounded_leader_caught(graph):
    bad = fabricate(graph, variant="bounded")
    with pytest.raises(InvariantViolation, match="termination"):
        verify_discovery(bad, graph)


def test_terminated_bounded_leader_passes(graph):
    statuses = {i: ("terminated" if i == 0 else "inactive") for i in range(5)}
    ok = fabricate(graph, variant="bounded", statuses=statuses)
    verify_discovery(ok, graph)
