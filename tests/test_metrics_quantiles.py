"""Order statistics on the obs Histogram (``percentile`` / ``quantiles``)."""

import pytest

from repro.obs.metrics import Histogram


def _histogram(values):
    histogram = Histogram()
    for value in values:
        histogram.observe(value)
    return histogram


class TestPercentile:
    def test_empty_returns_none(self):
        assert Histogram().percentile(50) is None
        assert Histogram().quantiles() == {"p50": None, "p95": None, "p99": None}

    def test_single_value(self):
        histogram = _histogram([7])
        for q in (0, 50, 99, 100):
            assert histogram.percentile(q) == 7.0

    def test_nearest_rank_on_uniform_1_to_100(self):
        histogram = _histogram(range(1, 101))
        assert histogram.percentile(50) == 50.0
        assert histogram.percentile(95) == 95.0
        assert histogram.percentile(99) == 99.0
        assert histogram.percentile(100) == 100.0
        assert histogram.percentile(0) == 1.0
        assert histogram.percentile(0.5) == 1.0

    def test_weighted_counts(self):
        histogram = Histogram()
        histogram.observe(1, count=97)
        histogram.observe(50, count=2)
        histogram.observe(1000, count=1)
        assert histogram.percentile(50) == 1.0
        assert histogram.percentile(98) == 50.0
        assert histogram.percentile(99.5) == 1000.0
        assert histogram.total() == 100

    def test_insertion_order_does_not_matter(self):
        assert _histogram([9, 1, 5]).percentile(50) == 5.0
        assert _histogram([1, 5, 9]).percentile(50) == 5.0

    def test_float_keys(self):
        histogram = _histogram([0.5, 1.5, 2.5])
        assert histogram.percentile(50) == 1.5

    def test_callable_backed_histogram(self):
        histogram = Histogram(lambda: {1: 3, 2: 1})
        assert histogram.total() == 4
        assert histogram.percentile(75) == 1.0
        assert histogram.percentile(76) == 2.0

    def test_out_of_range_q(self):
        histogram = _histogram([1])
        with pytest.raises(ValueError, match=r"\[0, 100\]"):
            histogram.percentile(-1)
        with pytest.raises(ValueError, match=r"\[0, 100\]"):
            histogram.percentile(101)

    def test_non_numeric_keys_raise(self):
        with pytest.raises(TypeError, match="numeric"):
            _histogram(["electing", "done"]).percentile(50)
        # bool is an int subclass but a state census, not a magnitude.
        with pytest.raises(TypeError, match="numeric"):
            _histogram([True, False]).percentile(50)


class TestQuantiles:
    def test_default_slo_set(self):
        histogram = _histogram(range(1, 101))
        assert histogram.quantiles() == {"p50": 50.0, "p95": 95.0, "p99": 99.0}

    def test_custom_set_formats_keys(self):
        histogram = _histogram(range(1, 101))
        assert histogram.quantiles((25.0, 99.9)) == {"p25": 25.0, "p99.9": 100.0}
