"""Unit tests for scheduling policies and the adversary hook."""

import pytest

from repro.sim.events import DeliverToken, WakeToken
from repro.sim.network import SimNode, Simulator, StuckExecutionError
from repro.sim.scheduler import (
    AdversarialScheduler,
    Adversary,
    GlobalFifoScheduler,
    LifoScheduler,
    RandomScheduler,
)


def tokens(n):
    return [DeliverToken(f"s{i}", f"d{i}") for i in range(n)]


class TestOrders:
    def test_fifo(self):
        sched = GlobalFifoScheduler()
        ts = tokens(5)
        for t in ts:
            sched.push(t)
        assert [sched.pop(None) for _ in range(5)] == ts
        assert sched.pop(None) is None

    def test_lifo(self):
        sched = LifoScheduler()
        ts = tokens(5)
        for t in ts:
            sched.push(t)
        assert [sched.pop(None) for _ in range(5)] == list(reversed(ts))

    def test_random_is_seed_deterministic(self):
        def drain(seed):
            sched = RandomScheduler(seed)
            for t in tokens(20):
                sched.push(t)
            return [sched.pop(None) for _ in range(20)]

        assert drain(7) == drain(7)
        assert drain(7) != drain(8)

    def test_random_pops_everything_exactly_once(self):
        sched = RandomScheduler(3)
        ts = tokens(30)
        for t in ts:
            sched.push(t)
        popped = [sched.pop(None) for _ in range(30)]
        assert sorted(popped, key=repr) == sorted(ts, key=repr)
        assert len(sched) == 0

    def test_len_and_pending(self):
        for sched in (GlobalFifoScheduler(), LifoScheduler(), RandomScheduler(0)):
            for t in tokens(3):
                sched.push(t)
            assert len(sched) == 3
            assert len(list(sched.pending())) == 3


class StallCounter(Adversary):
    """Blocks deliveries from sources not yet released; releases one source
    per stall, in a fixed order."""

    def __init__(self, order):
        self.order = list(order)
        self.released = set()
        self.stalls = 0

    def blocks(self, token, sim):
        return isinstance(token, DeliverToken) and token.src not in self.released

    def on_stall(self, sim):
        if not self.order:
            return False
        self.stalls += 1
        self.released.add(self.order.pop(0))
        return True


class TestAdversarial:
    def test_release_ordering(self):
        adversary = StallCounter(["s1", "s0"])
        sched = AdversarialScheduler(adversary)
        t0, t1 = DeliverToken("s0", "x"), DeliverToken("s1", "x")
        sched.push(t0)
        sched.push(t1)
        # s1 is released first, so t1 must come out before t0.
        assert sched.pop(None) == t1
        assert adversary.stalls == 1
        assert sched.pop(None) == t0
        assert adversary.stalls == 2

    def test_wakes_never_blocked(self):
        adversary = StallCounter([])
        sched = AdversarialScheduler(adversary)
        w = WakeToken("n")
        sched.push(DeliverToken("s0", "x"))
        sched.push(w)
        assert sched.pop(None) == w

    def test_gives_up_when_adversary_concedes(self):
        adversary = StallCounter([])
        sched = AdversarialScheduler(adversary)
        sched.push(DeliverToken("s0", "x"))
        assert sched.pop(None) is None
        assert len(sched) == 1


class _Shout(SimNode):
    """Messages every peer once on wake-up."""

    def __init__(self, node_id, peers):
        super().__init__(node_id)
        self.peers = peers
        self.got = []

    def on_wake(self):
        for peer in self.peers:
            self.send(peer, _Tick())

    def on_message(self, sender, message):
        self.got.append(sender)


class _Tick:
    msg_type = "tick"

    def bit_size(self, id_bits):
        return 1


class TestAdversaryInSimulator:
    """on_stall drives real executions: each stall is charged as the
    adversary yielding, and a concession with work pending is an error."""

    def test_stall_release_step_accounting(self):
        adversary = StallCounter(["a", "b"])
        sim = Simulator(AdversarialScheduler(adversary))
        sim.add_node(_Shout("a", ["c"]))
        sim.add_node(_Shout("b", ["c"]))
        sink = _Shout("c", [])
        sim.add_node(sink)
        for node in ("a", "b", "c"):
            sim.schedule_wake(node)
        sim.run()
        # 3 wakes (never blocked) + 2 deliveries, each delivery preceded by
        # one stall that released its source.  Stalls are scheduler-internal:
        # they cost the adversary a concession, not the execution a step.
        assert sim.steps == 5
        assert adversary.stalls == 2
        assert sink.got == ["a", "b"]  # release order, not send order

    def test_concession_with_pending_work_is_stuck(self):
        adversary = StallCounter(["a"])  # never releases b
        sim = Simulator(AdversarialScheduler(adversary))
        sim.add_node(_Shout("a", ["c"]))
        sim.add_node(_Shout("b", ["c"]))
        sim.add_node(_Shout("c", []))
        for node in ("a", "b", "c"):
            sim.schedule_wake(node)
        with pytest.raises(StuckExecutionError):
            sim.run()
