"""Tests for the steady-state service driver (``repro.service.driver``)."""

import pytest

from repro.core.adhoc import AdhocNetwork
from repro.graphs.generators import random_weakly_connected
from repro.service.driver import ServiceDriver
from repro.service.workload import ScheduledEvent, Workload, poisson_workload


def _graph(seed=0):
    return random_weakly_connected(32, 48, seed=seed)


def _manual_workload(events, duration, rate=1.0, seed=0):
    return Workload("manual", rate, duration, seed, list(events))


def _run(workload, *, graph_seed=0, **kwargs):
    graph = _graph(graph_seed)
    net = AdhocNetwork(graph, seed=0)
    return ServiceDriver(net, workload, **kwargs).run()


class TestBasicRun:
    def test_poisson_run_completes_every_probe(self):
        graph = _graph()
        workload = poisson_workload(graph, rate=10.0, duration=2000, seed=5)
        report = _run(workload)
        assert report.operations == len(workload.events)
        assert report.injected == workload.counts_by_kind()
        assert not report.budget_exhausted
        assert report.incomplete_probes == 0
        assert report.dropped_probes == 0
        for probe in report.completed_probes:
            assert probe.latency >= 0
        assert report.clock >= workload.events[-1].at

    def test_metrics_timeline_is_sampled(self):
        workload = poisson_workload(_graph(), rate=10.0, duration=2000, seed=5)
        report = _run(workload, cadence=32)
        assert report.metrics is not None
        samples = report.metrics.samples
        assert samples, "expected at least the final sample"
        final = samples[-1].values
        assert final["injected-probes"] == report.injected.get("probe", 0)
        assert final["probes-completed"] == len(report.completed_probes)

    def test_curve_checkpoints_are_cumulative(self):
        workload = poisson_workload(_graph(), rate=15.0, duration=3000, seed=1)
        report = _run(workload)
        assert report.curve, "curve must have checkpoints"
        ops = [point[0] for point in report.curve]
        msgs = [point[1] for point in report.curve]
        assert ops == sorted(ops) and len(set(ops)) == len(ops)
        assert msgs == sorted(msgs)
        assert ops[-1] == report.operations
        assert msgs[-1] == report.service_messages


class TestDeterminism:
    def test_same_seed_identical_report(self):
        def once():
            workload = poisson_workload(_graph(), rate=12.0, duration=2500, seed=7)
            report = _run(workload)
            return (
                [(p.at, p.target, p.completed_at, p.immediate) for p in report.probes],
                report.injected,
                report.service_messages,
                report.curve,
                report.clock,
                report.steps_executed,
            )

        assert once() == once()


class TestClockAndBudget:
    def test_idle_clock_jumps_between_sparse_arrivals(self):
        graph = _graph()
        events = [
            ScheduledEvent(10, ("probe", graph.nodes[0])),
            ScheduledEvent(100_000, ("probe", graph.nodes[1])),
        ]
        report = _run(_manual_workload(events, duration=100_001))
        # The system quiesces long before step 100000; idle virtual time
        # is skipped, not executed.
        assert report.clock >= 100_000
        assert report.steps_executed < 1000
        assert report.incomplete_probes == 0

    def test_budget_exhaustion_reports_instead_of_raising(self):
        workload = poisson_workload(_graph(), rate=50.0, duration=2000, seed=3)
        report = _run(workload, step_budget=5)
        assert report.budget_exhausted
        assert report.steps_executed == 5

    def test_rejects_nonpositive_budget(self):
        workload = poisson_workload(_graph(), rate=1.0, duration=100, seed=0)
        with pytest.raises(ValueError, match="step_budget"):
            ServiceDriver(AdhocNetwork(_graph(), seed=0), workload, step_budget=0)


class TestDeferral:
    def test_probe_of_sleeping_joiner_defers_then_completes(self):
        graph = _graph()
        joiner = max(graph.nodes) + 1
        events = [
            ScheduledEvent(0, ("join", joiner, (graph.nodes[0],))),
            # Due at the same instant: the joiner's wake-up has not fired
            # yet, so the probe cannot be injected and must be deferred.
            ScheduledEvent(0, ("probe", joiner)),
        ]
        report = _run(_manual_workload(events, duration=1))
        assert report.deferrals >= 1
        assert report.dropped_probes == 0
        assert report.incomplete_probes == 0
        (probe,) = report.completed_probes
        assert probe.target == joiner
        assert probe.latency > 0

    def test_permanently_blocked_probe_is_dropped(self):
        graph = _graph()
        events = [ScheduledEvent(0, ("probe", "never-joins"))]
        report = _run(_manual_workload(events, duration=1))
        assert report.dropped_probes == 1
        assert report.incomplete_probes == 1
