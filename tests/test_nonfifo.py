"""ABL-3 / finding F6: the FIFO-channel assumption is not load-bearing.

Section 1.2 assumes per-pair FIFO delivery.  Under the "random" channel
discipline (deliveries take a uniformly random pending message from the
channel) every safety property, liveness property, and complexity lemma
still holds -- because the implementation's handshake discipline keeps at
most one order-sensitive message in flight per channel:

* a router forwards at most one search at a time (the ``previous`` queue);
* a leader has at most one query outstanding;
* merges are single-shot (release-merge -> accept/fail -> info);
* conquer/ack pairs are per-(leader, member) one-offs.

These tests pin that observation; if a future change makes channel order
matter, they will catch it.
"""

import pytest

from repro.core.result import collect_result
from repro.core.runner import build_simulation
from repro.graphs.generators import (
    complete_binary_tree,
    directed_path,
    random_weakly_connected,
    star,
)
from repro.verification.invariants import verify_discovery
from repro.verification.lemmas import check_all_lemmas
from repro.verification.monitor import StepwiseMonitor


def run_nonfifo(graph, variant, seed):
    sim, nodes = build_simulation(
        graph,
        variant,
        seed=seed,
        channel_discipline="random",
        channel_seed=seed + 1,
    )
    sim.run(10**7)
    return collect_result(graph, nodes, sim, variant), nodes, sim


@pytest.mark.parametrize(
    "maker",
    [
        lambda: star(25),
        lambda: directed_path(25),
        lambda: complete_binary_tree(4),
        lambda: random_weakly_connected(50, 150, seed=6),
    ],
    ids=["star", "path", "tree", "random"],
)
@pytest.mark.parametrize("seed", [0, 3, 11])
def test_all_variants_survive_channel_reordering(maker, variant, seed):
    graph = maker()
    result, _nodes, _sim = run_nonfifo(graph, variant, seed)
    verify_discovery(result, graph)
    failed = [
        str(c)
        for c in check_all_lemmas(result.stats, graph.n, graph.n_edges, variant)
        if not c.holds
    ]
    assert not failed, failed


def test_stepwise_safety_under_reordering():
    graph = random_weakly_connected(20, 50, seed=2)
    sim, nodes = build_simulation(
        graph, "generic", seed=5, channel_discipline="random", channel_seed=9
    )
    StepwiseMonitor(sim, nodes).run()
    verify_discovery(collect_result(graph, nodes, sim, "generic"), graph)


def test_discipline_validation():
    from repro.sim.network import Simulator

    with pytest.raises(ValueError, match="channel_discipline"):
        Simulator(channel_discipline="chaotic")


def test_reordering_actually_happens():
    """The ablation must genuinely reorder: construct a channel with two
    pending messages and observe a non-FIFO delivery for some seed."""
    from repro.sim.network import SimNode, Simulator
    from repro.sim.trace import bits_for_ids

    class Tagged:
        msg_type = "t"

        def __init__(self, tag):
            self.tag = tag

        def bit_size(self, b):
            return bits_for_ids(0, b)

    class Sink(SimNode):
        def __init__(self, node_id):
            super().__init__(node_id)
            self.seen = []

        def on_message(self, sender, message):
            self.seen.append(message.tag)

    orders = set()
    for seed in range(20):
        sim = Simulator(channel_discipline="random", channel_seed=seed)
        a, b = Sink("a"), Sink("b")
        sim.add_node(a)
        sim.add_node(b)
        a.awake = b.awake = True
        for tag in range(4):
            a.send("b", Tagged(tag))
        sim.run()
        orders.add(tuple(b.seen))
    assert any(order != (0, 1, 2, 3) for order in orders)
