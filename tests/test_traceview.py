"""Tests for the trace renderers."""

import pytest

from repro.analysis.traceview import format_trace, sequence_diagram, trace_summary
from repro.core.runner import build_simulation
from repro.graphs.knowledge_graph import KnowledgeGraph
from repro.sim.trace import ExecutionTrace, TraceEvent


def traced_run():
    graph = KnowledgeGraph([0, 1, 2], [(0, 1), (1, 2)])
    sim, nodes = build_simulation(graph, "generic", keep_trace=True)
    sim.run(10**6)
    return graph, sim


class TestFormatTrace:
    def test_contains_wakes_and_deliveries(self):
        _, sim = traced_run()
        text = format_trace(sim.trace)
        assert "wake 0" in text
        assert "--search-->" in text

    def test_limit_truncates(self):
        _, sim = traced_run()
        text = format_trace(sim.trace, limit=3)
        assert len(text.splitlines()) == 4
        assert "more events" in text

    def test_empty_trace(self):
        assert format_trace(ExecutionTrace()) == ""


class TestSummary:
    def test_counts_match_stats(self):
        _, sim = traced_run()
        summary = trace_summary(sim.trace)
        assert summary["wake"] == 3
        delivered = sum(v for k, v in summary.items() if k.startswith("deliver:"))
        assert delivered == sim.stats.total_messages

    def test_handmade(self):
        trace = ExecutionTrace()
        trace.append(TraceEvent(1, "wake", None, "a", None))
        trace.append(TraceEvent(2, "deliver", "a", "b", "x"))
        trace.append(TraceEvent(3, "deliver", "b", "a", "x"))
        assert trace_summary(trace) == {"wake": 1, "deliver:x": 2}


class TestSequenceDiagram:
    def test_renders_lanes_and_arrows(self):
        graph, sim = traced_run()
        diagram = sequence_diagram(sim.trace, graph.nodes)
        lines = diagram.splitlines()
        assert lines[0].split() == ["0", "1", "2"]
        assert any(">" in line for line in lines)
        assert any("<" in line for line in lines)
        assert any("wake" in line for line in lines)

    def test_limit(self):
        graph, sim = traced_run()
        diagram = sequence_diagram(sim.trace, graph.nodes, limit=2)
        assert "more events" in diagram

    def test_empty_nodes(self):
        assert sequence_diagram(ExecutionTrace(), []) == ""

    def test_duplicate_lane_rejected(self):
        with pytest.raises(ValueError):
            sequence_diagram(ExecutionTrace(), ["a", "a"])

    def test_unknown_node_raises(self):
        trace = ExecutionTrace()
        trace.append(TraceEvent(1, "deliver", "ghost", "a", "x"))
        with pytest.raises(KeyError):
            sequence_diagram(trace, ["a"])
