"""Unit tests for protocol message types and their bit accounting."""

import pytest

from repro.core.messages import (
    ABORT,
    MERGE,
    Conquer,
    Info,
    MergeAccept,
    MergeFail,
    MoreDone,
    Probe,
    ProbeReply,
    Query,
    QueryReply,
    Release,
    Search,
)
from repro.sim.trace import HEADER_BITS


B = 16  # id_bits used throughout


class TestBitSizes:
    def test_query_constant(self):
        assert Query(5).bit_size(B) == HEADER_BITS + B

    def test_query_reply_scales_with_ids(self):
        small = QueryReply(frozenset({1}), False).bit_size(B)
        large = QueryReply(frozenset(range(10)), False).bit_size(B)
        assert large - small == 9 * B

    def test_search_fixed(self):
        msg = Search(1, 3, 2, False)
        assert msg.bit_size(B) == HEADER_BITS + 3 * B + 1

    def test_release_fixed(self):
        assert Release(1, MERGE, 2, 3).bit_size(B) == HEADER_BITS + 3 * B + 1

    def test_control_messages_are_header_sized(self):
        assert MergeAccept().bit_size(B) == HEADER_BITS
        assert MergeFail().bit_size(B) == HEADER_BITS
        assert MoreDone(True).bit_size(B) == HEADER_BITS + 1

    def test_info_scales_with_all_sets(self):
        msg = Info(2, frozenset({1, 2}), frozenset({3}), frozenset(), frozenset({4}))
        assert msg.bit_size(B) == HEADER_BITS + (4 + 1) * B

    def test_conquer(self):
        assert Conquer(7, 3).bit_size(B) == HEADER_BITS + 2 * B

    def test_probe_messages(self):
        assert Probe(1).bit_size(B) == HEADER_BITS + B
        assert ProbeReply(1, frozenset({2, 3}), 4).bit_size(B) == HEADER_BITS + 4 * B


class TestSemantics:
    def test_release_answer_validated(self):
        Release(1, MERGE, 2, 1)
        Release(1, ABORT, 2, 1)
        with pytest.raises(ValueError):
            Release(1, "maybe", 2, 1)

    def test_msg_types_are_distinct(self):
        types = {
            Query(1).msg_type,
            QueryReply(frozenset(), True).msg_type,
            Search(1, 1, 2, False).msg_type,
            Release(1, MERGE, 2, 1).msg_type,
            MergeAccept().msg_type,
            MergeFail().msg_type,
            Info(1, frozenset(), frozenset(), frozenset(), frozenset()).msg_type,
            Conquer(1, 1).msg_type,
            MoreDone(False).msg_type,
            Probe(1).msg_type,
            ProbeReply(1, frozenset(), 2).msg_type,
        }
        assert len(types) == 11

    def test_messages_are_immutable(self):
        msg = Search(1, 1, 2, False)
        with pytest.raises(Exception):
            msg.new = True
