"""Loss and partition/heal behaviour across the baseline algorithms.

The baselines have no recovery layer, so this file documents how each one
meets channel faults: the gossip-style protocols (name-dropper, swamping)
are self-healing because they re-send until their completeness goal; the
handshake-style cluster mergers (KPV-style, Law-Siu) deadlock loudly; the
asynchronous ones either stall loudly or quiesce with a partial (but
well-formed) answer.  Nothing may corrupt silently, and a fault-free
injector must be a byte-identical no-op.
"""

import pytest

from repro.baselines import (
    run_flooding,
    run_kpv_style,
    run_law_siu,
    run_name_dropper,
    run_swamping,
)
from repro.baselines.kp_async import run_kp_async
from repro.baselines.pointer_jump import run_pointer_jump
from repro.baselines.strong_election import run_strong_election
from repro.faults import FaultInjector, FaultPlan, PartitionSpec
from repro.graphs.generators import (
    random_strongly_connected,
    random_weakly_connected,
)
from repro.sync.engine import RoundFaults


@pytest.fixture
def graph():
    return random_weakly_connected(24, 24, seed=2)


@pytest.fixture
def strong_graph():
    return random_strongly_connected(16, 16, seed=1)


class TestFaultFreeInjectorIsIdentity:
    def test_sync_baselines(self, graph):
        for runner in (run_flooding, run_swamping, run_kpv_style):
            clean = runner(graph)
            shadowed = runner(graph, faults=RoundFaults())
            assert shadowed.leaders == clean.leaders
            assert shadowed.rounds == clean.rounds
            assert shadowed.stats.total_messages == clean.stats.total_messages

    def test_async_baselines(self, graph):
        clean = run_kp_async(graph, seed=0)
        shadowed = run_kp_async(graph, seed=0, faults=FaultInjector(FaultPlan()))
        assert shadowed.leaders == clean.leaders
        assert shadowed.stats.total_messages == clean.stats.total_messages


class TestSelfHealingGossip:
    def test_name_dropper_completes_under_loss(self, graph):
        clean = run_name_dropper(graph, seed=0)
        lossy = run_name_dropper(graph, seed=0, faults=RoundFaults(loss=0.3, seed=1))
        # The run loop re-sends until the completeness goal, so loss costs
        # rounds, never correctness.
        assert lossy.leaders == clean.leaders
        assert lossy.rounds >= clean.rounds

    def test_swamping_completes_under_loss(self, graph):
        clean = run_swamping(graph)
        lossy = run_swamping(graph, faults=RoundFaults(loss=0.3, seed=1))
        assert lossy.leaders == clean.leaders
        assert lossy.rounds >= clean.rounds

    def test_swamping_rides_out_a_healed_partition(self, graph):
        faults = RoundFaults(
            partitions=[PartitionSpec(frozenset(range(6)), start=2, heal=6)]
        )
        clean = run_swamping(graph)
        parted = run_swamping(graph, faults=faults)
        assert parted.leaders == clean.leaders
        assert parted.rounds >= clean.rounds
        assert faults.dropped > 0

    def test_partition_window_after_convergence_is_a_noop(self, graph):
        clean = run_flooding(graph)
        faults = RoundFaults(
            partitions=[
                PartitionSpec(frozenset(range(6)), start=clean.rounds + 100, heal=10**6)
            ]
        )
        late = run_flooding(graph, faults=faults)
        assert late.leaders == clean.leaders
        assert late.rounds == clean.rounds
        assert faults.dropped == 0


class TestHandshakeProtocolsFailLoud:
    @pytest.mark.parametrize("runner", [run_kpv_style, run_law_siu])
    def test_cluster_merge_never_corrupts_under_loss(self, graph, runner):
        # A lost handshake can deadlock the merge dance.  The acceptable
        # outcomes are completion or a loud budget error -- never a quiet
        # wrong answer (resolve() would raise on a broken pointer forest).
        try:
            result = runner(graph, max_rounds=500, faults=RoundFaults(loss=0.2, seed=1))
        except RuntimeError:
            return
        assert result.leaders
        assert set(result.leader_of) == set(graph.nodes)

    def test_pointer_jump_under_loss(self, strong_graph):
        try:
            result = run_pointer_jump(
                strong_graph, seed=0, max_rounds=300, faults=RoundFaults(loss=0.2, seed=1)
            )
        except RuntimeError:
            return
        assert len(result.leaders) == 1


class TestAsyncBaselinesUnderInjection:
    def test_strong_election_loses_its_token_loudly(self, strong_graph):
        # The single-initiator traversal has exactly one token in flight;
        # losing it must surface as an error, not a silent partial answer.
        with pytest.raises(RuntimeError):
            run_strong_election(
                strong_graph, faults=FaultInjector(FaultPlan(loss=0.2), seed=1)
            )

    def test_kp_async_quiesces_with_partial_clusters(self, graph):
        result = run_kp_async(
            graph, seed=0, faults=FaultInjector(FaultPlan(loss=0.2), seed=1)
        )
        # Degraded (more clusters than the fault-free single leader) but
        # structurally sound: every node resolves to some leader.
        assert result.leaders
        assert set(result.leader_of) == set(graph.nodes)
        assert all(result.leader_of[l] == l for l in result.leaders)

    def test_round_faults_charges_sender_for_drops(self, graph):
        faults = RoundFaults(loss=0.4, seed=3)
        lossy = run_name_dropper(graph, seed=0, faults=faults)
        assert faults.dropped > 0
        # Dropped messages were still paid for by the sender.
        assert lossy.stats.total_messages > 0
