"""Regression corpus for the reproduction findings F1-F5 (EXPERIMENTS.md).

Each finding is pinned two ways where possible:

* the *repaired* implementation passes on the workload that exposed it;
* surgically disabling the repair (monkeypatch) reproduces the original
  failure -- demonstrating the finding is real, not an artifact.
"""

import pytest

from repro.core.generic import run_generic
from repro.core.node import DiscoveryNode
from repro.core.bounded import run_bounded
from repro.graphs.generators import random_weakly_connected
from repro.sim.scheduler import LifoScheduler
from repro.verification.invariants import InvariantViolation, verify_discovery


class TestF1MergeTrafficConstant:
    """Lemma 5.7 claims <= 2n merge messages; real executions exceed it."""

    def test_pinned_run_exceeds_papers_2n(self):
        graph = random_weakly_connected(30, 60, seed=30)
        result = run_generic(graph)
        merges = result.stats.messages("merge-accept", "merge-fail", "info")
        assert merges > 2 * graph.n  # the paper's constant fails...
        assert merges <= 3 * graph.n  # ...the corrected one holds

    def test_second_release_merge_really_happens(self):
        """The mechanism: some node is conquered, merge-fails back to
        passive, and is conquered again later -- so release-merge count
        exceeds the number of nodes that ever leave the leader states."""
        graph = random_weakly_connected(30, 60, seed=30)
        result = run_generic(graph)
        accepts = result.stats.messages("merge-accept")
        fails = result.stats.messages("merge-fail")
        # releases-merge = accepts + fails; final non-leaders = n - 1.
        assert accepts + fails > graph.n - 1


class TestF2ReleaseKnowledgeHole:
    """Dropping release-learned ids (the pseudocode as written) loses a
    leader forever; the pinned graph has a node whose id travels only in
    releases to since-dead initiators."""

    GRAPH_ARGS = (80, 160)
    SEED = 80

    def test_repaired_implementation_passes(self):
        graph = random_weakly_connected(*self.GRAPH_ARGS, seed=self.SEED)
        result = run_generic(graph)
        verify_discovery(result, graph)

    def test_disabling_absorption_reproduces_the_liveness_hole(self, monkeypatch):
        graph = random_weakly_connected(*self.GRAPH_ARGS, seed=self.SEED)
        monkeypatch.setattr(
            DiscoveryNode, "_absorb_learned_id", lambda self, other: None
        )
        # The hole manifests as a passive node surviving quiescence; result
        # collection or verification flags it (a self-pointing non-leader).
        with pytest.raises((InvariantViolation, RuntimeError)):
            result = run_generic(graph)
            verify_discovery(result, graph)


class TestF3PhaseGuardedCompression:
    """Unguarded release compression lets a stale release overwrite a newer
    conquer pointer, leaving a length-2 chain at quiescence."""

    GRAPH_ARGS = (40, 80)
    SEEDS = range(12)

    def test_repaired_implementation_passes(self):
        graph = random_weakly_connected(*self.GRAPH_ARGS, seed=self.GRAPH_ARGS[0])
        for seed in self.SEEDS:
            verify_discovery(run_generic(graph, seed=seed), graph)

    def test_disabling_guard_reproduces_the_stale_pointer(self, monkeypatch):
        from repro.core import node as node_module

        original = DiscoveryNode._route_release

        def unguarded(self, message):
            if not self.previous:
                raise node_module.ProtocolError("empty previous")
            _search, came_from = self.previous.popleft()
            self.next = message.leader  # Figure 5 verbatim: no phase guard
            self.send(came_from, message)
            if self.previous:
                pending_search, _y = self.previous[0]
                self.send(self.next, pending_search)

        monkeypatch.setattr(DiscoveryNode, "_route_release", unguarded)
        graph = random_weakly_connected(*self.GRAPH_ARGS, seed=self.GRAPH_ARGS[0])
        failures = 0
        for seed in self.SEEDS:
            result = run_generic(graph, seed=seed)
            try:
                verify_discovery(result, graph)
            except InvariantViolation as exc:
                assert "point directly" in str(exc)
                failures += 1
        assert failures > 0, "expected at least one stale-pointer violation"


class TestF4QueryTrafficConstant:
    """Lemma 5.5 claims <= 4n query traffic; LIFO delivery exceeds it."""

    def test_lifo_exceeds_papers_4n(self):
        graph = random_weakly_connected(50, 100, seed=9)
        result = run_generic(graph, scheduler=LifoScheduler())
        queries = result.stats.messages("query", "query-reply")
        assert queries > 4 * graph.n  # the paper's constant fails...
        assert queries <= 6 * graph.n  # ...the corrected one holds


class TestF5StaleSearchAfterTermination:
    """Bounded leaders receive parked searches after terminating; the
    pinned seeds used to crash with 'search in impossible status
    terminated' before the handler existed."""

    @pytest.mark.parametrize("seed", [0, 3, 4, 5])
    def test_pinned_seeds_pass(self, seed):
        graph = random_weakly_connected(3, 6, seed=3)
        result = run_bounded(graph, seed=seed)
        verify_discovery(result, graph)

    def test_many_seeds_small_graphs(self):
        for n_seed in (3, 5):
            graph = random_weakly_connected(n_seed, 2 * n_seed, seed=n_seed)
            for seed in range(20):
                verify_discovery(run_bounded(graph, seed=seed), graph)
