"""Unit tests for the graph generators."""

import pytest

from repro.graphs.components import (
    is_strongly_connected,
    is_weakly_connected,
    weakly_connected_components,
)
from repro.graphs.generators import (
    complete_binary_tree,
    complete_graph,
    dense_layered,
    directed_cycle,
    directed_path,
    disjoint_union,
    erdos_renyi,
    inverted_star,
    preferential_attachment,
    random_arborescence,
    random_strongly_connected,
    random_weakly_connected,
    star,
)


class TestDeterministicFamilies:
    def test_star(self):
        g = star(5)
        assert g.n == 5
        assert g.n_edges == 4
        assert g.out_degree(0) == 4
        assert all(g.in_degree(i) == 1 for i in range(1, 5))
        assert is_weakly_connected(g)

    def test_inverted_star(self):
        g = inverted_star(5)
        assert g.in_degree(0) == 4
        assert all(g.out_degree(i) == 1 for i in range(1, 5))

    def test_path(self):
        g = directed_path(4)
        assert g.n_edges == 3
        assert g.has_edge(0, 1) and g.has_edge(2, 3)
        assert not is_strongly_connected(g)

    def test_cycle(self):
        g = directed_cycle(4)
        assert g.n_edges == 4
        assert is_strongly_connected(g)

    def test_cycle_singleton(self):
        assert directed_cycle(1).n_edges == 0

    def test_complete_binary_tree_structure(self):
        g = complete_binary_tree(3)
        assert g.n == 7
        assert g.n_edges == 6
        assert g.successors(0) == frozenset({1, 2})
        assert g.successors(1) == frozenset({3, 4})
        # All edges away from root; leaves have no successors.
        assert all(not g.successors(k) for k in (3, 4, 5, 6))

    def test_tree_height_validation(self):
        with pytest.raises(ValueError):
            complete_binary_tree(0)

    def test_complete_graph(self):
        g = complete_graph(4)
        assert g.n_edges == 12
        assert is_strongly_connected(g)

    def test_dense_layered(self):
        g = dense_layered(3, 2)
        assert g.n == 6
        assert g.n_edges == 2 * 2 * 2
        assert is_weakly_connected(g)
        with pytest.raises(ValueError):
            dense_layered(0, 2)

    def test_positive_n_required(self):
        for maker in (star, inverted_star, directed_path, directed_cycle, complete_graph):
            with pytest.raises(ValueError):
                maker(0)


class TestRandomFamilies:
    def test_arborescence_is_spanning(self):
        g = random_arborescence(40, seed=1)
        assert g.n_edges == 39
        assert is_weakly_connected(g)

    def test_random_weakly_connected(self):
        g = random_weakly_connected(30, 50, seed=2)
        assert is_weakly_connected(g)
        assert g.n_edges >= 29  # the backbone

    def test_random_weakly_connected_zero_extra(self):
        g = random_weakly_connected(10, 0, seed=0)
        assert g.n_edges == 9

    def test_negative_extra_rejected(self):
        with pytest.raises(ValueError):
            random_weakly_connected(5, -1)

    def test_erdos_renyi_connectivity_overlay(self):
        g = erdos_renyi(25, 0.01, seed=4)
        assert is_weakly_connected(g)

    def test_erdos_renyi_no_overlay_can_disconnect(self):
        g = erdos_renyi(25, 0.0, seed=4, ensure_weakly_connected=False)
        assert g.n_edges == 0
        assert len(weakly_connected_components(g)) == 25

    def test_erdos_renyi_probability_validation(self):
        with pytest.raises(ValueError):
            erdos_renyi(5, 1.5)

    def test_preferential_attachment(self):
        g = preferential_attachment(50, 3, seed=5)
        assert is_weakly_connected(g)
        assert all(g.out_degree(i) <= 3 for i in g.nodes)
        with pytest.raises(ValueError):
            preferential_attachment(5, 0)

    def test_seed_determinism(self):
        for maker in (
            lambda s: random_weakly_connected(20, 30, seed=s),
            lambda s: erdos_renyi(15, 0.2, seed=s),
            lambda s: preferential_attachment(20, 2, seed=s),
            lambda s: random_arborescence(20, seed=s),
            lambda s: random_strongly_connected(20, 10, seed=s),
        ):
            a, b = maker(9), maker(9)
            assert list(a.edges()) == list(b.edges())
            c = maker(10)
            # Different seeds should (essentially always) differ.
            assert list(a.edges()) != list(c.edges())


class TestDisjointUnion:
    def test_relabelling(self):
        g = disjoint_union(star(3), directed_path(2))
        assert g.n == 5
        assert g.n_edges == 3
        comps = weakly_connected_components(g)
        assert sorted(len(c) for c in comps) == [2, 3]

    def test_empty_union(self):
        assert disjoint_union().n == 0


class TestGrid:
    def test_structure(self):
        from repro.graphs.generators import grid

        g = grid(3, 4)
        assert g.n == 12
        assert g.has_edge(0, 1)  # right
        assert g.has_edge(0, 4)  # down
        assert not g.has_edge(3, 4)  # no wraparound
        assert g.n_edges == 3 * 3 + 2 * 4  # right edges + down edges

    def test_bidirectional(self):
        from repro.graphs.generators import grid

        g = grid(2, 2, bidirectional=True)
        assert g.has_edge(0, 1) and g.has_edge(1, 0)
        from repro.graphs.components import is_strongly_connected

        assert is_strongly_connected(g)

    def test_weakly_connected(self):
        from repro.graphs.generators import grid
        from repro.graphs.components import is_weakly_connected

        assert is_weakly_connected(grid(5, 7))

    def test_validation(self):
        from repro.graphs.generators import grid

        with pytest.raises(ValueError):
            grid(0, 3)


class TestCommunityGraph:
    def test_structure_and_connectivity(self):
        from repro.graphs.generators import community_graph
        from repro.graphs.components import is_weakly_connected

        g = community_graph(4, 10, p_internal=0.2, bridges=2, seed=3)
        assert g.n == 40
        assert is_weakly_connected(g)

    def test_single_community(self):
        from repro.graphs.generators import community_graph
        from repro.graphs.components import is_weakly_connected

        g = community_graph(1, 8, seed=1)
        assert g.n == 8
        assert is_weakly_connected(g)

    def test_determinism(self):
        from repro.graphs.generators import community_graph

        a = community_graph(3, 6, seed=9)
        b = community_graph(3, 6, seed=9)
        assert list(a.edges()) == list(b.edges())

    def test_validation(self):
        from repro.graphs.generators import community_graph

        with pytest.raises(ValueError):
            community_graph(0, 5)
        with pytest.raises(ValueError):
            community_graph(2, 5, p_internal=2.0)
        with pytest.raises(ValueError):
            community_graph(2, 5, bridges=0)

    def test_discovery_on_communities(self):
        from repro.graphs.generators import community_graph
        from tests.conftest import run_and_verify

        graph = community_graph(3, 12, p_internal=0.25, seed=4)
        for variant in ("generic", "bounded", "adhoc"):
            run_and_verify(variant, graph, seed=2)
