"""Unit tests for virtual-time scheduling."""

import pytest

from repro.core.runner import build_simulation
from repro.graphs.generators import directed_path, random_weakly_connected, star
from repro.sim.events import DeliverToken, WakeToken
from repro.sim.network import SimNode, Simulator
from repro.sim.timed import TimedScheduler
from repro.sim.trace import bits_for_ids
from repro.verification.invariants import verify_discovery
from repro.core.result import collect_result


class Ping:
    msg_type = "ping"

    def __init__(self, tag=0):
        self.tag = tag

    def bit_size(self, id_bits):
        return bits_for_ids(1, id_bits)


class Echoer(SimNode):
    """Replies to the first `hops` pings, building a causal chain."""

    def __init__(self, node_id, peer, hops):
        super().__init__(node_id)
        self.peer = peer
        self.hops = hops
        self.received = 0

    def on_wake(self):
        if self.node_id == "a":
            self.send(self.peer, Ping())

    def on_message(self, sender, message):
        self.received += 1
        if self.received < self.hops:
            self.send(sender, Ping())


class TestClock:
    def test_causal_chain_advances_clock_by_hops(self):
        scheduler = TimedScheduler()
        sim = Simulator(scheduler)
        sim.add_node(Echoer("a", "b", hops=5))
        sim.add_node(Echoer("b", "a", hops=5))
        sim.schedule_wake("a")
        sim.schedule_wake("b")
        sim.run()
        # a->b, b->a, ... : 9 messages end-to-end, 1 unit each.
        assert scheduler.now == 9.0

    def test_custom_constant_latency(self):
        scheduler = TimedScheduler(latency=2.5)
        sim = Simulator(scheduler)
        sim.add_node(Echoer("a", "b", hops=1))
        sim.add_node(Echoer("b", "a", hops=1))
        sim.schedule_wake("a")
        sim.schedule_wake("b")
        sim.run()
        assert scheduler.now == 2.5

    def test_callable_latency(self):
        scheduler = TimedScheduler(latency=lambda src, dst: 0.5 if src == "a" else 3.0)
        sim = Simulator(scheduler)
        sim.add_node(Echoer("a", "b", hops=2))
        sim.add_node(Echoer("b", "a", hops=2))
        sim.schedule_wake("a")
        sim.schedule_wake("b")
        sim.run()
        # a->b at 0.5, b->a at 3.5, a->b at 4.0.
        assert scheduler.now == 4.0

    def test_midrun_wake_never_fires_in_the_past(self):
        """A dynamic join's wake-up pushed after the clock advanced is due
        *now*, not at its default time 0.0 -- the clock stays monotone."""
        scheduler = TimedScheduler()
        sim = Simulator(scheduler)
        sim.add_node(Echoer("a", "b", hops=3))
        sim.add_node(Echoer("b", "a", hops=3))
        sim.schedule_wake("a")
        sim.schedule_wake("b")
        sim.run()
        advanced = scheduler.now
        assert advanced > 0
        late = Echoer("c", "a", hops=0)
        sim.add_node(late)
        sim.schedule_wake("c")
        sim.run()
        assert late.received == 0 and late.awake
        assert scheduler.now >= advanced

    def test_midrun_wake_respects_a_future_configured_time(self):
        scheduler = TimedScheduler(wake_times={"c": 50.0})
        sim = Simulator(scheduler)
        sim.add_node(Echoer("a", "b", hops=2))
        sim.add_node(Echoer("b", "a", hops=2))
        sim.schedule_wake("a")
        sim.schedule_wake("b")
        sim.run()
        assert 0 < scheduler.now < 50.0
        sim.add_node(Echoer("c", "a", hops=0))
        sim.schedule_wake("c")
        sim.run()
        assert scheduler.now == 50.0

    def test_wake_times(self):
        scheduler = TimedScheduler(wake_times={"a": 7.0})
        sim = Simulator(scheduler)
        sim.add_node(Echoer("a", "b", hops=1))
        sim.add_node(Echoer("b", "a", hops=1))
        sim.schedule_wake("a")
        sim.schedule_wake("b")
        sim.run()
        assert scheduler.now == 8.0  # woke at 7, one message hop

    def test_latency_validation(self):
        with pytest.raises(ValueError):
            TimedScheduler(latency=0)
        scheduler = TimedScheduler(latency=lambda s, d: -1.0)
        sim = Simulator(scheduler)
        sim.add_node(Echoer("a", "b", hops=1))
        sim.add_node(Echoer("b", "a", hops=1))
        sim.schedule_wake("a")
        with pytest.raises(ValueError):
            sim.run()

    def test_pending_and_len(self):
        scheduler = TimedScheduler()
        scheduler.push(WakeToken("x"))
        scheduler.push(WakeToken("y"))
        assert len(scheduler) == 2
        assert len(list(scheduler.pending())) == 2


class TestProtocolUnderTiming:
    @pytest.mark.parametrize("variant", ["generic", "bounded", "adhoc"])
    def test_discovery_correct_under_unit_latency(self, variant):
        graph = random_weakly_connected(25, 60, seed=4)
        scheduler = TimedScheduler()
        sim, nodes = build_simulation(graph, variant, scheduler=scheduler)
        sim.run(10**7)
        verify_discovery(collect_result(graph, nodes, sim, variant), graph)
        assert scheduler.now > 0

    def test_discovery_correct_under_jitter(self):
        import random

        rng = random.Random(9)
        graph = random_weakly_connected(25, 60, seed=5)
        scheduler = TimedScheduler(latency=lambda s, d: rng.uniform(0.1, 5.0))
        sim, nodes = build_simulation(graph, "generic", scheduler=scheduler)
        sim.run(10**7)
        verify_discovery(collect_result(graph, nodes, sim, "generic"), graph)

    def test_late_wakeup_adds_T_not_multiplies(self):
        """The Section 7 wake-up model: completion ~ T + O(n), so doubling
        T shifts the clock additively."""
        graph = star(20)
        times = {}
        for T in (0.0, 50.0):
            scheduler = TimedScheduler(wake_times={0: T})
            sim, nodes = build_simulation(graph, "generic", scheduler=scheduler)
            sim.run(10**7)
            times[T] = scheduler.now
        assert times[50.0] <= times[0.0] + 50.0 + 1e-9
        assert times[50.0] >= 50.0

    def test_path_graph_time_linear_in_n(self):
        times = []
        for n in (20, 40, 80):
            scheduler = TimedScheduler()
            sim, nodes = build_simulation(directed_path(n), "adhoc", scheduler=scheduler)
            sim.run(10**7)
            times.append(scheduler.now / n)
        assert max(times) / min(times) <= 2.0
