"""Concurrency tests for campaign claims: racing workers, lease takeover.

SQLite connections are thread-bound, so every worker thread opens its own
:class:`CampaignStore` on the shared database file -- exactly what two
racing ``campaign run`` processes do, minus the fork overhead.
"""

import threading
import time

from repro.campaign import CampaignRunner, CampaignStore
from repro.parallel import sweep_jobs

TOY = "tests.test_parallel:exp_toy"


def payload(seed):
    return {"headers": ["case", "messages"], "rows": [["toy", seed]], "messages": None}


class TestClaimContention:
    def test_racing_claimers_partition_without_loss(self, tmp_path):
        """N threads hammering claim() must hand every cell to exactly one
        claimant: no cell double-claimed, none lost."""
        path = tmp_path / "campaign.db"
        jobs = sweep_jobs(TOY, range(40), {"scale": 2})
        CampaignStore.create(path, jobs).close()

        claimed_by = {f"w{i}": [] for i in range(4)}
        errors = []

        def worker(owner):
            try:
                store = CampaignStore.open(path)
                try:
                    while True:
                        cells = store.claim(owner, 3)
                        if not cells:
                            return
                        claimed_by[owner].extend(cell.key for cell in cells)
                        for cell in cells:
                            store.complete(cell.key, payload(cell.seed))
                finally:
                    store.close()
            except Exception as exc:
                errors.append(repr(exc))

        threads = [
            threading.Thread(target=worker, args=(owner,)) for owner in claimed_by
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert errors == []

        all_claims = [key for keys in claimed_by.values() for key in keys]
        assert len(all_claims) == 40, "a cell was double-claimed or lost"
        assert len(set(all_claims)) == 40
        audit = CampaignStore.open(path)
        assert audit.counts()["done"] == 40
        assert audit.compute_stats() == {"computed": 40, "redundant": 0}
        audit.close()

    def test_two_runners_drain_concurrently_without_recompute(self, tmp_path):
        """Two full CampaignRunner loops on the same DB: every cell done
        exactly once, reports sum to the campaign size."""
        path = tmp_path / "campaign.db"
        jobs = sweep_jobs(TOY, range(30), {"scale": 5})
        CampaignStore.create(path, jobs).close()

        reports = {}
        errors = []

        def run(name):
            try:
                store = CampaignStore.open(path)
                try:
                    reports[name] = CampaignRunner(
                        store,
                        chunk=4,
                        worker_id=name,
                        handle_signals=False,
                        max_wait=0.05,
                    ).run()
                finally:
                    store.close()
            except Exception as exc:
                errors.append(repr(exc))

        threads = [threading.Thread(target=run, args=(f"w{i}",)) for i in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert errors == []
        assert sum(r.stored for r in reports.values()) == 30
        assert all(r.redundant == 0 for r in reports.values())

        audit = CampaignStore.open(path)
        assert audit.counts()["done"] == 30
        assert audit.compute_stats() == {"computed": 30, "redundant": 0}
        audit.close()


class TestLeaseTakeover:
    def test_takeover_mid_run_is_idempotent(self, tmp_path):
        """A wedged worker's lease expires; a survivor recomputes the
        cell; the wedged worker's late completion is absorbed as a
        redundant upsert, first writer wins."""
        path = tmp_path / "campaign.db"
        jobs = sweep_jobs(TOY, range(2), {"scale": 2})
        CampaignStore.create(path, jobs, lease=0.15).close()

        wedged = CampaignStore.open(path)
        (cell,) = wedged.claim("wedged", 1)

        time.sleep(0.2)  # lease expires

        survivor = CampaignStore.open(path)
        report = CampaignRunner(
            survivor, worker_id="survivor", handle_signals=False, max_wait=0.05
        ).run()
        assert report.drained
        assert report.stored == 2  # including the taken-over cell

        # The wedged worker finally finishes its long-lost computation.
        assert wedged.complete(cell.key, payload(99)) is False
        after = survivor.cell(cell.key)
        assert after.status == "done"
        assert after.result != payload(99)  # survivor's result kept
        assert survivor.compute_stats() == {"computed": 3, "redundant": 1}
        wedged.close()
        survivor.close()
