"""Tests for the staged-wake liveness harness."""

import random

import pytest

from repro.graphs.generators import (
    complete_binary_tree,
    directed_path,
    disjoint_union,
    random_weakly_connected,
    star,
)
from repro.verification.liveness import staged_liveness_check


class TestStagedLiveness:
    @pytest.mark.parametrize(
        "maker",
        [
            lambda: star(10),
            lambda: directed_path(10),
            lambda: complete_binary_tree(3),
            lambda: random_weakly_connected(16, 40, seed=2),
            lambda: disjoint_union(star(5), directed_path(4)),
        ],
        ids=["star", "path", "tree", "random", "multi"],
    )
    @pytest.mark.parametrize("variant", ["generic", "bounded", "adhoc"])
    def test_staged_wake_keeps_all_properties(self, maker, variant):
        graph = maker()
        report = staged_liveness_check(graph, variant, seed=1)
        assert report.stages == graph.n

    @pytest.mark.parametrize("seed", [0, 5, 9])
    def test_random_wake_orders(self, seed):
        graph = random_weakly_connected(14, 30, seed=4)
        order = list(graph.nodes)
        random.Random(seed).shuffle(order)
        report = staged_liveness_check(graph, "adhoc", wake_order=order, seed=seed)
        # Leaders can only merge as the network wakes; the final stage has
        # exactly one per weak component (here: one).
        assert report.leaders_per_stage[-1] == 1

    def test_leader_count_is_monotone_enough(self):
        """Intermediate leader counts never exceed the number of awake
        nodes and end at the component count."""
        graph = random_weakly_connected(12, 25, seed=7)
        report = staged_liveness_check(graph, "adhoc", seed=3)
        for stage, leaders in enumerate(report.leaders_per_stage, start=1):
            assert 1 <= leaders <= stage

    def test_bad_wake_order_rejected(self):
        graph = star(4)
        with pytest.raises(ValueError, match="permutation"):
            staged_liveness_check(graph, wake_order=[0, 1])

    def test_reverse_order_on_path_is_expensive_but_correct(self):
        """Waking a directed path back-to-front forces repeated leader
        churn -- the harness verifies correctness stage by stage anyway."""
        graph = directed_path(12)
        order = list(reversed(graph.nodes))
        report = staged_liveness_check(graph, "adhoc", wake_order=order)
        assert report.leaders_per_stage[-1] == 1
