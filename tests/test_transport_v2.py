"""Transport v2 (selective repeat) properties: exactly-once FIFO under
arbitrary seeded fault plans, differential equivalence against the v1
go-back-N path, and the give-up / epoch-fencing interaction.
"""

import pytest

from repro.faults import CrashSpec, FaultInjector, FaultPlan, ReliableNode
from repro.sim.network import SimNode, Simulator
from repro.sim.scheduler import GlobalFifoScheduler, LifoScheduler, RandomScheduler
from repro.sim.trace import bits_for_ids


class Tagged:
    msg_type = "tagged"

    def __init__(self, tag):
        self.tag = tag

    def bit_size(self, id_bits):
        return bits_for_ids(1, id_bits)


class Chatter(SimNode):
    """Sends ``count`` tagged payloads to each peer in ``targets`` on
    wake-up, interleaved round-robin so several channels are in flight at
    once, and echoes one reply per received payload (reverse traffic for
    the piggyback path)."""

    def __init__(self, node_id, targets, count, echo=True):
        super().__init__(node_id)
        self.targets = targets
        self.count = count
        self.echo = echo
        self.received = []

    def on_wake(self):
        for i in range(self.count):
            for target in self.targets:
                self.send(target, Tagged(i))

    def on_message(self, sender, message):
        self.received.append((sender, message.tag))
        if self.echo and message.tag < 0:
            return  # never echo an echo
        if self.echo:
            self.send(sender, Tagged(-1 - message.tag))


def make_scheduler(name, seed):
    if name == "fifo":
        return GlobalFifoScheduler()
    if name == "lifo":
        return LifoScheduler()
    return RandomScheduler(seed)


def run_mesh(plan, scheduler_name, *, seed, transport, count=8, echo=True):
    """Three nodes, all-to-all bursts (+ echoes), under one fault plan."""
    sim = Simulator(
        make_scheduler(scheduler_name, seed),
        faults=FaultInjector(plan, seed=seed),
        channel_discipline="random" if scheduler_name == "random" else "fifo",
        channel_seed=seed,
    )
    ids = ["a", "b", "c"]
    nodes = {}
    for node_id in ids:
        peers = [p for p in ids if p != node_id]
        nodes[node_id] = Chatter(node_id, peers, count, echo=echo)
        sim.add_node(
            ReliableNode(
                nodes[node_id], base_timeout=16, max_retries=6, transport=transport
            )
        )
        sim.schedule_wake(node_id)
    sim.run()
    return sim, nodes


FAULT_PLANS = [
    FaultPlan(),
    FaultPlan(loss=0.25),
    FaultPlan(duplicate=0.3),
    FaultPlan(loss=0.2, duplicate=0.2),
]


def skip_unfair_lossy(scheduler_name, plan):
    """Loss + pure-LIFO delivery is outside the transport's model.

    A LIFO stack starves old deliveries for as long as *new* events keep
    arriving, and under loss the retransmit timers supply new events
    forever -- so a channel's traffic can make no progress for longer
    than any finite give-up horizon, and the transport (either
    generation) rightly concludes the peer is unreachable.  Exactly-once
    delivery is only promised under the asynchronous model's fairness
    assumption (every sent message is *eventually* delivered), which
    fifo/random honour and adversarial LIFO does not."""
    if scheduler_name == "lifo" and plan.loss > 0:
        pytest.skip("LIFO starvation violates eventual delivery under loss")


@pytest.mark.parametrize("scheduler_name", ["fifo", "lifo", "random"])
@pytest.mark.parametrize("plan_index", range(len(FAULT_PLANS)))
@pytest.mark.parametrize("seed", range(3))
class TestExactlyOnceFifoProperty:
    """sr delivers every payload exactly once, per-channel FIFO, under any
    seeded fault plan and delivery order."""

    def test_mesh_delivery(self, scheduler_name, plan_index, seed):
        plan = FAULT_PLANS[plan_index]
        skip_unfair_lossy(scheduler_name, plan)
        sim, nodes = run_mesh(plan, scheduler_name, seed=seed, transport="sr")
        for node in nodes.values():
            for peer in node.targets:
                forward = [tag for src, tag in node.received if src == peer and tag >= 0]
                echoes = [tag for src, tag in node.received if src == peer and tag < 0]
                # Exactly once, in order, on both the burst and echo flows.
                assert forward == list(range(node.count)), (peer, node.node_id)
                assert echoes == [-1 - i for i in range(node.count)], (
                    peer,
                    node.node_id,
                )


@pytest.mark.parametrize("scheduler_name", ["fifo", "lifo", "random"])
@pytest.mark.parametrize("plan_index", range(len(FAULT_PLANS)))
@pytest.mark.parametrize("seed", range(2))
class TestDifferentialGbnVsSr:
    """The two transport generations are protocol-indistinguishable: the
    wrapped nodes see identical per-channel payload sequences (cost
    differs; semantics must not)."""

    def test_same_delivered_sequences(self, scheduler_name, plan_index, seed):
        plan = FAULT_PLANS[plan_index]
        skip_unfair_lossy(scheduler_name, plan)
        _, nodes_sr = run_mesh(plan, scheduler_name, seed=seed, transport="sr")
        _, nodes_gbn = run_mesh(plan, scheduler_name, seed=seed, transport="gbn")
        for node_id in nodes_sr:
            for peer in nodes_sr[node_id].targets:
                per_channel_sr = [
                    tag for src, tag in nodes_sr[node_id].received if src == peer
                ]
                per_channel_gbn = [
                    tag for src, tag in nodes_gbn[node_id].received if src == peer
                ]
                # The interleaving across channels is schedule-dependent
                # (the transports time their repairs differently), but each
                # channel's delivered sequence is identical.
                assert per_channel_sr == per_channel_gbn, (node_id, peer)


class TestGiveUpVsEpochFencing:
    """A superseded incarnation's retry budget must never be charged to
    the live one (the re-keyed channel restarts its give-up clock)."""

    def _sender_with_stuck_channel(self):
        sim = Simulator(
            GlobalFifoScheduler(),
            faults=FaultInjector(FaultPlan(crashes=(CrashSpec("b", at_step=0),))),
        )
        burst = Chatter("a", ["b"], 3, echo=False)
        sender = ReliableNode(burst, base_timeout=4, max_retries=6, transport="sr")
        sim.add_node(sender)
        sim.add_node(ReliableNode(Chatter("b", ["a"], 0), transport="sr"))
        sim.schedule_wake("a")
        # Burn most of the give-up budget against the dead incarnation.
        for _ in range(3000):
            if not sim.step():
                break
            if sender._channels.get("b") and sender._channels["b"].attempts >= 4:
                break
        channel = sender._channels["b"]
        assert channel.attempts >= 4
        assert channel.outstanding
        return sim, sender, channel

    def test_epoch_reset_restarts_the_give_up_clock(self):
        sim, sender, stale = self._sender_with_stuck_channel()
        # The peer restarts under a bumped epoch; the teach-ack re-keys the
        # sender's channel and re-queues the backlog on a fresh one.
        sender._epoch_reset("b", 1)
        fresh = sender._channels["b"]
        assert fresh is not stale
        assert fresh.attempts == 0
        assert fresh.srtt is None  # fresh estimator, no inherited backoff
        assert len(fresh.outstanding) == 3  # the backlog rode over
        # The fresh channel's frames count as first transmissions *now*:
        # its give-up horizon is measured from this instant, not from the
        # stale incarnation's first attempt.
        assert all(step == sim.steps for step in fresh.sent_at.values())
        assert sender.undeliverable == []

    def test_stale_budget_not_inherited_by_retries(self):
        sim, sender, _stale = self._sender_with_stuck_channel()
        sender._epoch_reset("b", 1)
        # Even after more fruitless rounds against the (still dead) new
        # incarnation, the fresh channel gets its full round budget: the
        # combined attempts observed after the reset start over from 1.
        fresh = sender._channels["b"]
        for _ in range(200):
            if not sim.step():
                break
            if fresh.attempts >= 2:
                break
        assert 0 < fresh.attempts <= sender.max_retries
