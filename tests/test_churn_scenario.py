"""Tests for the scripted churn scenarios (Section 6 machinery)."""

import pytest

from repro.core.dynamic import ChurnScenario, random_churn
from repro.graphs.generators import random_weakly_connected, star
from repro.graphs.knowledge_graph import KnowledgeGraph
from repro.verification.invariants import verify_discovery


class TestValidation:
    def test_join_duplicate_rejected(self):
        with pytest.raises(ValueError, match="already exists"):
            ChurnScenario(star(3), [("join", 0, ())])

    def test_join_unknown_reference_rejected(self):
        with pytest.raises(ValueError, match=r"join references 42 unknown"):
            ChurnScenario(star(3), [("join", 99, (42,))])

    def test_link_unknown_endpoint_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            ChurnScenario(star(3), [("link", 0, 42)])

    def test_probe_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            ChurnScenario(star(3), [("probe", 42)])

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown kind"):
            ChurnScenario(star(3), [("reboot", 1)])

    def test_join_then_reference_is_fine(self):
        ChurnScenario(star(3), [("join", 10, (0,)), ("link", 10, 1), ("probe", 10)])


class TestLaterJoinDiagnostics:
    """References to nodes that only join *later* get an explicit error
    naming the joining event -- not an opaque ProtocolError mid-replay."""

    def test_probe_before_join_names_the_join_event(self):
        with pytest.raises(
            ValueError, match=r"event 0: probe target 100 joins later \(event 1\)"
        ):
            ChurnScenario(star(3), [("probe", 100), ("join", 100, (0,))])

    def test_link_before_join_names_the_join_event(self):
        with pytest.raises(
            ValueError, match=r"event 0: link endpoint 100 joins later \(event 1\)"
        ):
            ChurnScenario(star(3), [("link", 0, 100), ("join", 100, (0,))])

    def test_join_referencing_later_joiner_names_the_join_event(self):
        with pytest.raises(
            ValueError, match=r"event 0: join references 11 joins later \(event 1\)"
        ):
            ChurnScenario(star(3), [("join", 10, (11,)), ("join", 11, (0,))])

    def test_replay_revalidates_against_supplied_network(self):
        from repro.core.adhoc import AdhocNetwork

        scenario = ChurnScenario(star(5), [("probe", 4)])
        mismatched = AdhocNetwork(star(3), seed=0)  # has no node 4
        with pytest.raises(ValueError, match=r"probe target 4 unknown"):
            scenario.replay(network=mismatched)


class TestReplay:
    def test_costs_recorded_per_event(self):
        scenario = ChurnScenario(
            star(5),
            [("join", 10, (0,)), ("link", 3, 4), ("probe", 2)],
            seed=1,
        )
        net, outcome = scenario.replay(verify_each=True)
        assert len(outcome.costs) == 3
        assert outcome.costs[0].event[0] == "join"
        assert outcome.costs[0].messages > 0
        assert len(outcome.probe_answers) == 1
        leader, members = outcome.probe_answers[0]
        assert members == frozenset(net.graph.nodes)

    def test_summary(self):
        scenario = ChurnScenario(star(4), [("probe", 1), ("probe", 2)], seed=0)
        _, outcome = scenario.replay()
        assert "probe: 2 events" in outcome.summary()
        assert ChurnScenario(star(3), []).replay()[1].summary() == "no events"

    def test_total_messages_matches_deltas(self):
        scenario = random_churn(random_weakly_connected(12, 24, seed=2), 10, seed=2)
        net, outcome = scenario.replay()
        assert outcome.total_messages == sum(c.messages for c in outcome.costs)

    def test_replay_is_reproducible(self):
        graph = random_weakly_connected(10, 20, seed=3)
        scenario = random_churn(graph, 8, seed=3)
        _, a = scenario.replay()
        _, b = scenario.replay()
        assert [c.messages for c in a.costs] == [c.messages for c in b.costs]


class TestRandomChurn:
    def test_respects_weights(self):
        graph = star(6)
        only_probes = random_churn(graph, 20, seed=1, join_weight=0, link_weight=0)
        assert all(event[0] == "probe" for event in only_probes.events)
        only_joins = random_churn(graph, 10, seed=1, link_weight=0, probe_weight=0)
        assert all(event[0] == "join" for event in only_joins.events)

    def test_integer_graphs_get_integer_joiners(self):
        scenario = random_churn(star(4), 20, seed=5)
        joiners = [event[1] for event in scenario.events if event[0] == "join"]
        assert joiners and all(isinstance(j, int) for j in joiners)

    def test_string_graphs_get_string_joiners(self):
        graph = KnowledgeGraph(["a", "b"], [("a", "b")])
        scenario = random_churn(graph, 20, seed=5)
        joiners = [event[1] for event in scenario.events if event[0] == "join"]
        assert joiners and all(isinstance(j, str) for j in joiners)

    def test_bad_arguments(self):
        with pytest.raises(ValueError):
            random_churn(star(3), -1)
        with pytest.raises(ValueError):
            random_churn(star(3), 5, join_weight=0, link_weight=0, probe_weight=0)

    @pytest.mark.parametrize("seed", [0, 7, 23])
    def test_same_seed_identical_events(self, seed):
        graph = random_weakly_connected(12, 24, seed=1)
        a = random_churn(graph, 25, seed=seed)
        b = random_churn(graph, 25, seed=seed)
        assert a.events == b.events

    def test_same_seed_identical_outcome_across_fast_paths(self):
        """One seed, one schedule: replaying on the compiled fast path and
        the legacy object path yields the identical ChurnOutcome."""
        from repro.core.adhoc import AdhocNetwork

        graph = random_weakly_connected(12, 24, seed=4)
        scenario = random_churn(graph, 12, seed=4)
        outcomes = []
        for fast in (True, False):
            net = AdhocNetwork(graph, seed=scenario.seed, fast=fast)
            _, outcome = scenario.replay(network=net)
            outcomes.append(
                (
                    [(c.event, c.messages, c.bits) for c in outcome.costs],
                    outcome.probe_answers,
                )
            )
        assert outcomes[0] == outcomes[1]

    @pytest.mark.parametrize("seed", [0, 7, 23])
    def test_random_scenarios_keep_invariants(self, seed):
        graph = random_weakly_connected(15, 30, seed=seed)
        scenario = random_churn(graph, 15, seed=seed)
        net, _ = scenario.replay(verify_each=True)
        verify_discovery(net.result(), net.graph)
