"""Unit tests for the campaign cell store (repro.campaign.store).

Everything here runs on a fake clock -- lease expiry, retry backoff and
takeover are all tested without sleeping.
"""

import pytest

from repro.campaign import (
    CampaignCodeDrift,
    CampaignError,
    CampaignStore,
)
from repro.campaign.store import CLAIMED, DONE, FAILED, PENDING
from repro.parallel import Job

TOY = "tests.test_parallel:exp_toy"


class FakeClock:
    def __init__(self, now=1000.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


def make_jobs(n=4, scale=2):
    return [Job.create(TOY, {"scale": scale}, seed=seed) for seed in range(n)]


def make_store(tmp_path, n=4, **kwargs):
    clock = kwargs.pop("clock", FakeClock())
    store = CampaignStore.create(
        tmp_path / "campaign.db", make_jobs(n), clock=clock, **kwargs
    )
    return store, clock


def payload(seed):
    return {"headers": ["case", "messages"], "rows": [["toy", seed]], "messages": seed}


class TestLifecycle:
    def test_create_and_reopen(self, tmp_path):
        store, _ = make_store(tmp_path, n=3, max_attempts=4, backoff=2.0, lease=30.0)
        store.close()
        reopened = CampaignStore.open(tmp_path / "campaign.db")
        assert reopened.total_cells() == 3
        assert reopened.max_attempts == 4
        assert reopened.backoff == 2.0
        assert reopened.lease == 30.0
        assert reopened.counts() == {
            "pending": 3, "claimed": 0, "done": 0, "failed": 0,
        }

    def test_create_refuses_existing_path(self, tmp_path):
        make_store(tmp_path)
        with pytest.raises(CampaignError, match="already exists"):
            CampaignStore.create(tmp_path / "campaign.db", make_jobs())

    def test_create_refuses_empty_and_duplicate_grids(self, tmp_path):
        with pytest.raises(CampaignError, match="at least one"):
            CampaignStore.create(tmp_path / "a.db", [])
        job = Job.create(TOY, {"scale": 2}, seed=0)
        with pytest.raises(CampaignError, match="duplicate"):
            CampaignStore.create(tmp_path / "b.db", [job, job])

    def test_open_missing_path_raises(self, tmp_path):
        with pytest.raises(CampaignError, match="campaign init"):
            CampaignStore.open(tmp_path / "nope.db")

    def test_open_non_campaign_file_raises(self, tmp_path):
        bogus = tmp_path / "bogus.db"
        bogus.write_text("not sqlite at all")
        with pytest.raises(CampaignError):
            CampaignStore.open(bogus)

    def test_cell_identity_is_job_key(self, tmp_path):
        store, _ = make_store(tmp_path, n=2)
        jobs = make_jobs(2)
        for job in jobs:
            cell = store.cell(job.key())
            assert cell.job() == job

    def test_code_drift_detected(self, tmp_path, monkeypatch):
        store, _ = make_store(tmp_path)
        assert store.check_code() is True
        monkeypatch.setattr(
            "repro.campaign.store.protocol_code_digest", lambda: "deadbeef"
        )
        with pytest.raises(CampaignCodeDrift, match="allow-code-drift"):
            store.check_code()
        assert store.check_code(allow_drift=True) is False


class TestClaims:
    def test_claim_is_id_ordered_and_bounded(self, tmp_path):
        store, _ = make_store(tmp_path, n=5)
        cells = store.claim("w1", 3)
        assert [cell.seed for cell in cells] == [0, 1, 2]
        assert all(cell.status == CLAIMED for cell in cells)
        assert all(cell.lease_owner == "w1" for cell in cells)
        assert store.counts()["claimed"] == 3

    def test_two_owners_partition_the_cells(self, tmp_path):
        store, _ = make_store(tmp_path, n=4)
        first = store.claim("w1", 2)
        second = store.claim("w2", 4)
        keys1 = {cell.key for cell in first}
        keys2 = {cell.key for cell in second}
        assert not keys1 & keys2
        assert len(keys1 | keys2) == 4

    def test_live_lease_is_not_reclaimable(self, tmp_path):
        store, clock = make_store(tmp_path, n=1, lease=60.0)
        assert store.claim("w1", 1)
        clock.advance(30)
        assert store.claim("w2", 1) == []

    def test_expired_lease_is_taken_over(self, tmp_path):
        store, clock = make_store(tmp_path, n=1, lease=60.0)
        (cell,) = store.claim("w1", 1)
        clock.advance(61)
        (taken,) = store.claim("w2", 1)
        assert taken.key == cell.key
        assert taken.lease_owner == "w2"

    def test_heartbeat_extends_the_lease(self, tmp_path):
        store, clock = make_store(tmp_path, n=1, lease=60.0)
        store.claim("w1", 1)
        clock.advance(50)
        assert store.heartbeat("w1") == 1
        clock.advance(50)  # 100s after claim, but only 50 after renewal
        assert store.claim("w2", 1) == []

    def test_release_returns_cells_to_pending(self, tmp_path):
        store, _ = make_store(tmp_path, n=3)
        store.claim("w1", 2)
        assert store.release("w1") == 2
        assert store.counts() == {
            "pending": 3, "claimed": 0, "done": 0, "failed": 0,
        }
        # and they are immediately claimable by someone else
        assert len(store.claim("w2", 3)) == 3

    def test_release_only_touches_own_cells(self, tmp_path):
        store, _ = make_store(tmp_path, n=2)
        store.claim("w1", 1)
        store.claim("w2", 1)
        assert store.release("w1") == 1
        assert store.counts()["claimed"] == 1


class TestCompletion:
    def test_complete_stores_result(self, tmp_path):
        store, _ = make_store(tmp_path, n=1)
        (cell,) = store.claim("w1", 1)
        assert store.complete(cell.key, payload(0), wall=0.5) is True
        after = store.cell(cell.key)
        assert after.status == DONE
        assert after.result == payload(0)
        assert after.wall == 0.5
        assert after.compute_count == 1
        assert after.lease_owner is None
        assert store.unfinished() == 0

    def test_complete_is_idempotent_first_writer_wins(self, tmp_path):
        store, _ = make_store(tmp_path, n=1)
        (cell,) = store.claim("w1", 1)
        assert store.complete(cell.key, payload(0)) is True
        assert store.complete(cell.key, payload(99)) is False
        after = store.cell(cell.key)
        assert after.result == payload(0)  # first writer's result kept
        assert after.compute_count == 2
        assert after.redundant == 1
        assert store.compute_stats() == {"computed": 2, "redundant": 1}

    def test_complete_unknown_key_raises(self, tmp_path):
        store, _ = make_store(tmp_path, n=1)
        with pytest.raises(CampaignError, match="no cell"):
            store.complete("f" * 24, payload(0))


class TestFailureClassification:
    def test_transient_failure_retries_with_backoff(self, tmp_path):
        store, clock = make_store(tmp_path, n=1, backoff=10.0)
        (cell,) = store.claim("w1", 1)
        assert store.fail(cell.key, "timeout after 5s", transient=True) == PENDING
        after = store.cell(cell.key)
        assert after.attempts == 1
        assert after.next_attempt_at == clock.now + 10.0
        # not claimable until the backoff horizon passes
        assert store.claim("w1", 1) == []
        clock.advance(11)
        assert len(store.claim("w1", 1)) == 1

    def test_backoff_doubles_per_attempt(self, tmp_path):
        store, clock = make_store(tmp_path, n=1, backoff=10.0, max_attempts=9)
        (cell,) = store.claim("w1", 1)
        expected = [10.0, 20.0, 40.0]
        for attempt, backoff in enumerate(expected, start=1):
            store.fail(cell.key, f"timeout {attempt}", transient=True)
            assert store.cell(cell.key).next_attempt_at == clock.now + backoff
            clock.advance(backoff + 1)
            assert len(store.claim("w1", 1)) == 1

    def test_same_error_digest_twice_is_permanent(self, tmp_path):
        store, clock = make_store(tmp_path, n=1, backoff=0.0)
        (cell,) = store.claim("w1", 1)
        assert store.fail(cell.key, "ValueError: bad graph") == PENDING
        store.claim("w1", 1)
        assert store.fail(cell.key, "ValueError: bad graph") == FAILED
        after = store.cell(cell.key)
        assert after.status == FAILED
        assert after.attempts == 2
        assert store.unfinished() == 0

    def test_different_errors_keep_retrying_to_the_cap(self, tmp_path):
        store, _ = make_store(tmp_path, n=1, backoff=0.0, max_attempts=3)
        (cell,) = store.claim("w1", 1)
        assert store.fail(cell.key, "error one") == PENDING
        store.claim("w1", 1)
        assert store.fail(cell.key, "error two") == PENDING
        store.claim("w1", 1)
        assert store.fail(cell.key, "error three") == FAILED
        assert store.cell(cell.key).attempts == 3

    def test_transient_failures_also_respect_the_cap(self, tmp_path):
        store, _ = make_store(tmp_path, n=1, backoff=0.0, max_attempts=2)
        (cell,) = store.claim("w1", 1)
        assert store.fail(cell.key, "timeout", transient=True) == PENDING
        store.claim("w1", 1)
        assert store.fail(cell.key, "timeout", transient=True) == FAILED

    def test_failure_after_done_is_dropped_but_audited(self, tmp_path):
        """A redundant recomputation that *fails* must not undo the
        stored result."""
        store, _ = make_store(tmp_path, n=1)
        (cell,) = store.claim("w1", 1)
        store.complete(cell.key, payload(0))
        assert store.fail(cell.key, "late loser crashed") == DONE
        after = store.cell(cell.key)
        assert after.status == DONE
        assert after.result == payload(0)
        assert after.redundant == 1


class TestQueries:
    def test_next_wakeup_tracks_backoff_and_leases(self, tmp_path):
        store, clock = make_store(tmp_path, n=2, backoff=10.0, lease=60.0)
        assert store.next_wakeup() == 0  # pending cells: claimable now
        cells = store.claim("w1", 2)
        assert store.next_wakeup() == clock.now + 60.0  # lease expiries
        store.fail(cells[0].key, "timeout", transient=True)
        assert store.next_wakeup() == clock.now + 10.0  # backoff is sooner
        store.complete(cells[1].key, payload(1))
        clock.advance(11)
        store.claim("w1", 1)
        store.complete(cells[0].key, payload(0))
        assert store.next_wakeup() is None  # all terminal

    def test_counts_and_compute_stats(self, tmp_path):
        store, _ = make_store(tmp_path, n=3, backoff=0.0)
        cells = store.claim("w1", 3)
        store.complete(cells[0].key, payload(0))
        store.fail(cells[1].key, "boom")
        assert store.counts() == {
            "pending": 1, "claimed": 1, "done": 1, "failed": 0,
        }
        assert store.unfinished() == 2
        assert store.compute_stats() == {"computed": 2, "redundant": 0}
