"""Property-based tests for the synchronous baselines: every algorithm
solves Resource Discovery on arbitrary digraphs (per weak component)."""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines import (
    run_flooding,
    run_kpv_style,
    run_law_siu,
    run_name_dropper,
    run_swamping,
    verify_baseline,
)
from repro.graphs.knowledge_graph import KnowledgeGraph

QUICK = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def digraphs(draw, max_n=16):
    n = draw(st.integers(min_value=1, max_value=max_n))
    n_edges = draw(st.integers(min_value=0, max_value=3 * n))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    rng = random.Random(seed)
    graph = KnowledgeGraph(range(n))
    for _ in range(n_edges):
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v:
            graph.add_edge(u, v)
    return graph


class TestBaselineProperties:
    @QUICK
    @given(digraphs())
    def test_flooding(self, graph):
        verify_baseline(run_flooding(graph), graph)

    @QUICK
    @given(digraphs(), st.integers(min_value=0, max_value=100))
    def test_name_dropper(self, graph, seed):
        verify_baseline(run_name_dropper(graph, seed=seed), graph)

    @QUICK
    @given(digraphs(), st.integers(min_value=0, max_value=100))
    def test_law_siu(self, graph, seed):
        verify_baseline(run_law_siu(graph, seed=seed), graph)

    @QUICK
    @given(digraphs())
    def test_kpv_style(self, graph):
        verify_baseline(run_kpv_style(graph), graph)

    @QUICK
    @given(digraphs())
    def test_swamping(self, graph):
        verify_baseline(run_swamping(graph), graph)
