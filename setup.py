"""Setuptools shim.

All metadata lives in ``pyproject.toml``; this file exists so that
``pip install -e . --no-use-pep517`` works on minimal offline environments
that lack the ``wheel`` package (legacy editable installs need a setup.py).
"""

from setuptools import setup

setup()
