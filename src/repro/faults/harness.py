"""Chaos harness: fault scenarios x protocol variants, safety-checked.

One *chaos trial* runs one discovery variant on one graph under one named
fault scenario, with the stepwise safety monitor watching every step, and
bins the execution into the outcome taxonomy of
:mod:`repro.verification.degradation`:

``ok`` / ``recovered`` / ``degraded`` / ``stalled`` / ``detected`` are all
acceptable ways for a protocol to meet faults -- the report measures how
gracefully each variant degrades (``recovered`` is the crash-recovery
model's best case: full properties despite nodes crashing and restarting
mid-run).  ``violated`` (a stepwise invariant broke, or safety failed at
rest) is never acceptable under any plan: the chaos sweep's hard
assertion, and the CI smoke job's exit code, is ``violations == 0``.

The sweep entry point :func:`exp_chaos` returns a plain ``(headers, rows)``
table so it plugs into ``SWEEPABLE_EXPERIMENTS`` and rides the sharded
:class:`~repro.parallel.ParallelExecutor` unchanged.  Boolean verdicts are
encoded as 0/1 ints on purpose: the sweep aggregator averages numeric
columns across seeds, turning the flags into rates (e.g. ``safe = 1.0``
means safety held on every seed).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Optional, Sequence, Tuple

from repro.analysis.experiments import build_family
from repro.core.node import ProtocolError
from repro.core.runner import build_simulation, default_step_budget
from repro.faults.plan import FaultInjector, FaultPlan
from repro.faults.recovery import attach_recovery
from repro.faults.reliable import ReliableNode, retransmission_overhead, transport_totals
from repro.faults.scenarios import FAULT_SCENARIOS, build_scenario
from repro.obs.events import Recorder
from repro.sim.network import SimulationError, StepLimitExceeded
from repro.verification.degradation import (
    OUTCOME_DEGRADED,
    OUTCOME_DETECTED,
    OUTCOME_OK,
    OUTCOME_RECOVERED,
    OUTCOME_STALLED,
    OUTCOME_VIOLATED,
    SurvivalReport,
    verify_surviving,
)
from repro.verification.monitor import SafetyViolation, check_safety_now

NodeId = Hashable
Rows = List[List[Any]]
Table = Tuple[List[str], Rows]

__all__ = [
    "ChaosTrial",
    "run_chaos_trial",
    "exp_chaos",
    "chaos_report",
    "CHAOS_HEADERS",
]


@dataclass
class ChaosTrial:
    """Everything measured about one chaotic execution."""

    scenario: str
    variant: str
    family: str
    n: int
    seed: int
    reliable: bool
    transport: str
    plan: FaultPlan
    outcome: str
    quiesced: bool
    safety_ok: bool
    survival: SurvivalReport
    steps: int
    total_messages: int
    total_bits: int
    overhead_messages: int
    overhead_bits: int
    retransmissions: int
    nacks: int
    undeliverable: int
    faults_injected: int
    n_recovered: int = 0
    reconverge_steps: int = 0
    epoch_fences: int = 0
    fault_counts: Dict[str, int] = field(default_factory=dict)
    detail: str = ""

    @property
    def properties_ok(self) -> bool:
        return self.survival.properties_ok


def run_chaos_trial(
    scenario: "str | FaultPlan" = "baseline",
    variant: str = "generic",
    family: str = "sparse-random",
    n: int = 32,
    seed: int = 0,
    *,
    reliable: bool = True,
    transport: str = "sr",
    monitor_every: int = 1,
    budget_factor: int = 8,
    base_timeout: Optional[int] = None,
    max_retries: int = 6,
    recorder: Optional[Recorder] = None,
    checkpoint_every: int = 8,
) -> ChaosTrial:
    """Run one variant under one fault scenario and classify the outcome.

    ``scenario`` is a name from :data:`~repro.faults.FAULT_SCENARIOS` or a
    literal :class:`FaultPlan` (property-style tests throw arbitrary plans
    at the protocols this way).  ``transport`` selects the reliable
    transport generation (``"sr"`` selective repeat with piggybacked acks,
    ``"gbn"`` the v1 go-back-N path kept for differential runs).

    Never raises on degradation: stalls, loud protocol errors and property
    misses come back as outcomes.  In particular a
    :class:`~repro.sim.network.StepLimitExceeded` -- the simulator ran out
    of step budget -- is binned as ``stalled``, not ``detected``: budget
    exhaustion is the *definition* of a stall, and letting it fall through
    to the generic ``SimulationError`` handler (or worse, propagate raw
    and poison a sweep shard) misreports livelocks as protocol-detected
    faults.  Only genuinely unexpected exceptions (bugs in the harness
    itself) propagate.

    ``recorder`` attaches a run-event :class:`~repro.obs.events.Recorder`
    to the trial's simulator (``None`` keeps the zero-overhead path).

    ``budget_factor`` scales the fault-free step budget -- retransmission
    timers and deferred deliveries all charge steps, so chaotic runs are
    legitimately longer than clean ones.
    """
    graph = build_family(family, n, seed)
    if isinstance(scenario, FaultPlan):
        plan, scenario = scenario, scenario.describe()
    else:
        plan = build_scenario(scenario, graph, seed)
    injector = FaultInjector(plan, seed=seed, keep_log=False)
    sim, nodes = build_simulation(
        graph,
        variant,
        seed=seed,
        faults=injector,
        reliable=reliable,
        base_timeout=base_timeout,
        max_retries=max_retries,
        transport=transport,
        obs=recorder,
    )
    if plan.recoveries and not reliable:
        raise ValueError(
            "crash-recovery scenarios need reliable=True: epoch fencing "
            "lives in the ReliableNode transport wrapper"
        )
    manager = attach_recovery(sim, injector, checkpoint_every=checkpoint_every)
    budget = budget_factor * default_step_budget(graph)
    violated = detected = stalled = False
    detail = ""
    executed = 0
    try:
        while sim.step():
            executed += 1
            if executed % monitor_every == 0:
                check_safety_now(nodes, step=sim.steps)
            if executed >= budget and not sim.is_quiescent:
                stalled = True
                detail = f"no quiescence within {budget} steps"
                break
    except SafetyViolation as exc:
        violated, detail = True, str(exc)
    except ProtocolError as exc:
        detected, detail = True, str(exc)
    except StepLimitExceeded as exc:
        # Must precede SimulationError (its base class): running out of
        # steps is a stall in the degradation taxonomy, not a detection.
        stalled, detail = True, str(exc)
    except SimulationError as exc:
        detected, detail = True, str(exc)
    if not violated:
        # Safety at rest: whatever state the run ended in (quiescent,
        # stalled, or mid-flight after a loud failure) must satisfy I1-I4.
        try:
            check_safety_now(nodes, step=sim.steps)
        except SafetyViolation as exc:
            violated, detail = True, str(exc)
    quiesced = sim.is_quiescent and not (violated or detected or stalled)
    survival = verify_surviving(
        graph, nodes, sim, variant, injector.crashed_nodes(sim.steps)
    )
    n_recovered = manager.n_recovered if manager is not None else 0
    reconverge_steps = 0
    if manager is not None and quiesced and manager.recovered_at:
        # Time-to-reconverge: quiescence relative to the *last* restart.
        reconverge_steps = sim.steps - max(manager.recovered_at.values())
    if violated:
        outcome = OUTCOME_VIOLATED
    elif detected:
        outcome = OUTCOME_DETECTED
    elif stalled:
        outcome = OUTCOME_STALLED
    elif quiesced and survival.properties_ok:
        outcome = OUTCOME_RECOVERED if n_recovered else OUTCOME_OK
    else:
        outcome = OUTCOME_DEGRADED
        if not detail:
            detail = survival.detail
    overhead = retransmission_overhead(sim.stats)
    if reliable:
        totals = transport_totals(
            {
                node_id: wrapper
                for node_id, wrapper in sim.nodes.items()
                if isinstance(wrapper, ReliableNode)
            }
        )
    else:
        totals = {
            "retransmissions": 0,
            "nacks_sent": 0,
            "undeliverable": 0,
            "epoch_fenced": 0,
        }
    return ChaosTrial(
        scenario=scenario,
        variant=variant,
        family=family,
        n=graph.n,
        seed=seed,
        reliable=reliable,
        transport=transport if reliable else "raw",
        plan=plan,
        outcome=outcome,
        quiesced=quiesced,
        safety_ok=not violated,
        survival=survival,
        steps=sim.steps,
        total_messages=sim.stats.total_messages,
        total_bits=sim.stats.total_bits,
        overhead_messages=overhead["overhead_messages"],
        overhead_bits=overhead["overhead_bits"],
        retransmissions=totals["retransmissions"],
        nacks=totals["nacks_sent"],
        undeliverable=totals["undeliverable"],
        faults_injected=injector.total_injected,
        n_recovered=n_recovered,
        reconverge_steps=reconverge_steps,
        epoch_fences=totals["epoch_fenced"],
        fault_counts=dict(injector.counts),
        detail=detail,
    )


#: Column order of :func:`exp_chaos`.  Verdict flags are 0/1 ints so the
#: sweep aggregator turns them into across-seed rates.
CHAOS_HEADERS = [
    "scenario",
    "variant",
    "n",
    "quiesced",
    "safe",
    "props",
    "survivors",
    "components",
    "steps",
    "messages",
    "overhead-msgs",
    "retrans",
    "nacks",
    "undeliv",
    "faults",
    "recovered",
    "reconverge",
    "epoch-fences",
]


def exp_chaos(
    scenarios: Sequence[str] = tuple(FAULT_SCENARIOS),
    variants: Sequence[str] = ("generic",),
    n: int = 32,
    family: str = "sparse-random",
    seed: int = 0,
    *,
    reliable: bool = True,
    transport: str = "sr",
    monitor_every: int = 1,
    budget_factor: int = 8,
) -> Table:
    """EXP-chaos: degradation table over scenarios x variants (one seed).

    The sweepable entry point: ``python -m repro sweep -e chaos`` and the
    ``chaos`` subcommand fan seeds of this function out over worker
    processes and aggregate the 0/1 verdict columns into rates.
    """
    rows: Rows = []
    for scenario in scenarios:
        for variant in variants:
            trial = run_chaos_trial(
                scenario,
                variant,
                family,
                n,
                seed,
                reliable=reliable,
                transport=transport,
                monitor_every=monitor_every,
                budget_factor=budget_factor,
            )
            rows.append(
                [
                    scenario,
                    variant,
                    trial.n,
                    int(trial.quiesced),
                    int(trial.safety_ok),
                    int(trial.properties_ok),
                    trial.survival.n_survivors,
                    trial.survival.n_components,
                    trial.steps,
                    trial.total_messages,
                    trial.overhead_messages,
                    trial.retransmissions,
                    trial.nacks,
                    trial.undeliverable,
                    trial.faults_injected,
                    trial.n_recovered,
                    trial.reconverge_steps,
                    trial.epoch_fences,
                ]
            )
    return CHAOS_HEADERS, rows


def chaos_report(trials: Sequence[ChaosTrial]) -> str:
    """Human-readable degradation report over a batch of chaos trials."""
    lines: List[str] = []
    violations = [t for t in trials if t.outcome == OUTCOME_VIOLATED]
    by_outcome: Dict[str, int] = {}
    for trial in trials:
        by_outcome[trial.outcome] = by_outcome.get(trial.outcome, 0) + 1
    lines.append(
        f"chaos: {len(trials)} trials -- "
        + ", ".join(f"{k}={v}" for k, v in sorted(by_outcome.items()))
    )
    for trial in trials:
        mark = "!!" if trial.outcome == OUTCOME_VIOLATED else "  "
        overhead_pct = (
            100.0 * trial.overhead_messages / trial.total_messages
            if trial.total_messages
            else 0.0
        )
        lines.append(
            f"{mark} {trial.scenario:<15} {trial.variant:<8} n={trial.n:<5} "
            f"seed={trial.seed:<3} -> {trial.outcome:<9} "
            f"[{trial.plan.describe()}] steps={trial.steps} "
            f"msgs={trial.total_messages} overhead={overhead_pct:.1f}% "
            f"survivors={trial.survival.n_survivors}"
            + (f"  ({trial.detail})" if trial.detail else "")
        )
    if violations:
        lines.append(f"SAFETY VIOLATIONS: {len(violations)} -- this is a bug.")
    else:
        lines.append("safety: clean (0 violations across all trials)")
    return "\n".join(lines)
