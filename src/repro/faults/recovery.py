"""Crash-recovery: durable checkpoints, incarnation epochs, and rejoin.

PR 3's fault model is crash-*stop*: a crashed node is gone forever and
chaos outcomes measure how gracefully the survivors degrade.  This module
adds the crash-*recovery* model -- nodes that come back, the setting of the
paper's Section 6 dynamic additions and of the self-stabilising discovery
line (Kniesburges et al., arXiv:1306.1692).  A
:class:`~repro.faults.plan.RecoverySpec` in a fault plan crashes a node for
a step window and then restarts it from durable state:

* a :class:`CheckpointStore` snapshots each protected node's **durable
  fields** -- exactly the Figure 2 data structure (status, next, phase,
  local/more/done/unaware/unexplored) -- on a checkpoint-every-k-events
  policy, plus a *forced* snapshot on every status change.  The forced
  snapshot is a safety requirement, not an optimisation: cluster-ownership
  transfers coincide with status transitions (a leader hands its members
  over exactly when it turns conquered/inactive), so the latest checkpoint
  never predates an ownership transfer and a restart can never resurrect a
  cluster someone else now owns (the I2 invariant);
* the :class:`RecoveryManager` schedules the crash/recover lifecycle
  events, bumps the node's **incarnation epoch** (durable: it survives
  amnesia -- losing the epoch would let pre-crash traffic impersonate the
  new incarnation), restarts the transport via
  :meth:`~repro.faults.reliable.ReliableNode.begin_epoch`, restores the
  snapshot (``amnesia=True`` restores the *baseline* taken at attach time:
  the node's initial knowledge), and calls
  :meth:`~repro.core.node.DiscoveryNode.rejoin` so the node re-attaches to
  its component's leader.

Everything volatile -- inbox, deferred messages, in-flight conversations,
transport seqnums -- is deliberately *not* checkpointed: it is the state a
real crash destroys, and epoch fencing in :mod:`repro.faults.reliable`
guarantees its loss is symmetric (peers discard their half too).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, Optional

from repro.core.node import DiscoveryNode
from repro.faults.plan import FaultInjector, RecoverySpec
from repro.faults.reliable import ReliableNode
from repro.sim.network import Simulator

NodeId = Hashable

__all__ = [
    "Checkpoint",
    "CheckpointStore",
    "RecoveryManager",
    "attach_recovery",
]


@dataclass(frozen=True)
class Checkpoint:
    """One durable snapshot of a node's Figure 2 fields at virtual time
    ``step``.  Frozen + frozensets: a checkpoint written to "disk" must not
    alias live mutable state, or post-snapshot mutations would time-travel
    into the restart."""

    step: int
    status: str
    next: NodeId
    phase: int
    local: FrozenSet[NodeId]
    more: FrozenSet[NodeId]
    done: FrozenSet[NodeId]
    unaware: FrozenSet[NodeId]
    unexplored: FrozenSet[NodeId]


def _snapshot(inner: DiscoveryNode, step: int) -> Checkpoint:
    return Checkpoint(
        step=step,
        status=inner.status,
        next=inner.next,
        phase=inner.phase,
        local=frozenset(inner.local),
        more=frozenset(inner.more),
        done=frozenset(inner.done),
        unaware=frozenset(inner.unaware),
        unexplored=frozenset(inner.unexplored),
    )


class CheckpointStore:
    """Durable checkpoints for the nodes under a recovery plan.

    ``every`` is the checkpoint cadence in *observed events* (deliveries
    and wake-ups of the protected node -- the moments its durable state can
    change).  Status changes force a snapshot regardless of cadence; see
    the module docstring for why that is load-bearing.
    """

    def __init__(self, every: int = 8) -> None:
        if every < 1:
            raise ValueError(f"checkpoint cadence must be >= 1, got {every}")
        self.every = every
        self._baseline: Dict[NodeId, Checkpoint] = {}
        self._latest: Dict[NodeId, Checkpoint] = {}
        self._events: Dict[NodeId, int] = {}
        #: snapshots written per node (baseline included) -- cadence telemetry.
        self.taken: Dict[NodeId, int] = {}

    def register(self, inner: DiscoveryNode, step: int = 0) -> None:
        """Record the node's initial knowledge -- the amnesia restart point."""
        ckpt = _snapshot(inner, step)
        self._baseline[inner.node_id] = ckpt
        self._latest[inner.node_id] = ckpt
        self._events[inner.node_id] = 0
        self.taken[inner.node_id] = 1

    def observe(self, inner: DiscoveryNode, step: int) -> None:
        """One event happened to ``inner``; snapshot if the policy says so."""
        node_id = inner.node_id
        count = self._events[node_id] + 1
        self._events[node_id] = count
        if inner.status != self._latest[node_id].status or count % self.every == 0:
            self._latest[node_id] = _snapshot(inner, step)
            self.taken[node_id] += 1

    def latest(self, node_id: NodeId) -> Checkpoint:
        return self._latest[node_id]

    def baseline(self, node_id: NodeId) -> Checkpoint:
        return self._baseline[node_id]


class RecoveryManager:
    """Executes the recovery half of a fault plan against one simulation.

    One manager drives one run: it owns the checkpoint store, the per-node
    incarnation epochs (monotone, durable -- they survive amnesia), and the
    recovery telemetry the chaos harness reports.  Wire it with
    :func:`attach_recovery`; the transport wrappers call back through the
    ``recovery`` hook that :meth:`attach` installs on the victims.
    """

    def __init__(
        self,
        recoveries: tuple,
        *,
        checkpoint_every: int = 8,
    ) -> None:
        self.specs: Dict[NodeId, RecoverySpec] = {
            spec.node: spec for spec in recoveries
        }
        if not self.specs:
            raise ValueError("recovery manager needs at least one RecoverySpec")
        self.store = CheckpointStore(every=checkpoint_every)
        self.epochs: Dict[NodeId, int] = {node: 0 for node in self.specs}
        self.crashes = 0
        self.n_recovered = 0
        self.recovered_at: Dict[NodeId, int] = {}

    def attach(self, sim: Simulator) -> "RecoveryManager":
        """Install the manager on ``sim``: baseline checkpoints + lifecycle
        events for every victim.  Returns self for chaining."""
        for node_id in sorted(self.specs, key=repr):
            spec = self.specs[node_id]
            wrapper = sim.nodes.get(node_id)
            if wrapper is None:
                raise KeyError(f"recovery spec for unknown node {node_id!r}")
            if not isinstance(wrapper, ReliableNode):
                raise ValueError(
                    f"crash-recovery requires the reliable transport; node "
                    f"{node_id!r} is a bare {type(wrapper).__name__} (epoch "
                    "fencing lives in ReliableNode)"
                )
            wrapper.recovery = self
            self.store.register(wrapper.inner, step=sim.steps)
            sim.schedule_lifecycle(node_id, spec.crash_step, "crash")
            sim.schedule_lifecycle(node_id, spec.recover_step, "recover")
        return self

    # -- callbacks from the transport wrapper ---------------------------
    def observe(self, wrapper: ReliableNode) -> None:
        self.store.observe(wrapper.inner, wrapper.sim.steps)

    def on_crash(self, wrapper: ReliableNode) -> None:
        self.crashes += 1

    def restore(self, wrapper: ReliableNode) -> None:
        """Bring ``wrapper`` back: new epoch, restored durable state, rejoin."""
        node_id = wrapper.node_id
        spec = self.specs[node_id]
        epoch = self.epochs[node_id] + 1
        self.epochs[node_id] = epoch
        wrapper.begin_epoch(epoch)
        ckpt = (
            self.store.baseline(node_id)
            if spec.amnesia
            else self.store.latest(node_id)
        )
        self._restore_fields(wrapper.inner, ckpt)
        # Durable and sticky: the transport re-queues crashed-out peers'
        # half-open conversations to the new incarnation, so replies to the
        # dead incarnation can arrive here at any later point.  The flag
        # relaxes exactly those handler checks (see DiscoveryNode).
        wrapper.inner._restarted = True
        self.n_recovered += 1
        self.recovered_at[node_id] = wrapper.sim.steps
        if ckpt.status == "asleep":
            # Crashed before it ever woke: rejoin the way it would have
            # joined -- the simulator schedules a fresh spontaneous wake.
            wrapper.awake = False
            wrapper.inner.awake = False
        else:
            wrapper.awake = True
            wrapper.inner.awake = True
            wrapper.inner.rejoin()

    @staticmethod
    def _restore_fields(inner: DiscoveryNode, ckpt: Checkpoint) -> None:
        """Overwrite ``inner``'s state with the checkpoint.

        Durable fields come from the snapshot; everything volatile is reset
        to its constructor state -- a restart has an empty inbox, no
        half-open conversations, and no pending probe routing.  Only
        ``probe_results`` survives: it models answers already handed to the
        application layer, which a node crash does not un-deliver.
        """
        inner.status = ckpt.status
        inner.next = ckpt.next
        inner.phase = ckpt.phase
        inner.local = set(ckpt.local)
        inner.done = set(ckpt.done)
        inner.unaware = set(ckpt.unaware)
        # The choice heaps must mirror the sets exactly; rebuild them in
        # the same deterministic repr order the live path uses.
        inner.more = set()
        inner._more_heap = []
        for w in sorted(ckpt.more, key=repr):
            inner._add_more(w)
        inner.unexplored = set()
        inner._unexplored_heap = []
        for u in sorted(ckpt.unexplored, key=repr):
            inner._add_unexplored(u)
        inner.previous.clear()
        inner._inbox.clear()
        inner._deferred.clear()
        inner.probe_previous.clear()
        inner._processing = False
        inner._awaiting_release = False
        inner._awaiting_query_from = None
        inner._awaiting_info = False
        inner._expect_stale_release = False
        inner._probe_outstanding = False
        inner._rejoining = False


def attach_recovery(
    sim: Simulator,
    injector: FaultInjector,
    *,
    checkpoint_every: int = 8,
) -> Optional[RecoveryManager]:
    """Wire ``injector``'s recovery specs into ``sim``; ``None`` if it has
    none (the common fault-free / crash-stop case costs one predicate)."""
    if not injector.plan.recoveries:
        return None
    manager = RecoveryManager(
        injector.plan.recoveries, checkpoint_every=checkpoint_every
    )
    return manager.attach(sim)
