"""Declarative, seeded, composable fault plans.

The paper's model (Section 1.2) assumes reliable exactly-once FIFO channels
and nodes that never fail.  A :class:`FaultPlan` names the ways one
execution departs from that model:

* **message loss** -- each sent message is independently dropped with
  probability ``loss``;
* **duplication** -- each sent message is independently delivered twice
  with probability ``duplicate`` (finding F7's fault, previously the
  ad-hoc ``Simulator.duplicate_probability`` knob);
* **crash-stop nodes** -- a :class:`CrashSpec` silences a node from a given
  virtual time on: no wake-up, no deliveries, no timers, and (since its
  handlers never run) no sends.  Crash-stop is the classic benign failure
  model; there is no recovery and no Byzantine behaviour;
* **transient partitions** -- a :class:`PartitionSpec` isolates an island
  of nodes from the rest of the system for a step window; messages sent
  across the cut during the window are lost, and the link heals afterwards;
* **adversarial delay bursts** -- a :class:`DelayBurst` defers (a fraction
  of) pending deliveries during a step window.  Delay never violates the
  asynchronous model (delays are finite), so it degrades nothing a correct
  protocol relies on -- it exists to stress timeout tuning in the recovery
  layer.

The plan is pure data; all randomness comes from the seed handed to the
:class:`FaultInjector`, so every chaotic execution is exactly replayable.
Virtual time is the simulator's executed-step counter -- the only clock an
asynchronous system has.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from random import Random
from typing import Any, Dict, FrozenSet, Hashable, List, Optional, Tuple

from repro.sim.events import DeliverToken, TimerToken
from repro.sim.network import DEFER, DELIVER, DROP, ChannelInterceptor, Simulator

NodeId = Hashable

__all__ = [
    "CrashSpec",
    "RecoverySpec",
    "PartitionSpec",
    "DelayBurst",
    "FaultPlan",
    "FaultEvent",
    "FaultInjector",
]


@dataclass(frozen=True)
class CrashSpec:
    """Crash-stop ``node`` at virtual time ``at_step`` (0 = never ran)."""

    node: NodeId
    at_step: int = 0

    def __post_init__(self) -> None:
        if self.at_step < 0:
            raise ValueError(f"at_step must be >= 0, got {self.at_step}")


@dataclass(frozen=True)
class RecoverySpec:
    """Crash ``node`` at ``crash_step`` and bring it back at
    ``recover_step`` under a new incarnation epoch.

    During the down window ``[crash_step, recover_step)`` the node behaves
    exactly like a crash-stop node: no wake-ups, no deliveries, no timers.
    At ``recover_step`` it restarts from its latest durable
    :class:`~repro.faults.recovery.CheckpointStore` snapshot -- or, with
    ``amnesia=True``, from its initial knowledge (the classic "disk was
    lost" restart) -- and re-probes for its component's leader.  Epoch
    fencing in :mod:`repro.faults.reliable` discards the node's pre-crash
    transport state and any stale in-flight traffic addressed to the old
    incarnation.
    """

    node: NodeId
    crash_step: int
    recover_step: int
    amnesia: bool = False

    def __post_init__(self) -> None:
        if not 1 <= self.crash_step < self.recover_step:
            raise ValueError(
                "need 1 <= crash_step < recover_step, got "
                f"crash_step={self.crash_step} recover_step={self.recover_step}"
            )


@dataclass(frozen=True)
class PartitionSpec:
    """Isolate ``island`` from the rest of the system during
    ``[start, heal)``.  Traffic inside the island and inside the mainland
    still flows; only cut-crossing messages are lost.  ``heal`` is the heal
    time: from that step on the link carries messages again."""

    island: FrozenSet[NodeId]
    start: int = 0
    heal: int = 10**9

    def __post_init__(self) -> None:
        object.__setattr__(self, "island", frozenset(self.island))
        if not self.island:
            raise ValueError("partition island must be non-empty")
        if not 0 <= self.start < self.heal:
            raise ValueError(
                f"need 0 <= start < heal, got start={self.start} heal={self.heal}"
            )

    def severs(self, src: NodeId, dst: NodeId, step: int) -> bool:
        return (
            self.start <= step < self.heal
            and (src in self.island) != (dst in self.island)
        )


@dataclass(frozen=True)
class DelayBurst:
    """Defer each pending delivery with probability ``fraction`` during
    ``[start, start + duration)``.  Deferring charges a step, so the window
    always expires; a burst can stretch deliveries, never prevent them."""

    start: int
    duration: int
    fraction: float = 1.0

    def __post_init__(self) -> None:
        if self.start < 0 or self.duration < 1:
            raise ValueError(
                f"need start >= 0 and duration >= 1, got {self.start}/{self.duration}"
            )
        if not 0.0 < self.fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {self.fraction}")

    def active(self, step: int) -> bool:
        return self.start <= step < self.start + self.duration


@dataclass(frozen=True)
class FaultPlan:
    """A composition of channel and node faults (see module docstring).

    The default instance is the paper's fault-free model; every field adds
    one departure.  Plans are immutable and picklable, so they travel into
    sweep worker processes as part of a job spec.
    """

    loss: float = 0.0
    duplicate: float = 0.0
    crashes: Tuple[CrashSpec, ...] = ()
    partitions: Tuple[PartitionSpec, ...] = ()
    delays: Tuple[DelayBurst, ...] = ()
    recoveries: Tuple[RecoverySpec, ...] = ()

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss < 1.0:
            raise ValueError(f"loss must be in [0, 1), got {self.loss}")
        if not 0.0 <= self.duplicate <= 1.0:
            raise ValueError(f"duplicate must be in [0, 1], got {self.duplicate}")
        object.__setattr__(self, "crashes", tuple(self.crashes))
        object.__setattr__(self, "partitions", tuple(self.partitions))
        object.__setattr__(self, "delays", tuple(self.delays))
        object.__setattr__(self, "recoveries", tuple(self.recoveries))
        crashed = [spec.node for spec in self.crashes]
        if len(crashed) != len(set(crashed)):
            raise ValueError(f"duplicate crash specs: {crashed}")
        recovering = [spec.node for spec in self.recoveries]
        if len(recovering) != len(set(recovering)):
            raise ValueError(f"duplicate recovery specs: {recovering}")
        both = set(crashed) & set(recovering)
        if both:
            raise ValueError(
                f"nodes {sorted(both, key=repr)} have both a crash-stop and a "
                "recovery spec; a node either stays down or comes back"
            )

    @property
    def is_fault_free(self) -> bool:
        return (
            self.loss == 0.0
            and self.duplicate == 0.0
            and not self.crashes
            and not self.partitions
            and not self.delays
            and not self.recoveries
        )

    def shifted(self, offset: int) -> "FaultPlan":
        """This plan with every time-anchored fault pushed ``offset`` steps
        later.  Rate faults (loss, duplication) are time-free and carry
        over unchanged.

        The composition seam for long-lived hosts: a service driver that
        warms up before opening the measurement window can take a plan
        written in *relative* time ("crash at step 500") and anchor it to
        the window's actual start, without the plan's author knowing when
        warm-up ends.
        """
        if offset < 0:
            raise ValueError(f"offset must be >= 0, got {offset}")
        if offset == 0:
            return self
        return FaultPlan(
            loss=self.loss,
            duplicate=self.duplicate,
            crashes=tuple(
                CrashSpec(spec.node, spec.at_step + offset) for spec in self.crashes
            ),
            partitions=tuple(
                PartitionSpec(spec.island, spec.start + offset, spec.heal + offset)
                for spec in self.partitions
            ),
            delays=tuple(
                DelayBurst(spec.start + offset, spec.duration, spec.fraction)
                for spec in self.delays
            ),
            recoveries=tuple(
                RecoverySpec(
                    spec.node,
                    spec.crash_step + offset,
                    spec.recover_step + offset,
                    spec.amnesia,
                )
                for spec in self.recoveries
            ),
        )

    def describe(self) -> str:
        parts: List[str] = []
        if self.loss:
            parts.append(f"loss={self.loss:g}")
        if self.duplicate:
            parts.append(f"dup={self.duplicate:g}")
        if self.crashes:
            parts.append(f"crashes={len(self.crashes)}")
        if self.partitions:
            parts.append(f"partitions={len(self.partitions)}")
        if self.delays:
            parts.append(f"delay-bursts={len(self.delays)}")
        if self.recoveries:
            parts.append(f"recoveries={len(self.recoveries)}")
        return "+".join(parts) if parts else "fault-free"


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault, for post-mortem inspection of a chaotic run."""

    step: int
    # "loss" | "duplicate" | "partition-drop" | "crash-drop" | "defer"
    # | "wake-suppressed" | "timer-suppressed"
    kind: str
    src: Optional[NodeId]
    dst: Optional[NodeId]
    msg_type: Optional[str] = None


class FaultInjector(ChannelInterceptor):
    """Executes a :class:`FaultPlan` against one simulator run.

    One injector drives one execution: it owns the RNG stream (seeded, so
    the chaos is replayable), the per-kind fault counters, and the event
    log.  Attach it via ``Simulator(faults=...)``; the simulator consults
    it through the :class:`~repro.sim.network.ChannelInterceptor` hooks.

    The RNG is consulted in a fixed order (loss roll, then duplication
    roll, per transmit; one roll per deferrable delivery), so identical
    ``(plan, seed)`` pairs inject identical faults given an identical
    schedule.
    """

    def __init__(self, plan: FaultPlan, *, seed: int = 0, keep_log: bool = True) -> None:
        self.plan = plan
        self.seed = seed
        self._rng = Random(seed)
        self._crash_at: Dict[NodeId, int] = {
            spec.node: spec.at_step for spec in plan.crashes
        }
        self._down: Dict[NodeId, Tuple[int, int]] = {
            spec.node: (spec.crash_step, spec.recover_step)
            for spec in plan.recoveries
        }
        self.counts: Dict[str, int] = {
            "loss": 0,
            "duplicate": 0,
            "partition-drop": 0,
            "crash-drop": 0,
            "defer": 0,
            "wake-suppressed": 0,
            "timer-suppressed": 0,
        }
        self.log: List[FaultEvent] = [] if keep_log else _NullLog()

    # -- crash bookkeeping ---------------------------------------------
    def crashed(self, node: NodeId, step: int) -> bool:
        at = self._crash_at.get(node)
        if at is not None and step >= at:
            return True
        window = self._down.get(node)
        return window is not None and window[0] <= step < window[1]

    def crashed_nodes(self, step: int) -> FrozenSet[NodeId]:
        down = {n for n, at in self._crash_at.items() if step >= at}
        down.update(
            n for n, (crash, recover) in self._down.items() if crash <= step < recover
        )
        return frozenset(down)

    # -- ChannelInterceptor hooks --------------------------------------
    def copies(self, sim: Simulator, src: NodeId, dst: NodeId, message: Any) -> int:
        step = sim.steps
        msg_type = getattr(message, "msg_type", None)
        if self.crashed(src, step):
            # Defensive: a crashed node's handlers never run, so this only
            # triggers if a handler was mid-flight when the crash step hit.
            self._note(step, "crash-drop", src, dst, msg_type)
            return 0
        for partition in self.plan.partitions:
            if partition.severs(src, dst, step):
                self._note(step, "partition-drop", src, dst, msg_type)
                return 0
        if self.plan.loss > 0.0 and self._rng.random() < self.plan.loss:
            self._note(step, "loss", src, dst, msg_type)
            return 0
        if self.plan.duplicate > 0.0 and self._rng.random() < self.plan.duplicate:
            self._note(step, "duplicate", src, dst, msg_type)
            return 2
        return 1

    def deliver_action(self, sim: Simulator, token: DeliverToken) -> str:
        step = sim.steps
        # Delivery-time faults act on the head-of-line message of the
        # token's channel; peek at it so the event log keeps its msg_type
        # (the obs traffic-mix attribution depends on it).
        head = sim.channel_peek(token.src, token.dst)
        msg_type = getattr(head, "msg_type", None)
        if self.crashed(token.dst, step):
            self._note(step, "crash-drop", token.src, token.dst, msg_type)
            return DROP
        for burst in self.plan.delays:
            if burst.active(step):
                if burst.fraction >= 1.0 or self._rng.random() < burst.fraction:
                    self._note(step, "defer", token.src, token.dst, msg_type)
                    return DEFER
                break  # rolled and passed; don't re-roll for later bursts
        return DELIVER

    def wake_allowed(self, sim: Simulator, node: NodeId) -> bool:
        if self.crashed(node, sim.steps):
            self._note(sim.steps, "wake-suppressed", None, node, None)
            return False
        return True

    def timer_allowed(self, sim: Simulator, token: TimerToken) -> bool:
        if self.crashed(token.node, sim.steps):
            self._note(sim.steps, "timer-suppressed", None, token.node, None)
            return False
        return True

    # -- reporting ------------------------------------------------------
    @property
    def total_injected(self) -> int:
        return sum(self.counts.values())

    def summary(self) -> Dict[str, int]:
        """Non-zero fault counters (stable keys for tables/JSON)."""
        return {kind: count for kind, count in self.counts.items() if count}

    def _note(
        self,
        step: int,
        kind: str,
        src: Optional[NodeId],
        dst: Optional[NodeId],
        msg_type: Optional[str],
    ) -> None:
        self.counts[kind] += 1
        self.log.append(FaultEvent(step, kind, src, dst, msg_type))


class _NullLog(list):
    """A log that forgets: keeps long chaos sweeps memory-flat."""

    def append(self, event: FaultEvent) -> None:  # noqa: D401 - list override
        pass
