"""Named fault scenarios for the chaos harness.

Every scenario is a factory ``(graph, seed) -> FaultPlan``: plans that
involve concrete nodes (crashes, partitions) or step windows need to see
the topology and the system size, since fault windows are expressed in
executed simulator steps and a sensible window scales with ``n``.

The registry doubles as the CLI vocabulary of ``python -m repro chaos
--scenarios ...`` and as the row space of the chaos degradation report.
Scenario choices are seeded -- the same ``(graph, seed)`` always yields the
same plan, so chaos sweep rows are replayable.
"""

from __future__ import annotations

from random import Random
from typing import Callable, Dict, Hashable, List

from repro.faults.plan import (
    CrashSpec,
    DelayBurst,
    FaultPlan,
    PartitionSpec,
    RecoverySpec,
)
from repro.graphs.knowledge_graph import KnowledgeGraph

NodeId = Hashable

__all__ = [
    "FAULT_SCENARIOS",
    "RECOVERY_SCENARIOS",
    "build_scenario",
    "pick_crash_victims",
]


def pick_crash_victims(graph: KnowledgeGraph, count: int, seed: int) -> List[NodeId]:
    """Choose ``count`` crash victims, preferring *unknown* nodes.

    Nodes with in-degree 0 are in nobody's initial ``local`` set, so their
    ids never circulate and the survivors' execution is exactly the
    execution of the induced surviving subgraph -- crashing them degrades
    connectivity but not liveness.  Higher in-degree victims make the
    protocol reference dead ids and stall parts of the system; sorting by
    in-degree makes small counts benign and larger counts progressively
    nastier, which is the gradient a chaos sweep wants to walk.
    """
    rng = Random(seed)
    candidates = list(graph.nodes)
    rng.shuffle(candidates)  # tie-break independent of generator order
    candidates.sort(key=graph.in_degree)
    return candidates[: max(0, min(count, graph.n - 1))]


def _crash_plan(
    graph: KnowledgeGraph, seed: int, count: int, *, loss: float = 0.0
) -> FaultPlan:
    victims = pick_crash_victims(graph, count, seed)
    return FaultPlan(
        loss=loss, crashes=tuple(CrashSpec(node, at_step=0) for node in victims)
    )


def _partition_plan(graph: KnowledgeGraph, seed: int) -> FaultPlan:
    rng = Random(seed)
    n = graph.n
    island_size = max(1, n // 4)
    island = frozenset(rng.sample(list(graph.nodes), k=island_size))
    # Cut the island off early, heal mid-execution: discovery runs for
    # Theta(n log n) steps, so [n, 6n) lands inside the active phase.
    return FaultPlan(partitions=(PartitionSpec(island, start=n, heal=6 * n),))


def _delay_plan(graph: KnowledgeGraph, seed: int) -> FaultPlan:
    n = graph.n
    return FaultPlan(delays=(DelayBurst(start=2 * n, duration=4 * n, fraction=0.75),))


def _stress_plan(graph: KnowledgeGraph, seed: int) -> FaultPlan:
    rng = Random(seed)
    n = graph.n
    island = frozenset(rng.sample(list(graph.nodes), k=max(1, n // 5)))
    victims = pick_crash_victims(graph, 2, seed)
    return FaultPlan(
        loss=0.1,
        duplicate=0.05,
        crashes=tuple(CrashSpec(node, at_step=0) for node in victims),
        partitions=(PartitionSpec(island, start=2 * n, heal=5 * n),),
        delays=(DelayBurst(start=n, duration=2 * n, fraction=0.5),),
    )


def _recovery_plan(
    graph: KnowledgeGraph,
    seed: int,
    count: int,
    *,
    amnesia: bool = True,
    loss: float = 0.0,
    stagger: int = 0,
) -> FaultPlan:
    """Crash ``count`` victims mid-run and bring them all back.

    Windows scale with ``n`` like the other scenarios: the crash lands
    around step ``n`` (inside the active discovery phase) and recovery at
    ``4n`` (well before the Theta(n log n) execution winds down), so the
    restarted nodes must genuinely re-attach to a live, evolving system.
    ``stagger`` offsets successive victims' windows for churn scenarios.
    """
    n = graph.n
    victims = pick_crash_victims(graph, count, seed)
    recoveries = tuple(
        RecoverySpec(
            node,
            crash_step=n + i * stagger,
            recover_step=4 * n + i * stagger,
            amnesia=amnesia,
        )
        for i, node in enumerate(victims)
    )
    return FaultPlan(loss=loss, recoveries=recoveries)


#: name -> (graph, seed) -> FaultPlan.  Keep names CLI-friendly.
FAULT_SCENARIOS: Dict[str, Callable[[KnowledgeGraph, int], FaultPlan]] = {
    "baseline": lambda graph, seed: FaultPlan(),
    "loss-5": lambda graph, seed: FaultPlan(loss=0.05),
    "loss-10": lambda graph, seed: FaultPlan(loss=0.10),
    "loss-20": lambda graph, seed: FaultPlan(loss=0.20),
    "dup-10": lambda graph, seed: FaultPlan(duplicate=0.10),
    "crash-2": lambda graph, seed: _crash_plan(graph, seed, 2),
    "partition-heal": _partition_plan,
    "delay-burst": _delay_plan,
    "loss-crash": lambda graph, seed: _crash_plan(graph, seed, 2, loss=0.10),
    "stress": _stress_plan,
    "recover-2": lambda graph, seed: _recovery_plan(graph, seed, 2),
    "recover-ckpt": lambda graph, seed: _recovery_plan(graph, seed, 2, amnesia=False),
    "recover-loss": lambda graph, seed: _recovery_plan(graph, seed, 2, loss=0.10),
    "recover-churn": lambda graph, seed: _recovery_plan(
        graph, seed, 4, stagger=max(1, graph.n // 2)
    ),
}

#: The crash-*recovery* subset of the registry: these plans carry
#: RecoverySpecs and therefore require the reliable transport (epoch
#: fencing lives in ReliableNode), so raw-mode sweeps must skip them.
RECOVERY_SCENARIOS = ("recover-2", "recover-ckpt", "recover-loss", "recover-churn")


def build_scenario(name: str, graph: KnowledgeGraph, seed: int) -> FaultPlan:
    """Instantiate a named scenario for one graph + seed."""
    try:
        factory = FAULT_SCENARIOS[name]
    except KeyError:
        known = ", ".join(sorted(FAULT_SCENARIOS))
        raise ValueError(f"unknown fault scenario {name!r}; choose from {known}")
    return factory(graph, seed)
