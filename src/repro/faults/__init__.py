"""Composable fault injection and recovery for the discovery simulator.

Four layers, importable in one place:

* :mod:`repro.faults.plan` -- declarative, seeded :class:`FaultPlan` data
  (loss, duplication, crash-stop, crash-recovery, transient partitions,
  delay bursts) and the :class:`FaultInjector` that executes a plan against
  one run through the simulator's
  :class:`~repro.sim.network.ChannelInterceptor` hooks;
* :mod:`repro.faults.reliable` -- the ack/retransmit transport wrapper
  that restores exactly-once FIFO channels over a faulty network, plus the
  incarnation-epoch fencing the crash-recovery model relies on;
* :mod:`repro.faults.recovery` -- durable checkpoints and the
  :class:`RecoveryManager` that crashes nodes, restarts them from a
  snapshot under a new epoch, and rejoins them to their component;
* :mod:`repro.faults.scenarios` / :mod:`repro.faults.harness` -- named
  chaos scenarios and the safety-checked sweep harness behind
  ``python -m repro chaos``.
"""

from repro.faults.harness import (
    CHAOS_HEADERS,
    ChaosTrial,
    chaos_report,
    exp_chaos,
    run_chaos_trial,
)
from repro.faults.plan import (
    CrashSpec,
    DelayBurst,
    FaultEvent,
    FaultInjector,
    FaultPlan,
    PartitionSpec,
    RecoverySpec,
)
from repro.faults.recovery import (
    Checkpoint,
    CheckpointStore,
    RecoveryManager,
    attach_recovery,
)
from repro.faults.reliable import (
    OVERHEAD_TYPES,
    RT_ACK,
    RT_NACK,
    RT_RETRANS,
    TRANSPORTS,
    Ack,
    Data,
    Nack,
    ReliableNode,
    retransmission_overhead,
    transport_totals,
)
from repro.faults.scenarios import (
    FAULT_SCENARIOS,
    RECOVERY_SCENARIOS,
    build_scenario,
    pick_crash_victims,
)

__all__ = [
    "FaultPlan",
    "FaultInjector",
    "FaultEvent",
    "CrashSpec",
    "RecoverySpec",
    "PartitionSpec",
    "DelayBurst",
    "ReliableNode",
    "Data",
    "Ack",
    "Nack",
    "RT_RETRANS",
    "RT_ACK",
    "RT_NACK",
    "OVERHEAD_TYPES",
    "TRANSPORTS",
    "retransmission_overhead",
    "transport_totals",
    "Checkpoint",
    "CheckpointStore",
    "RecoveryManager",
    "attach_recovery",
    "FAULT_SCENARIOS",
    "RECOVERY_SCENARIOS",
    "build_scenario",
    "pick_crash_victims",
    "ChaosTrial",
    "run_chaos_trial",
    "exp_chaos",
    "chaos_report",
    "CHAOS_HEADERS",
]
