"""Ack/retransmit transport: exactly-once FIFO over unreliable channels.

The discovery algorithms are correct only in the paper's model -- reliable
exactly-once FIFO channels.  :class:`ReliableNode` restores that model over
a faulty network, so every protocol built on :class:`~repro.sim.network.SimNode`
(the Generic/Bounded/Ad-hoc :class:`~repro.core.node.DiscoveryNode`, the
asynchronous baselines) runs **unchanged** under message loss, duplication
and reordering.  It is the classic reliable-transport construction:

* the sender stamps each payload with a **per-destination sequence number**
  and keeps it buffered until acknowledged;
* the receiver delivers payloads to the wrapped node **in sequence order,
  exactly once** -- out-of-order arrivals are parked, duplicates discarded
  -- and answers every data message with a **cumulative ack**;
* an unacked channel is **retransmitted go-back-N style** on a timeout
  measured in simulator steps (the asynchronous model's only clock), with
  **exponential backoff**; after ``max_retries`` fruitless rounds the
  channel gives up and records the payloads as undeliverable (the peer is
  presumed crashed -- retrying forever would forfeit quiescence).

Overhead accounting (the quantity ``BENCH_faults.json`` tracks): the first
copy of a payload is charged under the payload's own message type (plus
``id_bits`` for the sequence number), so the protocol's per-type lemma
accounting stays meaningful; every retransmission is charged as
``rt-retrans`` and every ack as ``rt-ack``.  ``messages("rt-retrans",
"rt-ack")`` is therefore exactly the price of reliability.

Give-up is the transport's only departure from exactly-once semantics: a
payload addressed to a crashed peer is eventually dropped.  That is
unavoidable -- TCP does the same -- and safe here because the discovery
protocols' *safety* properties tolerate missing messages (they are what a
slow network already looks like); only liveness degrades.

**Incarnation epochs** (the crash-*recovery* model of
:mod:`repro.faults.recovery`): every frame carries the sender's epoch and
the sender's belief of the receiver's epoch.  A node that recovers from a
crash restarts under a bumped epoch via :meth:`ReliableNode.begin_epoch`,
which discards all pre-crash transport state.  On receipt, a frame whose
belief of *my* epoch is stale -- or that originates from a superseded
incarnation of the sender -- is **fenced**: never processed, so pre-crash
retransmissions and in-flight stragglers can never leak old sequence
numbers or duplicate payloads into the new incarnation.  Fencing a live
but ignorant sender additionally *teaches* it the new epoch via a
progress-free ack, upon which the sender re-keys its channel and re-queues
its unacked payloads to the new incarnation -- the repair that lets
half-open protocol conversations complete across a peer's restart.  The
steady-state cost is three extra O(log n)-bit integers per frame, charged
to the frame's own type.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Hashable, List, Optional, Tuple

from repro.obs.events import RunEvent
from repro.sim.events import TimerToken
from repro.sim.network import SimNode, SimulationError, Simulator
from repro.sim.trace import MessageStats, bits_for_ids

NodeId = Hashable

__all__ = [
    "Data",
    "Ack",
    "ReliableNode",
    "RT_RETRANS",
    "RT_ACK",
    "OVERHEAD_TYPES",
    "retransmission_overhead",
    "transport_totals",
]

#: Message types charged as recovery overhead, never protocol traffic.
RT_RETRANS = "rt-retrans"
RT_ACK = "rt-ack"
OVERHEAD_TYPES = (RT_RETRANS, RT_ACK)


@dataclass(frozen=True)
class Data:
    """A protocol payload framed with a per-channel sequence number.

    ``src_epoch`` is the sender's incarnation at transmit time;
    ``dst_epoch`` is the sender's belief of the receiver's incarnation.
    Both are 0 for nodes that have never crashed, so the epoch machinery
    is invisible until a :class:`~repro.faults.plan.RecoverySpec` is in
    play.
    """

    seq: int
    payload: Any
    retransmit: bool = False
    src_epoch: int = 0
    dst_epoch: int = 0

    @property
    def msg_type(self) -> str:
        # First copies keep the payload's type so per-type accounting (the
        # Section 5 lemmas) still sees the protocol's traffic; retransmits
        # are pure overhead and get their own bucket.
        if self.retransmit:
            return RT_RETRANS
        return getattr(self.payload, "msg_type", "data")

    def bit_size(self, id_bits: int) -> int:
        # Payload bits + seq number + two O(log n)-bit epoch stamps.
        return self.payload.bit_size(id_bits) + 3 * id_bits


@dataclass(frozen=True)
class Ack:
    """Cumulative acknowledgement: every seq <= ``cum`` has been received."""

    cum: int
    src_epoch: int = 0
    dst_epoch: int = 0
    msg_type = RT_ACK

    def bit_size(self, id_bits: int) -> int:
        return bits_for_ids(0, id_bits, extra_ints=3)


class _Port:
    """The fake simulator handed to the wrapped node.

    Routes the node's sends through the wrapper's reliable path; everything
    else (stats, id_bits, ...) forwards to the real simulator, so protocol
    code that inspects its environment keeps working.
    """

    def __init__(self, wrapper: "ReliableNode") -> None:
        self._wrapper = wrapper

    def transmit(self, src: NodeId, dst: NodeId, message: Any) -> None:
        self._wrapper.reliable_send(dst, message)

    def __getattr__(self, name: str) -> Any:
        return getattr(self._wrapper.sim, name)


class _Channel:
    """Sender-side state for one (self -> dst) reliable channel."""

    __slots__ = ("next_seq", "outstanding", "timer", "attempts", "timeout")

    def __init__(self) -> None:
        self.next_seq = 0
        self.outstanding: Dict[int, Any] = {}  # seq -> payload, insertion = seq order
        self.timer: Optional[TimerToken] = None
        self.attempts = 0
        self.timeout = 0  # set on first arm


class ReliableNode(SimNode):
    """Wrap any :class:`SimNode` in the reliable transport.

    The wrapper registers with the simulator under the inner node's id;
    the inner node is re-pointed at a :class:`_Port` so its ``send`` calls
    enter the reliable path.  Verification and monitoring keep operating on
    the *inner* nodes -- the wrapper is invisible to the protocol layer.

    Parameters
    ----------
    inner:
        The protocol node to protect.  Must not already be bound.
    base_timeout:
        First retransmit timeout in simulator steps.  Too small merely
        wastes overhead (spurious retransmits are deduplicated); too large
        slows recovery.  Scale with system size: every node's handler
        steps share the one global step clock.
    max_retries:
        Retransmission rounds before a channel gives up (presumed-crashed
        peer).  With exponential backoff the give-up horizon is
        ``base_timeout * (2^(max_retries+1) - 1)`` steps.
    """

    def __init__(
        self,
        inner: SimNode,
        *,
        base_timeout: int = 64,
        max_retries: int = 6,
        backoff: float = 2.0,
    ) -> None:
        if base_timeout < 1:
            raise ValueError(f"base_timeout must be >= 1, got {base_timeout}")
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        if backoff < 1.0:
            raise ValueError(f"backoff must be >= 1.0, got {backoff}")
        super().__init__(inner.node_id)
        if inner._sim is not None:
            raise SimulationError(
                f"node {inner.node_id!r} is already bound; wrap before add_node"
            )
        self.inner = inner
        inner._sim = _Port(self)
        self.base_timeout = base_timeout
        self.max_retries = max_retries
        self.backoff = backoff
        self._channels: Dict[NodeId, _Channel] = {}
        self._expected: Dict[NodeId, int] = {}
        self._reorder: Dict[NodeId, Dict[int, Any]] = {}
        # -- incarnation epochs (crash-recovery model) --
        self.epoch = 0
        self._peer_epochs: Dict[NodeId, int] = {}
        #: Checkpoint/recovery hook (duck-typed ``RecoveryManager``); set by
        #: :meth:`repro.faults.recovery.RecoveryManager.attach` on nodes
        #: with a recovery spec, ``None`` otherwise -- the one-predicate
        #: disabled path keeps the fault-free overhead at zero.
        self.recovery: Optional[Any] = None
        # -- transport telemetry --
        self.retransmissions = 0
        self.duplicates_discarded = 0
        self.reordered_buffered = 0
        self.epoch_fenced = 0
        self.epoch_resets = 0
        self.undeliverable: List[Tuple[NodeId, Any]] = []

    # ------------------------------------------------------------------
    # sender side
    # ------------------------------------------------------------------
    def reliable_send(self, dst: NodeId, payload: Any) -> None:
        """Send ``payload`` with at-least-once delivery + receiver dedupe."""
        if dst == self.node_id:
            raise SimulationError(
                f"node {self.node_id!r} tried to message itself through the "
                "reliable transport"
            )
        channel = self._channels.setdefault(dst, _Channel())
        seq = channel.next_seq
        channel.next_seq += 1
        channel.outstanding[seq] = payload
        self.sim.transmit(self.node_id, dst, self._frame(dst, seq, payload))
        if channel.timer is None:
            self._arm(dst, channel, reset_backoff=True)

    def _frame(self, dst: NodeId, seq: int, payload: Any, *, retransmit: bool = False) -> Data:
        return Data(
            seq,
            payload,
            retransmit=retransmit,
            src_epoch=self.epoch,
            dst_epoch=self._peer_epochs.get(dst, 0),
        )

    def on_timer(self, tag: Hashable) -> None:
        dst = tag
        channel = self._channels.get(dst)
        if channel is None:
            return
        channel.timer = None
        if not channel.outstanding:
            return  # acked while the timer was in flight
        channel.attempts += 1
        obs = getattr(self.sim, "obs", None)
        if channel.attempts > self.max_retries:
            # Peer presumed crashed: drop the channel's backlog so the
            # system can quiesce.  Liveness may degrade; safety cannot --
            # a dropped message is indistinguishable from a slow one.
            if obs is not None:
                obs.emit(
                    RunEvent(
                        self.sim.steps,
                        "fault-action",
                        node=self.node_id,
                        peer=dst,
                        value=f"give-up x{len(channel.outstanding)}",
                    )
                )
            for seq in sorted(channel.outstanding):
                self.undeliverable.append((dst, channel.outstanding[seq]))
            channel.outstanding.clear()
            return
        for seq in sorted(channel.outstanding):
            payload = channel.outstanding[seq]
            if obs is not None:
                obs.emit(
                    RunEvent(
                        self.sim.steps,
                        "retransmit",
                        node=self.node_id,
                        peer=dst,
                        msg_type=getattr(payload, "msg_type", "data"),
                        value=channel.attempts,
                    )
                )
            self.sim.transmit(self.node_id, dst, self._frame(dst, seq, payload, retransmit=True))
            self.retransmissions += 1
        channel.timeout = int(channel.timeout * self.backoff) or self.base_timeout
        self._arm(dst, channel, reset_backoff=False)

    def _arm(self, dst: NodeId, channel: _Channel, *, reset_backoff: bool) -> None:
        if reset_backoff:
            channel.attempts = 0
            channel.timeout = self.base_timeout
        channel.timer = self.sim.schedule_timer(self.node_id, channel.timeout, tag=dst)

    def _handle_ack(self, dst: NodeId, ack: Ack) -> None:
        channel = self._channels.get(dst)
        if channel is None:
            return
        acked = [seq for seq in channel.outstanding if seq <= ack.cum]
        for seq in acked:
            del channel.outstanding[seq]
        if channel.timer is not None and (acked or not channel.outstanding):
            # Progress: stop the pending timer; re-arm fresh if the channel
            # still has unacked traffic (backoff resets -- the peer lives).
            self.sim.cancel_timer(channel.timer)
            channel.timer = None
        if channel.outstanding and channel.timer is None:
            self._arm(dst, channel, reset_backoff=True)

    # ------------------------------------------------------------------
    # receiver side
    # ------------------------------------------------------------------
    def _handle_data(self, src: NodeId, data: Data) -> None:
        expected = self._expected.setdefault(src, 0)
        if data.seq == expected:
            self._deliver(src, data.payload)
            expected += 1
            parked = self._reorder.get(src)
            while parked and expected in parked:
                self._deliver(src, parked.pop(expected))
                expected += 1
            self._expected[src] = expected
        elif data.seq > expected:
            parked = self._reorder.setdefault(src, {})
            if data.seq not in parked:
                parked[data.seq] = data.payload
                self.reordered_buffered += 1
            else:
                self.duplicates_discarded += 1
        else:
            self.duplicates_discarded += 1
        # Cumulative ack; also re-acks duplicates so a lost ack is repaired
        # by the retransmission it provokes.
        self.sim.transmit(
            self.node_id,
            src,
            Ack(
                self._expected[src] - 1,
                src_epoch=self.epoch,
                dst_epoch=self._peer_epochs.get(src, 0),
            ),
        )

    def _deliver(self, src: NodeId, payload: Any) -> None:
        if not self.inner.awake:
            self.inner.awake = True
            self.inner.on_wake()
        self.inner.on_message(src, payload)
        if self.recovery is not None:
            self.recovery.observe(self)

    # ------------------------------------------------------------------
    # incarnation epochs (crash-recovery model)
    # ------------------------------------------------------------------
    def _epoch_admit(self, sender: NodeId, frame: Any) -> bool:
        """Admit or fence one incoming frame; return ``True`` to process it.

        Learn first, check second: a frame from a *newer* incarnation of
        ``sender`` teaches us the new epoch (restarting every channel
        keyed to the superseded one) before we judge the frame's belief
        about *our* epoch.  A frame is fenced when it comes from a
        superseded incarnation of the sender (a dead straggler: discard
        silently) or was addressed to a superseded incarnation of us.  The
        latter sender is alive and merely ignorant, so the fence *teaches*:
        we answer with a current-epoch ack that carries no cumulative
        progress but whose ``src_epoch`` makes the sender re-key its
        channel to our new incarnation and re-queue what it still owes us.
        Without the teach step a peer that last spoke to our old
        incarnation would retransmit into the fence until give-up and its
        half of the protocol conversation would hang forever.
        """
        known = self._peer_epochs.get(sender, 0)
        if frame.src_epoch > known:
            self._epoch_reset(sender, frame.src_epoch)
            known = frame.src_epoch
        if frame.src_epoch < known:
            self._fence(sender, frame)
            return False
        if frame.dst_epoch != self.epoch:
            self._fence(sender, frame)
            self.sim.transmit(
                self.node_id,
                sender,
                Ack(
                    self._expected.get(sender, 0) - 1,
                    src_epoch=self.epoch,
                    dst_epoch=known,
                ),
            )
            return False
        return True

    def _fence(self, sender: NodeId, frame: Any) -> None:
        self.epoch_fenced += 1
        obs = getattr(self.sim, "obs", None)
        if obs is not None:
            obs.emit(
                RunEvent(
                    self.sim.steps,
                    "epoch-fence",
                    node=self.node_id,
                    peer=sender,
                    msg_type=frame.msg_type,
                    value=f"src={frame.src_epoch} dst={frame.dst_epoch} have={self.epoch}",
                )
            )

    def _epoch_reset(self, peer: NodeId, new_epoch: int) -> None:
        """``peer`` restarted: re-key all transport state shared with its
        old incarnation.

        Receiver state (expected seq, reorder park) belonged to the dead
        incarnation's channel and is simply dropped -- the new incarnation
        restarts at seq 0.  The sender-side channel is *re-queued*, not
        dropped: every outstanding payload carries a now-stale
        ``dst_epoch`` (our belief was constant over the channel's
        lifetime) and would be fenced on arrival, but the payloads
        themselves are protocol messages our wrapped node still expects
        answers to.  Re-framing them on a fresh channel to the new
        incarnation is what lets a half-open conversation (a search
        awaiting its release, a conquest awaiting its more-done) complete
        against the restarted peer instead of hanging forever.  To the
        asynchronous model this is indistinguishable from a very slow
        channel; a restarted peer whose state makes a re-queued message
        impossible fails loudly via ProtocolError, never silently.
        """
        self._peer_epochs[peer] = new_epoch
        self.epoch_resets += 1
        self._expected.pop(peer, None)
        self._reorder.pop(peer, None)
        channel = self._channels.pop(peer, None)
        if channel is not None:
            if channel.timer is not None:
                self.sim.cancel_timer(channel.timer)
                channel.timer = None
            if channel.outstanding:
                fresh = self._channels.setdefault(peer, _Channel())
                for seq in sorted(channel.outstanding):
                    payload = channel.outstanding[seq]
                    new_seq = fresh.next_seq
                    fresh.next_seq += 1
                    fresh.outstanding[new_seq] = payload
                    self.sim.transmit(
                        self.node_id,
                        peer,
                        self._frame(peer, new_seq, payload, retransmit=True),
                    )
                    self.retransmissions += 1
                if fresh.timer is None:
                    self._arm(peer, fresh, reset_backoff=True)

    def begin_epoch(self, epoch: int) -> None:
        """Restart this node's transport under incarnation ``epoch``.

        Called by the recovery manager when the node comes back: all
        pre-crash channel state (seqnums, retransmit buffers, reorder
        parks, peer-epoch beliefs) is the old incarnation's and must not
        leak into the new one -- that is exactly what epoch fencing
        guarantees the *peers* will discard, so we discard it too.
        """
        if epoch <= self.epoch:
            raise SimulationError(
                f"epoch must increase: {epoch} <= current {self.epoch}"
            )
        for dst, channel in self._channels.items():
            if channel.timer is not None:
                self.sim.cancel_timer(channel.timer)
                channel.timer = None
            for seq in sorted(channel.outstanding):
                self.undeliverable.append((dst, channel.outstanding[seq]))
        self._channels = {}
        self._expected = {}
        self._reorder = {}
        self._peer_epochs = {}
        self.epoch = epoch

    # ------------------------------------------------------------------
    # SimNode interface
    # ------------------------------------------------------------------
    def on_wake(self) -> None:
        if not self.inner.awake:
            self.inner.awake = True
            self.inner.on_wake()
            if self.recovery is not None:
                self.recovery.observe(self)

    def on_message(self, sender: NodeId, message: Any) -> None:
        if isinstance(message, Data):
            if not self._epoch_admit(sender, message):
                return
            self._handle_data(sender, message)
        elif isinstance(message, Ack):
            if not self._epoch_admit(sender, message):
                return
            self._handle_ack(sender, message)
        else:
            raise SimulationError(
                f"reliable node {self.node_id!r} got a raw {message!r}; mixing "
                "wrapped and unwrapped nodes on one simulator is unsupported"
            )

    def on_crash(self) -> None:
        # Silence every pending retransmit timer: the injector suppresses
        # timers during the down window anyway, but a pre-crash timer due
        # *after* recovery would otherwise fire into the new incarnation.
        for channel in self._channels.values():
            if channel.timer is not None:
                self.sim.cancel_timer(channel.timer)
                channel.timer = None
        if self.recovery is not None:
            self.recovery.on_crash(self)

    def on_recover(self) -> None:
        if self.recovery is not None:
            self.recovery.restore(self)

    @property
    def outstanding_total(self) -> int:
        return sum(len(ch.outstanding) for ch in self._channels.values())


# ----------------------------------------------------------------------
# accounting helpers
# ----------------------------------------------------------------------
def retransmission_overhead(stats: MessageStats) -> Dict[str, int]:
    """Messages/bits spent on reliability, split out of ``stats``.

    ``protocol_*`` counts everything else -- i.e. what the run would have
    cost in the fault-free model plus the per-message sequence numbers.
    """
    overhead_msgs = stats.messages(*OVERHEAD_TYPES)
    overhead_bits = stats.bits(*OVERHEAD_TYPES)
    return {
        "overhead_messages": overhead_msgs,
        "overhead_bits": overhead_bits,
        "protocol_messages": stats.total_messages - overhead_msgs,
        "protocol_bits": stats.total_bits - overhead_bits,
    }


def transport_totals(wrappers: Dict[NodeId, ReliableNode]) -> Dict[str, int]:
    """Aggregate transport telemetry across a system's wrappers."""
    return {
        "retransmissions": sum(w.retransmissions for w in wrappers.values()),
        "duplicates_discarded": sum(w.duplicates_discarded for w in wrappers.values()),
        "reordered_buffered": sum(w.reordered_buffered for w in wrappers.values()),
        "undeliverable": sum(len(w.undeliverable) for w in wrappers.values()),
        "epoch_fenced": sum(w.epoch_fenced for w in wrappers.values()),
    }
