"""Ack/retransmit transport: exactly-once FIFO over unreliable channels.

The discovery algorithms are correct only in the paper's model -- reliable
exactly-once FIFO channels.  :class:`ReliableNode` restores that model over
a faulty network, so every protocol built on :class:`~repro.sim.network.SimNode`
(the Generic/Bounded/Ad-hoc :class:`~repro.core.node.DiscoveryNode`, the
asynchronous baselines) runs **unchanged** under message loss, duplication
and reordering.  Two transport generations live behind the one seam,
selected by ``transport=``:

``transport="sr"`` (default) -- the v2 selective-repeat transport:

* the sender stamps each payload with a **per-destination sequence number**
  and keeps it buffered until cumulatively acknowledged;
* acks are **piggybacked and delayed**: when protocol traffic flows back
  the cumulative ack rides on the next data frame for one extra id worth
  of bits; an idle receiver confirms via a **delayed-ack timer**
  (``ack_delay`` virtual steps) instead of acking every frame;
* losses are repaired by **selective repeat with a NACK fast path**: the
  receiver parks out-of-order arrivals and, on detecting a sequence gap,
  immediately names the missing seqs in an explicit :class:`Nack`; the
  sender retransmits exactly those frames.  The retransmit timer is the
  backstop, and it resends only the head-of-line frame per firing -- a
  single lost frame never triggers retransmission of the whole window;
* retransmit timeouts are **adaptive**: each channel runs a Jacobson-style
  smoothed RTT/variance estimator in virtual time (``rto = srtt +
  4*rttvar``, clamped to ``[min_rto, max_rto]``), with **Karn's rule**
  (retransmitted frames never produce RTT samples) and exponential backoff
  on repeated timeouts.

``transport="gbn"`` -- the v1 go-back-N transport, kept verbatim for
differential testing: ack-per-frame, full-window retransmission on every
timeout, fixed ``base_timeout`` with exponential backoff.

In both modes an unacked channel gives up after ``max_retries`` fruitless
timeout rounds and records the payloads as undeliverable (the peer is
presumed crashed -- retrying forever would forfeit quiescence).

Overhead accounting (the quantity ``BENCH_faults.json`` tracks): the first
copy of a payload is charged under the payload's own message type (plus
``id_bits`` for the sequence number, plus one more ``id_bits`` when a
cumulative ack is piggybacked), so the protocol's per-type lemma
accounting stays meaningful; every retransmission is charged as
``rt-retrans``, every standalone ack as ``rt-ack`` and every NACK as
``rt-nack``.  ``messages(*OVERHEAD_TYPES)`` is therefore exactly the price
of reliability.

Give-up is the transport's only departure from exactly-once semantics: a
payload addressed to a crashed peer is eventually dropped.  That is
unavoidable -- TCP does the same -- and safe here because the discovery
protocols' *safety* properties tolerate missing messages (they are what a
slow network already looks like); only liveness degrades.

**Incarnation epochs** (the crash-*recovery* model of
:mod:`repro.faults.recovery`): every frame carries the sender's epoch and
the sender's belief of the receiver's epoch.  A node that recovers from a
crash restarts under a bumped epoch via :meth:`ReliableNode.begin_epoch`,
which discards all pre-crash transport state.  On receipt, a frame whose
belief of *my* epoch is stale -- or that originates from a superseded
incarnation of the sender -- is **fenced**: never processed, so pre-crash
retransmissions and in-flight stragglers can never leak old sequence
numbers or duplicate payloads into the new incarnation.  Fencing a live
but ignorant sender additionally *teaches* it the new epoch via a
progress-free ack, upon which the sender re-keys its channel and re-queues
its unacked payloads to the new incarnation -- the repair that lets
half-open protocol conversations complete across a peer's restart.  The
re-keyed channel starts with a zero retry count and a fresh RTT estimator:
whatever give-up budget the stale incarnation consumed never counts
against the live one.  The steady-state cost is three extra O(log n)-bit
integers per frame, charged to the frame's own type.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Hashable, List, Optional, Set, Tuple

from repro.obs.events import RunEvent
from repro.sim.events import TimerToken
from repro.sim.network import SimNode, SimulationError, Simulator
from repro.sim.trace import MessageStats, bits_for_ids

NodeId = Hashable

__all__ = [
    "Data",
    "Ack",
    "Nack",
    "ReliableNode",
    "RT_RETRANS",
    "RT_ACK",
    "RT_NACK",
    "OVERHEAD_TYPES",
    "TRANSPORTS",
    "retransmission_overhead",
    "transport_totals",
]

#: Message types charged as recovery overhead, never protocol traffic.
RT_RETRANS = "rt-retrans"
RT_ACK = "rt-ack"
RT_NACK = "rt-nack"
OVERHEAD_TYPES = (RT_RETRANS, RT_ACK, RT_NACK)

#: The selectable transport generations.
TRANSPORTS = ("sr", "gbn")

#: Tag prefix distinguishing a receiver-side delayed-ack timer (tagged
#: ``(_ACK_TAG, peer)``) from the per-destination retransmit timers
#: (tagged with the bare peer id).
_ACK_TAG = "rt-delayed-ack"

#: Recent-maximum RTT window lifetime, in units of ``base_timeout``:
#: samples older than this stop flooring the RTO, letting end-of-run
#: repairs use tight timeouts once the congestion that produced the big
#: samples has drained.
_RTT_WINDOW_LIFETIMES = 1


@dataclass(frozen=True)
class Data:
    """A protocol payload framed with a per-channel sequence number.

    ``src_epoch`` is the sender's incarnation at transmit time;
    ``dst_epoch`` is the sender's belief of the receiver's incarnation.
    Both are 0 for nodes that have never crashed, so the epoch machinery
    is invisible until a :class:`~repro.faults.plan.RecoverySpec` is in
    play.  ``ack`` is the piggybacked cumulative ack of the *reverse*
    channel (selective-repeat mode only; ``None`` when the frame carries
    no ack), costing one extra id worth of bits on the carrying frame.
    """

    seq: int
    payload: Any
    retransmit: bool = False
    src_epoch: int = 0
    dst_epoch: int = 0
    ack: Optional[int] = None

    @property
    def msg_type(self) -> str:
        # First copies keep the payload's type so per-type accounting (the
        # Section 5 lemmas) still sees the protocol's traffic; retransmits
        # are pure overhead and get their own bucket.
        if self.retransmit:
            return RT_RETRANS
        return getattr(self.payload, "msg_type", "data")

    def bit_size(self, id_bits: int) -> int:
        # Payload bits + seq number + two O(log n)-bit epoch stamps
        # (+ one piggybacked cumulative ack when present).
        bits = self.payload.bit_size(id_bits) + 3 * id_bits
        if self.ack is not None:
            bits += id_bits
        return bits


@dataclass(frozen=True)
class Ack:
    """Cumulative acknowledgement: every seq <= ``cum`` has been received."""

    cum: int
    src_epoch: int = 0
    dst_epoch: int = 0
    msg_type = RT_ACK

    def bit_size(self, id_bits: int) -> int:
        return bits_for_ids(0, id_bits, extra_ints=3)


@dataclass(frozen=True)
class Nack:
    """Gap report: cumulative ack ``cum`` plus the missing seqs above it.

    The selective-repeat fast path: the receiver names exactly the frames
    a gap proves lost so the sender repairs them immediately instead of
    waiting out a retransmit timeout.  Doubles as a cumulative ack.
    """

    cum: int
    missing: Tuple[int, ...]
    src_epoch: int = 0
    dst_epoch: int = 0
    msg_type = RT_NACK

    def bit_size(self, id_bits: int) -> int:
        return bits_for_ids(0, id_bits, extra_ints=3 + len(self.missing))


class _Port:
    """The fake simulator handed to the wrapped node.

    Routes the node's sends through the wrapper's reliable path; everything
    else (stats, id_bits, ...) forwards to the real simulator, so protocol
    code that inspects its environment keeps working.
    """

    def __init__(self, wrapper: "ReliableNode") -> None:
        self._wrapper = wrapper

    def transmit(self, src: NodeId, dst: NodeId, message: Any) -> None:
        self._wrapper.reliable_send(dst, message)

    def __getattr__(self, name: str) -> Any:
        return getattr(self._wrapper.sim, name)


class _Channel:
    """Sender-side state for one (self -> dst) reliable channel."""

    __slots__ = (
        "next_seq",
        "outstanding",
        "timer",
        "attempts",
        "timeout",
        "sent_at",
        "last_tx",
        "last_progress",
        "resent",
        "srtt",
        "rttvar",
    )

    def __init__(self) -> None:
        self.next_seq = 0
        self.outstanding: Dict[int, Any] = {}  # seq -> payload, insertion = seq order
        self.timer: Optional[TimerToken] = None
        self.attempts = 0
        self.timeout = 0  # set on first arm
        self.last_tx = 0  # step of the channel's latest (re)transmission
        self.last_progress: Optional[int] = None  # step of last ack progress
        # -- selective-repeat extensions --
        self.sent_at: Dict[int, int] = {}  # seq -> first-transmit step (RTT samples)
        self.resent: Set[int] = set()  # retransmitted seqs (Karn's rule)
        self.srtt: Optional[float] = None  # smoothed RTT, virtual steps
        self.rttvar = 0.0


class ReliableNode(SimNode):
    """Wrap any :class:`SimNode` in the reliable transport.

    The wrapper registers with the simulator under the inner node's id;
    the inner node is re-pointed at a :class:`_Port` so its ``send`` calls
    enter the reliable path.  Verification and monitoring keep operating on
    the *inner* nodes -- the wrapper is invisible to the protocol layer.

    Parameters
    ----------
    inner:
        The protocol node to protect.  Must not already be bound.
    base_timeout:
        First retransmit timeout in simulator steps (and, in ``sr`` mode,
        the RTO used until the channel's estimator has its first sample).
        Too small merely wastes overhead (spurious retransmits are
        deduplicated); too large slows recovery.  Scale with system size:
        every node's handler steps share the one global step clock.
    max_retries:
        Consecutive fruitless timeout rounds before a channel gives up
        (presumed-crashed peer).  In ``gbn`` mode with exponential backoff
        the give-up horizon is ``base_timeout * (2^(max_retries+1) - 1)``
        steps; in ``sr`` mode the horizon is adaptive (RTO-driven) but the
        round count is the same.
    transport:
        ``"sr"`` (default) for the selective-repeat v2 transport,
        ``"gbn"`` for the v1 go-back-N path (kept for differential
        testing).
    ack_delay:
        ``sr`` only -- how long (virtual steps) a receiver may sit on an
        owed cumulative ack waiting for reverse traffic to piggyback on.
        Default ``max(2, base_timeout // 8)``.
    min_rto / max_rto:
        ``sr`` only -- clamp on the adaptive retransmit timeout.
        ``min_rto`` defaults to ``max(4, 2 * ack_delay)`` (an RTO below the
        peer's ack delay guarantees spurious retransmits); ``max_rto``
        defaults to ``8 * base_timeout`` and also caps the exponential
        backoff -- an uncapped backoff turns every lost retransmission
        into thousands of steps of timer waiting.
    """

    def __init__(
        self,
        inner: SimNode,
        *,
        base_timeout: int = 64,
        max_retries: int = 6,
        backoff: float = 2.0,
        transport: str = "sr",
        ack_delay: Optional[int] = None,
        min_rto: Optional[int] = None,
        max_rto: Optional[int] = None,
    ) -> None:
        if base_timeout < 1:
            raise ValueError(f"base_timeout must be >= 1, got {base_timeout}")
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        if backoff < 1.0:
            raise ValueError(f"backoff must be >= 1.0, got {backoff}")
        if transport not in TRANSPORTS:
            raise ValueError(f"transport must be one of {TRANSPORTS}, got {transport!r}")
        if ack_delay is None:
            ack_delay = max(2, base_timeout // 8)
        if ack_delay < 1:
            raise ValueError(f"ack_delay must be >= 1, got {ack_delay}")
        if min_rto is None:
            min_rto = max(4, 2 * ack_delay)
        if max_rto is None:
            max_rto = 8 * base_timeout
        if min_rto < 1:
            raise ValueError(f"min_rto must be >= 1, got {min_rto}")
        if max_rto < min_rto:
            raise ValueError(f"need max_rto >= min_rto, got {max_rto} < {min_rto}")
        super().__init__(inner.node_id)
        if inner._sim is not None:
            raise SimulationError(
                f"node {inner.node_id!r} is already bound; wrap before add_node"
            )
        self.inner = inner
        inner._sim = _Port(self)
        self.base_timeout = base_timeout
        self.max_retries = max_retries
        self.backoff = backoff
        self.transport = transport
        self.ack_delay = ack_delay
        self.min_rto = min_rto
        self.max_rto = max_rto
        self._channels: Dict[NodeId, _Channel] = {}
        self._expected: Dict[NodeId, int] = {}
        self._reorder: Dict[NodeId, Dict[int, Any]] = {}
        # -- selective-repeat receiver state --
        self._ack_owed: Set[NodeId] = set()
        self._ack_timers: Dict[NodeId, TimerToken] = {}
        self._nacked: Dict[NodeId, Set[int]] = {}
        # Node-wide RTT estimator: seeds the RTO of channels that have no
        # sample of their own yet.  In a busy system the dominant RTT term
        # is the shared delivery queue, so a fresh channel's first timeout
        # should reflect current congestion, not the static base_timeout --
        # otherwise every channel's first frame risks a spurious retransmit
        # while the real ack is still queued.
        self._srtt: Optional[float] = None
        self._rttvar = 0.0
        # The v1 give-up horizon: how long gbn's fixed backoff ladder waits
        # on a silent peer before declaring it crashed.  sr's time-based
        # give-up matches it (see on_timer) so the v2 transport is never
        # *quicker* to drop a payload than the transport it replaces.
        horizon, timeout = 0, base_timeout
        for _ in range(max_retries + 1):
            horizon += timeout
            timeout = int(timeout * backoff) or base_timeout
        self._giveup_horizon = horizon
        # Recent-maximum RTT window: the smoothed estimator lags behind a
        # congestion ramp (its gain is 1/8 while ack latency can grow 10x
        # within one burst), so the RTO is floored at the largest sample
        # seen recently.  Entries age out, letting end-of-run repairs --
        # when the queue has drained and acks return fast -- use tight
        # timeouts again instead of mid-run congestion estimates.
        self._rtt_window: List[Tuple[int, float]] = []
        # Last step an ack of any kind (piggybacked, delayed, immediate,
        # NACK-carried) was sent to each peer, for duplicate-ack
        # suppression: a duplicate arriving while our ack is plausibly
        # still in flight does not warrant paying for another one.
        self._last_ack_step: Dict[NodeId, int] = {}
        # -- incarnation epochs (crash-recovery model) --
        self.epoch = 0
        self._peer_epochs: Dict[NodeId, int] = {}
        #: Checkpoint/recovery hook (duck-typed ``RecoveryManager``); set by
        #: :meth:`repro.faults.recovery.RecoveryManager.attach` on nodes
        #: with a recovery spec, ``None`` otherwise -- the one-predicate
        #: disabled path keeps the fault-free overhead at zero.
        self.recovery: Optional[Any] = None
        # -- transport telemetry --
        self.retransmissions = 0
        self.fast_retransmissions = 0
        self.duplicates_discarded = 0
        self.reordered_buffered = 0
        self.acks_piggybacked = 0
        self.acks_delayed = 0
        self.acks_immediate = 0
        self.nacks_sent = 0
        self.rtt_samples = 0
        self.epoch_fenced = 0
        self.epoch_resets = 0
        self.undeliverable: List[Tuple[NodeId, Any]] = []

    # ------------------------------------------------------------------
    # sender side
    # ------------------------------------------------------------------
    def reliable_send(self, dst: NodeId, payload: Any) -> None:
        """Send ``payload`` with at-least-once delivery + receiver dedupe."""
        if dst == self.node_id:
            raise SimulationError(
                f"node {self.node_id!r} tried to message itself through the "
                "reliable transport"
            )
        channel = self._channels.setdefault(dst, _Channel())
        seq = channel.next_seq
        channel.next_seq += 1
        channel.outstanding[seq] = payload
        if self.transport == "sr":
            channel.sent_at[seq] = self.sim.steps
            channel.last_tx = self.sim.steps
        self.sim.transmit(self.node_id, dst, self._frame(dst, seq, payload))
        if channel.timer is None:
            self._arm(dst, channel, reset_backoff=True)

    def _frame(self, dst: NodeId, seq: int, payload: Any, *, retransmit: bool = False) -> Data:
        ack = None
        if self.transport == "sr" and dst in self._ack_owed:
            # Piggyback: the owed cumulative ack rides on this frame for
            # one id worth of bits, discharging the delayed-ack timer.
            ack = self._expected.get(dst, 0) - 1
            self._ack_owed.discard(dst)
            self._cancel_ack_timer(dst)
            self._last_ack_step[dst] = self.sim.steps
            self.acks_piggybacked += 1
        return Data(
            seq,
            payload,
            retransmit=retransmit,
            src_epoch=self.epoch,
            dst_epoch=self._peer_epochs.get(dst, 0),
            ack=ack,
        )

    def on_timer(self, tag: Hashable) -> None:
        if type(tag) is tuple and len(tag) == 2 and tag[0] == _ACK_TAG:
            self._fire_delayed_ack(tag[1])
            return
        dst = tag
        channel = self._channels.get(dst)
        if channel is None:
            return
        channel.timer = None
        if not channel.outstanding:
            return  # acked while the timer was in flight
        if self.transport == "sr":
            # Re-validate the deadline against the *current* RTO estimate:
            # the timer may have been armed before the estimator had any
            # sample (first wave of a busy run), in which case firing now
            # would retransmit a frame whose ack is still queued.  Waiting
            # out the refreshed estimate is not a fruitless round.
            rto = self._rto(channel)
            waited = self.sim.steps - channel.last_tx
            if waited < rto:
                channel.timeout = rto - waited
                channel.timer = self.sim.schedule_timer(
                    self.node_id, channel.timeout, tag=dst
                )
                return
        channel.attempts += 1
        obs = getattr(self.sim, "obs", None)
        if channel.attempts > self.max_retries and self.transport == "sr":
            # Adaptive RTOs make sr's retry rounds far shorter than gbn's
            # fixed ladder, so a bare round count would give up on a live
            # peer an order of magnitude sooner than v1 did -- at 20% loss
            # an unlucky streak of lost repairs then *drops* a deliverable
            # payload.  Give-up is therefore time-based: the round budget
            # refills until the channel has been fruitless (no ack
            # progress since the head-of-line frame was first sent) for as
            # long as gbn's full backoff ladder would have waited.
            head_sent = channel.sent_at.get(min(channel.outstanding), channel.last_tx)
            fruitless_since = (
                head_sent
                if channel.last_progress is None
                else max(head_sent, channel.last_progress)
            )
            if self.sim.steps - fruitless_since < self._giveup_horizon:
                channel.attempts = self.max_retries
        if channel.attempts > self.max_retries:
            # Peer presumed crashed: drop the channel's backlog so the
            # system can quiesce.  Liveness may degrade; safety cannot --
            # a dropped message is indistinguishable from a slow one.
            if obs is not None:
                obs.emit(
                    RunEvent(
                        self.sim.steps,
                        "fault-action",
                        node=self.node_id,
                        peer=dst,
                        value=f"give-up x{len(channel.outstanding)}",
                    )
                )
            for seq in sorted(channel.outstanding):
                self.undeliverable.append((dst, channel.outstanding[seq]))
            channel.outstanding.clear()
            channel.sent_at.clear()
            channel.resent.clear()
            return
        if self.transport == "sr":
            # Selective repeat: the timer is the backstop, and it repairs
            # only the head-of-line frame -- anything else still missing
            # is the NACK fast path's job (or the next timeout's, with
            # backoff).  Karn's rule: the resent frame never samples RTT.
            seq = min(channel.outstanding)
            payload = channel.outstanding[seq]
            if obs is not None:
                obs.emit(
                    RunEvent(
                        self.sim.steps,
                        "retransmit",
                        node=self.node_id,
                        peer=dst,
                        msg_type=getattr(payload, "msg_type", "data"),
                        value=channel.attempts,
                    )
                )
            self.sim.transmit(self.node_id, dst, self._frame(dst, seq, payload, retransmit=True))
            self.retransmissions += 1
            channel.resent.add(seq)
            channel.last_tx = self.sim.steps
            channel.timeout = min(self.max_rto, (channel.timeout * 2) or self.base_timeout)
        else:
            for seq in sorted(channel.outstanding):
                payload = channel.outstanding[seq]
                if obs is not None:
                    obs.emit(
                        RunEvent(
                            self.sim.steps,
                            "retransmit",
                            node=self.node_id,
                            peer=dst,
                            msg_type=getattr(payload, "msg_type", "data"),
                            value=channel.attempts,
                        )
                    )
                self.sim.transmit(self.node_id, dst, self._frame(dst, seq, payload, retransmit=True))
                self.retransmissions += 1
            channel.timeout = int(channel.timeout * self.backoff) or self.base_timeout
        self._arm(dst, channel, reset_backoff=False)

    def _rto(self, channel: _Channel) -> int:
        """Adaptive retransmit timeout: ``srtt + 4*rttvar`` clamped.

        A channel with no sample of its own borrows the node-wide
        estimator (current congestion); ``base_timeout`` only until this
        node has seen its very first ack.  The result is floored at 1.25x
        the largest recent sample: a smoothed mean lags a congestion ramp
        badly enough to fire timers while real acks are still queued.
        """
        srtt, rttvar = channel.srtt, channel.rttvar
        if srtt is None:
            srtt, rttvar = self._srtt, self._rttvar
        if srtt is None:
            # No ack observed yet, anywhere: the network's RTT is unknown
            # and the opening wave is its most congested moment.  Double
            # the configured base so the first timeout doubles as an RTT
            # probe window instead of a guaranteed spurious retransmit.
            return min(self.max_rto, 2 * self.base_timeout)
        rto = int(srtt + 4.0 * rttvar) + 1
        window = self._rtt_window
        if window:
            horizon = self.sim.steps - _RTT_WINDOW_LIFETIMES * self.base_timeout
            while window and window[0][0] < horizon:
                window.pop(0)
            if window:
                rto = max(rto, int(1.25 * max(s for _, s in window)) + 1)
        return min(self.max_rto, max(self.min_rto, rto))

    def _arm(self, dst: NodeId, channel: _Channel, *, reset_backoff: bool) -> None:
        if reset_backoff:
            channel.attempts = 0
            channel.timeout = (
                self._rto(channel) if self.transport == "sr" else self.base_timeout
            )
        channel.timer = self.sim.schedule_timer(self.node_id, channel.timeout, tag=dst)

    def _handle_ack(self, dst: NodeId, cum: int) -> None:
        channel = self._channels.get(dst)
        if channel is None:
            return
        acked = [seq for seq in channel.outstanding if seq <= cum]
        if self.transport == "sr" and acked:
            self._sample_rtt(channel, acked)
            channel.last_progress = self.sim.steps
        for seq in acked:
            del channel.outstanding[seq]
            channel.sent_at.pop(seq, None)
            channel.resent.discard(seq)
        if channel.timer is not None and (acked or not channel.outstanding):
            # Progress: stop the pending timer; re-arm fresh if the channel
            # still has unacked traffic (backoff resets -- the peer lives).
            self.sim.cancel_timer(channel.timer)
            channel.timer = None
        if channel.outstanding and channel.timer is None:
            self._arm(dst, channel, reset_backoff=True)

    def _sample_rtt(self, channel: _Channel, acked: List[int]) -> None:
        """Feed the newest unambiguous sample into the Jacobson estimator.

        Karn's rule: a retransmitted frame's ack is ambiguous (it may
        answer either copy), so only never-resent frames sample.
        """
        eligible = [
            seq for seq in acked if seq not in channel.resent and seq in channel.sent_at
        ]
        if not eligible:
            return
        sample = float(self.sim.steps - channel.sent_at[max(eligible)])
        if channel.srtt is None:
            channel.srtt = sample
            channel.rttvar = sample / 2.0
        else:
            channel.rttvar = 0.75 * channel.rttvar + 0.25 * abs(channel.srtt - sample)
            channel.srtt = 0.875 * channel.srtt + 0.125 * sample
        if self._srtt is None:
            self._srtt = sample
            self._rttvar = sample / 2.0
        else:
            self._rttvar = 0.75 * self._rttvar + 0.25 * abs(self._srtt - sample)
            self._srtt = 0.875 * self._srtt + 0.125 * sample
        self._rtt_window.append((self.sim.steps, sample))
        self.rtt_samples += 1

    def _handle_nack(self, dst: NodeId, nack: Nack) -> None:
        # The cumulative half releases acked frames (and may sample RTT).
        self._handle_ack(dst, nack.cum)
        channel = self._channels.get(dst)
        if channel is None or not channel.outstanding:
            return
        obs = getattr(self.sim, "obs", None)
        repaired = False
        for seq in nack.missing:
            payload = channel.outstanding.get(seq)
            if payload is None:
                continue  # already acked (stale NACK) -- nothing to repair
            if obs is not None:
                obs.emit(
                    RunEvent(
                        self.sim.steps,
                        "retransmit",
                        node=self.node_id,
                        peer=dst,
                        msg_type=getattr(payload, "msg_type", "data"),
                        value="nack",
                    )
                )
            self.sim.transmit(self.node_id, dst, self._frame(dst, seq, payload, retransmit=True))
            self.retransmissions += 1
            self.fast_retransmissions += 1
            channel.resent.add(seq)
            channel.last_tx = self.sim.steps
            repaired = True
        if repaired:
            # The peer is demonstrably alive: whatever timeout budget the
            # pending timer consumed belongs to a live conversation.
            if channel.timer is not None:
                self.sim.cancel_timer(channel.timer)
                channel.timer = None
            self._arm(dst, channel, reset_backoff=True)

    # ------------------------------------------------------------------
    # receiver side
    # ------------------------------------------------------------------
    def _handle_data(self, src: NodeId, data: Data) -> None:
        if data.ack is not None:
            self._handle_ack(src, data.ack)
        expected = self._expected.setdefault(src, 0)
        if data.seq > expected:
            parked = self._reorder.setdefault(src, {})
            if data.seq not in parked:
                parked[data.seq] = data.payload
                self.reordered_buffered += 1
            else:
                self.duplicates_discarded += 1
            if self.transport == "sr":
                # Gap detected: name every seq below the arrival that is
                # neither parked nor already NACKed.  The NACK carries the
                # cumulative ack, so it discharges any owed delayed ack.
                nacked = self._nacked.setdefault(src, set())
                gaps = [
                    seq
                    for seq in range(expected, data.seq)
                    if seq not in parked and seq not in nacked
                ]
                if gaps:
                    self._send_nack(src, expected - 1, gaps)
                else:
                    self._owe_ack(src)
            else:
                self._ack_per_frame(src)
            return
        if data.seq < expected:
            self.duplicates_discarded += 1
            if self.transport == "sr":
                # A duplicate means the sender is retransmitting -- its
                # copy of our ack was lost or slow.  Re-ack immediately:
                # repair confirmations must not wait out another ack_delay
                # (a lost ack would otherwise cost rto + ack_delay per
                # retry round and ratchet the sender toward give-up).
                # Exception: if we acked this peer within the last
                # ack_delay steps, that ack is plausibly still in flight
                # and answers the retransmission -- don't pay for another.
                if self.sim.steps - self._last_ack_step.get(src, -(1 << 30)) <= self.ack_delay // 2:
                    self._owe_ack(src)
                else:
                    self._ack_now(src)
            else:
                self._ack_per_frame(src)
            return
        # In-order: advance the receive cursor and mark the ack debt
        # *before* running the handlers, so a protocol reply sent from
        # inside _deliver piggybacks a cumulative ack covering this very
        # frame -- request/reply conversations then never pay a standalone
        # ack.  Handlers cannot re-enter this path (sends are enqueued, not
        # delivered synchronously), so collecting the batch first is safe.
        batch = [data.payload]
        expected += 1
        parked = self._reorder.get(src)
        while parked and expected in parked:
            batch.append(parked.pop(expected))
            expected += 1
        self._expected[src] = expected
        if self.transport == "sr":
            nacked = self._nacked.get(src)
            if nacked:
                nacked.difference_update({s for s in nacked if s < expected})
            self._ack_owed.add(src)
        for payload in batch:
            self._deliver(src, payload)
        if self.transport == "sr":
            if src in self._ack_owed:  # no reply piggybacked it
                if data.retransmit:
                    self._ack_now(src)  # repair confirmation: don't delay
                else:
                    self._arm_ack_timer(src)
        else:
            self._ack_per_frame(src)

    def _ack_per_frame(self, src: NodeId) -> None:
        # go-back-N: ack every frame; re-acking duplicates repairs a
        # lost ack via the retransmission it provokes.
        self.sim.transmit(
            self.node_id,
            src,
            Ack(
                self._expected.get(src, 0) - 1,
                src_epoch=self.epoch,
                dst_epoch=self._peer_epochs.get(src, 0),
            ),
        )

    def _owe_ack(self, src: NodeId) -> None:
        self._ack_owed.add(src)
        self._arm_ack_timer(src)

    def _arm_ack_timer(self, src: NodeId) -> None:
        if src not in self._ack_timers:
            self._ack_timers[src] = self.sim.schedule_timer(
                self.node_id, self.ack_delay, tag=(_ACK_TAG, src)
            )

    def _ack_now(self, src: NodeId) -> None:
        """Standalone cumulative ack, sent immediately (repair path)."""
        self._ack_owed.discard(src)
        self._cancel_ack_timer(src)
        self._last_ack_step[src] = self.sim.steps
        self.acks_immediate += 1
        self.sim.transmit(
            self.node_id,
            src,
            Ack(
                self._expected.get(src, 0) - 1,
                src_epoch=self.epoch,
                dst_epoch=self._peer_epochs.get(src, 0),
            ),
        )

    def _fire_delayed_ack(self, src: NodeId) -> None:
        self._ack_timers.pop(src, None)
        if src not in self._ack_owed:
            return
        self._ack_owed.discard(src)
        self._last_ack_step[src] = self.sim.steps
        self.acks_delayed += 1
        self.sim.transmit(
            self.node_id,
            src,
            Ack(
                self._expected.get(src, 0) - 1,
                src_epoch=self.epoch,
                dst_epoch=self._peer_epochs.get(src, 0),
            ),
        )

    def _cancel_ack_timer(self, src: NodeId) -> None:
        token = self._ack_timers.pop(src, None)
        if token is not None:
            self.sim.cancel_timer(token)

    def _send_nack(self, src: NodeId, cum: int, gaps: List[int]) -> None:
        self._nacked.setdefault(src, set()).update(gaps)
        self._ack_owed.discard(src)
        self._cancel_ack_timer(src)
        self._last_ack_step[src] = self.sim.steps
        self.nacks_sent += 1
        obs = getattr(self.sim, "obs", None)
        if obs is not None:
            obs.emit(
                RunEvent(
                    self.sim.steps,
                    "nack",
                    node=self.node_id,
                    peer=src,
                    value=f"missing x{len(gaps)}",
                )
            )
        self.sim.transmit(
            self.node_id,
            src,
            Nack(
                cum,
                tuple(gaps),
                src_epoch=self.epoch,
                dst_epoch=self._peer_epochs.get(src, 0),
            ),
        )

    def _deliver(self, src: NodeId, payload: Any) -> None:
        if not self.inner.awake:
            self.inner.awake = True
            self.inner.on_wake()
        self.inner.on_message(src, payload)
        if self.recovery is not None:
            self.recovery.observe(self)

    # ------------------------------------------------------------------
    # incarnation epochs (crash-recovery model)
    # ------------------------------------------------------------------
    def _epoch_admit(self, sender: NodeId, frame: Any) -> bool:
        """Admit or fence one incoming frame; return ``True`` to process it.

        Learn first, check second: a frame from a *newer* incarnation of
        ``sender`` teaches us the new epoch (restarting every channel
        keyed to the superseded one) before we judge the frame's belief
        about *our* epoch.  A frame is fenced when it comes from a
        superseded incarnation of the sender (a dead straggler: discard
        silently) or was addressed to a superseded incarnation of us.  The
        latter sender is alive and merely ignorant, so the fence *teaches*:
        we answer with a current-epoch ack that carries no cumulative
        progress but whose ``src_epoch`` makes the sender re-key its
        channel to our new incarnation and re-queue what it still owes us.
        Without the teach step a peer that last spoke to our old
        incarnation would retransmit into the fence until give-up and its
        half of the protocol conversation would hang forever.
        """
        known = self._peer_epochs.get(sender, 0)
        if frame.src_epoch > known:
            self._epoch_reset(sender, frame.src_epoch)
            known = frame.src_epoch
        if frame.src_epoch < known:
            self._fence(sender, frame)
            return False
        if frame.dst_epoch != self.epoch:
            self._fence(sender, frame)
            self.sim.transmit(
                self.node_id,
                sender,
                Ack(
                    self._expected.get(sender, 0) - 1,
                    src_epoch=self.epoch,
                    dst_epoch=known,
                ),
            )
            return False
        return True

    def _fence(self, sender: NodeId, frame: Any) -> None:
        self.epoch_fenced += 1
        obs = getattr(self.sim, "obs", None)
        if obs is not None:
            obs.emit(
                RunEvent(
                    self.sim.steps,
                    "epoch-fence",
                    node=self.node_id,
                    peer=sender,
                    msg_type=frame.msg_type,
                    value=f"src={frame.src_epoch} dst={frame.dst_epoch} have={self.epoch}",
                )
            )

    def _epoch_reset(self, peer: NodeId, new_epoch: int) -> None:
        """``peer`` restarted: re-key all transport state shared with its
        old incarnation.

        Receiver state (expected seq, reorder park, owed/NACKed acks)
        belonged to the dead incarnation's channel and is simply dropped --
        the new incarnation restarts at seq 0.  The sender-side channel is
        *re-queued*, not dropped: every outstanding payload carries a
        now-stale ``dst_epoch`` (our belief was constant over the
        channel's lifetime) and would be fenced on arrival, but the
        payloads themselves are protocol messages our wrapped node still
        expects answers to.  Re-framing them on a fresh channel to the new
        incarnation is what lets a half-open conversation (a search
        awaiting its release, a conquest awaiting its more-done) complete
        against the restarted peer instead of hanging forever.  The fresh
        channel starts with ``attempts = 0`` and an empty RTT estimator:
        the give-up budget and backoff the *stale* incarnation consumed
        must never be charged to the live one.  To the asynchronous model
        this is indistinguishable from a very slow channel; a restarted
        peer whose state makes a re-queued message impossible fails loudly
        via ProtocolError, never silently.
        """
        self._peer_epochs[peer] = new_epoch
        self.epoch_resets += 1
        self._expected.pop(peer, None)
        self._reorder.pop(peer, None)
        self._ack_owed.discard(peer)
        self._cancel_ack_timer(peer)
        self._nacked.pop(peer, None)
        self._last_ack_step.pop(peer, None)
        channel = self._channels.pop(peer, None)
        if channel is not None:
            if channel.timer is not None:
                self.sim.cancel_timer(channel.timer)
                channel.timer = None
            if channel.outstanding:
                fresh = self._channels.setdefault(peer, _Channel())
                for seq in sorted(channel.outstanding):
                    payload = channel.outstanding[seq]
                    new_seq = fresh.next_seq
                    fresh.next_seq += 1
                    fresh.outstanding[new_seq] = payload
                    if self.transport == "sr":
                        # First transmission on the fresh channel: any ack
                        # is unambiguous, so it may sample RTT despite the
                        # rt-retrans accounting.
                        fresh.sent_at[new_seq] = self.sim.steps
                        fresh.last_tx = self.sim.steps
                    self.sim.transmit(
                        self.node_id,
                        peer,
                        self._frame(peer, new_seq, payload, retransmit=True),
                    )
                    self.retransmissions += 1
                if fresh.timer is None:
                    self._arm(peer, fresh, reset_backoff=True)

    def begin_epoch(self, epoch: int) -> None:
        """Restart this node's transport under incarnation ``epoch``.

        Called by the recovery manager when the node comes back: all
        pre-crash channel state (seqnums, retransmit buffers, reorder
        parks, ack debts, peer-epoch beliefs) is the old incarnation's and
        must not leak into the new one -- that is exactly what epoch
        fencing guarantees the *peers* will discard, so we discard it too.
        """
        if epoch <= self.epoch:
            raise SimulationError(
                f"epoch must increase: {epoch} <= current {self.epoch}"
            )
        for dst, channel in self._channels.items():
            if channel.timer is not None:
                self.sim.cancel_timer(channel.timer)
                channel.timer = None
            for seq in sorted(channel.outstanding):
                self.undeliverable.append((dst, channel.outstanding[seq]))
        for token in self._ack_timers.values():
            self.sim.cancel_timer(token)
        self._channels = {}
        self._expected = {}
        self._reorder = {}
        self._ack_owed = set()
        self._ack_timers = {}
        self._nacked = {}
        self._last_ack_step = {}
        self._srtt = None
        self._rttvar = 0.0
        self._rtt_window = []
        self._peer_epochs = {}
        self.epoch = epoch

    # ------------------------------------------------------------------
    # SimNode interface
    # ------------------------------------------------------------------
    def on_wake(self) -> None:
        if not self.inner.awake:
            self.inner.awake = True
            self.inner.on_wake()
            if self.recovery is not None:
                self.recovery.observe(self)

    def on_message(self, sender: NodeId, message: Any) -> None:
        if isinstance(message, Data):
            if not self._epoch_admit(sender, message):
                return
            self._handle_data(sender, message)
        elif isinstance(message, Ack):
            if not self._epoch_admit(sender, message):
                return
            self._handle_ack(sender, message.cum)
        elif isinstance(message, Nack):
            if not self._epoch_admit(sender, message):
                return
            self._handle_nack(sender, message)
        else:
            raise SimulationError(
                f"reliable node {self.node_id!r} got a raw {message!r}; mixing "
                "wrapped and unwrapped nodes on one simulator is unsupported"
            )

    def on_crash(self) -> None:
        # Silence every pending retransmit and delayed-ack timer: the
        # injector suppresses timers during the down window anyway, but a
        # pre-crash timer due *after* recovery would otherwise fire into
        # the new incarnation.
        for channel in self._channels.values():
            if channel.timer is not None:
                self.sim.cancel_timer(channel.timer)
                channel.timer = None
        for token in self._ack_timers.values():
            self.sim.cancel_timer(token)
        self._ack_timers.clear()
        if self.recovery is not None:
            self.recovery.on_crash(self)

    def on_recover(self) -> None:
        if self.recovery is not None:
            self.recovery.restore(self)

    @property
    def outstanding_total(self) -> int:
        return sum(len(ch.outstanding) for ch in self._channels.values())


# ----------------------------------------------------------------------
# accounting helpers
# ----------------------------------------------------------------------
def retransmission_overhead(stats: MessageStats) -> Dict[str, int]:
    """Messages/bits spent on reliability, split out of ``stats``.

    ``protocol_*`` counts everything else -- i.e. what the run would have
    cost in the fault-free model plus the per-message sequence numbers.
    """
    overhead_msgs = stats.messages(*OVERHEAD_TYPES)
    overhead_bits = stats.bits(*OVERHEAD_TYPES)
    return {
        "overhead_messages": overhead_msgs,
        "overhead_bits": overhead_bits,
        "protocol_messages": stats.total_messages - overhead_msgs,
        "protocol_bits": stats.total_bits - overhead_bits,
    }


def transport_totals(wrappers: Dict[NodeId, ReliableNode]) -> Dict[str, int]:
    """Aggregate transport telemetry across a system's wrappers."""
    return {
        "retransmissions": sum(w.retransmissions for w in wrappers.values()),
        "fast_retransmissions": sum(w.fast_retransmissions for w in wrappers.values()),
        "duplicates_discarded": sum(w.duplicates_discarded for w in wrappers.values()),
        "reordered_buffered": sum(w.reordered_buffered for w in wrappers.values()),
        "acks_piggybacked": sum(w.acks_piggybacked for w in wrappers.values()),
        "acks_delayed": sum(w.acks_delayed for w in wrappers.values()),
        "acks_immediate": sum(w.acks_immediate for w in wrappers.values()),
        "nacks_sent": sum(w.nacks_sent for w in wrappers.values()),
        "rtt_samples": sum(w.rtt_samples for w in wrappers.values()),
        "undeliverable": sum(len(w.undeliverable) for w in wrappers.values()),
        "epoch_fenced": sum(w.epoch_fenced for w in wrappers.values()),
    }
