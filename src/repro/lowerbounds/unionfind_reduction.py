"""Lemma 3.1 / Theorem 2: driving Ad-hoc discovery as a Union-Find solver.

Lemma 3.1 compiles a Union-Find operation sequence into a knowledge graph
(see :mod:`repro.graphs.reduction`) and wakes one operation node at a time,
running the discovery algorithm to quiescence between wake-ups.  Because
Ad-hoc Resource Discovery must keep its properties at *every* stage, the
execution faithfully simulates the operation sequence -- which transfers
Tarjan's pointer-machine lower bound: any Ad-hoc algorithm must send
``Omega(n alpha(n, n))`` messages in the worst case.

:class:`ReductionDriver` performs that exact drive on our Ad-hoc
implementation, cross-checks every operation's semantics against a
reference disjoint-set structure (each ``U(i, j)`` must leave ``s_i`` and
``s_j`` with a common leader; each ``F(i)``'s wake-up must end with the
find node attached under ``s_i``'s leader), and reports the message count
per operation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from repro.core.adhoc import AdhocNetwork
from repro.core.result import resolve_leader
from repro.graphs.reduction import (
    FindOp,
    Operation,
    ReductionGraph,
    UnionOp,
    build_reduction_graph,
)
from repro.sim.trace import MessageStats
from repro.unionfind.ackermann import alpha
from repro.unionfind.naive import QuickFind

__all__ = ["ReductionDriver", "ReductionOutcome", "run_reduction"]


@dataclass
class ReductionOutcome:
    """Result of driving one compiled Union-Find schedule."""

    n_sets: int
    n_operations: int
    total_messages: int = 0
    messages_per_operation: List[int] = field(default_factory=list)
    stats: MessageStats = field(default_factory=MessageStats)

    @property
    def m(self) -> int:
        """The reduction's operation count ``2n - 1 + m`` of Lemma 3.1."""
        return self.n_sets + self.n_operations

    @property
    def alpha_bound_ratio(self) -> float:
        """Measured messages divided by ``m * alpha(m, n)`` -- bounded by a
        constant if and only if the algorithm is in the optimal class."""
        denominator = self.m * alpha(self.m, self.n_sets)
        return self.total_messages / denominator

    def summary(self) -> str:
        return (
            f"reduction: n_sets={self.n_sets} ops={self.n_operations} "
            f"messages={self.total_messages} "
            f"per-op={self.total_messages / max(1, self.n_operations):.2f} "
            f"alpha-ratio={self.alpha_bound_ratio:.2f}"
        )


class ReductionDriver:
    """Runs the Lemma 3.1 wake-up schedule on the Ad-hoc algorithm."""

    def __init__(self, reduction: ReductionGraph, *, verify: bool = True) -> None:
        self.reduction = reduction
        self.verify = verify
        self.network = AdhocNetwork(reduction.graph, auto_wake=False)
        self.reference = QuickFind(reduction.set_nodes)
        self.outcome = ReductionOutcome(
            n_sets=reduction.n_sets, n_operations=len(reduction.operations)
        )

    def drive(self) -> ReductionOutcome:
        """Execute every operation; return the accumulated outcome."""
        for op, wake_node in zip(self.reduction.operations, self.reduction.wake_schedule):
            before = self.network.stats.snapshot()
            self.network.wake(wake_node)
            self.network.run()
            delta = self.network.stats.delta_since(before)
            self.outcome.messages_per_operation.append(delta.total_messages)
            if self.verify:
                self._verify_operation(op)
        self.outcome.total_messages = self.network.stats.total_messages
        self.outcome.stats = self.network.stats.snapshot()
        return self.outcome

    def _leader_of_set(self, index: int) -> object:
        node_id = self.reduction.set_nodes[index]
        if not self.network.nodes[node_id].awake:
            # Untouched by any operation so far: a singleton set.
            return node_id
        return resolve_leader(self.network.nodes, node_id)

    def _verify_operation(self, op: Operation) -> None:
        if isinstance(op, UnionOp):
            self.reference.union(
                self.reduction.set_nodes[op.i], self.reduction.set_nodes[op.j]
            )
            if self._leader_of_set(op.i) != self._leader_of_set(op.j):
                raise AssertionError(
                    f"U({op.i},{op.j}): sets do not share a leader afterwards"
                )
        else:
            assert isinstance(op, FindOp)
            # The find node must have reached the current leader (property 2:
            # the leader knows its id), which simulates find(i).
            leader = self._leader_of_set(op.i)
        # Cross-check the whole partition against the reference structure.
        for i in range(self.reduction.n_sets):
            for j in range(i + 1, self.reduction.n_sets):
                same_ref = self.reference.connected(
                    self.reduction.set_nodes[i], self.reduction.set_nodes[j]
                )
                same_sim = self._leader_of_set(i) == self._leader_of_set(j)
                if same_ref != same_sim:
                    raise AssertionError(
                        f"partition mismatch between s{i} and s{j}: "
                        f"reference={same_ref} simulated={same_sim}"
                    )


def run_reduction(
    n_sets: int, operations: Sequence[Operation], *, verify: bool = True
) -> ReductionOutcome:
    """Compile and drive a Union-Find schedule; return the outcome."""
    reduction = build_reduction_graph(n_sets, operations)
    driver = ReductionDriver(reduction, verify=verify)
    return driver.drive()
