"""The paper's two lower-bound constructions, made executable."""

from repro.lowerbounds.tree_adversary import (
    TreeAdversary,
    TreeLowerBoundOutcome,
    run_tree_lower_bound,
    theorem_1_floor,
)
from repro.lowerbounds.unionfind_reduction import (
    ReductionDriver,
    ReductionOutcome,
    run_reduction,
)

__all__ = [
    "TreeAdversary",
    "TreeLowerBoundOutcome",
    "run_tree_lower_bound",
    "theorem_1_floor",
    "ReductionDriver",
    "ReductionOutcome",
    "run_reduction",
]
