"""Theorem 1's adversarial execution on complete binary trees.

The proof considers ``T(i)``: a complete rooted binary tree with
``n = 2**i - 1`` nodes and all edges directed toward the leaves.  The
adversary "stalls all messages sent by the root until both subtrees have no
more messages to send", recursively inside each subtree.  Under that
schedule every algorithm is forced to solve each subtree in isolation
(nothing below a subtree root can learn about the rest of the tree until
the root speaks), and the leader-announcement obligation then costs the
extra ``Omega(n log n)`` re-notifications.

:class:`TreeAdversary` realises exactly that schedule: deliveries whose
*sender* is an internal tree node are blocked until the adversary releases
that node, and nodes are released strictly deepest-first, each time the
whole system is otherwise quiescent -- which is precisely "both subtrees
have no more messages to send".  (Edges point away from the root, so no
message ever travels *into* a blocked subtree root; blocking senders is
the complete schedule.)

:func:`run_tree_lower_bound` runs the Generic algorithm under this
adversary and reports the measured message count next to the theorem's
``i * 2**(i-1) - 2`` floor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Set

from repro.core.generic import run_generic
from repro.core.result import DiscoveryResult
from repro.graphs.generators import complete_binary_tree
from repro.sim.events import DeliverToken, Token
from repro.sim.network import Simulator
from repro.sim.scheduler import AdversarialScheduler, Adversary

__all__ = ["TreeAdversary", "TreeLowerBoundOutcome", "run_tree_lower_bound", "theorem_1_floor"]


def theorem_1_floor(height: int) -> int:
    """Theorem 1's bound for ``T(height)``: at least ``i * 2**(i-1) - 2``
    messages (which is ``>= 0.5 n log2 n - 2``)."""
    if height < 2:
        return 0
    return height * 2 ** (height - 1) - 2


class TreeAdversary(Adversary):
    """Deepest-first release of internal-node senders on ``T(height)``."""

    def __init__(self, height: int) -> None:
        if height < 1:
            raise ValueError(f"height must be >= 1, got {height}")
        self.height = height
        n = 2**height - 1
        internal = [k for k in range(n) if 2 * k + 1 < n]
        # Release order: deepest internal nodes first, the root last.
        internal.sort(key=self._depth, reverse=True)
        self._release_queue: List[int] = internal
        self.released: Set[int] = {k for k in range(n) if 2 * k + 1 >= n}
        self.stall_count = 0

    @staticmethod
    def _depth(k: int) -> int:
        return (k + 1).bit_length() - 1

    def blocks(self, token: Token, sim: Simulator) -> bool:
        return isinstance(token, DeliverToken) and token.src not in self.released

    def on_stall(self, sim: Simulator) -> bool:
        if not self._release_queue:
            return False
        self.stall_count += 1
        self.released.add(self._release_queue.pop(0))
        return True


@dataclass
class TreeLowerBoundOutcome:
    """Measured adversarial cost vs. Theorem 1's floor."""

    height: int
    n: int
    measured_messages: int
    theorem_floor: int
    result: DiscoveryResult

    @property
    def respects_floor(self) -> bool:
        return self.measured_messages >= self.theorem_floor

    def summary(self) -> str:
        return (
            f"T({self.height}): n={self.n} measured={self.measured_messages} "
            f"floor={self.theorem_floor} "
            f"ratio={self.measured_messages / max(1, self.theorem_floor):.2f}"
        )


def run_tree_lower_bound(height: int) -> TreeLowerBoundOutcome:
    """Run the Generic algorithm on ``T(height)`` under the Theorem 1
    adversary and compare against the proven floor."""
    graph = complete_binary_tree(height)
    adversary = TreeAdversary(height)
    result = run_generic(graph, scheduler=AdversarialScheduler(adversary))
    return TreeLowerBoundOutcome(
        height=height,
        n=graph.n,
        measured_messages=result.total_messages,
        theorem_floor=theorem_1_floor(height),
        result=result,
    )
