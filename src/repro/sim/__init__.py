"""Asynchronous discrete-event simulation substrate.

Implements the paper's execution model exactly: reliable per-pair FIFO
channels, unbounded adversarial delays (pluggable schedulers), asynchronous
wake-ups, and per-message-type message/bit accounting.
"""

from repro.sim.events import DeliverToken, Token, WakeToken
from repro.sim.network import (
    SimNode,
    SimulationError,
    Simulator,
    StepLimitExceeded,
    StuckExecutionError,
)
from repro.sim.scheduler import (
    AdversarialScheduler,
    Adversary,
    GlobalFifoScheduler,
    LifoScheduler,
    RandomScheduler,
    Scheduler,
)
from repro.sim.replay import RecordingScheduler, ReplayDivergence, ReplayScheduler
from repro.sim.timed import TimedScheduler
from repro.sim.trace import ExecutionTrace, MessageStats, TraceEvent, bits_for_ids

__all__ = [
    "DeliverToken",
    "WakeToken",
    "Token",
    "SimNode",
    "Simulator",
    "SimulationError",
    "StuckExecutionError",
    "StepLimitExceeded",
    "Scheduler",
    "GlobalFifoScheduler",
    "LifoScheduler",
    "RandomScheduler",
    "Adversary",
    "AdversarialScheduler",
    "TimedScheduler",
    "RecordingScheduler",
    "ReplayScheduler",
    "ReplayDivergence",
    "ExecutionTrace",
    "MessageStats",
    "TraceEvent",
    "bits_for_ids",
]
