"""Recording and replaying delivery schedules.

Asynchronous bugs are schedule bugs: once a randomized run misbehaves, you
want that *exact* interleaving back under a debugger.  Two wrappers make
any execution reproducible independent of its original scheduling policy:

* :class:`RecordingScheduler` wraps any scheduler and records the sequence
  of executed tokens;
* :class:`ReplayScheduler` replays such a recording verbatim, validating
  at every step that the protocol actually produced the token being
  replayed (a divergence means the code under test changed behaviour).

Recordings are plain lists of tokens (hashable dataclasses), trivially
serializable with ``repr``/``literal_eval`` if needed on disk.

This is how the F2/F3 findings were minimized during development, and the
tests keep the machinery honest.
"""

from __future__ import annotations

from collections import Counter, deque
from typing import Deque, Iterable, List, Optional, Sequence

from repro.sim.events import Token
from repro.sim.scheduler import Scheduler

__all__ = ["RecordingScheduler", "ReplayScheduler", "ReplayDivergence"]


class ReplayDivergence(RuntimeError):
    """The execution produced different pending steps than the recording."""


class RecordingScheduler(Scheduler):
    """Delegates to ``inner`` and records every executed token."""

    def __init__(self, inner: Scheduler) -> None:
        self.inner = inner
        self.decisions: List[Token] = []

    def push(self, token: Token) -> None:
        self.inner.push(token)

    def pop(self, sim) -> Optional[Token]:
        token = self.inner.pop(sim)
        if token is not None:
            self.decisions.append(token)
        return token

    def __len__(self) -> int:
        return len(self.inner)

    def pending(self) -> Iterable[Token]:
        return self.inner.pending()


class ReplayScheduler(Scheduler):
    """Executes a recorded token sequence, step for step.

    Every replayed token must currently be pending (pushed by the
    execution and not yet executed); anything else raises
    :class:`ReplayDivergence` with a precise description.
    """

    def __init__(self, decisions: Sequence[Token]) -> None:
        self._script: Deque[Token] = deque(decisions)
        self._pending: Counter = Counter()

    def push(self, token: Token) -> None:
        self._pending[token] += 1

    def pop(self, sim) -> Optional[Token]:
        if not self._script:
            if self._pending:
                raise ReplayDivergence(
                    f"recording exhausted but {sum(self._pending.values())} "
                    f"steps still pending (execution diverged)"
                )
            return None
        token = self._script.popleft()
        if self._pending[token] <= 0:
            raise ReplayDivergence(
                f"recorded step {token!r} is not pending "
                f"(execution diverged from the recording)"
            )
        self._pending[token] -= 1
        if self._pending[token] == 0:
            del self._pending[token]
        return token

    def __len__(self) -> int:
        return sum(self._pending.values())

    def pending(self) -> Iterable[Token]:
        return tuple(self._pending.elements())

    @property
    def remaining_script(self) -> int:
        return len(self._script)
