"""Scheduling policies for the asynchronous simulator.

The asynchronous model promises only that every message is delivered after a
*finite but unbounded* time; which pending step happens next is up to an
adversary.  A :class:`Scheduler` owns the pool of pending tokens and decides
the order.  The stock policies are:

* :class:`GlobalFifoScheduler` -- oldest pending step first.  Deterministic;
  the closest analogue of a well-behaved network.
* :class:`LifoScheduler` -- newest step first.  Deterministic; drives
  executions depth-first and tends to produce long conquest chains.
* :class:`RandomScheduler` -- uniformly random pending step, seeded.  The
  workhorse for property-based testing.
* :class:`AdversarialScheduler` -- wraps an :class:`Adversary` that may
  *block* tokens; blocked tokens are simply not eligible.  When every
  pending token is blocked the adversary is asked to release something
  (``on_stall``), which is exactly the structure of the Theorem 1 lower
  bound argument ("stall all messages sent by the root until both subtrees
  have no more messages to send").

The three stock policies expose their underlying pool (``_queue`` /
``_stack`` / ``_pool`` plus ``_rng``) as a documented-internal seam: the
compiled fast path (:mod:`repro.sim.fastcore`) appends interned channel
indices to the pool directly and inlines the corresponding pop, so
``len(scheduler)`` and quiescence detection keep working unmodified while
the per-step method-call overhead disappears.  Any rename here must update
``fastcore`` in the same change.

``pending()`` returns a *lazy view* (iterator) everywhere: the previous
contract returned a fresh tuple per call, which turned a diagnostics helper
into an O(n) allocation any time a caller used it in a loop.  Materialize
with ``list(...)`` before mutating the scheduler.
"""

from __future__ import annotations

import random
from collections import deque
from itertools import chain
from typing import TYPE_CHECKING, Deque, Iterable, Iterator, List, Optional

from repro.sim.events import Token

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.sim.network import Simulator

__all__ = [
    "Scheduler",
    "GlobalFifoScheduler",
    "LifoScheduler",
    "RandomScheduler",
    "Adversary",
    "AdversarialScheduler",
]


class Scheduler:
    """Base class: a pool of pending tokens plus a selection rule."""

    def push(self, token: Token) -> None:
        raise NotImplementedError

    def pop(self, sim: "Simulator") -> Optional[Token]:
        """Return the next token to execute, or ``None`` if none is eligible.

        Returning ``None`` while :meth:`__len__` is non-zero signals a stuck
        execution (only possible with a misbehaving adversary); the
        simulator raises in that case.
        """
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def pending(self) -> Iterable[Token]:
        """Iterate over pending tokens (diagnostics only).

        Returns a lazy view over the live pool -- do not push/pop while
        consuming it; ``list(scheduler.pending())`` first if you need a
        stable snapshot.
        """
        raise NotImplementedError


class GlobalFifoScheduler(Scheduler):
    """Execute pending steps in the order they became pending."""

    def __init__(self) -> None:
        self._queue: Deque[Token] = deque()

    def push(self, token: Token) -> None:
        self._queue.append(token)

    def pop(self, sim: "Simulator") -> Optional[Token]:
        if not self._queue:
            return None
        return self._queue.popleft()

    def __len__(self) -> int:
        return len(self._queue)

    def pending(self) -> Iterator[Token]:
        return iter(self._queue)


class LifoScheduler(Scheduler):
    """Execute the most recently created pending step first."""

    def __init__(self) -> None:
        self._stack: List[Token] = []

    def push(self, token: Token) -> None:
        self._stack.append(token)

    def pop(self, sim: "Simulator") -> Optional[Token]:
        if not self._stack:
            return None
        return self._stack.pop()

    def __len__(self) -> int:
        return len(self._stack)

    def pending(self) -> Iterator[Token]:
        return iter(self._stack)


class RandomScheduler(Scheduler):
    """Uniformly random eligible step, deterministic under ``seed``."""

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)
        self._pool: List[Token] = []

    def push(self, token: Token) -> None:
        self._pool.append(token)

    def pop(self, sim: "Simulator") -> Optional[Token]:
        if not self._pool:
            return None
        index = self._rng.randrange(len(self._pool))
        token = self._pool[index]
        # O(1) removal: swap with the tail.
        self._pool[index] = self._pool[-1]
        self._pool.pop()
        return token

    def __len__(self) -> int:
        return len(self._pool)

    def pending(self) -> Iterator[Token]:
        return iter(self._pool)


class Adversary:
    """Message-delay adversary interface.

    ``blocks(token, sim)`` decides whether a pending step may run now;
    ``on_stall(sim)`` is invoked when *every* pending step is blocked and
    must unblock something (return ``True``) or concede (return ``False``,
    which the simulator treats as an adversary bug and raises).
    """

    def blocks(self, token: Token, sim: "Simulator") -> bool:
        raise NotImplementedError

    def on_stall(self, sim: "Simulator") -> bool:
        raise NotImplementedError


class AdversarialScheduler(Scheduler):
    """FIFO among tokens the adversary has not blocked.

    Amortized O(1) per pop: pending tokens live in three push-ordered
    queues -- newly pushed (``_incoming``), known-eligible (``_eligible``)
    and known-blocked (``_blocked``) -- instead of one queue rescanned
    front-to-back on every pop (the old ``_select``, which made the tree
    adversary of the Theorem 1 experiment quadratic: its blocked root
    tokens sat at the head of the queue and were re-inspected on every
    single step).

    Each pushed token is classified once on the pop after its arrival;
    eligible tokens are re-checked once more when actually returned, so an
    adversary that *re-blocks* a previously eligible token stays correct
    (the token migrates to ``_blocked``).  Only when nothing is eligible is
    the blocked queue rescanned -- first without consulting ``on_stall``
    (a state-dependent adversary may have unblocked tokens as a side effect
    of protocol progress), then, if every pending token is still blocked,
    ``on_stall`` fires exactly as under the old scan-per-pop contract, so
    stall counts observed by adversaries are unchanged.

    Selection order matches the old linear scan for *release-only*
    adversaries (``blocks`` answers only loosen over time, e.g.
    :class:`~repro.lowerbounds.tree_adversary.TreeAdversary`): tokens
    become eligible in push order and are served FIFO.  An adversary that
    re-blocks tokens may observe a different (still valid) serving order
    among eligible tokens; the model only promises *some* fair order.
    """

    def __init__(self, adversary: Adversary) -> None:
        self.adversary = adversary
        self._incoming: Deque[Token] = deque()
        self._eligible: Deque[Token] = deque()
        self._blocked: Deque[Token] = deque()

    def push(self, token: Token) -> None:
        self._incoming.append(token)

    def pop(self, sim: "Simulator") -> Optional[Token]:
        blocks = self.adversary.blocks
        incoming = self._incoming
        eligible = self._eligible
        blocked = self._blocked
        while True:
            while incoming:
                token = incoming.popleft()
                if blocks(token, sim):
                    blocked.append(token)
                else:
                    eligible.append(token)
            while eligible:
                token = eligible.popleft()
                if blocks(token, sim):  # re-blocked since classification
                    blocked.append(token)
                    continue
                return token
            if not blocked:
                return None
            # Everything pending is blocked *per its last classification*.
            # Re-validate before declaring a stall: protocol progress since
            # then may have unblocked tokens without any on_stall call.
            released = False
            for _ in range(len(blocked)):
                token = blocked.popleft()
                if blocks(token, sim):
                    blocked.append(token)
                else:
                    eligible.append(token)
                    released = True
            if released:
                continue
            if not self.adversary.on_stall(sim):
                return None
            # The adversary claims to have released something; loop to
            # reclassify the blocked queue and find it.

    def __len__(self) -> int:
        return len(self._incoming) + len(self._eligible) + len(self._blocked)

    def pending(self) -> Iterator[Token]:
        return chain(self._eligible, self._blocked, self._incoming)
