"""Scheduling policies for the asynchronous simulator.

The asynchronous model promises only that every message is delivered after a
*finite but unbounded* time; which pending step happens next is up to an
adversary.  A :class:`Scheduler` owns the pool of pending tokens and decides
the order.  The stock policies are:

* :class:`GlobalFifoScheduler` -- oldest pending step first.  Deterministic;
  the closest analogue of a well-behaved network.
* :class:`LifoScheduler` -- newest step first.  Deterministic; drives
  executions depth-first and tends to produce long conquest chains.
* :class:`RandomScheduler` -- uniformly random pending step, seeded.  The
  workhorse for property-based testing.
* :class:`AdversarialScheduler` -- wraps an :class:`Adversary` that may
  *block* tokens; blocked tokens are simply not eligible.  When every
  pending token is blocked the adversary is asked to release something
  (``on_stall``), which is exactly the structure of the Theorem 1 lower
  bound argument ("stall all messages sent by the root until both subtrees
  have no more messages to send").
"""

from __future__ import annotations

import random
from collections import deque
from typing import TYPE_CHECKING, Deque, Iterable, List, Optional

from repro.sim.events import Token

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.sim.network import Simulator

__all__ = [
    "Scheduler",
    "GlobalFifoScheduler",
    "LifoScheduler",
    "RandomScheduler",
    "Adversary",
    "AdversarialScheduler",
]


class Scheduler:
    """Base class: a pool of pending tokens plus a selection rule."""

    def push(self, token: Token) -> None:
        raise NotImplementedError

    def pop(self, sim: "Simulator") -> Optional[Token]:
        """Return the next token to execute, or ``None`` if none is eligible.

        Returning ``None`` while :meth:`__len__` is non-zero signals a stuck
        execution (only possible with a misbehaving adversary); the
        simulator raises in that case.
        """
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def pending(self) -> Iterable[Token]:
        """Iterate over pending tokens (diagnostics only)."""
        raise NotImplementedError


class GlobalFifoScheduler(Scheduler):
    """Execute pending steps in the order they became pending."""

    def __init__(self) -> None:
        self._queue: Deque[Token] = deque()

    def push(self, token: Token) -> None:
        self._queue.append(token)

    def pop(self, sim: "Simulator") -> Optional[Token]:
        if not self._queue:
            return None
        return self._queue.popleft()

    def __len__(self) -> int:
        return len(self._queue)

    def pending(self) -> Iterable[Token]:
        return tuple(self._queue)


class LifoScheduler(Scheduler):
    """Execute the most recently created pending step first."""

    def __init__(self) -> None:
        self._stack: List[Token] = []

    def push(self, token: Token) -> None:
        self._stack.append(token)

    def pop(self, sim: "Simulator") -> Optional[Token]:
        if not self._stack:
            return None
        return self._stack.pop()

    def __len__(self) -> int:
        return len(self._stack)

    def pending(self) -> Iterable[Token]:
        return tuple(self._stack)


class RandomScheduler(Scheduler):
    """Uniformly random eligible step, deterministic under ``seed``."""

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)
        self._pool: List[Token] = []

    def push(self, token: Token) -> None:
        self._pool.append(token)

    def pop(self, sim: "Simulator") -> Optional[Token]:
        if not self._pool:
            return None
        index = self._rng.randrange(len(self._pool))
        token = self._pool[index]
        # O(1) removal: swap with the tail.
        self._pool[index] = self._pool[-1]
        self._pool.pop()
        return token

    def __len__(self) -> int:
        return len(self._pool)

    def pending(self) -> Iterable[Token]:
        return tuple(self._pool)


class Adversary:
    """Message-delay adversary interface.

    ``blocks(token, sim)`` decides whether a pending step may run now;
    ``on_stall(sim)`` is invoked when *every* pending step is blocked and
    must unblock something (return ``True``) or concede (return ``False``,
    which the simulator treats as an adversary bug and raises).
    """

    def blocks(self, token: Token, sim: "Simulator") -> bool:
        raise NotImplementedError

    def on_stall(self, sim: "Simulator") -> bool:
        raise NotImplementedError


class AdversarialScheduler(Scheduler):
    """FIFO among tokens the adversary has not blocked."""

    def __init__(self, adversary: Adversary) -> None:
        self.adversary = adversary
        self._queue: Deque[Token] = deque()

    def push(self, token: Token) -> None:
        self._queue.append(token)

    def pop(self, sim: "Simulator") -> Optional[Token]:
        while self._queue:
            token = self._select(sim)
            if token is not None:
                return token
            if not self.adversary.on_stall(sim):
                return None
        return None

    def _select(self, sim: "Simulator") -> Optional[Token]:
        for index, token in enumerate(self._queue):
            if not self.adversary.blocks(token, sim):
                del self._queue[index]
                return token
        return None

    def __len__(self) -> int:
        return len(self._queue)

    def pending(self) -> Iterable[Token]:
        return tuple(self._queue)
