"""Virtual-time scheduling: measuring *time* complexity in the async model.

The standard time measure for asynchronous algorithms normalizes the
maximum message delay to one unit and computation to zero: an execution's
duration is the completion timestamp when every message takes (at most)
one unit.  :class:`TimedScheduler` realises that measure -- every message
is stamped ``now + latency`` at send time and deliveries happen in
timestamp order -- so ``scheduler.now`` at quiescence *is* the paper's
time complexity of the run.

Section 7 of the paper discusses exactly this quantity: in the wake-up
model where broadcast takes ``T`` time, Kutten-Peleg achieve
``O(T + log n)`` while this paper's algorithm takes ``O(T + n)`` (its
conquests serialize along the ``(phase, id)`` order).  EXP-15 measures
that linear-time behaviour against the baselines' round counts.

``latency`` may be a constant or a callable ``(src, dst) -> float`` for
heterogeneous/jittered networks; correctness of the protocols is latency-
independent (the safety tests run under it too), only the clock changes.
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, Hashable, Iterable, Optional, Tuple, Union

from repro.sim.events import DeliverToken, Token, WakeToken
from repro.sim.scheduler import Scheduler

NodeId = Hashable
Latency = Union[float, Callable[[NodeId, NodeId], float]]

__all__ = ["TimedScheduler"]


class TimedScheduler(Scheduler):
    """Deliver messages in virtual-time order.

    Parameters
    ----------
    latency:
        Per-message delay: a positive constant (default 1.0 -- the
        normalized asynchronous time measure) or a callable
        ``(src, dst) -> float``.
    wake_times:
        Optional spontaneous wake-up times per node (default: all 0.0).
        Setting a single late waker models the paper's wake-up parameter
        ``T``.
    """

    def __init__(
        self,
        latency: Latency = 1.0,
        *,
        wake_times: Optional[Dict[NodeId, float]] = None,
    ) -> None:
        if not callable(latency) and latency <= 0:
            raise ValueError(f"latency must be positive, got {latency}")
        self._latency = latency
        self._wake_times = dict(wake_times or {})
        self._heap: list = []  # (time, seq, token)
        self._seq = 0
        #: the virtual clock: timestamp of the most recently executed step.
        self.now = 0.0

    def _delay(self, src: NodeId, dst: NodeId) -> float:
        if callable(self._latency):
            delay = self._latency(src, dst)
        else:
            delay = self._latency
        if delay <= 0:
            raise ValueError(f"latency for {src!r}->{dst!r} must be positive")
        return delay

    def push(self, token: Token) -> None:
        if isinstance(token, WakeToken):
            # Never in the past: a wake-up pushed mid-run (a Section 6
            # dynamic join) is due at its configured time or *now*,
            # whichever is later -- open-ended runs keep the clock
            # monotone.  Static setups push all wakes at now == 0.0, where
            # this reduces to the configured time exactly.
            at = max(self.now, self._wake_times.get(token.node, 0.0))
        elif isinstance(token, DeliverToken):
            at = self.now + self._delay(token.src, token.dst)
        else:
            raise TypeError(
                f"TimedScheduler orders wake-ups and deliveries only; "
                f"{type(token).__name__} carries a step-counter deadline, "
                "which has no meaning on the unit-latency clock"
            )
        self._seq += 1
        heapq.heappush(self._heap, (at, self._seq, token))

    def pop(self, sim) -> Optional[Token]:
        if not self._heap:
            return None
        at, _seq, token = heapq.heappop(self._heap)
        self.now = max(self.now, at)
        return token

    def __len__(self) -> int:
        return len(self._heap)

    def pending(self) -> Iterable[Token]:
        return tuple(token for _at, _seq, token in self._heap)
