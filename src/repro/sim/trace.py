"""Message and bit accounting plus optional execution traces.

The paper's complexity measures are (a) total messages and (b) total bits
sent until the steady state is reached; Section 5 additionally bounds each
*message type* separately (Lemmas 5.5-5.10).  :class:`MessageStats` keeps
per-type counters so those lemmas can be checked exactly after every run.

Bit accounting follows the model's convention: a node id costs
``Theta(log n)`` bits.  Every protocol message declares its payload as a
number of ids plus a constant-size header via ``bit_size(id_bits)``; the
simulator charges that at send time with ``id_bits = ceil(log2 n)``.
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Optional, Tuple

__all__ = [
    "MessageStats",
    "TraceEvent",
    "ExecutionTrace",
    "bits_for_ids",
    "payload_digest",
]

#: Constant header charge per message (type tag + framing), in bits.  The
#: asymptotic analysis only needs it to be Theta(1).
HEADER_BITS = 8


def bits_for_ids(n_ids: int, id_bits: int, *, extra_ints: int = 0) -> int:
    """Standard message cost: ``n_ids`` node ids, ``extra_ints`` counters
    (each an O(log n)-bit integer), plus the constant header.

    ``id_bits`` is clamped to at least 1: an id always occupies a bit on
    the wire, even in the degenerate ``n = 1`` system where
    ``ceil(log2 n) = 0`` -- without the clamp every message would be
    charged header-only bits and the bit-complexity tables would silently
    undercount at tiny ``n`` (the :func:`repro.core.runner.id_bits_for`
    helper applies the same floor at graph-build time).
    """
    return HEADER_BITS + (n_ids + extra_ints) * max(1, id_bits)


def _canonical(value: Any) -> str:
    """Deterministic rendering for digests: unordered collections are
    sorted, dataclasses render field-by-field, so the result is stable
    across processes and hash-randomization seeds (plain ``repr`` of a
    frozenset is not)."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = ",".join(
            f"{f.name}={_canonical(getattr(value, f.name))}"
            for f in dataclasses.fields(value)
        )
        return f"{type(value).__name__}({fields})"
    if isinstance(value, (set, frozenset)):
        return "{" + ",".join(sorted(_canonical(v) for v in value)) + "}"
    if isinstance(value, dict):
        items = sorted(f"{_canonical(k)}:{_canonical(v)}" for k, v in value.items())
        return "{" + ",".join(items) + "}"
    if isinstance(value, (list, tuple)):
        return "[" + ",".join(_canonical(v) for v in value) + "]"
    return repr(value)


def payload_digest(message: Any) -> str:
    """Stable short digest of a message's type and full payload.

    This is what distinguishes two deliveries that agree on every envelope
    field (step, channel, ``msg_type``) but carry different content --
    exactly the difference :meth:`ExecutionTrace.fingerprint` must see for
    determinism tests to mean anything.
    """
    rendered = f"{getattr(message, 'msg_type', None)}|{_canonical(message)}"
    return hashlib.sha256(rendered.encode()).hexdigest()[:16]


@dataclass
class MessageStats:
    """Per-type message and bit counters for one execution."""

    messages_by_type: Dict[str, int] = field(default_factory=dict)
    bits_by_type: Dict[str, int] = field(default_factory=dict)

    def record(self, msg_type: str, bits: int) -> None:
        """Charge one message of ``msg_type`` costing ``bits`` bits."""
        self.messages_by_type[msg_type] = self.messages_by_type.get(msg_type, 0) + 1
        self.bits_by_type[msg_type] = self.bits_by_type.get(msg_type, 0) + bits

    def record_bulk(self, counts: Dict[str, int], bits: Dict[str, int]) -> None:
        """Fold pre-aggregated per-type counters into this stats object.

        The fast path (:mod:`repro.sim.fastcore`) accounts lazily: it keeps
        local ``{msg_type: n}`` / ``{msg_type: bits}`` dicts during the run
        and folds them in exactly once on exit (including the exceptional
        exits), so per-message accounting costs two dict bumps instead of a
        method call.  Observationally identical to per-message
        :meth:`record` at every point where callers can look -- readers of
        ``stats`` either run between :meth:`Simulator.run` calls or sit on
        the obs seam, which disables the fast path entirely.
        """
        mbt = self.messages_by_type
        for msg_type, count in counts.items():
            mbt[msg_type] = mbt.get(msg_type, 0) + count
        bbt = self.bits_by_type
        for msg_type, total in bits.items():
            bbt[msg_type] = bbt.get(msg_type, 0) + total

    def record_indexed(self, msg_types, counts, bits, order) -> None:
        """Fold flat per-tag arrays from the array core into this object.

        The array-backed protocol core (:mod:`repro.core.arraystate`)
        accounts into lists indexed by wire tag -- two ``list[int]`` bumps
        per send instead of two dict hits.  ``order`` lists the tags in
        first-send order, so the folded dicts grow their keys in exactly
        the sequence per-message :meth:`record` would have produced (the
        differential suite compares the dicts, and dict order is part of
        ``repr`` equality for human eyes even if not for ``==``).
        """
        mbt = self.messages_by_type
        bbt = self.bits_by_type
        for tag in order:
            name = msg_types[tag]
            mbt[name] = mbt.get(name, 0) + counts[tag]
            bbt[name] = bbt.get(name, 0) + bits[tag]

    @property
    def total_messages(self) -> int:
        return sum(self.messages_by_type.values())

    @property
    def total_bits(self) -> int:
        return sum(self.bits_by_type.values())

    def messages(self, *msg_types: str) -> int:
        """Total messages across the given types (0 for absent types)."""
        return sum(self.messages_by_type.get(t, 0) for t in msg_types)

    def bits(self, *msg_types: str) -> int:
        """Total bits across the given types."""
        return sum(self.bits_by_type.get(t, 0) for t in msg_types)

    def merged_with(self, other: "MessageStats") -> "MessageStats":
        """Return a new stats object summing self and other."""
        merged = MessageStats(
            dict(self.messages_by_type), dict(self.bits_by_type)
        )
        for msg_type, count in other.messages_by_type.items():
            merged.messages_by_type[msg_type] = (
                merged.messages_by_type.get(msg_type, 0) + count
            )
        for msg_type, bits in other.bits_by_type.items():
            merged.bits_by_type[msg_type] = merged.bits_by_type.get(msg_type, 0) + bits
        return merged

    def snapshot(self) -> "MessageStats":
        """Return an independent copy (for before/after deltas)."""
        return MessageStats(dict(self.messages_by_type), dict(self.bits_by_type))

    def delta_since(self, earlier: "MessageStats") -> "MessageStats":
        """Return the counts accumulated since ``earlier`` was snapshot."""
        delta = MessageStats()
        for msg_type, count in self.messages_by_type.items():
            diff = count - earlier.messages_by_type.get(msg_type, 0)
            if diff:
                delta.messages_by_type[msg_type] = diff
        for msg_type, bits in self.bits_by_type.items():
            diff = bits - earlier.bits_by_type.get(msg_type, 0)
            if diff:
                delta.bits_by_type[msg_type] = diff
        return delta

    def __repr__(self) -> str:
        return (
            f"MessageStats(messages={self.total_messages}, "
            f"bits={self.total_bits}, types={sorted(self.messages_by_type)})"
        )


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One delivered message or wake-up in an execution trace.

    ``detail`` carries the delivered message object (``None`` for
    wake-ups); it participates in :meth:`as_tuple` as a stable content
    digest, so fingerprints distinguish executions that differ only in
    message payloads -- the regression behind this: envelope-only tuples
    let payload-corrupting bugs pass determinism tests vacuously.
    """

    step: int
    kind: str  # "deliver" or "wake"
    src: Optional[Hashable]
    dst: Hashable
    msg_type: Optional[str]
    detail: Any = None

    def as_tuple(self) -> Tuple:
        digest = None if self.detail is None else payload_digest(self.detail)
        return (self.step, self.kind, self.src, self.dst, self.msg_type, digest)


class ExecutionTrace:
    """An append-only log of scheduler decisions.

    Used by determinism tests (same seed => identical trace) and by the
    lower-bound experiments to inspect adversarial executions.
    """

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []

    def append(self, event: TraceEvent) -> None:
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def fingerprint(self) -> Tuple[Tuple, ...]:
        """A hashable summary for exact-equality comparison."""
        return tuple(event.as_tuple() for event in self.events)
