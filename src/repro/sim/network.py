"""The asynchronous message-passing simulator.

This is the paper's execution model made executable:

* reliable point-to-point channels with **FIFO order per ordered pair**
  (Section 1.2's assumption);
* **finite but unbounded delays**: any pending delivery or wake-up may be
  scheduled next, under the control of a :class:`~repro.sim.scheduler.Scheduler`;
* **no global start**: nodes sleep until either their spontaneous wake-up
  token fires or a message reaches them (messages wake sleeping nodes, the
  "wake-up nearby neighbors" rule);
* **exact accounting** of messages and bits by type, which is what all the
  theorems bound.

Protocol nodes subclass :class:`SimNode` and implement ``on_wake`` and
``on_message``.  Handlers run atomically: they may send any number of
messages, which become pending deliveries.  The simulator runs until
*quiescence* -- no pending wake-ups and no in-flight messages -- which is
precisely the steady state of the problem definition's liveness requirement
(property 4), so "run to quiescence, then check properties" is the faithful
evaluation procedure.
"""

from __future__ import annotations

import random as _random
from collections import deque
from typing import Any, Callable, Deque, Dict, Hashable, List, Optional, Tuple

from repro.sim.events import DeliverToken, Token, WakeToken
from repro.sim.scheduler import GlobalFifoScheduler, Scheduler
from repro.sim.trace import ExecutionTrace, MessageStats, TraceEvent

__all__ = [
    "SimNode",
    "Simulator",
    "SimulationError",
    "StuckExecutionError",
    "StepLimitExceeded",
]


class SimulationError(RuntimeError):
    """Base class for simulator failures."""


class StuckExecutionError(SimulationError):
    """Pending steps exist but the scheduler refuses to run any of them."""


class StepLimitExceeded(SimulationError):
    """The execution did not quiesce within the step budget."""


class SimNode:
    """Base class for protocol participants.

    Subclasses implement :meth:`on_wake` (local initialization + first
    actions) and :meth:`on_message`.  The :meth:`send` helper hands messages
    to the simulator; sending to oneself is a protocol bug (the paper's
    algorithms short-circuit self-interactions locally) and raises.
    """

    def __init__(self, node_id: Hashable) -> None:
        self.node_id = node_id
        self.awake = False
        self._sim: Optional["Simulator"] = None

    # -- wiring ---------------------------------------------------------
    def bind(self, sim: "Simulator") -> None:
        if self._sim is not None and self._sim is not sim:
            raise SimulationError(f"node {self.node_id!r} already bound")
        self._sim = sim

    @property
    def sim(self) -> "Simulator":
        if self._sim is None:
            raise SimulationError(f"node {self.node_id!r} is not bound to a simulator")
        return self._sim

    # -- actions --------------------------------------------------------
    def send(self, dst: Hashable, message: Any) -> None:
        """Send ``message`` to ``dst`` over the FIFO channel (self, dst)."""
        if dst == self.node_id:
            raise SimulationError(
                f"node {self.node_id!r} tried to message itself with "
                f"{getattr(message, 'msg_type', message)!r}; self-interactions "
                "must be simulated internally (Section 4.1)"
            )
        self.sim.transmit(self.node_id, dst, message)

    # -- handlers -------------------------------------------------------
    def on_wake(self) -> None:  # pragma: no cover - interface default
        """Called exactly once, before the node's first action."""

    def on_message(self, sender: Hashable, message: Any) -> None:
        raise NotImplementedError


class Simulator:
    """Asynchronous reliable-FIFO message-passing system.

    Parameters
    ----------
    scheduler:
        Delivery-order policy; defaults to :class:`GlobalFifoScheduler`.
    id_bits:
        Bits charged per node id in bit accounting (``ceil(log2 n)`` for an
        ``n``-node system; runners compute this from the graph).
    keep_trace:
        Record every executed step in :attr:`trace` (costs memory; default
        off).
    """

    def __init__(
        self,
        scheduler: Optional[Scheduler] = None,
        *,
        id_bits: int = 32,
        keep_trace: bool = False,
        channel_discipline: str = "fifo",
        channel_seed: int = 0,
        duplicate_probability: float = 0.0,
    ) -> None:
        if id_bits < 1:
            raise ValueError(f"id_bits must be >= 1, got {id_bits}")
        if channel_discipline not in ("fifo", "random"):
            raise ValueError(
                f"channel_discipline must be 'fifo' or 'random', "
                f"got {channel_discipline!r}"
            )
        if not 0.0 <= duplicate_probability <= 1.0:
            raise ValueError(
                f"duplicate_probability must be in [0, 1], "
                f"got {duplicate_probability}"
            )
        # Explicit None check: schedulers define __len__, so an empty one is
        # falsy and ``scheduler or default`` would silently discard it.
        self.scheduler: Scheduler = (
            scheduler if scheduler is not None else GlobalFifoScheduler()
        )
        self.id_bits = id_bits
        self.nodes: Dict[Hashable, SimNode] = {}
        self._channels: Dict[Tuple[Hashable, Hashable], Deque[Any]] = {}
        self.stats = MessageStats()
        self.steps = 0
        self.trace: Optional[ExecutionTrace] = ExecutionTrace() if keep_trace else None
        self._send_observers: List[Callable[[Hashable, Hashable, Any], None]] = []
        #: "fifo" is the paper's model (Section 1.2); "random" is the ABL-3
        #: ablation -- each delivery takes a uniformly random pending
        #: message from the channel instead of the oldest.
        self.channel_discipline = channel_discipline
        self._channel_rng = _random.Random(channel_seed)
        #: fault injection: probability that a sent message is delivered
        #: twice.  The model assumes reliable exactly-once delivery; this
        #: knob exists to *demonstrate* that assumption is load-bearing
        #: (finding F7) -- unlike FIFO order (finding F6), which is not.
        self.duplicate_probability = duplicate_probability

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def add_node(self, node: SimNode) -> None:
        if node.node_id in self.nodes:
            raise ValueError(f"duplicate node id {node.node_id!r}")
        node.bind(self)
        self.nodes[node.node_id] = node

    def schedule_wake(self, node_id: Hashable) -> None:
        """Make a spontaneous wake-up of ``node_id`` a pending step."""
        if node_id not in self.nodes:
            raise KeyError(f"unknown node {node_id!r}")
        self.scheduler.push(WakeToken(node_id))

    def add_send_observer(self, observer: Callable[[Hashable, Hashable, Any], None]) -> None:
        """Register a callback invoked on every transmit (testing hook)."""
        self._send_observers.append(observer)

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def transmit(self, src: Hashable, dst: Hashable, message: Any) -> None:
        """Enqueue a message; charged to stats immediately (it was *sent*)."""
        if dst not in self.nodes:
            raise KeyError(f"message to unknown node {dst!r} from {src!r}")
        msg_type = getattr(message, "msg_type", None)
        if msg_type is None:
            raise TypeError(f"message {message!r} lacks a msg_type")
        bits = message.bit_size(self.id_bits)
        self.stats.record(msg_type, bits)
        channel = self._channels.setdefault((src, dst), deque())
        channel.append(message)
        self.scheduler.push(DeliverToken(src, dst))
        if (
            self.duplicate_probability > 0.0
            and self._channel_rng.random() < self.duplicate_probability
        ):
            # Fault: the network delivers a second copy (not re-charged to
            # stats -- the sender sent once).
            channel.append(message)
            self.scheduler.push(DeliverToken(src, dst))
        for observer in self._send_observers:
            observer(src, dst, message)

    def in_flight(self) -> int:
        """Number of sent-but-undelivered messages."""
        return sum(len(q) for q in self._channels.values())

    def channel_backlog(self, src: Hashable, dst: Hashable) -> int:
        """Pending messages on one ordered channel (diagnostics)."""
        return len(self._channels.get((src, dst), ()))

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    @property
    def is_quiescent(self) -> bool:
        return len(self.scheduler) == 0

    def step(self) -> bool:
        """Execute one pending step; return ``False`` when quiescent."""
        token = self.scheduler.pop(self)
        if token is None:
            if len(self.scheduler) > 0:
                raise StuckExecutionError(
                    f"{len(self.scheduler)} pending steps but none eligible"
                )
            return False
        self.steps += 1
        if isinstance(token, WakeToken):
            self._execute_wake(token)
        else:
            self._execute_deliver(token)
        return True

    def run(self, max_steps: Optional[int] = None) -> int:
        """Run to quiescence; return the number of steps executed.

        Raises :class:`StepLimitExceeded` if ``max_steps`` new steps did not
        reach quiescence -- the guard that turns a protocol livelock into a
        test failure instead of a hang.
        """
        executed = 0
        while self.step():
            executed += 1
            if max_steps is not None and executed > max_steps:
                raise StepLimitExceeded(
                    f"no quiescence within {max_steps} steps; "
                    f"{self.in_flight()} messages still in flight"
                )
        return executed

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _execute_wake(self, token: WakeToken) -> None:
        node = self.nodes[token.node]
        if node.awake:
            self._record(TraceEvent(self.steps, "wake-noop", None, token.node, None))
            return
        node.awake = True
        self._record(TraceEvent(self.steps, "wake", None, token.node, None))
        node.on_wake()

    def _execute_deliver(self, token: DeliverToken) -> None:
        channel = self._channels.get((token.src, token.dst))
        if not channel:
            raise SimulationError(
                f"deliver token for empty channel {token.src!r} -> {token.dst!r}"
            )
        if self.channel_discipline == "fifo" or len(channel) == 1:
            message = channel.popleft()
        else:
            index = self._channel_rng.randrange(len(channel))
            message = channel[index]
            del channel[index]
        node = self.nodes[token.dst]
        if not node.awake:
            # Messages wake sleeping nodes (Section 1.2): initialize first.
            node.awake = True
            self._record(TraceEvent(self.steps, "wake", None, token.dst, None))
            node.on_wake()
        self._record(
            TraceEvent(
                self.steps,
                "deliver",
                token.src,
                token.dst,
                getattr(message, "msg_type", None),
            )
        )
        node.on_message(token.src, message)

    def _record(self, event: TraceEvent) -> None:
        if self.trace is not None:
            self.trace.append(event)
