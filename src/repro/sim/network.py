"""The asynchronous message-passing simulator.

This is the paper's execution model made executable:

* reliable point-to-point channels with **FIFO order per ordered pair**
  (Section 1.2's assumption);
* **finite but unbounded delays**: any pending delivery or wake-up may be
  scheduled next, under the control of a :class:`~repro.sim.scheduler.Scheduler`;
* **no global start**: nodes sleep until either their spontaneous wake-up
  token fires or a message reaches them (messages wake sleeping nodes, the
  "wake-up nearby neighbors" rule);
* **exact accounting** of messages and bits by type, which is what all the
  theorems bound.

Protocol nodes subclass :class:`SimNode` and implement ``on_wake`` and
``on_message``.  Handlers run atomically: they may send any number of
messages, which become pending deliveries.  The simulator runs until
*quiescence* -- no pending wake-ups and no in-flight messages -- which is
precisely the steady state of the problem definition's liveness requirement
(property 4), so "run to quiescence, then check properties" is the faithful
evaluation procedure.
"""

from __future__ import annotations

import random as _random
import warnings
from collections import deque
from typing import Any, Callable, Deque, Dict, Hashable, List, Optional, Tuple

from repro.obs.events import Recorder, RunEvent
from repro.sim.events import DeliverToken, LifecycleToken, TimerToken, Token, WakeToken
from repro.sim.scheduler import GlobalFifoScheduler, Scheduler
from repro.sim.trace import ExecutionTrace, MessageStats, TraceEvent

__all__ = [
    "SimNode",
    "Simulator",
    "ChannelInterceptor",
    "DELIVER",
    "DROP",
    "DEFER",
    "SimulationError",
    "StuckExecutionError",
    "StepLimitExceeded",
]

#: Verdicts a :class:`ChannelInterceptor` may return for a pending delivery.
DELIVER, DROP, DEFER = "deliver", "drop", "defer"


class ChannelInterceptor:
    """Interception points the simulator offers to a fault layer.

    The simulator consults the interceptor (its ``faults`` parameter) at
    every transport decision; the default implementation is a transparent
    pass-through, so the class doubles as the specification of fault-free
    behaviour.  :class:`repro.faults.FaultInjector` is the real
    implementation; keeping the interface here lets the sim layer stay
    ignorant of fault *policies* while owning the mechanics.

    All hooks receive the simulator so they can read virtual time
    (``sim.steps``) -- fault windows are expressed in executed steps, the
    only clock the asynchronous model has.
    """

    def copies(self, sim: "Simulator", src: Hashable, dst: Hashable, message: Any) -> int:
        """How many copies of a just-sent message enter the channel.

        ``1`` is faithful delivery, ``0`` loses the message, ``k >= 2``
        duplicates it.  The sender is charged for exactly one send either
        way (it *did* send; the network misbehaved).
        """
        return 1

    def deliver_action(self, sim: "Simulator", token: DeliverToken) -> str:
        """Fate of a pending delivery: :data:`DELIVER` it now, :data:`DROP`
        it (consume the message, never run the handler -- e.g. the receiver
        crashed), or :data:`DEFER` it (re-enqueue the token; an adversarial
        delay burst)."""
        return DELIVER

    def wake_allowed(self, sim: "Simulator", node: Hashable) -> bool:
        """Whether a spontaneous wake-up may run (``False`` for crashed nodes)."""
        return True

    def timer_allowed(self, sim: "Simulator", token: TimerToken) -> bool:
        """Whether a due timer may fire (``False`` for crashed nodes)."""
        return True


class SimulationError(RuntimeError):
    """Base class for simulator failures."""


class StuckExecutionError(SimulationError):
    """Pending steps exist but the scheduler refuses to run any of them."""


class StepLimitExceeded(SimulationError):
    """The execution did not quiesce within the step budget."""


class SimNode:
    """Base class for protocol participants.

    Subclasses implement :meth:`on_wake` (local initialization + first
    actions) and :meth:`on_message`.  The :meth:`send` helper hands messages
    to the simulator; sending to oneself is a protocol bug (the paper's
    algorithms short-circuit self-interactions locally) and raises.
    """

    def __init__(self, node_id: Hashable) -> None:
        self.node_id = node_id
        self.awake = False
        self._sim: Optional["Simulator"] = None

    # -- wiring ---------------------------------------------------------
    def bind(self, sim: "Simulator") -> None:
        if self._sim is not None and self._sim is not sim:
            raise SimulationError(f"node {self.node_id!r} already bound")
        self._sim = sim

    @property
    def sim(self) -> "Simulator":
        if self._sim is None:
            raise SimulationError(f"node {self.node_id!r} is not bound to a simulator")
        return self._sim

    # -- actions --------------------------------------------------------
    def send(self, dst: Hashable, message: Any) -> None:
        """Send ``message`` to ``dst`` over the FIFO channel (self, dst)."""
        if dst == self.node_id:
            raise SimulationError(
                f"node {self.node_id!r} tried to message itself with "
                f"{getattr(message, 'msg_type', message)!r}; self-interactions "
                "must be simulated internally (Section 4.1)"
            )
        # Direct attribute access instead of the ``sim`` property: send is
        # the hottest node->simulator edge and the property's guard costs a
        # call per message.  Same error contract for unbound nodes.
        sim = self._sim
        if sim is None:
            raise SimulationError(
                f"node {self.node_id!r} is not bound to a simulator"
            )
        sim.transmit(self.node_id, dst, message)

    # -- handlers -------------------------------------------------------
    def on_wake(self) -> None:  # pragma: no cover - interface default
        """Called exactly once, before the node's first action."""

    def on_message(self, sender: Hashable, message: Any) -> None:
        raise NotImplementedError

    def on_timer(self, tag: Hashable) -> None:  # pragma: no cover - default
        """Called when a timer armed via :meth:`Simulator.schedule_timer`
        fires.  Only transport-layer wrappers (``repro.faults.reliable``)
        use timers; the paper's protocol nodes have no clocks."""

    def on_crash(self) -> None:  # pragma: no cover - interface default
        """Called when a :class:`~repro.sim.events.LifecycleToken` crashes
        this node.  The node keeps its in-memory state (what it loses, and
        when, is the recovery layer's policy); the fault interceptor is what
        silences its wake-ups, deliveries and timers during the outage."""

    def on_recover(self) -> None:  # pragma: no cover - interface default
        """Called when a :class:`~repro.sim.events.LifecycleToken` recovers
        this node.  Transport wrappers restore state here; afterwards the
        simulator re-schedules a wake-up if the node came back asleep."""


class Simulator:
    """Asynchronous reliable-FIFO message-passing system.

    Parameters
    ----------
    scheduler:
        Delivery-order policy; defaults to :class:`GlobalFifoScheduler`.
    id_bits:
        Bits charged per node id in bit accounting (``ceil(log2 n)`` for an
        ``n``-node system; runners compute this from the graph).
    keep_trace:
        Record every executed step in :attr:`trace` (costs memory; default
        off).
    faults:
        A :class:`ChannelInterceptor` (typically a
        :class:`repro.faults.FaultInjector`) consulted at every transport
        decision; ``None`` is the paper's reliable exactly-once model.
    duplicate_probability:
        Deprecated back-compat shim: ``duplicate_probability=p`` builds a
        single-fault :class:`repro.faults.FaultInjector` (seeded with
        ``channel_seed``, matching the historical RNG stream) behind the
        scenes and emits a :class:`DeprecationWarning`.  New code should
        pass ``faults=`` directly; the two are mutually exclusive.  The
        policy lives entirely on the fault layer -- the simulator no
        longer mirrors the value as an attribute.
    obs:
        A :class:`~repro.obs.events.Recorder` receiving the typed run
        events (send/deliver/drop/wake/timer/state-transition/
        phase-change/fault-action); ``None`` (the default) disables
        observability at the cost of one predicate check per emit site.
    fast:
        Allow the compiled fast path (:mod:`repro.sim.fastcore`) to run
        :meth:`run` when the configuration permits it.  The fast path is
        *selected automatically*: it engages only when no fault
        interceptor, recorder, send observer, custom scheduler or
        non-FIFO channel discipline requires the object path, and it is
        differentially tested to produce bit-identical traces, stats and
        step counts.  ``fast=False`` forces the legacy object path (used
        by benchmarks and the equivalence suite).
    """

    def __init__(
        self,
        scheduler: Optional[Scheduler] = None,
        *,
        id_bits: int = 32,
        keep_trace: bool = False,
        channel_discipline: str = "fifo",
        channel_seed: int = 0,
        duplicate_probability: float = 0.0,
        faults: Optional[ChannelInterceptor] = None,
        obs: Optional[Recorder] = None,
        fast: bool = True,
    ) -> None:
        if id_bits < 1:
            raise ValueError(f"id_bits must be >= 1, got {id_bits}")
        if channel_discipline not in ("fifo", "random"):
            raise ValueError(
                f"channel_discipline must be 'fifo' or 'random', "
                f"got {channel_discipline!r}"
            )
        if not 0.0 <= duplicate_probability <= 1.0:
            raise ValueError(
                f"duplicate_probability must be in [0, 1], "
                f"got {duplicate_probability}"
            )
        if duplicate_probability > 0.0 and faults is not None:
            raise ValueError(
                "pass either faults= or the legacy duplicate_probability=, "
                "not both (fold duplication into the FaultPlan instead)"
            )
        # Explicit None check: schedulers define __len__, so an empty one is
        # falsy and ``scheduler or default`` would silently discard it.
        self.scheduler: Scheduler = (
            scheduler if scheduler is not None else GlobalFifoScheduler()
        )
        self.id_bits = id_bits
        self.nodes: Dict[Hashable, SimNode] = {}
        self._channels: Dict[Tuple[Hashable, Hashable], Deque[Any]] = {}
        self.stats = MessageStats()
        self.steps = 0
        self.trace: Optional[ExecutionTrace] = ExecutionTrace() if keep_trace else None
        self._send_observers: List[Callable[[Hashable, Hashable, Any], None]] = []
        #: "fifo" is the paper's model (Section 1.2); "random" is the ABL-3
        #: ablation -- each delivery takes a uniformly random pending
        #: message from the channel instead of the oldest.
        self.channel_discipline = channel_discipline
        self._channel_rng = _random.Random(channel_seed)
        self._cancelled_timers = 0
        #: the Recorder seam; ``None`` keeps every emit site at one check.
        self.obs = obs
        self.fast = fast
        #: interned channel registry built lazily by the fast path:
        #: ``(chan_queues, chan_meta, out_by_src)`` -- see fastcore.
        self._fast_channels = None
        #: which engine executed the most recent :meth:`run`:
        #: ``"array"`` (repro.core.arraystate), ``"fast"`` (the fastcore
        #: object loop), ``"legacy"``, or ``None`` before any run.
        self._last_run_path: Optional[str] = None
        if duplicate_probability > 0.0:
            # The legacy knob became a fault policy in the interceptor
            # seam (finding F7); the shim keeps old call sites running but
            # the simulator deliberately does NOT mirror the value as an
            # attribute -- policy state lives on the fault layer only.
            warnings.warn(
                "Simulator(duplicate_probability=...) is deprecated; pass "
                "faults=FaultInjector(FaultPlan(duplicate=...)) instead",
                DeprecationWarning,
                stacklevel=2,
            )
            # Imported here: repro.faults imports this module at load time.
            from repro.faults.plan import FaultInjector, FaultPlan

            faults = FaultInjector(
                FaultPlan(duplicate=duplicate_probability), seed=channel_seed
            )
        self.faults = faults

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def add_node(self, node: SimNode) -> None:
        if node.node_id in self.nodes:
            raise ValueError(f"duplicate node id {node.node_id!r}")
        node.bind(self)
        self.nodes[node.node_id] = node

    def schedule_wake(self, node_id: Hashable) -> None:
        """Make a spontaneous wake-up of ``node_id`` a pending step."""
        if node_id not in self.nodes:
            raise KeyError(f"unknown node {node_id!r}")
        self.scheduler.push(WakeToken(node_id))

    def add_send_observer(self, observer: Callable[[Hashable, Hashable, Any], None]) -> None:
        """Register a callback invoked on every transmit (testing hook)."""
        self._send_observers.append(observer)

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def transmit(self, src: Hashable, dst: Hashable, message: Any) -> None:
        """Enqueue a message; charged to stats immediately (it was *sent*).

        With a fault interceptor attached, the network may enqueue zero
        copies (loss, partition) or several (duplication); the sender is
        charged exactly once regardless, and send observers fire once per
        ``transmit`` call -- they observe *sends*, not deliveries.
        """
        if dst not in self.nodes:
            raise KeyError(f"message to unknown node {dst!r} from {src!r}")
        msg_type = getattr(message, "msg_type", None)
        if msg_type is None:
            raise TypeError(f"message {message!r} lacks a msg_type")
        bits = message.bit_size(self.id_bits)
        self.stats.record(msg_type, bits)
        copies = 1 if self.faults is None else self.faults.copies(self, src, dst, message)
        if copies > 0:
            channel = self._channels.setdefault((src, dst), deque())
            for _ in range(copies):
                channel.append(message)
                self.scheduler.push(DeliverToken(src, dst))
        if self.obs is not None:
            self.obs.emit(
                RunEvent(self.steps, "send", node=src, peer=dst, msg_type=msg_type)
            )
            if copies == 0:
                self.obs.emit(
                    RunEvent(
                        self.steps,
                        "drop",
                        node=dst,
                        peer=src,
                        msg_type=msg_type,
                        value="channel",
                    )
                )
            elif copies > 1:
                self.obs.emit(
                    RunEvent(
                        self.steps,
                        "fault-action",
                        node=dst,
                        peer=src,
                        msg_type=msg_type,
                        value=f"duplicate x{copies}",
                    )
                )
        for observer in self._send_observers:
            observer(src, dst, message)

    def in_flight(self) -> int:
        """Number of sent-but-undelivered messages."""
        return sum(len(q) for q in self._channels.values())

    def channel_backlog(self, src: Hashable, dst: Hashable) -> int:
        """Pending messages on one ordered channel (diagnostics)."""
        return len(self._channels.get((src, dst), ()))

    def channel_peek(self, src: Hashable, dst: Hashable) -> Any:
        """Head-of-line message on channel ``(src, dst)``, or ``None``.

        What a FIFO delivery for this channel would pop next; fault layers
        use it to attribute delivery-time drops to a message type without
        consuming the message.  (Under the ``"random"`` channel discipline
        the eventually-popped message may differ -- the head is still the
        honest FIFO-order attribution.)
        """
        channel = self._channels.get((src, dst))
        return channel[0] if channel else None

    def schedule_timer(
        self, node_id: Hashable, delay: int, tag: Hashable = None
    ) -> TimerToken:
        """Arm a timer firing ``node_id.on_timer(tag)`` after ``delay`` steps.

        Virtual time is the executed-step counter, so ``delay`` means "after
        at least this many further atomic steps" -- the only meaningful
        notion of a timeout in the asynchronous model.  Returns the token;
        callers keep it to :meth:`~repro.sim.events.TimerToken.cancel`.
        """
        if node_id not in self.nodes:
            raise KeyError(f"timer for unknown node {node_id!r}")
        if delay < 1:
            raise ValueError(f"timer delay must be >= 1 step, got {delay}")
        token = TimerToken(node_id, self.steps + delay, tag)
        self.scheduler.push(token)
        return token

    def schedule_lifecycle(
        self, node_id: Hashable, at_step: int, action: str
    ) -> LifecycleToken:
        """Schedule a crash or recovery of ``node_id`` at virtual time
        ``at_step`` (an absolute executed-step count, >= 1).

        The token stays pending until its due step, so a scheduled recovery
        keeps the simulator from quiescing early -- the system is not at
        rest while a node is still due to come back.
        """
        if node_id not in self.nodes:
            raise KeyError(f"lifecycle event for unknown node {node_id!r}")
        if action not in ("crash", "recover"):
            raise ValueError(f"lifecycle action must be 'crash' or 'recover', got {action!r}")
        if at_step < 1:
            raise ValueError(f"lifecycle steps start at 1, got {at_step}")
        token = LifecycleToken(node_id, at_step, action)
        self.scheduler.push(token)
        return token

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    @property
    def is_quiescent(self) -> bool:
        return len(self.scheduler) - self._cancelled_timers <= 0

    def step(self) -> bool:
        """Execute one pending step; return ``False`` when quiescent."""
        while True:
            token = self.scheduler.pop(self)
            if token is None:
                if len(self.scheduler) > 0:
                    raise StuckExecutionError(
                        f"{len(self.scheduler)} pending steps but none eligible"
                    )
                return False
            if isinstance(token, TimerToken) and token.cancelled:
                # Cancelled timers are garbage-collected for free: no step
                # charged, so a retransmit timer acked in time leaves no
                # trace in the accounting.
                self._cancelled_timers = max(0, self._cancelled_timers - 1)
                continue
            break
        self.steps += 1
        if isinstance(token, WakeToken):
            self._execute_wake(token)
        elif isinstance(token, TimerToken):
            self._execute_timer(token)
        elif isinstance(token, LifecycleToken):
            self._execute_lifecycle(token)
        else:
            self._execute_deliver(token)
        return True

    def cancel_timer(self, token: TimerToken) -> None:
        """Cancel a pending timer; the eventual pop is dropped for free."""
        if not token.cancelled:
            token.cancel()
            self._cancelled_timers += 1

    def run(self, max_steps: Optional[int] = None) -> int:
        """Run to quiescence; return the number of steps executed.

        Raises :class:`StepLimitExceeded` if quiescence needs more than
        ``max_steps`` steps -- the guard that turns a protocol livelock into
        a test failure instead of a hang.  At most ``max_steps`` steps
        execute before the limit trips (the historical behaviour allowed one
        extra step).

        When :attr:`fast` is set and the configuration qualifies (no
        faults, no recorder, no send observers, FIFO channels, a stock
        scheduler), the loop is delegated to :func:`repro.sim.fastcore.run_fast`,
        which executes the same steps with identical observable results.
        """
        if self.fast and type(self) is Simulator:
            from repro.sim import fastcore

            if fastcore.eligible(self):
                return fastcore.run_fast(self, max_steps)
        self._last_run_path = "legacy"
        executed = 0
        while self.step():
            executed += 1
            if max_steps is not None and executed >= max_steps and not self.is_quiescent:
                raise StepLimitExceeded(
                    f"no quiescence within {max_steps} steps; "
                    f"{self.in_flight()} messages still in flight"
                )
        return executed

    def run_for(self, max_steps: int) -> int:
        """Execute at most ``max_steps`` pending steps; return the count.

        The open-ended companion to :meth:`run`: a steady-state service
        has no terminal quiescence, so exhausting the budget here is a
        normal outcome rather than a :class:`StepLimitExceeded` failure.
        Stops early (returning fewer steps) if the system quiesces; call
        again after injecting more work.  Always takes the object path --
        callers interleave injections with execution, which the compiled
        loop's batched accounting cannot observe mid-flight.
        """
        if max_steps < 0:
            raise ValueError(f"max_steps must be >= 0, got {max_steps}")
        executed = 0
        while executed < max_steps and self.step():
            executed += 1
        return executed

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _execute_wake(self, token: WakeToken) -> None:
        if self.faults is not None and not self.faults.wake_allowed(self, token.node):
            self._record(TraceEvent(self.steps, "wake-noop", None, token.node, None))
            if self.obs is not None:
                self.obs.emit(
                    RunEvent(
                        self.steps,
                        "fault-action",
                        node=token.node,
                        value="wake-suppressed",
                    )
                )
            return
        node = self.nodes[token.node]
        if node.awake:
            self._record(TraceEvent(self.steps, "wake-noop", None, token.node, None))
            return
        node.awake = True
        self._record(TraceEvent(self.steps, "wake", None, token.node, None))
        before = self._observed_state(node) if self.obs is not None else None
        if self.obs is not None:
            self.obs.emit(RunEvent(self.steps, "wake", node=token.node))
        node.on_wake()
        if before is not None:
            self._emit_state_changes(token.node, node, before)

    def _execute_timer(self, token: TimerToken) -> None:
        if self.steps < token.due:
            # Not due yet: re-enqueue.  The step just charged guarantees the
            # virtual clock advances, so the due step is always reached.
            self.scheduler.push(token)
            return
        if self.faults is not None and not self.faults.timer_allowed(self, token):
            if self.obs is not None:
                self.obs.emit(
                    RunEvent(
                        self.steps,
                        "fault-action",
                        node=token.node,
                        value="timer-suppressed",
                    )
                )
            return
        if self.obs is not None:
            self.obs.emit(RunEvent(self.steps, "timer", node=token.node))
        self.nodes[token.node].on_timer(token.tag)

    def _execute_lifecycle(self, token: LifecycleToken) -> None:
        if self.steps < token.due:
            # Same approximate-time contract as timers: re-enqueue until the
            # step counter (which the pop just advanced) catches up.
            self.scheduler.push(token)
            return
        node = self.nodes[token.node]
        self._record(TraceEvent(self.steps, token.action, None, token.node, None))
        if self.obs is not None:
            self.obs.emit(RunEvent(self.steps, token.action, node=token.node))
        if token.action == "crash":
            node.on_crash()
        else:
            node.on_recover()
            if not node.awake:
                # A node restored from an "asleep" checkpoint rejoins the
                # way it originally joined: via a fresh spontaneous wake-up.
                self.scheduler.push(WakeToken(token.node))

    def _execute_deliver(self, token: DeliverToken) -> None:
        channel = self._channels.get((token.src, token.dst))
        if not channel:
            raise SimulationError(
                f"deliver token for empty channel {token.src!r} -> {token.dst!r}"
            )
        if self.faults is not None:
            action = self.faults.deliver_action(self, token)
            if action == DEFER:
                # Adversarial delay: hold the delivery, keep the message in
                # the channel.  The charged step advances virtual time, so
                # every delay window expires.
                self.scheduler.push(token)
                if self.obs is not None:
                    self.obs.emit(
                        RunEvent(
                            self.steps,
                            "fault-action",
                            node=token.dst,
                            peer=token.src,
                            value="defer",
                        )
                    )
                return
            if action == DROP:
                # Crash-stop receiver: the message is consumed by the
                # network but no handler runs.
                dropped = self._pop_channel_message(channel)
                if self.obs is not None:
                    self.obs.emit(
                        RunEvent(
                            self.steps,
                            "drop",
                            node=token.dst,
                            peer=token.src,
                            msg_type=getattr(dropped, "msg_type", None),
                            value="crashed-receiver",
                        )
                    )
                return
            if action != DELIVER:
                raise SimulationError(f"bad interceptor verdict {action!r}")
        message = self._pop_channel_message(channel)
        node = self.nodes[token.dst]
        before = self._observed_state(node) if self.obs is not None else None
        if not node.awake:
            # Messages wake sleeping nodes (Section 1.2): initialize first.
            node.awake = True
            self._record(TraceEvent(self.steps, "wake", None, token.dst, None))
            if self.obs is not None:
                self.obs.emit(RunEvent(self.steps, "wake", node=token.dst))
            node.on_wake()
        self._record(
            TraceEvent(
                self.steps,
                "deliver",
                token.src,
                token.dst,
                getattr(message, "msg_type", None),
                detail=message,
            )
        )
        if self.obs is not None:
            self.obs.emit(
                RunEvent(
                    self.steps,
                    "deliver",
                    node=token.dst,
                    peer=token.src,
                    msg_type=getattr(message, "msg_type", None),
                )
            )
        node.on_message(token.src, message)
        if before is not None:
            self._emit_state_changes(token.dst, node, before)

    def _pop_channel_message(self, channel: Deque[Any]) -> Any:
        """Take the next message off a channel per the delivery discipline."""
        if self.channel_discipline == "fifo" or len(channel) == 1:
            return channel.popleft()
        index = self._channel_rng.randrange(len(channel))
        message = channel[index]
        del channel[index]
        return message

    def _record(self, event: TraceEvent) -> None:
        if self.trace is not None:
            self.trace.append(event)

    # ------------------------------------------------------------------
    # Observability (only reached with a recorder attached)
    # ------------------------------------------------------------------
    @staticmethod
    def _observed_state(node: SimNode) -> Tuple[Optional[str], Optional[int]]:
        """Protocol-visible (status, phase) of a node, looking through
        transport wrappers (``ReliableNode.inner``)."""
        target = getattr(node, "inner", node)
        return (getattr(target, "status", None), getattr(target, "phase", None))

    def _emit_state_changes(
        self,
        node_id: Hashable,
        node: SimNode,
        before: Tuple[Optional[str], Optional[int]],
    ) -> None:
        """Diff a node's observable state around a handler and emit
        ``state-transition`` / ``phase-change`` events for what moved."""
        status, phase = self._observed_state(node)
        old_status, old_phase = before
        if status != old_status:
            self.obs.emit(
                RunEvent(
                    self.steps,
                    "state-transition",
                    node=node_id,
                    value=f"{old_status}->{status}",
                )
            )
        if phase != old_phase:
            self.obs.emit(
                RunEvent(self.steps, "phase-change", node=node_id, value=phase)
            )
