"""Compiled fast path for the simulator's run-to-quiescence loop.

The legacy :meth:`Simulator.step` path is built from small virtuous
abstractions -- token dataclasses, scheduler method calls, per-message
stats recording, interceptor/recorder predicates -- and at n=10^5 those
abstractions *are* the cost: roughly a dozen function calls and two
allocations per delivered message.  This module replaces the loop (not the
model) with a specialized interpreter that is engaged automatically by
:meth:`Simulator.run` when nothing requires the object path::

    no fault interceptor, no recorder, no send observers,
    FIFO channel discipline, and a stock scheduler
    (GlobalFifo / Lifo / Random).

Anything else -- adversaries, recording/replay/timed schedulers, fault
plans, obs recorders -- transparently falls back to the legacy loop, so
``Simulator(fast=True)`` (the default) is always safe to leave on.

How it stays bit-identical
--------------------------
* **Interned channels (the token arena).**  Each ordered channel
  ``(src, dst)`` is assigned a small integer index on first use.  A send
  pushes that *int* into the scheduler's underlying pool instead of
  allocating a :class:`DeliverToken`; channel metadata lives in flat
  parallel lists indexed by the int (``chan_queues[cid]`` is the *same*
  deque object as ``sim._channels[(src, dst)]``, so ``in_flight`` and
  friends keep working mid-run).  Delivery order per channel is a deque
  pop either way, so int tokens and pre-existing object tokens can even be
  interleaved on one channel without reordering anything.
* **Inlined scheduler pops.**  FIFO/LIFO pops are direct deque/list ops on
  the scheduler's pool; the random pop replays the exact legacy sequence
  (``rng.randrange(len(pool))`` + swap-with-tail) against the exact same
  pool ordering, so seeded runs make identical random choices and produce
  identical traces.
* **Lazy accounting.**  Per-message stats become two dict bumps into local
  ``{msg_type: count/bits}`` aggregates, folded into ``sim.stats`` once on
  every exit path (:meth:`MessageStats.record_bulk`), including
  :class:`StepLimitExceeded` and handler exceptions -- so post-mortem
  readers see exactly what the legacy path would have recorded.
* **Timers, lifecycle and stray object tokens** are executed inline via
  the simulator's own ``_execute_*`` methods with ``sim.steps`` kept
  current every iteration, so ``schedule_timer`` arithmetic inside
  handlers is unaffected.  Cancelled timers are dropped without charging a
  step, exactly like the legacy loop.
* **Deopt on exit.**  If the loop ends with int tokens still pending (an
  exception mid-run), they are materialized back into real
  :class:`DeliverToken` objects *in place*, preserving pool order -- the
  scheduler is always in a legal object-path state when anyone else can
  look at it, and a subsequent ``run()`` (fast or legacy) continues the
  execution unchanged.

Execution traces (``keep_trace=True``) are supported directly: the loop
emits the same :class:`TraceEvent` objects in the same order as the legacy
path, which is what the differential suite (``tests/test_fastcore_equivalence.py``)
pins across schedulers, seeds and workloads.

Array-core delegation
---------------------
When the pending pool is large relative to ``n`` (an actual discovery run,
not a post-quiescence touch-up), :func:`run_fast` first offers the run to
the array-backed protocol core (:mod:`repro.core.arraystate`), which
executes the same state machine over interned int ids and columnar state
-- no node objects, no message dataclasses, no token objects in the hot
loop.  The array core applies its own stricter eligibility checks (stock
``DiscoveryNode`` instances only, internable ids, wake/deliver tokens
only) and returns ``None`` to decline, in which case the object loop below
runs unchanged.  ``sim._last_run_path`` records which engine ran
(``"array"``/``"fast"``/``"legacy"``) for tests and diagnostics.
"""

from __future__ import annotations

from collections import deque
from sys import maxsize
from typing import Optional

from repro.sim.events import DeliverToken, LifecycleToken, TimerToken, WakeToken
from repro.sim.scheduler import (
    GlobalFifoScheduler,
    LifoScheduler,
    RandomScheduler,
)
from repro.sim.trace import TraceEvent

__all__ = ["eligible", "run_fast"]

#: Schedulers whose pool layout the fast loop understands.  Exact-type
#: match on purpose: a subclass may override selection behaviour.
_FIFO, _LIFO, _RANDOM = 0, 1, 2
_STOCK_MODES = {
    GlobalFifoScheduler: _FIFO,
    LifoScheduler: _LIFO,
    RandomScheduler: _RANDOM,
}

#: Methods the fast loop inlines (or calls back into).  If any of them has
#: been shadowed by an *instance* attribute -- the obs Profiler wraps
#: ``step``/``_execute_*`` that way, and tests monkeypatch ``transmit`` --
#: the object path must run so the wrappers see every call.
_WRAPPABLE = frozenset(
    {
        "step",
        "transmit",
        "_execute_wake",
        "_execute_deliver",
        "_execute_timer",
        "_execute_lifecycle",
    }
)


def eligible(sim) -> bool:
    """Whether ``sim`` can run on the fast path with identical results.

    The conditions mirror the seams the object path exists to serve: a
    fault interceptor or recorder must see per-message hooks, send
    observers must fire per transmit, non-FIFO channels need the channel
    RNG, and a non-stock scheduler owns its own selection state.
    """
    return (
        sim.faults is None
        and sim.obs is None
        and not sim._send_observers
        and sim.channel_discipline == "fifo"
        and type(sim.scheduler) in _STOCK_MODES
        and _WRAPPABLE.isdisjoint(vars(sim))
    )


def _channel_state(sim):
    """The per-simulator interned channel registry (built lazily).

    ``chan_queues[cid]``/``chan_meta[cid]`` are parallel arrays over
    channel ids; ``out_by_src[src][dst] -> cid`` is the interning map.
    Persisted on the simulator across ``run()`` calls: channel ids are
    stable for the lifetime of the system (channels are never removed).
    """
    state = sim._fast_channels
    if state is None:
        state = sim._fast_channels = ([], [], {})
    return state


def run_fast(sim, max_steps: Optional[int] = None) -> int:
    """Drop-in replacement for the body of :meth:`Simulator.run`.

    Caller guarantees :func:`eligible` holds.  Returns the number of steps
    executed, exactly like the legacy loop, and raises the same
    :class:`~repro.sim.network.StepLimitExceeded` at the same step.
    """
    from repro.core import arraystate
    from repro.sim.network import StepLimitExceeded

    scheduler = sim.scheduler
    mode = _STOCK_MODES[type(scheduler)]
    randrange = None
    if mode == _FIFO:
        pool = scheduler._queue
    elif mode == _LIFO:
        pool = scheduler._stack
    else:
        pool = scheduler._pool
        # Random.randrange(n) is documented to delegate to _randbelow(n);
        # calling it directly skips the range-normalization wrapper while
        # drawing the *identical* value sequence (the differential suite
        # pins this).  Fall back to randrange if the internal ever moves.
        rng = scheduler._rng
        randrange = getattr(rng, "_randbelow", None) or rng.randrange

    # Offer the run to the array-backed core first; ``None`` means it
    # declined (small pool, non-stock nodes, uninternable state) and the
    # object loop below proceeds with the simulator untouched.
    result = arraystate.maybe_run_array(sim, max_steps, pool, mode, randrange)
    if result is not None:
        return result
    sim._last_run_path = "fast"

    chan_queues, chan_meta, out_by_src = _channel_state(sim)
    nodes = sim.nodes
    channels = sim._channels
    id_bits = sim.id_bits
    trace = sim.trace
    trace_append = trace.events.append if trace is not None else None
    push = pool.append

    # Lazy accounting: aggregate here, fold into sim.stats on exit.
    counts: dict = {}
    bits_acc: dict = {}

    def fast_transmit(src, dst, message):
        # Interned-channel send: one dict hit on (src already interned ->
        # small dst map), no tuple hashing, no DeliverToken allocation.
        # Raises match Simulator.transmit exactly -- and, like it, leave
        # channel dicts, interning maps and accounting untouched when they
        # raise, so error-path state is identical to the legacy path (a
        # raising send must not leak a half-created channel).
        dmap = out_by_src.get(src)
        cid = dmap.get(dst) if dmap is not None else None
        if cid is None and dst not in nodes:
            raise KeyError(f"message to unknown node {dst!r} from {src!r}")
        msg_type = getattr(message, "msg_type", None)
        if msg_type is None:
            raise TypeError(f"message {message!r} lacks a msg_type")
        bits = message.bit_size(id_bits)
        if cid is None:
            if dmap is None:
                dmap = out_by_src[src] = {}
            queue = channels.get((src, dst))
            if queue is None:
                queue = channels[(src, dst)] = deque()
            cid = len(chan_meta)
            chan_queues.append(queue)
            chan_meta.append((queue, nodes[dst], src, dst))
            dmap[dst] = cid
        counts[msg_type] = counts.get(msg_type, 0) + 1
        bits_acc[msg_type] = bits_acc.get(msg_type, 0) + bits
        chan_queues[cid].append(message)
        push(cid)

    executed = 0
    steps = sim.steps
    limit = maxsize if max_steps is None else max_steps
    sim.transmit = fast_transmit
    try:
        while True:
            # -- inlined scheduler pop ---------------------------------
            if mode == _FIFO:
                if not pool:
                    break
                token = pool.popleft()
            elif mode == _LIFO:
                if not pool:
                    break
                token = pool.pop()
            else:
                size = len(pool)
                if not size:
                    break
                index = randrange(size)
                token = pool[index]
                pool[index] = pool[-1]
                pool.pop()

            # -- dispatch ----------------------------------------------
            tcls = type(token)
            if tcls is int:
                meta = chan_meta[token]
                message = meta[0].popleft()
                dst_node = meta[1]
                steps += 1
                sim.steps = steps
                executed += 1
                if not dst_node.awake:
                    dst_node.awake = True
                    if trace_append is not None:
                        trace_append(TraceEvent(steps, "wake", None, meta[3], None))
                    dst_node.on_wake()
                if trace_append is not None:
                    trace_append(
                        TraceEvent(
                            steps, "deliver", meta[2], meta[3],
                            message.msg_type, message,
                        )
                    )
                dst_node.on_message(meta[2], message)
            elif tcls is WakeToken:
                steps += 1
                sim.steps = steps
                executed += 1
                node = nodes[token.node]
                if node.awake:
                    if trace_append is not None:
                        trace_append(
                            TraceEvent(steps, "wake-noop", None, token.node, None)
                        )
                else:
                    node.awake = True
                    if trace_append is not None:
                        trace_append(
                            TraceEvent(steps, "wake", None, token.node, None)
                        )
                    node.on_wake()
            elif tcls is TimerToken:
                if token.cancelled:
                    # Dropped for free, no step charged (legacy parity).
                    sim._cancelled_timers = max(0, sim._cancelled_timers - 1)
                    continue
                steps += 1
                sim.steps = steps
                executed += 1
                sim._execute_timer(token)
            elif tcls is LifecycleToken:
                steps += 1
                sim.steps = steps
                executed += 1
                sim._execute_lifecycle(token)
            else:
                # A pre-existing DeliverToken (pushed by a legacy-path
                # transmit before this run) or an unknown token type; the
                # legacy step() treats both as deliveries.
                steps += 1
                sim.steps = steps
                executed += 1
                sim._execute_deliver(token)

            # Same source of truth as the legacy loop's boundary check:
            # ``is_quiescent`` reads the scheduler length minus cancelled
            # timers, so the raise/no-raise decision at exactly
            # ``max_steps`` cannot drift between the two paths (pinned by
            # tests/test_fastcore_regressions.py).
            if executed >= limit and not sim.is_quiescent:
                raise StepLimitExceeded(
                    f"no quiescence within {max_steps} steps; "
                    f"{sim.in_flight()} messages still in flight"
                )
    finally:
        del sim.transmit  # restore the class method
        sim.steps = steps
        sim.stats.record_bulk(counts, bits_acc)
        if pool:
            _materialize(pool, chan_meta, mode)
    return executed


def _materialize(pool, chan_meta, mode) -> None:
    """Turn any interned int tokens still pending back into real
    :class:`DeliverToken` objects, preserving pool order.

    Only reachable on exceptional exits (step-limit, handler error): at
    quiescence the pool is empty.  Afterwards the scheduler is
    indistinguishable from one the legacy loop left behind, so replays,
    diagnostics and resumed ``run()`` calls behave identically.
    """
    if mode == _FIFO:
        items = [
            DeliverToken(chan_meta[tok][2], chan_meta[tok][3])
            if type(tok) is int
            else tok
            for tok in pool
        ]
        pool.clear()
        pool.extend(items)
    else:
        for index, tok in enumerate(pool):
            if type(tok) is int:
                meta = chan_meta[tok]
                pool[index] = DeliverToken(meta[2], meta[3])
