"""Schedulable actions of the asynchronous simulator.

An execution of the asynchronous model is a sequence of atomic steps, each
either a *wake-up* of a node or the *delivery* of the oldest in-flight
message on some FIFO channel.  The scheduler (see
:mod:`repro.sim.scheduler`) decides the order; the adversaries of the
lower-bound experiments are just scheduling policies.

All token classes are ``slots=True`` dataclasses: one token exists per
pending step, so at n=10^5 scale the per-instance ``__dict__`` of a plain
dataclass is pure allocator churn.  (The compiled fast path of
:mod:`repro.sim.fastcore` goes further and does not materialize delivery
tokens at all -- it pushes interned channel indices instead.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Tuple, Union

__all__ = ["WakeToken", "DeliverToken", "TimerToken", "LifecycleToken", "Token"]


@dataclass(frozen=True, slots=True)
class WakeToken:
    """Spontaneously wake ``node`` (no-op if already awake)."""

    node: Hashable

    @property
    def channel(self) -> None:
        return None


@dataclass(frozen=True, slots=True)
class DeliverToken:
    """Deliver the head-of-line message on channel ``(src, dst)``.

    One token is enqueued per sent message, so executing every token
    delivers every message exactly once while per-channel FIFO order is
    preserved automatically (a token always delivers the *oldest* message on
    its channel, whichever send created it).
    """

    src: Hashable
    dst: Hashable

    @property
    def channel(self) -> Tuple[Hashable, Hashable]:
        return (self.src, self.dst)


@dataclass(eq=False, slots=True)
class TimerToken:
    """Fire ``node``'s :meth:`~repro.sim.network.SimNode.on_timer` at virtual
    time ``due`` (a simulator step count).

    The asynchronous model has no clocks, so a timer is *approximate* by
    design: a popped token whose due step has not arrived is re-enqueued, and
    since every pop advances the step counter the due step is always reached.
    Timers exist for the benefit of *transport-layer* machinery (the
    ack/retransmit recovery layer of :mod:`repro.faults.reliable`); protocol
    nodes must not rely on them -- the paper's model gives them no clocks.

    Unlike the frozen message/wake tokens, a timer is mutable: cancelling it
    (``cancelled = True``) turns the eventual fire into a no-op that is
    dropped without charging a step, so quiescence is not delayed by
    already-acknowledged retransmit timers.
    """

    node: Hashable
    due: int
    tag: Hashable = None
    cancelled: bool = False

    @property
    def channel(self) -> None:
        return None

    def cancel(self) -> None:
        self.cancelled = True


@dataclass(frozen=True, slots=True)
class LifecycleToken:
    """Crash or recover ``node`` at virtual time ``due`` (a step count).

    The crash-recovery fault model (:mod:`repro.faults.recovery`) schedules
    one of these per :class:`~repro.faults.plan.RecoverySpec` endpoint.  Like
    a timer, a popped token whose due step has not arrived is re-enqueued --
    and since each pop charges a step, the due step is always reached.  The
    token lives in the scheduler until it fires, which deliberately holds
    quiescence open: a system with a recovery pending is not at rest.
    """

    node: Hashable
    due: int
    action: str  # "crash" | "recover"

    @property
    def channel(self) -> None:
        return None


Token = Union[WakeToken, DeliverToken, TimerToken, LifecycleToken]
