"""Schedulable actions of the asynchronous simulator.

An execution of the asynchronous model is a sequence of atomic steps, each
either a *wake-up* of a node or the *delivery* of the oldest in-flight
message on some FIFO channel.  The scheduler (see
:mod:`repro.sim.scheduler`) decides the order; the adversaries of the
lower-bound experiments are just scheduling policies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Tuple, Union

__all__ = ["WakeToken", "DeliverToken", "Token"]


@dataclass(frozen=True)
class WakeToken:
    """Spontaneously wake ``node`` (no-op if already awake)."""

    node: Hashable

    @property
    def channel(self) -> None:
        return None


@dataclass(frozen=True)
class DeliverToken:
    """Deliver the head-of-line message on channel ``(src, dst)``.

    One token is enqueued per sent message, so executing every token
    delivers every message exactly once while per-channel FIFO order is
    preserved automatically (a token always delivers the *oldest* message on
    its channel, whichever send created it).
    """

    src: Hashable
    dst: Hashable

    @property
    def channel(self) -> Tuple[Hashable, Hashable]:
        return (self.src, self.dst)


Token = Union[WakeToken, DeliverToken]
