"""Law-Siu: randomized leader absorption -- reference [5] of the paper.

Law and Siu's brief announcement describes a randomized resource-discovery
algorithm achieving, with high probability, ``O(n log n)`` messages and
``O(log n)`` rounds on weakly connected graphs.  Only the announcement is
published, so this module is a *reconstruction* of its coin-flip mating
scheme on our cluster-merge skeleton (documented substitution, DESIGN.md
section 4):

* every cluster leader flips a fair coin each round;
* a **heads** leader with a non-empty frontier calls one uniformly random
  frontier id;
* a **tails** leader merges with every caller that reaches it this round
  (transfer direction is the skeleton's fixed id order); a heads callee
  rejects and the caller retries.

Two clusters pointing at each other merge with constant probability per
round, giving the ``O(log n)`` rounds behaviour; message counts are
reported as measured (EXP-11).
"""

from __future__ import annotations

import random
from typing import FrozenSet, Hashable

from repro.baselines.cluster_merge import Call, ClusterMergeNode, run_cluster_merge
from repro.baselines.common import BaselineResult
from repro.graphs.knowledge_graph import KnowledgeGraph

NodeId = Hashable

__all__ = ["run_law_siu", "LawSiuNode"]


class LawSiuNode(ClusterMergeNode):
    """Cluster-merge policy: coin-flip mating."""

    def __init__(
        self, node_id: NodeId, initial: FrozenSet[NodeId], rng: random.Random
    ) -> None:
        super().__init__(node_id, initial)
        self._rng = rng
        self._coin_heads = False

    def begin_round(self, round_no: int) -> None:
        self._coin_heads = self._rng.random() < 0.5

    def may_call(self, round_no: int) -> bool:
        return self._coin_heads

    def decide(self, call: Call, round_no: int) -> str:
        return "reject" if self._coin_heads else "merge"

    def pick_target(self, round_no: int) -> NodeId:
        return self._rng.choice(sorted(self.frontier, key=repr))


def run_law_siu(
    graph: KnowledgeGraph, *, seed: int = 0, max_rounds: int = 100_000, faults=None
) -> BaselineResult:
    """Run the Law-Siu reconstruction to silence."""
    master = random.Random(seed)

    def factory(node_id: NodeId, initial: FrozenSet[NodeId]) -> LawSiuNode:
        return LawSiuNode(node_id, initial, random.Random(master.randrange(2**62)))

    return run_cluster_merge(
        graph, factory, "law-siu", max_rounds=max_rounds, faults=faults
    )
