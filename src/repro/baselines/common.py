"""Shared plumbing for the baseline resource-discovery algorithms.

All baselines report a :class:`BaselineResult` with the same quantities as
the core algorithms' :class:`~repro.core.result.DiscoveryResult` (messages,
bits, rounds, leaders, completeness), so EXP-11's comparison table can be
assembled uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, List

from repro.graphs.components import weakly_connected_components
from repro.graphs.knowledge_graph import KnowledgeGraph
from repro.sim.trace import MessageStats, bits_for_ids

NodeId = Hashable

__all__ = ["BaselineResult", "IdSetMessage", "SmallMessage", "verify_baseline"]


@dataclass(frozen=True)
class IdSetMessage:
    """A message whose payload is a set of node ids (plus the header)."""

    ids: FrozenSet[NodeId]
    msg_type: str = "id-set"

    def bit_size(self, id_bits: int) -> int:
        return bits_for_ids(len(self.ids), id_bits)


@dataclass(frozen=True)
class SmallMessage:
    """A constant-size control message carrying up to a few ids/integers."""

    msg_type: str
    n_ids: int = 1

    def bit_size(self, id_bits: int) -> int:
        return bits_for_ids(self.n_ids, id_bits)


@dataclass
class BaselineResult:
    """Outcome of one baseline execution."""

    name: str
    n: int
    n_edges: int
    rounds: int
    stats: MessageStats
    leaders: List[NodeId]
    leader_of: Dict[NodeId, NodeId]
    knowledge: Dict[NodeId, FrozenSet[NodeId]]

    @property
    def total_messages(self) -> int:
        return self.stats.total_messages

    @property
    def total_bits(self) -> int:
        return self.stats.total_bits

    def summary(self) -> str:
        return (
            f"{self.name}: n={self.n} |E0|={self.n_edges} rounds={self.rounds} "
            f"messages={self.total_messages} bits={self.total_bits} "
            f"leaders={len(self.leaders)}"
        )


def verify_baseline(result: BaselineResult, graph: KnowledgeGraph) -> None:
    """Assert the resource-discovery goals on a baseline's outcome.

    Same three properties as the core algorithms: one leader per weak
    component, the leader knows the whole component, and every node resolves
    to its component's leader.
    """
    leader_set = set(result.leaders)
    for component in weakly_connected_components(graph):
        leaders_here = leader_set & component
        if len(leaders_here) != 1:
            raise AssertionError(
                f"{result.name}: component with {len(leaders_here)} leaders"
            )
        leader = next(iter(leaders_here))
        if result.knowledge[leader] != frozenset(component):
            raise AssertionError(
                f"{result.name}: leader {leader!r} knowledge != component"
            )
        for member in component:
            if result.leader_of[member] != leader:
                raise AssertionError(
                    f"{result.name}: {member!r} resolves to "
                    f"{result.leader_of[member]!r}, expected {leader!r}"
                )
