"""Flooding: the folklore strawman baseline.

Every node that learns new ids pushes its *entire* known set to every node
it knows.  Converges on any weakly connected knowledge graph (a single
message makes its edge bidirectional, and symmetric knowledge then closes
transitively), but costs ``Theta(n)`` messages per node per learning event
-- the motivating "what goes wrong without a real algorithm" row of the
comparison table (EXP-11).  Leader selection is implicit: everybody ends up
knowing everybody, and the maximum id wins.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, Hashable, List, Set, Tuple

from repro.baselines.common import BaselineResult, IdSetMessage
from repro.core.runner import id_bits_for
from repro.graphs.knowledge_graph import KnowledgeGraph
from repro.sync.engine import SyncNode, SyncSimulator

NodeId = Hashable

__all__ = ["run_flooding", "FloodingNode"]


class FloodingNode(SyncNode):
    """Pushes its full known set to all known peers whenever it grows."""

    def __init__(self, node_id: NodeId, initial: FrozenSet[NodeId]) -> None:
        super().__init__(node_id)
        self.known: Set[NodeId] = set(initial) | {node_id}
        self._dirty = True

    def on_round(
        self, round_no: int, inbox: List[Tuple[NodeId, Any]]
    ) -> List[Tuple[NodeId, Any]]:
        for sender, message in inbox:
            incoming = set(message.ids) | {sender}
            if not incoming <= self.known:
                self._dirty = True
            self.known |= incoming
        if not self._dirty:
            return []
        self._dirty = False
        payload = IdSetMessage(frozenset(self.known), msg_type="flood")
        return [
            (peer, payload) for peer in sorted(self.known - {self.node_id}, key=repr)
        ]


def run_flooding(
    graph: KnowledgeGraph, *, max_rounds: int = 10_000, faults=None
) -> BaselineResult:
    """Run flooding to silence and report the discovery outcome."""
    sim = SyncSimulator(id_bits=id_bits_for(graph.n), faults=faults)
    nodes: Dict[NodeId, FloodingNode] = {}
    for node_id in graph.nodes:
        node = FloodingNode(node_id, graph.successors(node_id))
        nodes[node_id] = node
        sim.add_node(node)
    rounds = sim.run(max_rounds)
    leader_of = {node_id: max(node.known) for node_id, node in nodes.items()}
    leaders = sorted(set(leader_of.values()), key=repr)
    knowledge = {leader: frozenset(nodes[leader].known) for leader in leaders}
    return BaselineResult(
        name="flooding",
        n=graph.n,
        n_edges=graph.n_edges,
        rounds=rounds,
        stats=sim.stats.snapshot(),
        leaders=leaders,
        leader_of=leader_of,
        knowledge=knowledge,
    )
