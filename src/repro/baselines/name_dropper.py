"""Name-Dropper: the randomized algorithm of Harchol-Balter, Leighton and
Lewin (PODC 1999) -- reference [2] of the paper.

Each synchronous round, every machine ``u`` chooses one member ``v`` of its
current neighbour set uniformly at random and sends ``v`` its whole
neighbour set plus its own id; ``v`` merges it in (dropping the self
pointer).  With high probability every node knows its entire weakly
connected component after ``O(log^2 n)`` rounds, for ``O(n log^2 n)``
messages and ``O(n^2 log^2 n)`` bits.

The original terminates by running a fixed ``c log^2 n`` rounds, relying on
knowing ``n``.  Our harness instead stops at the first round in which an
omniscient observer sees global completeness -- that observation costs no
messages and reports the (smaller) *actual* convergence time, which is the
quantity the complexity statement is about.
"""

from __future__ import annotations

import random
from typing import Any, Dict, FrozenSet, Hashable, List, Set, Tuple

from repro.baselines.common import BaselineResult, IdSetMessage
from repro.core.runner import id_bits_for
from repro.graphs.components import weakly_connected_components
from repro.graphs.knowledge_graph import KnowledgeGraph
from repro.sync.engine import RoundLimitExceeded, SyncNode, SyncSimulator

NodeId = Hashable

__all__ = ["run_name_dropper", "NameDropperNode"]


class NameDropperNode(SyncNode):
    """One Name-Dropper machine."""

    def __init__(
        self, node_id: NodeId, initial: FrozenSet[NodeId], rng: random.Random
    ) -> None:
        super().__init__(node_id)
        self.neighbors: Set[NodeId] = set(initial) - {node_id}
        self._rng = rng

    def on_round(
        self, round_no: int, inbox: List[Tuple[NodeId, Any]]
    ) -> List[Tuple[NodeId, Any]]:
        for sender, message in inbox:
            self.neighbors |= (set(message.ids) | {sender}) - {self.node_id}
        if not self.neighbors:
            return []
        target = self._rng.choice(sorted(self.neighbors, key=repr))
        payload = IdSetMessage(
            frozenset(self.neighbors | {self.node_id}), msg_type="name-drop"
        )
        return [(target, payload)]


def run_name_dropper(
    graph: KnowledgeGraph, *, seed: int = 0, max_rounds: int = 10_000, faults=None
) -> BaselineResult:
    """Run Name-Dropper until every node knows its whole component."""
    master = random.Random(seed)
    sim = SyncSimulator(id_bits=id_bits_for(graph.n), faults=faults)
    nodes: Dict[NodeId, NameDropperNode] = {}
    for node_id in graph.nodes:
        node = NameDropperNode(
            node_id,
            graph.successors(node_id),
            random.Random(master.randrange(2**62)),
        )
        nodes[node_id] = node
        sim.add_node(node)

    components = weakly_connected_components(graph)
    goal = {
        node_id: frozenset(component) - {node_id}
        for component in components
        for node_id in component
    }

    def complete() -> bool:
        return all(nodes[node_id].neighbors >= goal[node_id] for node_id in goal)

    while not complete():
        sim.step_round()
        if sim.rounds >= max_rounds:
            raise RoundLimitExceeded(f"name-dropper: no completeness in {max_rounds} rounds")

    leader_of = {
        node_id: max(node.neighbors | {node_id}) for node_id, node in nodes.items()
    }
    leaders = sorted(set(leader_of.values()), key=repr)
    knowledge = {
        leader: frozenset(nodes[leader].neighbors | {leader}) for leader in leaders
    }
    return BaselineResult(
        name="name-dropper",
        n=graph.n,
        n_edges=graph.n_edges,
        rounds=sim.rounds,
        stats=sim.stats.snapshot(),
        leaders=leaders,
        leader_of=leader_of,
        knowledge=knowledge,
    )
