"""Baseline resource-discovery algorithms for the comparison experiments.

One implementation per prior-work row of the paper's Section 1.1, plus the
folklore flooding strawman and the Section 1 strongly-connected
observation.  See DESIGN.md section 4 for the documented substitutions.
"""

from repro.baselines.common import BaselineResult, verify_baseline
from repro.baselines.flooding import FloodingNode, run_flooding
from repro.baselines.kp_async import KPAsyncNode, run_kp_async
from repro.baselines.kpv_style import KPVStyleNode, run_kpv_style
from repro.baselines.law_siu import LawSiuNode, run_law_siu
from repro.baselines.name_dropper import NameDropperNode, run_name_dropper
from repro.baselines.pointer_jump import (
    PointerJumpDiverged,
    PointerJumpNode,
    run_pointer_jump,
)
from repro.baselines.strong_election import TraversalNode, run_strong_election
from repro.baselines.swamping import SwampingNode, run_swamping

__all__ = [
    "BaselineResult",
    "verify_baseline",
    "run_flooding",
    "run_name_dropper",
    "run_law_siu",
    "run_kpv_style",
    "run_kp_async",
    "KPAsyncNode",
    "run_strong_election",
    "run_swamping",
    "run_pointer_jump",
    "PointerJumpDiverged",
    "SwampingNode",
    "PointerJumpNode",
    "FloodingNode",
    "NameDropperNode",
    "LawSiuNode",
    "KPVStyleNode",
    "TraversalNode",
]
