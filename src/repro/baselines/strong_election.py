"""O(n)-message leader election on *strongly connected* knowledge graphs.

Section 1 of the paper observes that on strongly connected networks the
O(n) message complexity leader election of Cidon, Gopal and Kutten [1] can
solve Resource Discovery with ``O(n)`` messages total.  This module
realises that observation (documented substitution, DESIGN.md section 4)
with the knowledge-graph-native traversal:

a single token walks the graph carrying the set of visited ids and the
pool of discovered ids.  Because ids are addresses, the token can jump
*directly* to any discovered-but-unvisited node -- no backtracking, so
exactly ``n - 1`` token hops visit everyone reachable through the knowledge
closure (everyone, by strong connectivity).  The final holder elects the
maximum id and sends one announcement to each other node: ``2(n - 1)``
messages total.

The message count is the point of the observation; like the token
traversals in [1], the token payload makes the *bit* complexity high
(``O(n^2 log n)``), which is fine -- the comparison row (EXP-13) reports
both.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, List, Optional, Set, Tuple

from repro.baselines.common import BaselineResult
from repro.core.runner import id_bits_for
from repro.graphs.components import is_strongly_connected
from repro.graphs.knowledge_graph import KnowledgeGraph
from repro.sim.network import SimNode, Simulator
from repro.sim.trace import bits_for_ids

NodeId = Hashable

__all__ = ["run_strong_election", "TraversalNode"]


@dataclass(frozen=True)
class Token:
    """The traversal token: visited ids and the discovered-id pool."""

    visited: FrozenSet[NodeId]
    pool: FrozenSet[NodeId]
    msg_type = "token"

    def bit_size(self, id_bits: int) -> int:
        return bits_for_ids(len(self.visited) + len(self.pool), id_bits)


@dataclass(frozen=True)
class Elected:
    """The completion broadcast naming the elected leader."""

    leader: NodeId
    ids: FrozenSet[NodeId]
    msg_type = "elected"

    def bit_size(self, id_bits: int) -> int:
        return bits_for_ids(1 + len(self.ids), id_bits)


class TraversalNode(SimNode):
    """One participant of the token-traversal election."""

    def __init__(self, node_id: NodeId, initial: FrozenSet[NodeId]) -> None:
        super().__init__(node_id)
        self.local = frozenset(initial) - {node_id}
        self.leader: Optional[NodeId] = None
        self.known: FrozenSet[NodeId] = frozenset()
        self.initiator = False

    def on_wake(self) -> None:
        if self.leader is not None or not self.initiator:
            return
        self._advance(
            Token(visited=frozenset(), pool=frozenset({self.node_id}))
        )

    def on_message(self, sender: NodeId, message) -> None:
        if message.msg_type == "token":
            self._advance(message)
            return
        if message.msg_type == "elected":
            self.leader = message.leader
            self.known = message.ids
            return
        raise ValueError(f"unexpected message {message!r}")

    def _advance(self, token: Token) -> None:
        visited = token.visited | {self.node_id}
        pool = token.pool | self.local | {self.node_id}
        unvisited = pool - visited
        if unvisited:
            self.send(min(unvisited, key=repr), Token(visited, pool))
            return
        # Traversal complete: this node holds full knowledge of the closure.
        leader = max(pool)
        self.leader = leader
        self.known = frozenset(pool)
        for other in sorted(pool - {self.node_id}, key=repr):
            self.send(other, Elected(leader, frozenset(pool)))


def run_strong_election(
    graph: KnowledgeGraph,
    *,
    initiator: Optional[NodeId] = None,
    max_steps: Optional[int] = None,
    faults=None,
) -> BaselineResult:
    """Run the single-initiator traversal election on a strongly connected
    graph (raises if the graph is not strongly connected)."""
    if not is_strongly_connected(graph):
        raise ValueError("strong election requires a strongly connected graph")
    sim = Simulator(id_bits=id_bits_for(graph.n), faults=faults)
    nodes: Dict[NodeId, TraversalNode] = {}
    for node_id in graph.nodes:
        node = TraversalNode(node_id, graph.successors(node_id))
        nodes[node_id] = node
        sim.add_node(node)
    start = initiator if initiator is not None else graph.nodes[0]
    nodes[start].initiator = True
    sim.schedule_wake(start)
    sim.run(max_steps if max_steps is not None else 100 + 10 * graph.n)

    leader_of = {node_id: node.leader for node_id, node in nodes.items()}
    if any(leader is None for leader in leader_of.values()):
        raise RuntimeError("election did not reach every node")
    leaders = sorted(set(leader_of.values()), key=repr)
    knowledge = {leader: nodes[leader].known for leader in leaders}
    return BaselineResult(
        name="strong-election",
        n=graph.n,
        n_edges=graph.n_edges,
        rounds=sim.steps,
        stats=sim.stats.snapshot(),
        leaders=leaders,
        leader_of=leader_of,
        knowledge=knowledge,
    )
