"""KP-style asynchronous discovery -- stands in for Kutten & Peleg's
algorithm (reference [3]), the paper's direct predecessor.

[3] solves asynchronous Resource Discovery deterministically with
``O(n log n)`` messages but ``O(|E0| log^2 n)`` bits; the paper's headline
improvement is cutting the bits to ``O(|E0| log n + n log^2 n)`` via the
Section 4.1 query balance.  The original's full pseudocode is not
reproducible from the cited SRDS abstract, so this module implements a
deterministic asynchronous algorithm with [3]'s characteristic cost
structure (documented substitution, DESIGN.md section 4):

clusters merge along frontier edges, and at every merge the absorbed
cluster ships its *entire* remaining frontier (its unreported edge
endpoints) to the new leader -- there is no balanced drip-feeding, so an
edge's endpoint id can be re-shipped once per merge level, giving the
``|E0| log n``-per-level ~ ``|E0| log^2 n`` bit behaviour that [3] pays
and the paper avoids.

Mechanics (asynchronous, on the same simulator as the core algorithms):

* every node wakes as a singleton leader knowing ``local``;
* a leader repeatedly picks its smallest frontier id and sends an
  ``annex`` request to it; the request is forwarded along leader pointers
  to the target's current leader;
* of the two leaders, the larger id transfers its whole cluster (members
  *and* full frontier) to the smaller -- the same fixed id order that keeps
  the synchronous cluster-merge baseline race-free keeps this one free of
  pointer cycles;
* transferred members are relabelled; calls that come home prune the
  frontier.

EXP-18 compares its measured bits against the Generic algorithm's on
dense graphs, reproducing the "improves the bit complexity of [3]" claim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, List, Optional, Set, Tuple

from repro.baselines.common import BaselineResult
from repro.core.runner import id_bits_for
from repro.graphs.knowledge_graph import KnowledgeGraph
from repro.sim.network import SimNode, Simulator
from repro.sim.trace import bits_for_ids

NodeId = Hashable

__all__ = ["run_kp_async", "KPAsyncNode"]


def _key(node_id: NodeId) -> str:
    return repr(node_id)


@dataclass(frozen=True)
class Annex:
    """Leader ``origin`` asks ``target``'s cluster to merge."""

    origin: NodeId
    target: NodeId
    msg_type = "kp-annex"

    def bit_size(self, id_bits: int) -> int:
        return bits_for_ids(2, id_bits)


@dataclass(frozen=True)
class Surrender:
    """The whole losing cluster: members plus its *full* frontier."""

    from_leader: NodeId
    members: FrozenSet[NodeId]
    frontier: FrozenSet[NodeId]
    msg_type = "kp-surrender"

    def bit_size(self, id_bits: int) -> int:
        return bits_for_ids(1 + len(self.members) + len(self.frontier), id_bits)


@dataclass(frozen=True)
class ComeHere:
    """Reply to an annex whose origin must move (origin id is larger)."""

    absorber: NodeId
    msg_type = "kp-come-here"

    def bit_size(self, id_bits: int) -> int:
        return bits_for_ids(1, id_bits)


@dataclass(frozen=True)
class NewLeader:
    """Relabel a moved member."""

    leader: NodeId
    msg_type = "kp-new-leader"

    def bit_size(self, id_bits: int) -> int:
        return bits_for_ids(1, id_bits)


class KPAsyncNode(SimNode):
    """One participant of the KP-style asynchronous baseline."""

    def __init__(self, node_id: NodeId, initial: FrozenSet[NodeId]) -> None:
        super().__init__(node_id)
        self.is_cluster_leader = True
        self.leader_ptr: NodeId = node_id
        self.members: Set[NodeId] = {node_id}
        self.frontier: Set[NodeId] = set(initial) - {node_id}
        self.call_outstanding = False

    # ------------------------------------------------------------------
    def on_wake(self) -> None:
        self._maybe_call()

    def _maybe_call(self) -> None:
        if not self.is_cluster_leader or self.call_outstanding:
            return
        self.frontier -= self.members
        if not self.frontier:
            return
        target = min(self.frontier, key=_key)
        self.call_outstanding = True
        self.send(target, Annex(self.node_id, target))

    # ------------------------------------------------------------------
    def on_message(self, sender: NodeId, message) -> None:
        if not self.is_cluster_leader and message.msg_type in (
            "kp-annex",
            "kp-come-here",
            "kp-surrender",
        ):
            self.send(self.leader_ptr, message)
            return
        if message.msg_type == "kp-new-leader":
            self.leader_ptr = message.leader
            return
        if message.msg_type == "kp-annex":
            self._on_annex(message)
        elif message.msg_type == "kp-come-here":
            self._on_come_here(message)
        elif message.msg_type == "kp-surrender":
            self._on_surrender(message)
        else:
            raise ValueError(f"unexpected message {message!r}")

    def _on_annex(self, message: Annex) -> None:
        if message.origin == self.node_id or message.origin in self.members:
            # Own call came home: the target already joined this cluster.
            self.frontier.discard(message.target)
            self.call_outstanding = False
            self._maybe_call()
            return
        if _key(message.origin) > _key(self.node_id):
            self.send(message.origin, ComeHere(self.node_id))
        else:
            self._surrender_to(message.origin)

    def _on_come_here(self, message: ComeHere) -> None:
        self.call_outstanding = False
        if message.absorber == self.node_id or message.absorber in self.members:
            self._maybe_call()
            return
        if _key(message.absorber) >= _key(self.node_id):
            # Forwarded after the original origin moved; complying would
            # transfer toward a larger id and risk a cycle.  The absorber
            # still holds the frontier id and will call again.
            self._maybe_call()
            return
        self._surrender_to(message.absorber)

    def _surrender_to(self, absorber: NodeId) -> None:
        # [3]'s cost signature: the ENTIRE frontier ships with the merge.
        self.send(
            absorber,
            Surrender(
                self.node_id, frozenset(self.members), frozenset(self.frontier)
            ),
        )
        self.is_cluster_leader = False
        self.leader_ptr = absorber
        self.call_outstanding = False
        self.members = {self.node_id}
        self.frontier = set()

    def _on_surrender(self, message: Surrender) -> None:
        self.call_outstanding = False
        self.members |= message.members
        self.frontier |= message.frontier
        self.frontier -= self.members
        self.frontier.discard(self.node_id)
        for member in sorted(message.members, key=_key):
            if member != message.from_leader and member != self.node_id:
                self.send(member, NewLeader(self.node_id))
        self._maybe_call()


def run_kp_async(
    graph: KnowledgeGraph,
    *,
    seed: Optional[int] = None,
    max_steps: Optional[int] = None,
    faults=None,
) -> BaselineResult:
    """Run the KP-style asynchronous baseline to quiescence."""
    from repro.core.runner import default_step_budget
    from repro.sim.scheduler import GlobalFifoScheduler, RandomScheduler

    scheduler = RandomScheduler(seed) if seed is not None else GlobalFifoScheduler()
    sim = Simulator(scheduler, id_bits=id_bits_for(graph.n), faults=faults)
    nodes: Dict[NodeId, KPAsyncNode] = {}
    for node_id in graph.nodes:
        node = KPAsyncNode(node_id, graph.successors(node_id))
        nodes[node_id] = node
        sim.add_node(node)
    for node_id in graph.nodes:
        sim.schedule_wake(node_id)
    sim.run(max_steps if max_steps is not None else default_step_budget(graph))

    def resolve(start: NodeId) -> NodeId:
        current = start
        seen: Set[NodeId] = set()
        while not nodes[current].is_cluster_leader:
            if current in seen:
                raise RuntimeError(f"kp-async: pointer cycle at {current!r}")
            seen.add(current)
            current = nodes[current].leader_ptr
        return current

    leader_of = {node_id: resolve(node_id) for node_id in graph.nodes}
    leaders = sorted(set(leader_of.values()), key=_key)
    knowledge = {leader: frozenset(nodes[leader].members) for leader in leaders}
    return BaselineResult(
        name="kp-async",
        n=graph.n,
        n_edges=graph.n_edges,
        rounds=sim.steps,
        stats=sim.stats.snapshot(),
        leaders=leaders,
        leader_of=leader_of,
        knowledge=knowledge,
    )
