"""Random Pointer Jump: the third algorithm analysed by Harchol-Balter,
Leighton and Lewin (reference [2] of the paper).

Each synchronous round, every machine ``u`` contacts one uniformly random
neighbour ``v``, and ``v`` sends its whole neighbour set back to ``u``
(``u``'s set absorbs it).  Knowledge only flows *backwards* along edges, so
-- as [2] observes -- the algorithm converges on strongly connected graphs
but can fail to converge on weakly connected ones (a node that nobody
points back toward is never discovered).  The runner therefore requires
strong connectivity and the tests pin the non-convergence on a weak
counterexample, reproducing [2]'s negative observation.

Expected behaviour on strongly connected inputs: convergence in a
polylogarithmic number of rounds w.h.p. with two messages per machine per
round (the request and the reply).
"""

from __future__ import annotations

import random
from typing import Any, Dict, FrozenSet, Hashable, List, Set, Tuple

from repro.baselines.common import BaselineResult, IdSetMessage, SmallMessage
from repro.core.runner import id_bits_for
from repro.graphs.components import is_strongly_connected
from repro.graphs.knowledge_graph import KnowledgeGraph
from repro.sync.engine import RoundLimitExceeded, SyncNode, SyncSimulator

NodeId = Hashable

__all__ = ["run_pointer_jump", "PointerJumpNode", "PointerJumpDiverged"]


class PointerJumpDiverged(RuntimeError):
    """The round budget expired without global completeness (the expected
    outcome on graphs that are not strongly connected)."""


class PointerJumpNode(SyncNode):
    """One Random-Pointer-Jump machine."""

    def __init__(
        self, node_id: NodeId, initial: FrozenSet[NodeId], rng: random.Random
    ) -> None:
        super().__init__(node_id)
        self.neighbors: Set[NodeId] = set(initial) - {node_id}
        self._rng = rng

    def on_round(
        self, round_no: int, inbox: List[Tuple[NodeId, Any]]
    ) -> List[Tuple[NodeId, Any]]:
        out: List[Tuple[NodeId, Any]] = []
        for sender, message in inbox:
            if message.msg_type == "pj-request":
                out.append(
                    (
                        sender,
                        IdSetMessage(
                            frozenset(self.neighbors | {self.node_id}),
                            msg_type="pj-reply",
                        ),
                    )
                )
            else:  # pj-reply
                self.neighbors |= (set(message.ids) | {sender}) - {self.node_id}
        if self.neighbors:
            target = self._rng.choice(sorted(self.neighbors, key=repr))
            out.append((target, SmallMessage("pj-request", n_ids=0)))
        return out


def run_pointer_jump(
    graph: KnowledgeGraph,
    *,
    seed: int = 0,
    max_rounds: int = 10_000,
    require_strong: bool = True,
    faults=None,
) -> BaselineResult:
    """Run Random Pointer Jump until completeness.

    With ``require_strong`` (default) a non-strongly-connected input is
    rejected up front; pass ``require_strong=False`` to observe [2]'s
    non-convergence (the run then raises :class:`PointerJumpDiverged` when
    the round budget expires).
    """
    if require_strong and not is_strongly_connected(graph):
        raise ValueError(
            "random pointer jump converges on strongly connected graphs; "
            "pass require_strong=False to observe the divergence"
        )
    master = random.Random(seed)
    sim = SyncSimulator(id_bits=id_bits_for(graph.n), faults=faults)
    nodes: Dict[NodeId, PointerJumpNode] = {}
    for node_id in graph.nodes:
        node = PointerJumpNode(
            node_id,
            graph.successors(node_id),
            random.Random(master.randrange(2**62)),
        )
        nodes[node_id] = node
        sim.add_node(node)

    from repro.graphs.components import weakly_connected_components

    goal = {
        node_id: frozenset(component) - {node_id}
        for component in weakly_connected_components(graph)
        for node_id in component
    }

    def complete() -> bool:
        return all(nodes[node_id].neighbors >= goal[node_id] for node_id in goal)

    while not complete():
        sim.step_round()
        if sim.rounds >= max_rounds:
            raise PointerJumpDiverged(
                f"no completeness within {max_rounds} rounds "
                "(expected on non-strongly-connected graphs)"
            )

    leader_of = {
        node_id: max(node.neighbors | {node_id}) for node_id, node in nodes.items()
    }
    leaders = sorted(set(leader_of.values()), key=repr)
    knowledge = {
        leader: frozenset(nodes[leader].neighbors | {leader}) for leader in leaders
    }
    return BaselineResult(
        name="pointer-jump",
        n=graph.n,
        n_edges=graph.n_edges,
        rounds=sim.rounds,
        stats=sim.stats.snapshot(),
        leaders=leaders,
        leader_of=leader_of,
        knowledge=knowledge,
    )
