"""KPV-style deterministic synchronous discovery -- stands in for
Kutten, Peleg and Vishkin's deterministic algorithm (reference [4]).

The original achieves ``O(n log n)`` messages and ``O(log n)`` time
deterministically; its full pseudocode is not reproducible from the cited
abstract, so this module implements a deterministic algorithm in the same
complexity class on the cluster-merge skeleton (documented substitution,
DESIGN.md section 4):

* every cluster leader calls its smallest frontier id every round;
* every call results in a merge, with the skeleton's fixed id-ordered
  transfer direction (larger leader id moves into smaller).

The id-ordered direction makes concurrent merges race-free and the
algorithm fully deterministic.  The original KPV bound relies on
smaller-cluster-moves bookkeeping that is unsafe under concurrent merges
without extra synchronisation; the id-ordered rule is worst-case
``O(n^2)`` messages but behaves like randomized merging on the benchmark
families -- EXP-11 reports the measured counts, which is what the
comparison table needs.
"""

from __future__ import annotations

from typing import FrozenSet, Hashable

from repro.baselines.cluster_merge import Call, ClusterMergeNode, run_cluster_merge
from repro.baselines.common import BaselineResult
from repro.graphs.knowledge_graph import KnowledgeGraph

NodeId = Hashable

__all__ = ["run_kpv_style", "KPVStyleNode"]


class KPVStyleNode(ClusterMergeNode):
    """Cluster-merge policy: deterministic smaller-joins-larger."""

    def may_call(self, round_no: int) -> bool:
        return True

    def decide(self, call: Call, round_no: int) -> str:
        return "merge"

    def pick_target(self, round_no: int) -> NodeId:
        return min(self.frontier, key=repr)


def run_kpv_style(
    graph: KnowledgeGraph, *, max_rounds: int = 100_000, faults=None
) -> BaselineResult:
    """Run the deterministic KPV-style baseline to silence."""
    return run_cluster_merge(
        graph, KPVStyleNode, "kpv-style", max_rounds=max_rounds, faults=faults
    )
