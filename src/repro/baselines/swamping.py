"""Swamping: the second algorithm analysed by Harchol-Balter, Leighton and
Lewin (reference [2] of the paper).

Each synchronous round, every machine contacts *all* of its current
neighbours and the two machines exchange complete neighbour sets (the
graph is "swamped").  Connectivity doubles in hops per round, so the
network converges to a complete graph on each weak component in
``O(log n)`` rounds -- the fastest of [2]'s algorithms -- but the exchange
with every neighbour every round costs ``Theta(n^2)`` messages and up to
``O(n^3 log n)`` bits once components get dense.  EXP-11b reports it next
to Name-Dropper to reproduce [2]'s time-vs-traffic trade-off.

Mechanically: sending our set to every neighbour *is* the exchange (the
reverse direction arrives because the contacted machine learns us and, the
graph having become bidirectional, sends back on its own turn).
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, Hashable, List, Set, Tuple

from repro.baselines.common import BaselineResult, IdSetMessage
from repro.core.runner import id_bits_for
from repro.graphs.components import weakly_connected_components
from repro.graphs.knowledge_graph import KnowledgeGraph
from repro.sync.engine import RoundLimitExceeded, SyncNode, SyncSimulator

NodeId = Hashable

__all__ = ["run_swamping", "SwampingNode"]


class SwampingNode(SyncNode):
    """One swamping machine: full exchange with every neighbour, every
    round, until nothing new arrives anywhere."""

    def __init__(self, node_id: NodeId, initial: FrozenSet[NodeId]) -> None:
        super().__init__(node_id)
        self.neighbors: Set[NodeId] = set(initial) - {node_id}

    def on_round(
        self, round_no: int, inbox: List[Tuple[NodeId, Any]]
    ) -> List[Tuple[NodeId, Any]]:
        for sender, message in inbox:
            self.neighbors |= (set(message.ids) | {sender}) - {self.node_id}
        if not self.neighbors:
            return []
        # The defining move: swamp every current neighbour every round,
        # whether or not anything changed (flooding, by contrast, only
        # pushes on growth).  Termination is the runner's omniscient
        # completeness check, mirroring [2]'s known-n round budget.
        payload = IdSetMessage(
            frozenset(self.neighbors | {self.node_id}), msg_type="swamp"
        )
        return [(peer, payload) for peer in sorted(self.neighbors, key=repr)]


def run_swamping(
    graph: KnowledgeGraph, *, max_rounds: int = 10_000, faults=None
) -> BaselineResult:
    """Run swamping until every node knows its whole component."""
    sim = SyncSimulator(id_bits=id_bits_for(graph.n), faults=faults)
    nodes: Dict[NodeId, SwampingNode] = {}
    for node_id in graph.nodes:
        node = SwampingNode(node_id, graph.successors(node_id))
        nodes[node_id] = node
        sim.add_node(node)

    goal = {
        node_id: frozenset(component) - {node_id}
        for component in weakly_connected_components(graph)
        for node_id in component
    }

    def complete() -> bool:
        return all(nodes[node_id].neighbors >= goal[node_id] for node_id in goal)

    while not complete():
        sim.step_round()
        if sim.rounds >= max_rounds:
            raise RoundLimitExceeded(f"swamping: no completeness in {max_rounds} rounds")

    leader_of = {
        node_id: max(node.neighbors | {node_id}) for node_id, node in nodes.items()
    }
    leaders = sorted(set(leader_of.values()), key=repr)
    knowledge = {
        leader: frozenset(nodes[leader].neighbors | {leader}) for leader in leaders
    }
    return BaselineResult(
        name="swamping",
        n=graph.n,
        n_edges=graph.n_edges,
        rounds=sim.rounds,
        stats=sim.stats.snapshot(),
        leaders=leaders,
        leader_of=leader_of,
        knowledge=knowledge,
    )
