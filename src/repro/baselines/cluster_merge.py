"""Shared cluster-merging machinery for the Law-Siu and KPV-style baselines.

Both baselines maintain a partition of the nodes into *clusters*, each with
a leader that knows its member set and a *frontier* of known-but-external
ids.  Rounds proceed as repeated handshakes:

1. an eligible leader issues a ``call`` to one frontier id (eligibility and
   target choice are the policy hooks that distinguish the baselines);
2. the call is forwarded along leader pointers to the target's current
   leader (stale pointers cost extra forwarding messages, as they would in
   a real deployment);
3. the callee decides ``"merge"`` or ``"reject"`` (Law-Siu's heads/heads
   collision); on a merge, **the leader with the larger id transfers its
   cluster to the one with the smaller id** -- either by moving itself or
   by sending ``you-join-me`` to the caller;
4. the absorbing leader merges the transfer and ``relabel``\\ s the moved
   members.

The fixed id-ordered transfer direction is the crucial liveness device: a
transfer always moves a cluster to a strictly smaller leader id, so the
leader-pointer graph is acyclic *by construction* even when many merges
race in the same round.  (Directions keyed on mutable quantities like
cluster size deadlock here: two leaders can simultaneously decide to join
each other on stale sizes, and the resulting pointer cycle forwards their
transfers forever.)

Calls that come home to their own cluster prune the frontier instead of
merging.  Any cluster-protocol message reaching a non-leader is forwarded
to its current leader, which keeps handshakes live without global
coordination.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, Hashable, List, Set, Tuple

from repro.baselines.common import BaselineResult
from repro.core.runner import id_bits_for
from repro.graphs.knowledge_graph import KnowledgeGraph
from repro.sim.trace import bits_for_ids
from repro.sync.engine import SyncNode, SyncSimulator

NodeId = Hashable

__all__ = [
    "Call",
    "YouJoinMe",
    "Reject",
    "Transfer",
    "Relabel",
    "ClusterMergeNode",
    "run_cluster_merge",
]


def _order_key(node_id: NodeId) -> str:
    """The fixed total order used for transfer direction."""
    return repr(node_id)


@dataclass(frozen=True)
class Call:
    """Leader ``origin`` (cluster size ``size``) calls frontier id ``target``."""

    origin: NodeId
    size: int
    target: NodeId
    msg_type = "cm-call"

    def bit_size(self, id_bits: int) -> int:
        return bits_for_ids(2, id_bits, extra_ints=1)


@dataclass(frozen=True)
class YouJoinMe:
    """Callee ``absorber`` tells caller ``origin`` to transfer itself over."""

    absorber: NodeId
    origin: NodeId
    msg_type = "cm-you-join-me"

    def bit_size(self, id_bits: int) -> int:
        return bits_for_ids(2, id_bits)


@dataclass(frozen=True)
class Reject:
    """The callee is not merging this round (Law-Siu heads/heads)."""

    origin: NodeId
    target: NodeId
    msg_type = "cm-reject"

    def bit_size(self, id_bits: int) -> int:
        return bits_for_ids(2, id_bits)


@dataclass(frozen=True)
class Transfer:
    """A whole cluster moves: members + frontier, from ``from_leader``."""

    from_leader: NodeId
    members: FrozenSet[NodeId]
    frontier: FrozenSet[NodeId]
    msg_type = "cm-transfer"

    def bit_size(self, id_bits: int) -> int:
        return bits_for_ids(1 + len(self.members) + len(self.frontier), id_bits)


@dataclass(frozen=True)
class Relabel:
    """Tell a moved member who its new leader is."""

    leader: NodeId
    msg_type = "cm-relabel"

    def bit_size(self, id_bits: int) -> int:
        return bits_for_ids(1, id_bits)


class ClusterMergeNode(SyncNode):
    """One participant of a cluster-merging baseline.

    Subclasses implement :meth:`may_call` (is this leader eligible to call
    this round?), :meth:`decide` (merge or reject an incoming call) and
    :meth:`pick_target` (which frontier id to call).
    """

    def __init__(self, node_id: NodeId, initial: FrozenSet[NodeId]) -> None:
        super().__init__(node_id)
        self.is_leader = True
        self.leader_ptr: NodeId = node_id
        self.members: Set[NodeId] = {node_id}
        self.frontier: Set[NodeId] = set(initial) - {node_id}
        self.call_outstanding = False
        self._outbox: List[Tuple[NodeId, Any]] = []

    # -- policy hooks ----------------------------------------------------
    def may_call(self, round_no: int) -> bool:
        raise NotImplementedError

    def decide(self, call: Call, round_no: int) -> str:
        """Return ``"merge"`` or ``"reject"``."""
        raise NotImplementedError

    def pick_target(self, round_no: int) -> NodeId:
        raise NotImplementedError

    def begin_round(self, round_no: int) -> None:
        """Per-round setup (e.g. the Law-Siu coin flip)."""

    # -- engine ------------------------------------------------------------
    def on_round(
        self, round_no: int, inbox: List[Tuple[NodeId, Any]]
    ) -> List[Tuple[NodeId, Any]]:
        self._outbox = []
        self.begin_round(round_no)
        for sender, message in inbox:
            self._handle(sender, message, round_no)
        if (
            self.is_leader
            and not self.call_outstanding
            and self._prune_frontier()
            and self.may_call(round_no)
        ):
            target = self.pick_target(round_no)
            self.call_outstanding = True
            self._send(target, Call(self.node_id, len(self.members), target))
        return self._outbox

    def _send(self, dst: NodeId, message: Any) -> None:
        self._outbox.append((dst, message))

    def _prune_frontier(self) -> bool:
        """Drop frontier ids that joined the cluster; True if any remain."""
        self.frontier -= self.members
        return bool(self.frontier)

    # -- message handling --------------------------------------------------
    def _handle(self, sender: NodeId, message: Any, round_no: int) -> None:
        if message.msg_type == "cm-relabel":
            self.leader_ptr = message.leader
            return
        if not self.is_leader:
            # Stale addressing: pass it on toward the current leader.
            self._send(self.leader_ptr, message)
            return
        if message.msg_type == "cm-call":
            self._leader_on_call(message, round_no)
        elif message.msg_type == "cm-you-join-me":
            self._leader_on_you_join_me(message)
        elif message.msg_type == "cm-reject":
            self.call_outstanding = False
        elif message.msg_type == "cm-transfer":
            self._leader_on_transfer(message)
        else:
            raise ValueError(f"unexpected message {message!r}")

    def _leader_on_call(self, call: Call, round_no: int) -> None:
        if call.origin == self.node_id or call.origin in self.members:
            # Our own call came home: the target already belongs to us.
            self.frontier.discard(call.target)
            self.call_outstanding = False
            return
        if self.decide(call, round_no) == "reject":
            self._send(call.origin, Reject(call.origin, call.target))
            return
        # Merge: the larger id moves, whichever side it is.
        if _order_key(call.origin) > _order_key(self.node_id):
            self._send(call.origin, YouJoinMe(self.node_id, call.origin))
        else:
            self._transfer_to(call.origin)

    def _leader_on_you_join_me(self, message: YouJoinMe) -> None:
        self.call_outstanding = False
        if message.absorber == self.node_id or message.absorber in self.members:
            return  # crossed with a merge the other way; already resolved
        if _order_key(message.absorber) >= _order_key(self.node_id):
            # Forwarded to us after the original origin moved; complying
            # would transfer toward a larger id and risk a pointer cycle.
            # Safe to drop: the absorber still has the target id in its
            # frontier and will call again.
            return
        self._transfer_to(message.absorber)

    def _transfer_to(self, absorber: NodeId) -> None:
        self._send(
            absorber,
            Transfer(
                self.node_id, frozenset(self.members), frozenset(self.frontier)
            ),
        )
        self.is_leader = False
        self.leader_ptr = absorber
        self.call_outstanding = False
        self.members = {self.node_id}
        self.frontier = set()

    def _leader_on_transfer(self, transfer: Transfer) -> None:
        self.call_outstanding = False
        self.members |= transfer.members
        self.frontier |= transfer.frontier
        self.frontier -= self.members
        self.frontier.discard(self.node_id)
        for member in sorted(transfer.members, key=repr):
            if member != transfer.from_leader and member != self.node_id:
                self._send(member, Relabel(self.node_id))


def run_cluster_merge(
    graph: KnowledgeGraph,
    node_factory,
    name: str,
    *,
    max_rounds: int = 100_000,
    faults=None,
) -> BaselineResult:
    """Drive a cluster-merge baseline to silence and collect the outcome."""
    sim = SyncSimulator(id_bits=id_bits_for(graph.n), faults=faults)
    nodes: Dict[NodeId, ClusterMergeNode] = {}
    for node_id in graph.nodes:
        node = node_factory(node_id, graph.successors(node_id))
        nodes[node_id] = node
        sim.add_node(node)

    # A silent round is not termination for randomized policies (a Law-Siu
    # leader that flips tails sends nothing but still has work); stop only
    # when silence coincides with every leader's frontier being exhausted.
    def work_remains() -> bool:
        return any(
            node.is_leader and (node.frontier - node.members)
            for node in nodes.values()
        )

    while True:
        sent = sim.step_round()
        pending = sim.pending()
        if sent == 0 and pending == 0 and not work_remains():
            break
        if sim.rounds >= max_rounds:
            raise RuntimeError(f"{name}: no convergence within {max_rounds} rounds")
    rounds = sim.rounds

    def resolve(start: NodeId) -> NodeId:
        current = start
        seen: Set[NodeId] = set()
        while not nodes[current].is_leader:
            if current in seen:
                raise RuntimeError(f"{name}: leader-pointer cycle at {current!r}")
            seen.add(current)
            current = nodes[current].leader_ptr
        return current

    leader_of = {node_id: resolve(node_id) for node_id in graph.nodes}
    leaders = sorted(set(leader_of.values()), key=repr)
    knowledge = {leader: frozenset(nodes[leader].members) for leader in leaders}
    return BaselineResult(
        name=name,
        n=graph.n,
        n_edges=graph.n_edges,
        rounds=rounds,
        stats=sim.stats.snapshot(),
        leaders=leaders,
        leader_of=leader_of,
        knowledge=knowledge,
    )
