"""Machine-checkable versions of the problem's safety/liveness properties.

Asynchronous Resource Discovery (Section 1.2) requires, at the steady state
(which the simulator observes as quiescence with all nodes awake):

1. exactly one leader per weakly connected component;
2. the leader knows the ids of all the nodes that belong to it -- and since
   at quiescence everything in the component belongs to the leader, the
   leader's knowledge must equal its component exactly;
3. every non-leader knows the id of its leader (Generic/Bounded: the
   ``next`` pointer names the leader directly), or, in the Ad-hoc
   relaxation, 3a/3b: every non-leader's pointer chain is a directed path
   ending at its leader.

:func:`verify_discovery` checks all of them against a
:class:`~repro.core.result.DiscoveryResult` and the originating graph, and
raises :class:`InvariantViolation` with a precise description on failure.
The test-suite calls it after every single run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Hashable, List, Set

from repro.core.result import DiscoveryResult
from repro.graphs.components import weakly_connected_components
from repro.graphs.knowledge_graph import KnowledgeGraph

NodeId = Hashable

__all__ = ["InvariantViolation", "InvariantReport", "verify_discovery"]


class InvariantViolation(AssertionError):
    """A problem-definition property failed at quiescence."""


@dataclass
class InvariantReport:
    """What was checked and the headline numbers."""

    n_components: int
    n_leaders: int
    max_path_length: int
    checks: List[str] = field(default_factory=list)

    def __str__(self) -> str:
        lines = [
            f"components={self.n_components} leaders={self.n_leaders} "
            f"max_path={self.max_path_length}"
        ]
        lines.extend(f"  ok: {check}" for check in self.checks)
        return "\n".join(lines)


def verify_discovery(
    result: DiscoveryResult,
    graph: KnowledgeGraph,
) -> InvariantReport:
    """Check properties (1)-(3)/(3a,3b) of the problem statement.

    Assumes the execution quiesced with every node awake (the setting of
    liveness property 4).  Raises :class:`InvariantViolation` on failure.
    """
    components = weakly_connected_components(graph)
    report = InvariantReport(
        n_components=len(components),
        n_leaders=len(result.leaders),
        max_path_length=result.max_path_length,
    )
    leader_set = set(result.leaders)

    # Property 1: exactly one leader per weakly connected component.
    for component in components:
        leaders_here = sorted(leader_set & component, key=repr)
        if len(leaders_here) != 1:
            raise InvariantViolation(
                f"component {sorted(component, key=repr)[:8]}... has "
                f"{len(leaders_here)} leaders: {leaders_here}"
            )
    report.checks.append("one leader per weakly connected component")

    # Property 2 (+ quiescence): leader knowledge == component, exactly.
    for component in components:
        leader = next(iter(leader_set & component))
        known = result.knowledge[leader]
        if known != frozenset(component):
            missing = sorted(component - known, key=repr)
            extra = sorted(known - component, key=repr)
            raise InvariantViolation(
                f"leader {leader!r}: knowledge mismatch; "
                f"missing={missing[:8]} extra={extra[:8]}"
            )
    report.checks.append("leader knowledge equals its component")

    # Property 3 / 3a+3b: pointer (chains) lead to the right leader.
    for component in components:
        leader = next(iter(leader_set & component))
        for member in component:
            resolved = result.leader_of[member]
            if resolved != leader:
                raise InvariantViolation(
                    f"node {member!r} resolves to {resolved!r}, "
                    f"component leader is {leader!r}"
                )
    report.checks.append("every node resolves to its component leader")

    if result.variant in ("generic", "bounded"):
        # The strict property 3: non-leaders know the leader id *directly*.
        bad = {
            node: length
            for node, length in result.path_lengths.items()
            if length > 1
        }
        if bad:
            raise InvariantViolation(
                f"{result.variant}: non-leaders must point directly at their "
                f"leader; offenders (node: chain length): {dict(list(bad.items())[:8])}"
            )
        report.checks.append("non-leaders point directly at their leader")

    # Steady state: no node stuck in a transient protocol state.
    transient = {
        node: status
        for node, status in result.statuses.items()
        if status in ("passive", "conquered", "asleep")
        or (status == "explore")
    }
    if transient:
        raise InvariantViolation(
            f"nodes stuck in transient states at quiescence: "
            f"{dict(list(transient.items())[:8])}"
        )
    report.checks.append("no transient states at quiescence")

    if result.variant == "bounded":
        non_terminated = [
            leader
            for leader in result.leaders
            if result.statuses[leader] != "terminated"
        ]
        if non_terminated:
            raise InvariantViolation(
                f"bounded leaders did not detect termination: {non_terminated}"
            )
        report.checks.append("bounded leaders terminated explicitly")

    return report
