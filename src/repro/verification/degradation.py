"""Verification under faults: surviving components and outcome taxonomy.

The problem definition's properties are stated for fault-free executions.
Under a :class:`~repro.faults.FaultPlan` the honest questions become:

* **safety** -- did the stepwise invariants I1-I4 hold at every step, and
  did no run quiesce with a *wrong* answer?  Safety must survive any fault
  plan; a protocol that corrupts silently is broken, one that stalls or
  fails loudly is merely degraded.
* **liveness on survivors** -- restricted to the nodes that did not crash,
  did the system quiesce with properties 1-3 holding per weakly connected
  component *of the surviving subgraph*?

This module supplies the machinery the chaos harness needs for both: an
induced-subgraph builder, a tolerant result collector that reports orphans
instead of raising on dead-end pointer chains, and the five-way outcome
taxonomy every chaos trial is binned into.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, Optional, Set

from repro.core.node import DiscoveryNode
from repro.core.result import DiscoveryResult
from repro.graphs.components import weakly_connected_components
from repro.graphs.knowledge_graph import KnowledgeGraph
from repro.sim.network import Simulator
from repro.verification.invariants import InvariantViolation, verify_discovery

NodeId = Hashable

__all__ = [
    "OUTCOME_OK",
    "OUTCOME_RECOVERED",
    "OUTCOME_DEGRADED",
    "OUTCOME_STALLED",
    "OUTCOME_DETECTED",
    "OUTCOME_VIOLATED",
    "OUTCOMES",
    "SurvivalReport",
    "induced_subgraph",
    "collect_tolerant",
    "verify_surviving",
]

#: Chaos-trial outcomes, best to worst.  Only ``violated`` is a bug: the
#: others are the documented ways an execution may degrade under faults.
OUTCOME_OK = "ok"  # quiesced, all properties hold on survivors
#: As good as ``ok``, and harder: all properties hold *and* at least one
#: node crashed, restarted, and reconverged mid-run (crash-recovery model).
OUTCOME_RECOVERED = "recovered"
OUTCOME_DEGRADED = "degraded"  # quiesced, but some survivor property failed
OUTCOME_STALLED = "stalled"  # step budget exhausted; liveness lost
OUTCOME_DETECTED = "detected"  # protocol detected an impossible state (loud)
OUTCOME_VIOLATED = "violated"  # stepwise safety broke -- must never happen
OUTCOMES = (
    OUTCOME_OK,
    OUTCOME_RECOVERED,
    OUTCOME_DEGRADED,
    OUTCOME_STALLED,
    OUTCOME_DETECTED,
    OUTCOME_VIOLATED,
)


def induced_subgraph(graph: KnowledgeGraph, keep: FrozenSet[NodeId]) -> KnowledgeGraph:
    """The subgraph on ``keep``: surviving nodes and the edges among them."""
    nodes = [node for node in graph.nodes if node in keep]
    edges = [(u, v) for u, v in graph.edges() if u in keep and v in keep]
    return KnowledgeGraph(nodes, edges)


def collect_tolerant(
    graph: KnowledgeGraph,
    nodes: Dict[NodeId, DiscoveryNode],
    sim: Simulator,
    variant: str,
    *,
    exclude: FrozenSet[NodeId] = frozenset(),
) -> "tuple[DiscoveryResult, int]":
    """Like :func:`repro.core.result.collect_result`, but never raises on
    broken pointer chains.

    A chain that cycles, dead-ends in a crashed/excluded node, or walks
    into a node that never woke marks its origin an *orphan*: the orphan
    resolves to itself with an implausible path length, which downstream
    verification reports as a property failure (liveness degradation)
    rather than an exception.  Returns ``(result, n_orphans)``.
    """
    keep = [node_id for node_id in graph.nodes if node_id not in exclude]
    leaders = [
        node_id for node_id in keep if nodes[node_id].is_leader and nodes[node_id].awake
    ]
    leader_set = set(leaders)
    leader_of: Dict[NodeId, NodeId] = {}
    path_lengths: Dict[NodeId, int] = {}
    orphans = 0
    for node_id in keep:
        if node_id in leader_set:
            leader_of[node_id] = node_id
            path_lengths[node_id] = 0
            continue
        current = node_id
        length = 0
        seen: Set[NodeId] = set()
        resolved: Optional[NodeId] = None
        while True:
            if current in leader_set:
                resolved = current
                break
            if current in seen or current in exclude or not nodes[current].awake:
                break  # cycle, dead leader, or asleep: unresolvable
            seen.add(current)
            nxt = nodes[current].next
            if nxt == current:
                break  # non-leader root: still mid-protocol
            current = nxt
            length += 1
        if resolved is None:
            orphans += 1
            leader_of[node_id] = node_id
            path_lengths[node_id] = graph.n + 1  # sentinel: visibly broken
        else:
            leader_of[node_id] = resolved
            path_lengths[node_id] = length
    result = DiscoveryResult(
        variant=variant,
        n=len(keep),
        n_edges=sum(1 for u, v in graph.edges() if u not in exclude and v not in exclude),
        leaders=sorted(leader_set, key=repr),
        leader_of=leader_of,
        knowledge={leader: nodes[leader].knowledge for leader in leader_set},
        statuses={node_id: nodes[node_id].status for node_id in keep},
        path_lengths=path_lengths,
        stats=sim.stats.snapshot(),
        steps=sim.steps,
    )
    return result, orphans


@dataclass
class SurvivalReport:
    """Property verdict on the surviving subgraph of one chaotic run."""

    n_survivors: int
    n_components: int
    n_orphans: int
    properties_ok: bool
    detail: str = ""


def verify_surviving(
    graph: KnowledgeGraph,
    nodes: Dict[NodeId, DiscoveryNode],
    sim: Simulator,
    variant: str,
    crashed: FrozenSet[NodeId],
) -> SurvivalReport:
    """Check problem properties 1-3 per component of the surviving subgraph.

    Crashed nodes are cut out of both the node set and the graph; the
    remaining components are verified exactly as a fault-free run would be.
    Failures are reported, not raised -- under faults a property miss is a
    measured degradation, not a test error.
    """
    survivors = frozenset(graph.nodes) - crashed
    subgraph = induced_subgraph(graph, survivors)
    components = weakly_connected_components(subgraph)
    result, orphans = collect_tolerant(graph, nodes, sim, variant, exclude=crashed)
    try:
        verify_discovery(result, subgraph)
        ok, detail = True, ""
    except InvariantViolation as exc:
        ok, detail = False, str(exc)
    except RuntimeError as exc:  # defensive: tolerant collection should cover
        ok, detail = False, f"collection failed: {exc}"
    return SurvivalReport(
        n_survivors=len(survivors),
        n_components=len(components),
        n_orphans=orphans,
        properties_ok=ok,
        detail=detail,
    )
