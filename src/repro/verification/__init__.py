"""Invariant and complexity-lemma checkers used after every execution."""

from repro.verification.invariants import (
    InvariantReport,
    InvariantViolation,
    verify_discovery,
)
from repro.verification.liveness import StagedLivenessReport, staged_liveness_check
from repro.verification.monitor import (
    SafetyViolation,
    StepwiseMonitor,
    check_safety_now,
)
from repro.verification.lemmas import (
    LemmaCheck,
    check_all_lemmas,
    lemma_5_5_queries,
    lemma_5_6_search_release,
    lemma_5_7_merges,
    lemma_5_8_conquers,
    lemma_5_9_reply_ids,
    lemma_5_10_info_ids,
    theorem_7_bits,
)

__all__ = [
    "InvariantReport",
    "InvariantViolation",
    "verify_discovery",
    "LemmaCheck",
    "check_all_lemmas",
    "lemma_5_5_queries",
    "lemma_5_6_search_release",
    "lemma_5_7_merges",
    "lemma_5_8_conquers",
    "lemma_5_9_reply_ids",
    "lemma_5_10_info_ids",
    "theorem_7_bits",
    "StepwiseMonitor",
    "SafetyViolation",
    "check_safety_now",
    "staged_liveness_check",
    "StagedLivenessReport",
]
