"""Staged-wake liveness harness (properties (1)-(4) under partial wake-up).

The problem definition's liveness property quantifies over executions in
which *all* nodes eventually wake; its safety properties must hold "at any
phase", including while parts of the network still sleep.  This harness
makes that checkable as a single call:

wake the nodes one at a time (any order), run to quiescence after each
wake-up, and at every stage check the *staged* safety conditions on the
awake sub-network:

* every awake node resolves through ``next`` pointers to an awake leader
  (or is one);
* that leader's gathered knowledge contains the node;
* the stepwise structural invariants (pointer forest, ownership).

After the final wake-up the full quiescent invariants must hold.

This is the execution pattern of the Lemma 3.1 reduction generalized to
arbitrary graphs, and the strongest liveness statement the model lets us
test mechanically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence

from repro.core.node import DiscoveryNode
from repro.core.result import collect_result
from repro.core.runner import build_simulation, default_step_budget
from repro.graphs.knowledge_graph import KnowledgeGraph
from repro.verification.invariants import verify_discovery
from repro.verification.monitor import check_safety_now

NodeId = Hashable

__all__ = ["StagedLivenessReport", "staged_liveness_check"]


class StagedLivenessError(AssertionError):
    """A staged safety condition failed at an intermediate quiescence."""


@dataclass
class StagedLivenessReport:
    """What the staged drive observed."""

    stages: int = 0
    messages_per_stage: List[int] = field(default_factory=list)
    leaders_per_stage: List[int] = field(default_factory=list)

    def summary(self) -> str:
        return (
            f"{self.stages} stages, messages/stage "
            f"{self.messages_per_stage}, leaders/stage {self.leaders_per_stage}"
        )


def _check_stage(nodes: Dict[NodeId, DiscoveryNode], awake: Sequence[NodeId]) -> int:
    check_safety_now(nodes)
    leaders = set()
    for node_id in awake:
        current = node_id
        hops = 0
        while not nodes[current].is_leader:
            nxt = nodes[current].next
            if nxt == current or hops > len(nodes):
                raise StagedLivenessError(
                    f"awake node {node_id!r} does not resolve to a leader "
                    f"(stuck at {current!r}, status {nodes[current].status})"
                )
            current = nxt
            hops += 1
        if not nodes[current].awake:
            raise StagedLivenessError(
                f"{node_id!r} resolves to sleeping {current!r}"
            )
        if node_id not in nodes[current].knowledge:
            raise StagedLivenessError(
                f"leader {current!r} does not know its member {node_id!r}"
            )
        leaders.add(current)
    return len(leaders)


def staged_liveness_check(
    graph: KnowledgeGraph,
    variant: str = "adhoc",
    *,
    wake_order: Optional[Sequence[NodeId]] = None,
    seed: Optional[int] = None,
) -> StagedLivenessReport:
    """Drive a staged-wake execution; raise on any staged violation.

    Returns the per-stage cost/leader profile (useful for observing how
    the component structure collapses as the network wakes).
    """
    order = list(wake_order) if wake_order is not None else list(graph.nodes)
    if sorted(map(repr, order)) != sorted(map(repr, graph.nodes)):
        raise ValueError("wake_order must be a permutation of the graph's nodes")
    sim, nodes = build_simulation(
        graph, variant, seed=seed, auto_wake=False
    )
    budget = default_step_budget(graph)
    report = StagedLivenessReport()
    awake: List[NodeId] = []
    for node_id in order:
        before = sim.stats.total_messages
        sim.schedule_wake(node_id)
        sim.run(budget)
        awake = [n for n in order if nodes[n].awake]
        report.stages += 1
        report.messages_per_stage.append(sim.stats.total_messages - before)
        report.leaders_per_stage.append(_check_stage(nodes, awake))
    verify_discovery(collect_result(graph, nodes, sim, variant), graph)
    return report
