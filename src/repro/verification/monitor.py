"""Stepwise safety monitoring (the "at any phase" part of Section 1.2).

The problem definition requires its safety properties to hold *throughout*
the execution, not only at quiescence.  :class:`StepwiseMonitor` attaches
to a simulator and, after every executed step, checks the strongest
invariants that are schedule-independent (i.e. hold between any two atomic
steps):

I1  **pointer-forest acyclicity** -- following ``next`` pointers from any
    node terminates at a root (a node whose pointer is itself); roots are
    leaders, or ex-leaders still resolving (passive/conquered).  A cycle
    would orphan entire subtrees (this is the invariant finding F3's phase
    guard protects).

I2  **ownership exclusivity** -- a node id appears in the
    ``more | done | unaware`` sets of at most one node in a leaderish
    state (the merge protocol transfers set ownership wholesale; double
    ownership would double-count and break the accounting lemmas).

I3  **set disjointness** -- within one node, ``more``, ``done`` and
    ``unaware`` are pairwise disjoint, and a leader's own id is in
    ``more | done``.

I4  **root sanity** -- every inactive node's pointer leaves itself (it was
    conquered by someone), and every leaderish node's pointer is itself
    until it merges.

Checking costs O(n) per step, so the monitor is a test-and-debug tool for
small instances, not part of production runs.
"""

from __future__ import annotations

from typing import Dict, Hashable, Set

from repro.core.node import DiscoveryNode
from repro.sim.network import SimulationError, Simulator

NodeId = Hashable

__all__ = ["StepwiseMonitor", "SafetyViolation", "check_safety_now"]

#: States in which a node still owns bookkeeping sets.
_OWNING_STATES = frozenset(
    {"explore", "wait", "conqueror", "terminated", "passive", "conquered"}
)


class SafetyViolation(AssertionError):
    """A stepwise safety invariant failed mid-execution."""


def check_safety_now(nodes: Dict[NodeId, DiscoveryNode], *, step: int = -1) -> None:
    """Check invariants I1-I4 on the current node states; raise on failure."""
    _check_pointer_forest(nodes, step)
    _check_ownership(nodes, step)
    _check_local_consistency(nodes, step)


def _check_pointer_forest(nodes: Dict[NodeId, DiscoveryNode], step: int) -> None:
    resolved: Dict[NodeId, bool] = {}
    for start, node in nodes.items():
        if not node.awake:
            continue
        path = []
        current = start
        seen: Set[NodeId] = set()
        while current not in resolved:
            if current in seen:
                raise SafetyViolation(
                    f"step {step}: next-pointer cycle through {current!r} "
                    f"(path {path[-6:]})"
                )
            seen.add(current)
            path.append(current)
            follower = nodes[current]
            if follower.next == current:
                resolved[current] = True
                break
            current = follower.next
        for visited in path:
            resolved[visited] = True


def _check_ownership(nodes: Dict[NodeId, DiscoveryNode], step: int) -> None:
    owner_of: Dict[NodeId, NodeId] = {}
    for node_id, node in nodes.items():
        if node.status not in _OWNING_STATES:
            continue
        for member in node.more | node.done | node.unaware:
            if member == node_id:
                continue
            if member in owner_of:
                raise SafetyViolation(
                    f"step {step}: {member!r} owned by both "
                    f"{owner_of[member]!r} and {node_id!r}"
                )
            owner_of[member] = node_id


def _check_local_consistency(nodes: Dict[NodeId, DiscoveryNode], step: int) -> None:
    for node_id, node in nodes.items():
        if node.more & node.done:
            raise SafetyViolation(
                f"step {step}: {node_id!r} has more/done overlap "
                f"{sorted(node.more & node.done, key=repr)[:4]}"
            )
        if node.unaware & (node.more | node.done):
            raise SafetyViolation(
                f"step {step}: {node_id!r} has unaware overlap"
            )
        if node.status in _OWNING_STATES and node_id not in (node.more | node.done):
            raise SafetyViolation(
                f"step {step}: {node_id!r} ({node.status}) lost its own entry"
            )
        if node.status == "inactive" and node.next == node_id:
            raise SafetyViolation(
                f"step {step}: inactive {node_id!r} points at itself"
            )


class StepwiseMonitor:
    """Wraps a simulator's step loop with per-step safety checks.

    Usage::

        sim, nodes = build_simulation(graph, "generic")
        monitor = StepwiseMonitor(sim, nodes)
        monitor.run()          # like sim.run(), but checked every step
        print(monitor.steps_checked)
    """

    def __init__(
        self,
        sim: Simulator,
        nodes: Dict[NodeId, DiscoveryNode],
        *,
        every: int = 1,
    ) -> None:
        if every < 1:
            raise ValueError(f"every must be >= 1, got {every}")
        self.sim = sim
        self.nodes = nodes
        self.every = every
        self.steps_checked = 0

    def run(self, max_steps: int = 10**7) -> int:
        executed = 0
        while self.sim.step():
            executed += 1
            if executed > max_steps:
                raise SimulationError(f"no quiescence within {max_steps} steps")
            if executed % self.every == 0:
                check_safety_now(self.nodes, step=self.sim.steps)
                self.steps_checked += 1
        check_safety_now(self.nodes, step=self.sim.steps)
        self.steps_checked += 1
        return executed
