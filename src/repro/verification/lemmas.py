"""Per-message-type complexity checks (Section 5.2/5.3's lemmas).

Each function takes the :class:`~repro.sim.trace.MessageStats` of a
finished run plus the instance parameters and returns a
:class:`LemmaCheck` recording the bound, the measured value, and whether
the bound holds.  The exact lemmas (5.5, 5.7, 5.8) are hard inequalities
the paper proves for *every* execution, so the tests assert them with the
paper's own constants.  The asymptotic ones (5.6, Theorem 7) carry an
unknown constant; we expose the measured/bound ratio and assert it under a
generous default that any correct implementation meets with slack.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.sim.trace import HEADER_BITS, MessageStats
from repro.unionfind.ackermann import alpha, ilog2

__all__ = [
    "LemmaCheck",
    "lemma_5_5_queries",
    "lemma_5_6_search_release",
    "lemma_5_7_merges",
    "lemma_5_8_conquers",
    "lemma_5_9_reply_ids",
    "lemma_5_10_info_ids",
    "theorem_7_bits",
    "check_all_lemmas",
]


@dataclass(frozen=True)
class LemmaCheck:
    """One bound vs. one measurement."""

    name: str
    measured: float
    bound: float
    holds: bool

    @property
    def ratio(self) -> float:
        return self.measured / self.bound if self.bound else float("inf")

    def __str__(self) -> str:
        flag = "ok " if self.holds else "FAIL"
        return f"[{flag}] {self.name}: measured={self.measured} bound={self.bound}"


def lemma_5_5_queries(stats: MessageStats, n: int) -> LemmaCheck:
    """Lemma 5.5's query traffic, with a corrected constant: at most ``6n``.

    The paper bounds query + query-reply pairs by ``4n``: ``2n`` moves into
    ``done`` plus ``2n`` pairs that replenish ``unexplored``.  Two counted
    events are undercounted in that argument (reproduction finding F4):
    a ``done -> more`` reopening also happens when the search that set the
    ``new`` flag ends in an *abort* (the initiator goes passive, not
    inactive, so "at most n" does not apply), and the finding-F2 repair --
    required for liveness -- re-opens a dead initiator's own entry once per
    leader death.  Charging moves-to-done <= 3n, reopened self-entries
    <= n, and searches <= 2n gives ``6n``; schedules exist (e.g. LIFO
    delivery) that exceed ``4n`` while safety holds.
    """
    measured = stats.messages("query", "query-reply")
    bound = 6 * n
    return LemmaCheck(
        "Lemma 5.5 (query+reply <= 6n, corrected)", measured, bound, measured <= bound
    )


def lemma_5_6_search_release(
    stats: MessageStats, n: int, *, constant: int = 16
) -> LemmaCheck:
    """Lemma 5.6: ``O(n alpha(n, n))`` search and release messages.

    The constant is not pinned by the paper; ``constant=16`` is far above
    what the Tarjan/van Leeuwen analysis yields, so a failure indicates a
    real blow-up, not a constant-factor quibble.
    """
    measured = stats.messages("search", "release")
    bound = constant * max(1, n) * alpha(max(1, n), max(1, n))
    return LemmaCheck(
        "Lemma 5.6 (search+release = O(n alpha))", measured, bound, measured <= bound
    )


def lemma_5_7_merges(stats: MessageStats, n: int) -> LemmaCheck:
    """Lemma 5.7's merge traffic, with a corrected constant: at most ``3n``.

    The paper states ``2n``, reasoning that a node sending ``release-merge``
    never returns to a leader state.  That undercounts one real execution
    pattern: a conquered node that receives ``merge-fail`` goes *passive*
    (Figure 6) and can later be conquered again, sending a second
    ``release-merge``.  Each ``merge-fail`` is still charged to a unique
    leader death with an outstanding search (at most ``n``), and each
    successful merge costs ``merge-accept + info`` (at most ``2(n-1)``), so
    the tight bound is ``3n``; executions exceeding ``2n`` are observed in
    practice (see EXPERIMENTS.md, finding F1) and are not a bug.
    """
    measured = stats.messages("merge-accept", "merge-fail", "info")
    bound = 3 * n
    return LemmaCheck(
        "Lemma 5.7 (merge traffic <= 3n, corrected)", measured, bound, measured <= bound
    )


def lemma_5_8_conquers(stats: MessageStats, n: int, variant: str) -> LemmaCheck:
    """Lemma 5.8: conquer + more/done <= ``2 n log n`` (generic), ``2n``
    (bounded), and 0 for Ad-hoc (which never conquers)."""
    measured = stats.messages("conquer", "more-done")
    if variant == "generic":
        bound = 2 * max(1, n) * max(1, ilog2(max(2, n)) + 1)
        name = "Lemma 5.8 (conquer traffic <= 2n log n)"
    elif variant == "bounded":
        bound = 2 * n
        name = "Lemma 5.8 (bounded conquer traffic <= 2n)"
    else:
        bound = 0
        name = "Lemma 5.8 (ad-hoc sends no conquers)"
    return LemmaCheck(name, measured, bound, measured <= bound)


def lemma_5_9_reply_ids(
    stats: MessageStats, n: int, n_edges: int, id_bits: int
) -> LemmaCheck:
    """Lemma 5.9: ids carried in query replies, corrected to ``2|E0| + n``.

    The paper's charge is exact: each ``E0`` edge contributes its head id
    at most once (first report) and its tail id at most once (the reverse
    edge created by a search's target absorption) -- ``2|E0|`` ids.  The
    finding-F2 repair re-feeds at most one release-learned id per leader
    death into ``local``, adding at most ``n`` re-reports.

    The id count is reconstructed exactly from the bit accounting: a
    query-reply costs ``HEADER + |ids| * id_bits + 1`` bits.
    """
    count = stats.messages("query-reply")
    bits = stats.bits("query-reply")
    ids_total = (bits - (HEADER_BITS + 1) * count) // max(1, id_bits)
    bound = 2 * n_edges + n
    return LemmaCheck(
        "Lemma 5.9 (reply ids <= 2|E0| + n, corrected)",
        ids_total,
        bound,
        ids_total <= bound,
    )


def lemma_5_10_info_ids(
    stats: MessageStats, n: int, id_bits: int
) -> LemmaCheck:
    """Lemma 5.10: ids carried in info messages are at most ``4 n log2 n``
    (the ``4 n log^2 n`` bit bound divided by the ``log n`` bits per id).

    Holds because every leader keeps ``|more|+|done|+|unaware| < 2^(phase+1)``
    and ``|unexplored| <= 2^(phase+1)`` (the Section 4.1 query balance), and
    at most ``n / 2^i`` leaders ever reach phase ``i``.
    """
    count = stats.messages("info")
    bits = stats.bits("info")
    # Info costs HEADER + (n_ids + 1) * id_bits (the +1 is the phase field).
    ids_total = (bits - HEADER_BITS * count) // max(1, id_bits) - count
    log_n = max(1, ilog2(max(2, n)) + 1)
    bound = 4 * n * log_n
    return LemmaCheck(
        "Lemma 5.10 (info ids <= 4n log n)", ids_total, bound, ids_total <= bound
    )


def theorem_7_bits(
    stats: MessageStats, n: int, n_edges: int, *, constant: int = 24
) -> LemmaCheck:
    """Theorem 7: total bits ``O(|E0| log n + n log^2 n)``."""
    log_n = max(1, ilog2(max(2, n)) + 1)
    measured = stats.total_bits
    bound = constant * (max(1, n_edges) * log_n + n * log_n * log_n)
    return LemmaCheck(
        "Theorem 7 (bits = O(|E0| log n + n log^2 n))",
        measured,
        bound,
        measured <= bound,
    )


def check_all_lemmas(
    stats: MessageStats,
    n: int,
    n_edges: int,
    variant: str,
    *,
    id_bits: Optional[int] = None,
) -> List[LemmaCheck]:
    """Run every applicable per-type bound; callers assert ``all(c.holds)``.

    ``id_bits`` (default ``ceil(log2 n)``, matching the runners) enables the
    exact id-count reconstructions of Lemmas 5.9 and 5.10.
    """
    if id_bits is None:
        id_bits = 1 if n <= 1 else (n - 1).bit_length()
    checks = [
        lemma_5_5_queries(stats, n),
        lemma_5_6_search_release(stats, n),
        lemma_5_7_merges(stats, n),
        lemma_5_8_conquers(stats, n, variant),
        lemma_5_9_reply_ids(stats, n, n_edges, id_bits),
        lemma_5_10_info_ids(stats, n, id_bits),
        theorem_7_bits(stats, n, n_edges),
    ]
    return checks
