"""Sharded multi-process experiment execution with result caching.

The scaling experiments are embarrassingly parallel across seeds and
configurations; this package turns them into :class:`~repro.parallel.jobs.Job`
specs and fans them out over a forked worker pool while keeping the output
bitwise identical to a serial run.  See DESIGN.md section 8.

Typical use::

    from repro.parallel import ParallelExecutor, ResultCache

    executor = ParallelExecutor(workers=8, cache=ResultCache())
    headers, rows = executor.sweep("near-linear", seeds=range(16))

or, through the CLI::

    python -m repro sweep --exp near-linear --seeds 0:16 --workers 8
"""

from .cache import DEFAULT_CACHE_DIR, CacheStats, ResultCache
from .executor import JobFailure, JobResult, ParallelExecutor
from .jobs import (
    CACHE_SCHEMA_VERSION,
    Job,
    experiment_name,
    resolve_experiment,
    shard_seeds,
    sweep_jobs,
)
from .progress import NullProgress, ProgressReporter

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "CacheStats",
    "DEFAULT_CACHE_DIR",
    "Job",
    "JobFailure",
    "JobResult",
    "NullProgress",
    "ParallelExecutor",
    "ProgressReporter",
    "ResultCache",
    "experiment_name",
    "resolve_experiment",
    "shard_seeds",
    "sweep_jobs",
]
