"""Sharded multi-process execution of experiment jobs.

:class:`ParallelExecutor` fans :class:`~repro.parallel.jobs.Job` specs out
over a ``concurrent.futures.ProcessPoolExecutor`` (forked workers), with

* a **serial fallback** for ``workers=1`` and for platforms without
  ``fork`` -- the exact same code path minus the pool, so behaviour never
  depends on the backend;
* **crash isolation**: worker-side exceptions are caught and returned as
  failed :class:`JobResult`\\ s, and a broken pool (a worker killed by a
  segfault or the OOM killer) degrades to in-process execution of the
  remaining jobs instead of aborting the sweep;
* **partial-batch recovery**: workers spool each finished job result to a
  per-batch file as they go, so when a pool breaks (or a batch times out)
  the jobs that already succeeded are *recovered from the spool* and only
  the genuinely unfinished tail of the batch is re-executed -- a batch is
  never thrown away because its last job crashed the worker;
* a **per-job timeout** that marks the job failed and reclaims the worker
  rather than hanging the sweep on one diverging simulation;
* **per-job retry with backoff**: ``retries=N`` re-runs failed and
  timed-out jobs up to N extra rounds, sleeping ``backoff * 2**round``
  between rounds; every result carries its ``attempts`` count so sweeps
  report what the retries cost.  The default ``retries=0`` is the exact
  historical fail-fast behaviour;
* **job batching**: when a sweep has many more jobs than workers, jobs
  are grouped into at most ``workers * batches_per_worker`` round-robin
  batches and each *batch* is one pool submission, so the per-future
  overhead (pickling, IPC wakeups, result marshalling) is paid once per
  batch instead of once per tiny job -- the fix for the negative speedup
  the first ``BENCH_parallel.json`` entry recorded.  Sweeps with at most
  ``workers * batches_per_worker`` jobs get singleton batches, i.e. the
  exact pre-batching behaviour (including per-job timeouts);
* **determinism**: jobs are submitted in deterministic shard-interleaved
  order (:func:`~repro.parallel.jobs.shard_seeds`) and results are
  collected back into submission order, so the aggregated tables are
  bitwise identical for any worker count, any batch shape and any
  completion order;
* transparent **result caching** when a
  :class:`~repro.parallel.cache.ResultCache` is attached.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import shutil
import tempfile
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Iterator, List, Optional, Sequence, Tuple

from repro.analysis.registry import ExperimentRecord

from .cache import ResultCache
from .jobs import Job, experiment_name, resolve_experiment, shard_seeds, sweep_jobs
from .progress import NullProgress

Table = Tuple[List[str], List[List[Any]]]

__all__ = ["JobResult", "JobFailure", "ParallelExecutor"]

#: JobResult.status values.
DONE, FAILED, TIMEOUT, CACHED = "done", "failed", "timeout", "cached"


class JobFailure(RuntimeError):
    """Raised by the strict APIs when any job failed or timed out."""


@dataclass
class JobResult:
    """Outcome of one job: a table, or an error string.

    ``attempts`` counts executions of this job including retries; cache
    hits keep 1 (the original computation is the attempt that counts).
    """

    job: Job
    status: str
    headers: Optional[List[str]] = None
    rows: Optional[List[List[Any]]] = None
    wall: Optional[float] = None
    error: Optional[str] = None
    messages: Optional[int] = None
    attempts: int = 1

    @property
    def ok(self) -> bool:
        return self.status in (DONE, CACHED)

    @property
    def table(self) -> Table:
        if not self.ok:
            raise JobFailure(f"{self.job.label()}: {self.status} ({self.error})")
        return list(self.headers or []), [list(row) for row in self.rows or []]

    def to_record(self) -> ExperimentRecord:
        headers, rows = self.table
        metadata = {
            "job": self.job.spec(),
            "wall_s": self.wall,
            "messages": self.messages,
        }
        if self.attempts > 1:
            metadata["attempts"] = self.attempts
        return ExperimentRecord(
            name=self.job.label(),
            headers=headers,
            rows=rows,
            metadata=metadata,
        )

    @classmethod
    def from_record(cls, job: Job, record: ExperimentRecord) -> "JobResult":
        return cls(
            job=job,
            status=CACHED,
            headers=record.headers,
            rows=record.rows,
            wall=record.metadata.get("wall_s"),
            messages=record.metadata.get("messages"),
        )


def _extract_messages(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> Optional[int]:
    """Total of a ``messages`` column, if the table has one (for progress)."""
    try:
        col = list(headers).index("messages")
    except ValueError:
        return None
    total = 0
    for row in rows:
        cell = row[col]
        if isinstance(cell, (int, float)) and not isinstance(cell, bool):
            total += int(cell)
    return total


def _safe_execute(job: Job) -> JobResult:
    """Run one job, converting any exception into a failed result.

    Module-level so it pickles into pool workers; also the serial path.
    """
    start = time.perf_counter()
    try:
        fn = resolve_experiment(job.experiment)
        kwargs = job.kwargs_dict()
        if job.seed is not None:
            kwargs["seed"] = job.seed
        headers, rows = fn(**kwargs)
        headers = list(headers)
        rows = [list(row) for row in rows]
    except Exception as exc:  # crash isolation: one bad job != dead sweep
        return JobResult(
            job=job,
            status=FAILED,
            wall=time.perf_counter() - start,
            error=f"{type(exc).__name__}: {exc}",
        )
    return JobResult(
        job=job,
        status=DONE,
        headers=headers,
        rows=rows,
        wall=time.perf_counter() - start,
        messages=_extract_messages(headers, rows),
    )


def _safe_execute_batch(batch: List[Job], spool_path: Optional[str] = None) -> List[JobResult]:
    """Run a batch of jobs in one worker invocation, preserving order.

    Crash isolation stays per-job (each job goes through
    :func:`_safe_execute`), only the *submission* is batched.  Each
    finished result is appended to ``spool_path`` before the next job
    starts, so if a later job kills the worker outright the parent can
    recover the completed prefix instead of re-running it.
    """
    results = []
    for job in batch:
        result = _safe_execute(job)
        results.append(result)
        if spool_path is not None:
            with open(spool_path, "ab") as fh:
                pickle.dump(result, fh)
                fh.flush()
    return results


def _read_spool(spool_path: str) -> List[JobResult]:
    """Recover the completed prefix of a batch from its spool file.

    A missing file means the worker died before its first job finished; a
    torn trailing record (killed mid-write) terminates the prefix.
    """
    results: List[JobResult] = []
    try:
        with open(spool_path, "rb") as fh:
            while True:
                results.append(pickle.load(fh))
    except (OSError, EOFError, pickle.UnpicklingError, AttributeError):
        pass
    return results


def _fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


@dataclass
class ParallelExecutor:
    """Deterministic fan-out of experiment jobs over a process pool.

    ``workers=1`` (the default) runs serially in-process; higher counts
    fork a pool.  ``timeout`` bounds the wait for each job's result in
    seconds; batched submissions get a pooled budget of
    ``timeout * len(batch)``, so the average per-job bound is unchanged
    (one pathological job can borrow budget from its batch mates, which is
    the price of amortizing pool overhead -- sweeps small enough for
    singleton batches keep the exact per-job bound).
    ``batches_per_worker`` controls the batching granularity: pending jobs
    are split into at most ``workers * batches_per_worker`` round-robin
    batches (more batches = finer load balancing, fewer batches = less
    per-future overhead).  ``retries``/``backoff`` give every failed or
    timed-out job up to ``retries`` extra executions with exponential
    inter-round backoff (default 0: fail fast, the historical contract).
    ``executed`` counts jobs actually run (cache hits excluded) over the
    executor's lifetime, *including* retry executions.
    """

    workers: int = 1
    timeout: Optional[float] = None
    batches_per_worker: int = 2
    cache: Optional[ResultCache] = None
    progress: Any = field(default_factory=NullProgress)
    retries: int = 0
    backoff: float = 0.0
    executed: int = 0

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.batches_per_worker < 1:
            raise ValueError(
                f"batches_per_worker must be >= 1, got {self.batches_per_worker}"
            )
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.backoff < 0:
            raise ValueError(f"backoff must be >= 0, got {self.backoff}")

    # ------------------------------------------------------------------
    # core
    # ------------------------------------------------------------------
    def run(self, jobs: Sequence[Job]) -> List[JobResult]:
        """Execute ``jobs``; results align index-for-index with the input."""
        jobs = list(jobs)
        results: List[Optional[JobResult]] = [None] * len(jobs)
        self.progress.begin(len(jobs))
        done = 0

        pending: List[int] = []
        for index, job in enumerate(jobs):
            record = self.cache.get(job) if self.cache is not None else None
            if record is not None:
                results[index] = JobResult.from_record(job, record)
                done += 1
                self.progress.report(results[index], done, len(jobs))
            else:
                pending.append(index)

        if pending:
            parallel = self.workers > 1 and _fork_available()
            runner = self._run_pool if parallel else self._run_serial
            for index, result in runner(jobs, pending):
                results[index] = result
                self._account(result)
                done += 1
                self.progress.report(result, done, len(jobs))

            for retry_round in range(1, self.retries + 1):
                retry = [
                    index
                    for index in pending
                    if results[index] is not None and not results[index].ok
                ]
                if not retry:
                    break
                if self.backoff > 0:
                    time.sleep(self.backoff * (2 ** (retry_round - 1)))
                for index, result in runner(jobs, retry):
                    result.attempts = results[index].attempts + 1
                    results[index] = result
                    self._account(result)
                    # done is already len(jobs); re-report so the retry
                    # outcome shows up in the progress stream.
                    self.progress.report(result, done, len(jobs))

        summary = self.cache.stats.summary() if self.cache is not None else ""
        self.progress.end(summary)
        return [result for result in results if result is not None]

    def _account(self, result: JobResult) -> None:
        self.executed += 1
        if result.status == DONE and self.cache is not None:
            self.cache.put(result.job, result.to_record())

    def _run_serial(
        self, jobs: Sequence[Job], pending: Sequence[int]
    ) -> Iterator[Tuple[int, JobResult]]:
        for index in pending:
            yield index, _safe_execute(jobs[index])

    def _run_pool(
        self, jobs: Sequence[Job], pending: Sequence[int]
    ) -> Iterator[Tuple[int, JobResult]]:
        # Deterministic round-robin batching: batch i takes every
        # n_batches-th pending job, so long jobs spread across the pool
        # and the partition is a pure function of (pending, workers,
        # batches_per_worker).  One future per *batch* keeps the pool's
        # per-future overhead off the per-job cost; with few jobs the
        # batches degenerate to singletons and this is exactly the old
        # one-future-per-job submission.
        n_batches = min(len(pending), self.workers * self.batches_per_worker)
        batches = shard_seeds(pending, n_batches)
        spool_dir = tempfile.mkdtemp(prefix="repro-sweep-spool-")
        spools = [
            os.path.join(spool_dir, f"batch-{batch_index}.pkl")
            for batch_index in range(len(batches))
        ]
        pool = ProcessPoolExecutor(
            max_workers=self.workers, mp_context=multiprocessing.get_context("fork")
        )
        timed_out = False
        try:
            futures = [
                pool.submit(
                    _safe_execute_batch,
                    [jobs[index] for index in batch],
                    spool,
                )
                for batch, spool in zip(batches, spools)
            ]
            broken = False
            for batch, future, spool in zip(batches, futures, spools):
                if broken:
                    # Pool died earlier.  This batch's future either
                    # finished before the break (use its results), or is
                    # dead -- recover its spooled prefix and finish the
                    # rest in-process.
                    try:
                        batch_results = future.result(timeout=0)
                    except Exception:
                        yield from self._recover_batch(jobs, batch, spool)
                        continue
                    for index, result in zip(batch, batch_results):
                        yield index, result
                    continue
                budget = None if self.timeout is None else self.timeout * len(batch)
                try:
                    batch_results = future.result(timeout=budget)
                except FuturesTimeoutError:
                    timed_out = True
                    future.cancel()
                    # Jobs that finished before the budget ran out are in
                    # the spool; only the unfinished tail is charged the
                    # timeout.
                    recovered = _read_spool(spool)
                    for offset, index in enumerate(batch):
                        if offset < len(recovered):
                            yield index, recovered[offset]
                            continue
                        yield index, JobResult(
                            job=jobs[index],
                            status=TIMEOUT,
                            wall=self.timeout,
                            error=(
                                f"batch of {len(batch)} job(s) produced no "
                                f"result after {budget:g}s"
                            ),
                        )
                    continue
                except BrokenProcessPool:
                    broken = True
                    yield from self._recover_batch(jobs, batch, spool)
                    continue
                for index, result in zip(batch, batch_results):
                    yield index, result
        finally:
            if timed_out:
                # Don't block on workers still grinding the timed-out job.
                pool.shutdown(wait=False, cancel_futures=True)
                try:
                    for process in list(getattr(pool, "_processes", {}).values()):
                        process.terminate()
                except Exception:
                    pass
            else:
                pool.shutdown(wait=True)
            shutil.rmtree(spool_dir, ignore_errors=True)

    def _recover_batch(
        self, jobs: Sequence[Job], batch: Sequence[int], spool: str
    ) -> Iterator[Tuple[int, JobResult]]:
        """Salvage a broken batch: spooled prefix as-is, rest in-process.

        The worker appended each result to the spool *before* starting the
        next job, so the spool is exactly the batch's completed prefix and
        re-execution resumes from the first unfinished job.
        """
        recovered = _read_spool(spool)
        for offset, index in enumerate(batch):
            if offset < len(recovered):
                yield index, recovered[offset]
            else:
                yield index, _safe_execute(jobs[index])

    # ------------------------------------------------------------------
    # conveniences
    # ------------------------------------------------------------------
    def map_seeds(self, experiment: Any, seeds: Sequence[int], **kwargs: Any) -> List[Table]:
        """Tables for ``experiment`` across ``seeds``, in seed order.

        Signature-compatible with :func:`repro.analysis.sweep.sweep_seeds`'s
        ``map_fn`` hook; raises :class:`JobFailure` if any job failed.
        """
        name = experiment_name(experiment)
        results = self.run(sweep_jobs(name, seeds, kwargs))
        failures = [r for r in results if not r.ok]
        if failures:
            detail = "; ".join(f"{r.job.label()}: {r.status} ({r.error})" for r in failures)
            raise JobFailure(f"{len(failures)} job(s) failed: {detail}")
        return [r.table for r in results]

    def sweep(self, experiment: Any, seeds: Sequence[int], **kwargs: Any) -> Table:
        """Run and aggregate a whole seed sweep (one call, one table)."""
        from repro.analysis.sweep import aggregate_tables

        return aggregate_tables(self.map_seeds(experiment, seeds, **kwargs))
