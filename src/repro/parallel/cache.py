"""Content-addressed result cache for experiment jobs.

Each completed job is persisted as an :class:`ExperimentRecord` JSON file
named by the job's content hash (``<key>.json``) under
``benchmarks/results/cache/`` by default.  A re-run of the same sweep --
or a partial sweep that shares jobs with an earlier one -- loads the
stored tables instead of re-executing, which turns the expensive scale
experiments into incremental work.

Only successful jobs are stored; failures and timeouts always re-execute.
On load, the stored job spec is compared against the requesting job's
spec, so a truncated file, a hash collision, or a schema bump
(:data:`~repro.parallel.jobs.CACHE_SCHEMA_VERSION`) degrades to a miss,
never to a wrong table.

The cache is an accelerator, never a prerequisite: if the cache directory
cannot be written (read-only checkout, bad ``--cache-dir``, full disk),
the first failed store prints one warning and disables the cache for the
rest of the run -- the sweep itself proceeds uncached instead of dying
with a traceback.
"""

from __future__ import annotations

import pathlib
import sys
from dataclasses import dataclass, field
from typing import Optional, Union

from repro.analysis.registry import ExperimentRecord

from .jobs import Job

PathLike = Union[str, pathlib.Path]

__all__ = ["CacheStats", "ResultCache", "DEFAULT_CACHE_DIR"]

#: Relative to the repository root (the CLI's working directory).
DEFAULT_CACHE_DIR = pathlib.Path("benchmarks") / "results" / "cache"


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    stores: int = 0

    def summary(self) -> str:
        return f"cache: {self.hits} hits, {self.misses} misses, {self.stores} stores"


@dataclass
class ResultCache:
    """Directory-backed map from :meth:`Job.key` to experiment records."""

    directory: PathLike = DEFAULT_CACHE_DIR
    stats: CacheStats = field(default_factory=CacheStats)
    disabled: bool = False

    def __post_init__(self) -> None:
        self.directory = pathlib.Path(self.directory)

    def path_for(self, job: Job) -> pathlib.Path:
        return pathlib.Path(self.directory) / f"{job.key()}.json"

    def _disable(self, exc: OSError) -> None:
        self.disabled = True
        print(
            f"warning: result cache disabled: cannot write "
            f"{self.directory} ({exc}); continuing without caching",
            file=sys.stderr,
        )

    def get(self, job: Job) -> Optional[ExperimentRecord]:
        """The stored record for ``job``, or ``None`` on any miss."""
        if self.disabled:
            self.stats.misses += 1
            return None
        path = self.path_for(job)
        try:
            record = ExperimentRecord.from_json(path.read_text())
        except (OSError, ValueError):
            self.stats.misses += 1
            return None
        if record.metadata.get("job") != job.spec():
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return record

    def put(self, job: Job, record: ExperimentRecord) -> Optional[pathlib.Path]:
        """Persist ``record`` under the job's content address.

        Returns ``None`` (and disables the cache, with one warning) when
        the directory is unwritable -- a sweep must survive a read-only
        cache location.
        """
        if self.disabled:
            return None
        directory = pathlib.Path(self.directory)
        path = self.path_for(job)
        try:
            directory.mkdir(parents=True, exist_ok=True)
            # Write-then-rename so a crashed run never leaves a torn file
            # that would be read back as a record.
            tmp = path.with_suffix(".json.tmp")
            tmp.write_text(record.to_json())
            tmp.replace(path)
        except OSError as exc:
            self._disable(exc)
            return None
        self.stats.stores += 1
        return path

    def clear(self) -> int:
        """Delete every cached record; returns the number removed."""
        directory = pathlib.Path(self.directory)
        removed = 0
        if directory.is_dir():
            for path in directory.glob("*.json"):
                path.unlink()
                removed += 1
        return removed
