"""Streaming per-job status for sweeps, written to stderr.

Kept away from stdout on purpose: the CLI prints the aggregated table on
stdout, so ``python -m repro sweep ... > table.txt`` stays clean while the
operator still sees jobs complete live.
"""

from __future__ import annotations

import sys
import time
from typing import IO, Optional

__all__ = ["ProgressReporter", "NullProgress"]


class NullProgress:
    """No-op reporter (the default for library use)."""

    def begin(self, total: int) -> None:
        pass

    def report(self, result, done: int, total: int) -> None:
        pass

    def end(self, summary: str = "") -> None:
        pass


class ProgressReporter(NullProgress):
    """One line per job: status, label, wall-clock, message count."""

    def __init__(self, stream: Optional[IO[str]] = None, enabled: bool = True):
        self.stream = stream if stream is not None else sys.stderr
        self.enabled = enabled
        self.started_at = 0.0

    def _emit(self, line: str) -> None:
        if self.enabled:
            print(line, file=self.stream, flush=True)

    def begin(self, total: int) -> None:
        self.started_at = time.perf_counter()
        self._emit(f"queued {total} job(s)")

    def report(self, result, done: int, total: int) -> None:
        width = len(str(total))
        parts = [f"[{done:>{width}}/{total}]", f"{result.status:<7}", result.job.label()]
        if result.wall is not None:
            parts.append(f"{result.wall:.2f}s")
        if result.messages is not None:
            parts.append(f"{result.messages:,} msgs")
        if result.error:
            parts.append(result.error)
        self._emit("  ".join(parts))

    def end(self, summary: str = "") -> None:
        elapsed = time.perf_counter() - self.started_at
        line = f"sweep finished in {elapsed:.2f}s"
        if summary:
            line = f"{line}  ({summary})"
        self._emit(line)
