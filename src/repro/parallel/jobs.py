"""Picklable job specs and deterministic seed sharding.

A :class:`Job` names an experiment (either a key of
:data:`repro.analysis.experiments.SWEEPABLE_EXPERIMENTS` or an importable
``module:qualname`` path), a frozen kwargs tuple, and an optional seed.
Because the spec is pure data, jobs cross process boundaries cheaply and
hash to a stable content address -- the cache key of
:mod:`repro.parallel.cache`.

Determinism contract: jobs are *identified* by their spec, never by the
worker that ran them or the order they finished in, so an executor that
collects results back into submission order produces bitwise-identical
sweeps for any worker count.
"""

from __future__ import annotations

import functools
import hashlib
import importlib
import json
import pathlib
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "Job",
    "experiment_name",
    "protocol_code_digest",
    "resolve_experiment",
    "sweep_jobs",
    "shard_seeds",
]

#: Bumped whenever the record layout or the job spec changes shape, so a
#: stale on-disk cache can never be mistaken for a fresh result.
#: Version 2 added the ``code`` digest to :meth:`Job.spec`: before that,
#: editing the protocol or simulator source silently replayed stale cached
#: tables computed by the *old* code.
CACHE_SCHEMA_VERSION = 2


def _default_code_roots() -> Tuple[pathlib.Path, ...]:
    """Directories whose source participates in every job's identity."""
    package = pathlib.Path(__file__).resolve().parent.parent
    return (package / "core", package / "sim")


@functools.lru_cache(maxsize=None)
def _digest_of_roots(roots: Tuple[str, ...]) -> str:
    hasher = hashlib.sha256()
    for root in roots:
        root_path = pathlib.Path(root)
        for path in sorted(root_path.rglob("*.py")):
            hasher.update(path.name.encode())
            hasher.update(b"\0")
            hasher.update(path.read_bytes())
            hasher.update(b"\0")
    return hasher.hexdigest()[:16]


def protocol_code_digest() -> str:
    """Digest of the protocol + simulator source trees.

    Folded into :meth:`Job.spec` so cached experiment results are keyed by
    the *code that produced them*, not just the parameters: touch any file
    under ``repro/core`` or ``repro/sim`` and every cache entry misses.
    Memoized per process (a sweep computes thousands of keys); tests that
    rewrite source trees call ``_digest_of_roots.cache_clear()``.
    """
    return _digest_of_roots(tuple(str(root) for root in _default_code_roots()))


def _registry() -> Dict[str, Callable]:
    # Imported lazily: analysis.experiments pulls in the whole algorithm
    # stack, which worker processes fork before first use.
    from repro.analysis.experiments import SWEEPABLE_EXPERIMENTS

    return SWEEPABLE_EXPERIMENTS


def experiment_name(experiment: Any) -> str:
    """Canonical string name for a registry key or module-level callable.

    Lambdas and closures are rejected: a job must be reconstructible from
    its spec alone in a fresh process.
    """
    if isinstance(experiment, str):
        if experiment in _registry() or ":" in experiment:
            return experiment
        known = ", ".join(sorted(_registry()))
        raise ValueError(f"unknown experiment {experiment!r}; choose from {known}")
    if callable(experiment):
        for name, fn in _registry().items():
            if fn is experiment:
                return name
        qualname = getattr(experiment, "__qualname__", "")
        module = getattr(experiment, "__module__", "")
        if not module or not qualname or "<" in qualname:
            raise ValueError(
                f"{experiment!r} is not importable by name (lambda/closure?); "
                "register it in SWEEPABLE_EXPERIMENTS or use a module-level "
                "function"
            )
        return f"{module}:{qualname}"
    raise TypeError(f"experiment must be a name or callable, got {type(experiment)}")


def resolve_experiment(name: str) -> Callable:
    """Inverse of :func:`experiment_name`; runs in worker processes."""
    registry = _registry()
    if name in registry:
        return registry[name]
    if ":" in name:
        module_name, _, qualname = name.partition(":")
        obj: Any = importlib.import_module(module_name)
        for part in qualname.split("."):
            obj = getattr(obj, part)
        if not callable(obj):
            raise ValueError(f"{name!r} resolved to non-callable {obj!r}")
        return obj
    known = ", ".join(sorted(registry))
    raise ValueError(f"unknown experiment {name!r}; choose from {known}")


@dataclass(frozen=True)
class Job:
    """One experiment execution: registry name + kwargs + seed.

    ``kwargs`` is stored as a sorted tuple of pairs so two jobs built from
    differently-ordered dicts compare (and hash) equal.
    """

    experiment: str
    kwargs: Tuple[Tuple[str, Any], ...] = ()
    seed: Optional[int] = None

    @classmethod
    def create(
        cls,
        experiment: Any,
        kwargs: Optional[Dict[str, Any]] = None,
        seed: Optional[int] = None,
    ) -> "Job":
        return cls(
            experiment=experiment_name(experiment),
            kwargs=tuple(sorted((kwargs or {}).items())),
            seed=seed,
        )

    def kwargs_dict(self) -> Dict[str, Any]:
        return dict(self.kwargs)

    def spec(self) -> Dict[str, Any]:
        """The full content-addressed identity of this job.

        Normalized through JSON (tuples become lists, ...) so a spec that
        round-tripped through a cache file compares equal to a fresh one.
        """
        raw = {
            "version": CACHE_SCHEMA_VERSION,
            "code": protocol_code_digest(),
            "experiment": self.experiment,
            "kwargs": self.kwargs_dict(),
            "seed": self.seed,
        }
        return json.loads(json.dumps(raw, sort_keys=True, default=repr))

    def key(self) -> str:
        """Stable hex digest of :meth:`spec` -- the cache filename."""
        canonical = json.dumps(self.spec(), sort_keys=True)
        return hashlib.sha256(canonical.encode()).hexdigest()[:24]

    def label(self) -> str:
        suffix = "" if self.seed is None else f" seed={self.seed}"
        return f"{self.experiment}{suffix}"


def sweep_jobs(
    experiment: Any,
    seeds: Sequence[int],
    kwargs: Optional[Dict[str, Any]] = None,
) -> List[Job]:
    """One job per seed, in seed order (which is also result order)."""
    name = experiment_name(experiment)
    return [Job.create(name, kwargs, seed) for seed in seeds]


def shard_seeds(seeds: Sequence[int], n_shards: int) -> List[List[int]]:
    """Deterministic round-robin partition of ``seeds`` into ``n_shards``.

    Shard ``i`` receives ``seeds[i::n_shards]``; empty shards are dropped.
    The partition depends only on the input order and the shard count, so
    schedulers that interleave submission across shards stay reproducible.
    This is also the executor's job-batching partition: each shard of
    pending job indices becomes one pool submission, which keeps batch
    composition -- and therefore timeout accounting and fallback order --
    a pure function of the sweep spec.
    """
    if n_shards <= 0:
        raise ValueError(f"n_shards must be positive, got {n_shards}")
    seeds = list(seeds)
    shards = [seeds[i::n_shards] for i in range(n_shards)]
    return [shard for shard in shards if shard]
