"""The campaign store: one SQLite row per experiment cell.

Cells move through a small state machine::

    pending --claim--> claimed --complete--> done          (terminal)
                          |                     ^
                          |  fail               |  (idempotent: the first
                          v                     |   writer wins, late
                    [classification]  ----------+   completions only bump
                          |                         the compute counter)
            transient / first-time error:
                attempts += 1, back to pending with
                next_attempt_at = now + backoff * 2**(attempts-1)
            same error digest twice, or attempts >= cap:
                failed                                      (terminal)

Claims are **leases**: a claim stamps ``lease_owner`` and
``lease_expires``; a claimed cell whose lease has expired is claimable
again (the owner was SIGKILLed, wedged, or partitioned away), so a
campaign always drains as long as one worker survives.  Every claim,
heartbeat, completion, and failure is one ``BEGIN IMMEDIATE``
transaction, which is what makes two racing workers partition the cells
instead of double-computing them.

Results are upserted idempotently: ``complete()`` on an already-done cell
leaves the stored result untouched and only increments ``compute_count``
-- the counter the zero-recompute acceptance test audits.  Cell identity
is :meth:`repro.parallel.jobs.Job.key`, the content digest that already
folds in ``CACHE_SCHEMA_VERSION`` and the protocol source digest, so a
code edit between ``init`` and ``resume`` is *detected* (see
:meth:`CampaignStore.check_code`) instead of silently mixing results from
two code versions.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
import sqlite3
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Union

from repro.parallel.jobs import Job, protocol_code_digest

PathLike = Union[str, pathlib.Path]

__all__ = [
    "CAMPAIGN_SCHEMA_VERSION",
    "PENDING",
    "CLAIMED",
    "DONE",
    "FAILED",
    "CampaignCell",
    "CampaignError",
    "CampaignCodeDrift",
    "CampaignStore",
]

#: Bumped whenever the table layout changes shape; a mismatching store
#: refuses to open rather than guessing.
CAMPAIGN_SCHEMA_VERSION = 1

#: Cell states.  ``done`` and ``failed`` are terminal; ``failed`` means
#: failed-*permanent* -- transient failures go back to ``pending``.
PENDING, CLAIMED, DONE, FAILED = "pending", "claimed", "done", "failed"

_SCHEMA = """
CREATE TABLE meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE cells (
    id              INTEGER PRIMARY KEY,
    key             TEXT NOT NULL UNIQUE,
    experiment      TEXT NOT NULL,
    kwargs          TEXT NOT NULL,
    seed            INTEGER,
    status          TEXT NOT NULL DEFAULT 'pending',
    attempts        INTEGER NOT NULL DEFAULT 0,
    compute_count   INTEGER NOT NULL DEFAULT 0,
    redundant       INTEGER NOT NULL DEFAULT 0,
    lease_owner     TEXT,
    lease_expires   REAL,
    next_attempt_at REAL NOT NULL DEFAULT 0,
    error           TEXT,
    error_digest    TEXT,
    wall            REAL,
    result          TEXT,
    aggregated      INTEGER NOT NULL DEFAULT 0
);
CREATE INDEX cells_status ON cells (status, next_attempt_at);
CREATE TABLE agg_groups (
    group_key TEXT PRIMARY KEY,
    headers   TEXT NOT NULL,
    n_rows    INTEGER NOT NULL,
    n_cells   INTEGER NOT NULL DEFAULT 0
);
CREATE TABLE agg_cells (
    group_key TEXT NOT NULL,
    row_index INTEGER NOT NULL,
    col_index INTEGER NOT NULL,
    kind      TEXT NOT NULL,
    count     INTEGER NOT NULL DEFAULT 0,
    total_num TEXT,
    total_den TEXT,
    lo        REAL,
    hi        REAL,
    ident     TEXT,
    PRIMARY KEY (group_key, row_index, col_index)
);
"""


class CampaignError(RuntimeError):
    """A campaign store is missing, malformed, or used inconsistently."""


class CampaignCodeDrift(CampaignError):
    """The protocol source changed between ``init`` and this run."""


def error_digest(error: str) -> str:
    """Stable digest of a failure message, for deterministic-vs-flaky
    classification: the *same* digest on two consecutive attempts means
    the failure reproduces and retrying is pointless."""
    return hashlib.sha256(error.encode()).hexdigest()[:16]


def _canonical_kwargs(kwargs: Dict[str, Any]) -> str:
    """JSON-normalized kwargs (tuples become lists), sorted keys."""
    return json.dumps(kwargs, sort_keys=True, default=repr)


@dataclass
class CampaignCell:
    """One row of the ``cells`` table, as Python data."""

    id: int
    key: str
    experiment: str
    kwargs: Dict[str, Any]
    seed: Optional[int]
    status: str
    attempts: int
    compute_count: int
    redundant: int
    lease_owner: Optional[str]
    lease_expires: Optional[float]
    next_attempt_at: float
    error: Optional[str]
    error_digest: Optional[str]
    wall: Optional[float]
    result: Optional[Dict[str, Any]]
    aggregated: bool

    def job(self) -> Job:
        """Reconstruct the executable job spec for this cell."""
        return Job.create(self.experiment, self.kwargs, self.seed)


def _row_to_cell(row: sqlite3.Row) -> CampaignCell:
    return CampaignCell(
        id=row["id"],
        key=row["key"],
        experiment=row["experiment"],
        kwargs=json.loads(row["kwargs"]),
        seed=row["seed"],
        status=row["status"],
        attempts=row["attempts"],
        compute_count=row["compute_count"],
        redundant=row["redundant"],
        lease_owner=row["lease_owner"],
        lease_expires=row["lease_expires"],
        next_attempt_at=row["next_attempt_at"],
        error=row["error"],
        error_digest=row["error_digest"],
        wall=row["wall"],
        result=json.loads(row["result"]) if row["result"] else None,
        aggregated=bool(row["aggregated"]),
    )


class CampaignStore:
    """Crash-safe cell store over one SQLite file (WAL mode).

    One store instance wraps one connection and must stay on the thread
    that created it (SQLite's threading rule); concurrent workers --
    threads or processes -- each open their own store on the same path.
    ``clock`` is injectable so tests can expire leases without sleeping.
    """

    def __init__(
        self,
        path: PathLike,
        *,
        clock: Callable[[], float] = time.time,
        _create: bool = False,
    ):
        self.path = pathlib.Path(path)
        self.clock = clock
        if not _create and not self.path.exists():
            raise CampaignError(
                f"no campaign at {self.path}: run `campaign init` first"
            )
        self._conn = sqlite3.connect(str(self.path), timeout=30.0)
        self._conn.row_factory = sqlite3.Row
        # Autocommit mode: every mutation below is an explicit
        # BEGIN IMMEDIATE ... COMMIT, so lock scope is visible in the code.
        self._conn.isolation_level = None
        try:
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
        except sqlite3.DatabaseError as exc:
            self._conn.close()
            raise CampaignError(f"{self.path} is not a campaign store: {exc}")
        if not _create:
            self._check_schema()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        path: PathLike,
        jobs: Sequence[Job],
        *,
        max_attempts: int = 5,
        backoff: float = 1.0,
        lease: float = 60.0,
        clock: Callable[[], float] = time.time,
    ) -> "CampaignStore":
        """Initialize a new campaign with one cell per job.

        Duplicate job specs are rejected (a grid that collapses two cells
        onto one digest would silently half-compute).  The retry policy
        (``max_attempts``, ``backoff``) and default ``lease`` are frozen
        into the store so every resume applies the same rules.
        """
        path = pathlib.Path(path)
        if path.exists():
            raise CampaignError(f"{path} already exists; delete it or pick a new --db")
        if not jobs:
            raise CampaignError("campaign needs at least one cell")
        keys = [job.key() for job in jobs]
        if len(set(keys)) != len(keys):
            raise CampaignError("duplicate cells in campaign grid")
        if max_attempts < 1:
            raise CampaignError(f"max_attempts must be >= 1, got {max_attempts}")
        store = cls(path, clock=clock, _create=True)
        conn = store._conn
        # executescript() commits any open transaction, so the schema goes
        # in first; the population below is one atomic transaction.
        conn.executescript(_SCHEMA)
        conn.execute("BEGIN IMMEDIATE")
        try:
            meta = {
                "schema_version": str(CAMPAIGN_SCHEMA_VERSION),
                "code_digest": protocol_code_digest(),
                "max_attempts": str(max_attempts),
                "backoff": repr(float(backoff)),
                "lease": repr(float(lease)),
                "cells": str(len(jobs)),
            }
            conn.executemany(
                "INSERT INTO meta (key, value) VALUES (?, ?)", sorted(meta.items())
            )
            conn.executemany(
                "INSERT INTO cells (key, experiment, kwargs, seed) VALUES (?, ?, ?, ?)",
                [
                    (key, job.experiment, _canonical_kwargs(job.kwargs_dict()), job.seed)
                    for key, job in zip(keys, jobs)
                ],
            )
            conn.execute("COMMIT")
        except BaseException:
            conn.execute("ROLLBACK")
            raise
        return store

    @classmethod
    def open(
        cls, path: PathLike, *, clock: Callable[[], float] = time.time
    ) -> "CampaignStore":
        return cls(path, clock=clock)

    def close(self) -> None:
        self._conn.close()

    def _check_schema(self) -> None:
        try:
            version = self.meta("schema_version")
        except sqlite3.Error as exc:
            raise CampaignError(f"{self.path} is not a campaign store: {exc}")
        if version != str(CAMPAIGN_SCHEMA_VERSION):
            raise CampaignError(
                f"{self.path} has schema version {version}, this code expects "
                f"{CAMPAIGN_SCHEMA_VERSION}"
            )

    def meta(self, key: str) -> str:
        row = self._conn.execute(
            "SELECT value FROM meta WHERE key = ?", (key,)
        ).fetchone()
        if row is None:
            raise CampaignError(f"campaign meta key {key!r} missing")
        return row["value"]

    @property
    def max_attempts(self) -> int:
        return int(self.meta("max_attempts"))

    @property
    def backoff(self) -> float:
        return float(self.meta("backoff"))

    @property
    def lease(self) -> float:
        return float(self.meta("lease"))

    def check_code(self, *, allow_drift: bool = False) -> bool:
        """Compare the stored code digest against the live source tree.

        Returns ``True`` when they match.  On drift: raises
        :class:`CampaignCodeDrift` unless ``allow_drift``, in which case
        the caller has explicitly accepted mixing results across code
        versions (the cells keep their init-time keys as identity).
        """
        stored, live = self.meta("code_digest"), protocol_code_digest()
        if stored == live:
            return True
        if not allow_drift:
            raise CampaignCodeDrift(
                f"protocol/simulator source changed since init (digest "
                f"{stored} -> {live}); done cells were computed by different "
                "code.  Re-init the campaign, or pass --allow-code-drift to "
                "resume anyway."
            )
        return False

    # ------------------------------------------------------------------
    # claims and leases
    # ------------------------------------------------------------------
    def claim(self, owner: str, limit: int, *, lease: Optional[float] = None) -> List[CampaignCell]:
        """Atomically lease up to ``limit`` runnable cells to ``owner``.

        Runnable means pending with its backoff horizon passed, or
        claimed with an **expired** lease (the previous owner is presumed
        dead; its in-flight work, if any, will land as a redundant
        idempotent upsert).  Cells come back in id order, so two racing
        workers contend for the same frontier and the BEGIN IMMEDIATE
        write lock decides -- each cell goes to exactly one of them.
        """
        lease_for = self.lease if lease is None else lease
        now = self.clock()
        conn = self._conn
        conn.execute("BEGIN IMMEDIATE")
        try:
            rows = conn.execute(
                "SELECT * FROM cells WHERE "
                "(status = ? AND next_attempt_at <= ?) OR "
                "(status = ? AND lease_expires IS NOT NULL AND lease_expires <= ?) "
                "ORDER BY id LIMIT ?",
                (PENDING, now, CLAIMED, now, limit),
            ).fetchall()
            if rows:
                conn.executemany(
                    "UPDATE cells SET status = ?, lease_owner = ?, lease_expires = ? "
                    "WHERE id = ?",
                    [(CLAIMED, owner, now + lease_for, row["id"]) for row in rows],
                )
            conn.execute("COMMIT")
        except BaseException:
            conn.execute("ROLLBACK")
            raise
        cells = [_row_to_cell(row) for row in rows]
        for cell in cells:
            cell.status = CLAIMED
            cell.lease_owner = owner
            cell.lease_expires = now + lease_for
        return cells

    def heartbeat(self, owner: str, *, lease: Optional[float] = None) -> int:
        """Renew every live lease held by ``owner``; returns the count."""
        lease_for = self.lease if lease is None else lease
        now = self.clock()
        cursor = self._conn.execute(
            "UPDATE cells SET lease_expires = ? "
            "WHERE status = ? AND lease_owner = ?",
            (now + lease_for, CLAIMED, owner),
        )
        return cursor.rowcount

    def release(self, owner: str) -> int:
        """Return ``owner``'s claimed cells to the pending pool.

        The graceful-shutdown path (SIGTERM/SIGINT checkpoint): cells the
        worker claimed but will not finish become immediately claimable
        by survivors instead of waiting out the lease.
        """
        cursor = self._conn.execute(
            "UPDATE cells SET status = ?, lease_owner = NULL, lease_expires = NULL "
            "WHERE status = ? AND lease_owner = ?",
            (PENDING, CLAIMED, owner),
        )
        return cursor.rowcount

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------
    def complete(
        self,
        key: str,
        result: Dict[str, Any],
        *,
        wall: Optional[float] = None,
    ) -> bool:
        """Idempotent result upsert for cell ``key``.

        Returns ``True`` if this call stored the result, ``False`` if the
        cell was already done (a lease-takeover race: both computations
        produced the same content-addressed cell, the first writer won,
        and this one only bumps ``compute_count`` for the audit trail).
        """
        conn = self._conn
        conn.execute("BEGIN IMMEDIATE")
        try:
            row = conn.execute(
                "SELECT status FROM cells WHERE key = ?", (key,)
            ).fetchone()
            if row is None:
                raise CampaignError(f"no cell {key!r} in campaign")
            stored = row["status"] != DONE
            if stored:
                conn.execute(
                    "UPDATE cells SET status = ?, result = ?, wall = ?, "
                    "error = NULL, error_digest = NULL, lease_owner = NULL, "
                    "lease_expires = NULL, compute_count = compute_count + 1 "
                    "WHERE key = ?",
                    (DONE, json.dumps(result), wall, key),
                )
            else:
                conn.execute(
                    "UPDATE cells SET compute_count = compute_count + 1, "
                    "redundant = redundant + 1 WHERE key = ?",
                    (key,),
                )
            conn.execute("COMMIT")
        except BaseException:
            conn.execute("ROLLBACK")
            raise
        return stored

    def fail(self, key: str, error: str, *, transient: bool = False) -> str:
        """Record a failed attempt and classify it; returns the new status.

        * ``transient=True`` (timeout, broken pool): always retryable up
          to ``max_attempts``, with exponential backoff.
        * deterministic candidates: the first occurrence of an exception
          digest retries (it may have been environmental); the **same**
          digest on the next attempt proves the failure reproduces and the
          cell goes failed-permanent immediately.

        A cell that raced to done stays done: failure of a redundant
        recomputation is dropped (the stored result already won).
        """
        digest = error_digest(error)
        now = self.clock()
        conn = self._conn
        conn.execute("BEGIN IMMEDIATE")
        try:
            row = conn.execute(
                "SELECT status, attempts, error_digest FROM cells WHERE key = ?",
                (key,),
            ).fetchone()
            if row is None:
                raise CampaignError(f"no cell {key!r} in campaign")
            if row["status"] == DONE:
                # A redundant recomputation lost the race *and* failed;
                # the stored result already won, so only audit it.
                conn.execute(
                    "UPDATE cells SET compute_count = compute_count + 1, "
                    "redundant = redundant + 1 WHERE key = ?",
                    (key,),
                )
                conn.execute("COMMIT")
                return DONE
            attempts = row["attempts"] + 1
            deterministic = not transient and row["error_digest"] == digest
            if deterministic or attempts >= self.max_attempts:
                status, next_at = FAILED, 0.0
            else:
                status = PENDING
                next_at = now + self.backoff * (2 ** (attempts - 1))
            conn.execute(
                "UPDATE cells SET status = ?, attempts = ?, error = ?, "
                "error_digest = ?, next_attempt_at = ?, lease_owner = NULL, "
                "lease_expires = NULL, compute_count = compute_count + 1 "
                "WHERE key = ?",
                (status, attempts, error, digest, next_at, key),
            )
            conn.execute("COMMIT")
        except BaseException:
            conn.execute("ROLLBACK")
            raise
        return status

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def cell(self, key: str) -> CampaignCell:
        row = self._conn.execute(
            "SELECT * FROM cells WHERE key = ?", (key,)
        ).fetchone()
        if row is None:
            raise CampaignError(f"no cell {key!r} in campaign")
        return _row_to_cell(row)

    def cells(self, status: Optional[str] = None) -> Iterator[CampaignCell]:
        if status is None:
            rows = self._conn.execute("SELECT * FROM cells ORDER BY id")
        else:
            rows = self._conn.execute(
                "SELECT * FROM cells WHERE status = ? ORDER BY id", (status,)
            )
        for row in rows:
            yield _row_to_cell(row)

    def counts(self) -> Dict[str, int]:
        """Cell count per status (every status present, zeros included)."""
        out = {status: 0 for status in (PENDING, CLAIMED, DONE, FAILED)}
        for row in self._conn.execute(
            "SELECT status, COUNT(*) AS n FROM cells GROUP BY status"
        ):
            out[row["status"]] = row["n"]
        return out

    def total_cells(self) -> int:
        return self._conn.execute("SELECT COUNT(*) FROM cells").fetchone()[0]

    def unfinished(self) -> int:
        """Cells not yet in a terminal state."""
        return self._conn.execute(
            "SELECT COUNT(*) FROM cells WHERE status NOT IN (?, ?)", (DONE, FAILED)
        ).fetchone()[0]

    def compute_stats(self) -> Dict[str, int]:
        """Totals for the zero-recompute audit.

        ``computed`` sums ``compute_count`` (every committed computation,
        including retries of failed attempts); ``redundant`` counts only
        computations that landed *after* the cell was already done -- the
        quantity a resumed campaign must keep at zero.
        """
        row = self._conn.execute(
            "SELECT COALESCE(SUM(compute_count), 0) AS total, "
            "COALESCE(SUM(redundant), 0) AS redundant FROM cells"
        ).fetchone()
        return {"computed": row["total"], "redundant": row["redundant"]}

    def next_wakeup(self) -> Optional[float]:
        """Earliest time a currently-unclaimable cell becomes claimable.

        ``None`` when nothing is waiting (either all cells are terminal,
        or something is claimable right now).
        """
        row = self._conn.execute(
            "SELECT MIN(t) FROM ("
            "  SELECT next_attempt_at AS t FROM cells WHERE status = ? "
            "  UNION ALL "
            "  SELECT lease_expires AS t FROM cells WHERE status = ? "
            "    AND lease_expires IS NOT NULL"
            ")",
            (PENDING, CLAIMED),
        ).fetchone()
        return row[0]
