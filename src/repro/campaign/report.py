"""Incremental, order-independent aggregation of done cells.

A campaign's aggregate report is the same ``mean [min, max]`` shape as
:func:`repro.analysis.sweep.aggregate_tables`, but it cannot be computed
the same way: cells finish (and fold) in whatever order crashes, resumes,
and worker races produce, and the acceptance criterion demands a report
**bitwise identical** to an uninterrupted run.  Plain float accumulation
is order-dependent, so the fold keeps each numeric accumulator as an
exact :class:`fractions.Fraction` (every float is a dyadic rational, so
the running total is exact and therefore independent of fold order); the
final ``float(total / count)`` is correctly rounded, min/max/count are
trivially order-free, and the rendered table depends only on the *set* of
done cells.

Cells are grouped by ``(experiment, kwargs)`` -- the seed axis aggregates
away, exactly like a ``sweep`` over seeds -- and each fold marks its
cells ``aggregated`` in the same transaction that updates the
accumulators, so a crash mid-report never double-folds a cell.
"""

from __future__ import annotations

import json
from fractions import Fraction
from typing import Any, Dict, List, Tuple

from .store import DONE, CampaignError, CampaignStore

Table = Tuple[List[str], List[List[Any]]]

__all__ = ["fold_done_cells", "report_tables"]


def _is_numeric(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _group_key(experiment: str, kwargs: Dict[str, Any]) -> str:
    return json.dumps(
        {"experiment": experiment, "kwargs": kwargs}, sort_keys=True, default=repr
    )


def fold_done_cells(store: CampaignStore, batch: int = 256) -> int:
    """Fold every done-but-unaggregated cell into the report accumulators.

    Returns the number of cells folded.  Each batch commits atomically
    (accumulator updates + ``aggregated`` flags together), so the fold is
    resumable at cell granularity.
    """
    folded = 0
    conn = store._conn
    while True:
        rows = conn.execute(
            "SELECT id, key, experiment, kwargs, result FROM cells "
            "WHERE status = ? AND aggregated = 0 ORDER BY id LIMIT ?",
            (DONE, batch),
        ).fetchall()
        if not rows:
            return folded
        conn.execute("BEGIN IMMEDIATE")
        try:
            for row in rows:
                _fold_one(conn, row)
                conn.execute(
                    "UPDATE cells SET aggregated = 1 WHERE id = ?", (row["id"],)
                )
            conn.execute("COMMIT")
        except BaseException:
            conn.execute("ROLLBACK")
            raise
        folded += len(rows)


def _fold_one(conn, row) -> None:
    result = json.loads(row["result"])
    headers = list(result["headers"])
    table_rows = result["rows"]
    group = _group_key(row["experiment"], json.loads(row["kwargs"]))

    existing = conn.execute(
        "SELECT headers, n_rows FROM agg_groups WHERE group_key = ?", (group,)
    ).fetchone()
    if existing is None:
        conn.execute(
            "INSERT INTO agg_groups (group_key, headers, n_rows, n_cells) "
            "VALUES (?, ?, ?, 1)",
            (group, json.dumps(headers), len(table_rows)),
        )
    else:
        if json.loads(existing["headers"]) != headers:
            raise CampaignError(
                f"cell {row['key']} headers {headers} do not match its "
                f"group's {existing['headers']}"
            )
        if existing["n_rows"] != len(table_rows):
            raise CampaignError(
                f"cell {row['key']} has {len(table_rows)} rows, its group "
                f"has {existing['n_rows']}"
            )
        conn.execute(
            "UPDATE agg_groups SET n_cells = n_cells + 1 WHERE group_key = ?",
            (group,),
        )

    for row_index, table_row in enumerate(table_rows):
        for col_index, cell in enumerate(table_row):
            _fold_cell(conn, group, row_index, col_index, cell, row["key"])


def _fold_cell(conn, group: str, row_index: int, col_index: int, value: Any, cell_key: str) -> None:
    numeric = _is_numeric(value)
    acc = conn.execute(
        "SELECT * FROM agg_cells WHERE group_key = ? AND row_index = ? "
        "AND col_index = ?",
        (group, row_index, col_index),
    ).fetchone()
    if acc is None:
        if numeric:
            frac = Fraction(value)
            conn.execute(
                "INSERT INTO agg_cells (group_key, row_index, col_index, kind, "
                "count, total_num, total_den, lo, hi) "
                "VALUES (?, ?, ?, 'num', 1, ?, ?, ?, ?)",
                (
                    group,
                    row_index,
                    col_index,
                    str(frac.numerator),
                    str(frac.denominator),
                    float(value),
                    float(value),
                ),
            )
        else:
            conn.execute(
                "INSERT INTO agg_cells (group_key, row_index, col_index, kind, "
                "count, ident) VALUES (?, ?, ?, 'ident', 1, ?)",
                (group, row_index, col_index, json.dumps(value)),
            )
        return
    if acc["kind"] == "num":
        if not numeric:
            raise CampaignError(
                f"cell {cell_key} row {row_index} col {col_index}: "
                f"non-numeric {value!r} in a numeric column"
            )
        total = Fraction(int(acc["total_num"]), int(acc["total_den"])) + Fraction(value)
        conn.execute(
            "UPDATE agg_cells SET count = count + 1, total_num = ?, "
            "total_den = ?, lo = MIN(lo, ?), hi = MAX(hi, ?) "
            "WHERE group_key = ? AND row_index = ? AND col_index = ?",
            (
                str(total.numerator),
                str(total.denominator),
                float(value),
                float(value),
                group,
                row_index,
                col_index,
            ),
        )
    else:
        # Identity column: every cell of the group must agree, exactly as
        # aggregate_tables() demands for non-numeric cells.
        if numeric or json.loads(acc["ident"]) != value:
            raise CampaignError(
                f"cell {cell_key} row {row_index} col {col_index}: identity "
                f"cell {value!r} differs from the group's "
                f"{json.loads(acc['ident'])!r}"
            )
        conn.execute(
            "UPDATE agg_cells SET count = count + 1 "
            "WHERE group_key = ? AND row_index = ? AND col_index = ?",
            (group, row_index, col_index),
        )


def _render_numeric(count: int, total: Fraction, lo: float, hi: float) -> Any:
    """The aggregate_tables() cell format, from exact accumulators."""
    if lo == hi:
        return lo if lo != int(lo) else int(lo)
    mean = float(total / count)
    return f"{mean:.4g} [{lo:.4g}, {hi:.4g}]"


def report_tables(store: CampaignStore) -> List[Tuple[Dict[str, Any], int, Table]]:
    """The aggregate tables, one per (experiment, kwargs) group.

    Returns ``(group descriptor, cells folded, (headers, rows))`` triples
    in deterministic group-key order.  Call :func:`fold_done_cells` first
    to pull newly-done cells in; this function only renders accumulators.
    """
    conn = store._conn
    out: List[Tuple[Dict[str, Any], int, Table]] = []
    for group_row in conn.execute(
        "SELECT * FROM agg_groups ORDER BY group_key"
    ).fetchall():
        group = group_row["group_key"]
        headers = json.loads(group_row["headers"])
        rows: List[List[Any]] = [[] for _ in range(group_row["n_rows"])]
        for acc in conn.execute(
            "SELECT * FROM agg_cells WHERE group_key = ? "
            "ORDER BY row_index, col_index",
            (group,),
        ).fetchall():
            if acc["kind"] == "num":
                cell = _render_numeric(
                    acc["count"],
                    Fraction(int(acc["total_num"]), int(acc["total_den"])),
                    acc["lo"],
                    acc["hi"],
                )
            else:
                cell = json.loads(acc["ident"])
            rows[acc["row_index"]].append(cell)
        out.append((json.loads(group), group_row["n_cells"], (headers, rows)))
    return out
