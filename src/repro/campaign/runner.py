"""Campaign worker loop: claim -> execute -> upsert, until drained.

The runner is a thin deterministic shell around the existing
:class:`~repro.parallel.ParallelExecutor`: each round it renews its
leases, claims the next id-ordered chunk of runnable cells, fans the
reconstructed jobs out over the batched pool, and commits each outcome
through the store's classification machinery.  Crash safety lives in the
store; the runner adds

* **heartbeats** -- leases are renewed before every claim round, so a
  healthy worker never loses cells, while a SIGKILLed one stops renewing
  and its cells expire back to the pool;
* **graceful shutdown** -- SIGTERM/SIGINT set a stop flag (handlers are
  installed only on the main thread); the runner finishes the in-flight
  pool round, releases its remaining leases so survivors pick them up
  immediately, and reports ``interrupted``;
* **waiting** -- when nothing is claimable but unfinished cells remain
  (another worker's live leases, or backoff horizons), the runner sleeps
  until the store's next wakeup time instead of spinning.
"""

from __future__ import annotations

import os
import signal
import socket
import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

from repro.parallel import ParallelExecutor
from repro.parallel.executor import TIMEOUT, JobResult

from .store import CampaignStore

__all__ = ["CampaignRunner", "CampaignRunReport"]


def default_worker_id() -> str:
    return f"{socket.gethostname()}:{os.getpid()}:{uuid.uuid4().hex[:6]}"


@dataclass
class CampaignRunReport:
    """What one ``run()`` did to the campaign."""

    computed: int = 0
    stored: int = 0
    redundant: int = 0
    retried: int = 0
    failed_permanent: int = 0
    released: int = 0
    interrupted: bool = False
    waited_s: float = 0.0
    counts: Dict[str, int] = field(default_factory=dict)

    @property
    def drained(self) -> bool:
        """Every cell terminal and none failed-permanent."""
        return (
            not self.interrupted
            and self.counts.get("pending", 0) == 0
            and self.counts.get("claimed", 0) == 0
            and self.counts.get("failed", 0) == 0
        )


class CampaignRunner:
    """One worker process draining a campaign store.

    ``workers``/``batches_per_worker``/``timeout`` configure the inner
    :class:`ParallelExecutor` exactly as for ``sweep``.  ``chunk`` caps
    how many cells one claim round leases (default: one full pool round,
    ``workers * batches_per_worker``) -- small chunks keep leases short
    and takeover granular, large chunks amortize claim transactions.
    ``max_cells`` stops the runner after that many computed cells (a
    deterministic, signal-free way to interrupt a campaign mid-flight;
    leases are released exactly as for a signal).  ``sleep``/``clock``
    are injectable for tests.
    """

    def __init__(
        self,
        store: CampaignStore,
        *,
        workers: int = 1,
        batches_per_worker: int = 2,
        timeout: Optional[float] = None,
        chunk: Optional[int] = None,
        max_cells: Optional[int] = None,
        worker_id: Optional[str] = None,
        handle_signals: bool = True,
        log: Optional[Callable[[str], None]] = None,
        sleep: Callable[[float], None] = time.sleep,
        clock: Callable[[], float] = time.time,
        max_wait: float = 0.5,
    ):
        self.store = store
        self.workers = workers
        self.batches_per_worker = batches_per_worker
        self.timeout = timeout
        self.chunk = chunk if chunk is not None else workers * batches_per_worker
        self.max_cells = max_cells
        self.worker_id = worker_id or default_worker_id()
        self.handle_signals = handle_signals
        self.log = log or (lambda line: None)
        self.sleep = sleep
        self.clock = clock
        self.max_wait = max_wait
        self._stop = threading.Event()

    # ------------------------------------------------------------------
    def request_stop(self) -> None:
        """Ask the runner to checkpoint and exit after the current round."""
        self._stop.set()

    def _install_signals(self):
        if not (
            self.handle_signals
            and threading.current_thread() is threading.main_thread()
        ):
            return None
        previous = {}
        for signum in (signal.SIGTERM, signal.SIGINT):
            previous[signum] = signal.signal(
                signum, lambda _sig, _frame: self.request_stop()
            )
        return previous

    @staticmethod
    def _restore_signals(previous) -> None:
        if previous:
            for signum, handler in previous.items():
                signal.signal(signum, handler)

    # ------------------------------------------------------------------
    def run(self) -> CampaignRunReport:
        report = CampaignRunReport()
        executor = ParallelExecutor(
            workers=self.workers,
            timeout=self.timeout,
            batches_per_worker=self.batches_per_worker,
        )
        previous = self._install_signals()
        try:
            while not self._stop.is_set():
                budget = self.chunk
                if self.max_cells is not None:
                    budget = min(budget, self.max_cells - report.computed)
                    if budget <= 0:
                        break
                self.store.heartbeat(self.worker_id)
                cells = self.store.claim(self.worker_id, budget)
                if not cells:
                    if self.store.unfinished() == 0:
                        break
                    # Unfinished cells exist but none are claimable: wait
                    # for a lease to expire or a backoff horizon to pass.
                    wakeup = self.store.next_wakeup()
                    delay = self.max_wait
                    if wakeup is not None:
                        delay = min(max(wakeup - self.clock(), 0.01), self.max_wait)
                    report.waited_s += delay
                    self.sleep(delay)
                    continue
                jobs = [cell.job() for cell in cells]
                results = executor.run(jobs)
                for cell, result in zip(cells, results):
                    self._commit(cell.key, result, report)
                if self._stop.is_set():
                    break
        finally:
            self._restore_signals(previous)
            released = self.store.release(self.worker_id)
            report.released = released
            report.interrupted = self._stop.is_set()
            report.counts = self.store.counts()
        if report.interrupted:
            self.log(
                f"campaign interrupted: checkpointed, released "
                f"{report.released} leased cell(s)"
            )
        return report

    # ------------------------------------------------------------------
    def _commit(self, key: str, result: JobResult, report: CampaignRunReport) -> None:
        report.computed += 1
        if result.ok:
            stored = self.store.complete(
                key, _result_payload(result), wall=result.wall
            )
            if stored:
                report.stored += 1
            else:
                report.redundant += 1
                self.log(f"redundant compute of done cell {key} (lease takeover)")
            return
        transient = result.status == TIMEOUT or "BrokenProcessPool" in (
            result.error or ""
        )
        status = self.store.fail(key, result.error or result.status, transient=transient)
        if status == "failed":
            report.failed_permanent += 1
            self.log(f"cell {key} failed permanently: {result.error}")
        elif status == "pending":
            report.retried += 1
            self.log(f"cell {key} will retry: {result.error}")
        else:  # raced to done elsewhere
            report.redundant += 1


def _result_payload(result: JobResult) -> Dict[str, Any]:
    """The JSON blob stored per done cell (what the report folds)."""
    return {
        "headers": list(result.headers or []),
        "rows": [list(row) for row in result.rows or []],
        "messages": result.messages,
    }
