"""Crash-safe resumable experiment campaigns (SQLite-backed).

A *campaign* is a persistent grid of experiment cells -- one
:class:`~repro.parallel.jobs.Job` per (experiment, kwargs, seed)
combination -- stored one row per cell in a WAL-mode SQLite database.
Workers claim cells under a heartbeat **lease**, execute them through the
existing :class:`~repro.parallel.ParallelExecutor` pool, and upsert
results **idempotently** keyed by the job's content digest, so

* a SIGKILLed run resumes with **zero** done cells recomputed,
* a wedged or killed worker's leases expire and survivors reclaim its
  cells,
* transient failures (timeouts, broken pools) retry with exponential
  backoff up to a cap, while deterministic failures (the same exception
  digest twice) are marked failed-permanent instead of retrying forever,
* the aggregate report folds cells **incrementally** with exact
  (order-independent) arithmetic, so an interrupted-and-resumed campaign
  prints a table bitwise identical to an uninterrupted one at any worker
  count.

See DESIGN.md section 16.  CLI::

    python -m repro campaign init --db camp.db --exp near-linear --seeds 0:64
    python -m repro campaign run --db camp.db --workers 4
    python -m repro campaign status --db camp.db
    python -m repro campaign resume --db camp.db --workers 4   # after a crash
    python -m repro campaign report --db camp.db
"""

from .report import fold_done_cells, report_tables
from .runner import CampaignRunner, CampaignRunReport
from .store import (
    CAMPAIGN_SCHEMA_VERSION,
    CLAIMED,
    DONE,
    FAILED,
    PENDING,
    CampaignCell,
    CampaignCodeDrift,
    CampaignError,
    CampaignStore,
)

__all__ = [
    "CAMPAIGN_SCHEMA_VERSION",
    "CLAIMED",
    "DONE",
    "FAILED",
    "PENDING",
    "CampaignCell",
    "CampaignCodeDrift",
    "CampaignError",
    "CampaignRunReport",
    "CampaignRunner",
    "CampaignStore",
    "fold_done_cells",
    "report_tables",
]
