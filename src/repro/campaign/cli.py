"""``python -m repro campaign init|run|status|resume|report``.

Argument plumbing for the campaign subsystem; the store/runner/report
modules hold all the logic.  Registered from :mod:`repro.cli` so the
top-level parser stays the single entry point.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Sequence

from repro.analysis.tables import render_table
from repro.parallel.jobs import Job, experiment_name

from .report import fold_done_cells, report_tables
from .runner import CampaignRunner
from .store import CampaignCodeDrift, CampaignError, CampaignStore

__all__ = ["add_campaign_parser", "cmd_campaign"]

#: Exit code for a graceful signal-interrupted run (leases released,
#: resume will pick up exactly where this left off).
EXIT_INTERRUPTED = 3


def add_campaign_parser(sub) -> None:
    campaign_p = sub.add_parser(
        "campaign",
        help="crash-safe resumable experiment campaigns",
        description=(
            "Persist a grid of experiment cells (experiment x kwargs-grid "
            "x seeds) in a SQLite campaign store, then drain it with "
            "lease-claiming workers.  A killed or crashed run resumes "
            "with zero done cells recomputed; transient failures retry "
            "with exponential backoff; deterministic failures are marked "
            "failed-permanent and reported.  The aggregate report folds "
            "done cells incrementally and is bitwise identical however "
            "often the campaign was interrupted."
        ),
    )
    campaign_sub = campaign_p.add_subparsers(dest="campaign_command", required=True)

    def add_db(p):
        p.add_argument("--db", required=True, help="campaign store path (SQLite)")

    init_p = campaign_sub.add_parser("init", help="create a campaign store")
    add_db(init_p)
    init_p.add_argument(
        "--exp",
        required=True,
        help="experiment to run per cell: a SWEEPABLE_EXPERIMENTS name or "
        "an importable module:qualname path",
    )
    init_p.add_argument(
        "--seeds", default="0:8", help="half-open range 'a:b' or comma list"
    )
    init_p.add_argument(
        "--grid",
        action="append",
        default=[],
        metavar="KEY=V1,V2,...",
        help="one kwargs axis of the cell grid (repeatable; the campaign "
        "is the cross product of all axes x seeds).  Values are parsed "
        "as JSON when possible ('n=16,24', 'ns=[16,32]'), else strings "
        "('family=sparse-random,ring')",
    )
    init_p.add_argument(
        "--quick",
        action="store_true",
        help="start from the experiment's QUICK_SWEEP_KWARGS (grid axes "
        "override individual keys)",
    )
    init_p.add_argument(
        "--max-attempts",
        type=int,
        default=5,
        help="per-cell attempt cap before failed-permanent (default: 5)",
    )
    init_p.add_argument(
        "--backoff",
        type=float,
        default=1.0,
        help="base retry backoff in seconds, doubled per attempt (default: 1)",
    )
    init_p.add_argument(
        "--lease",
        type=float,
        default=60.0,
        help="claim lease in seconds; a worker silent this long forfeits "
        "its cells to survivors (default: 60)",
    )

    for verb, help_text in (
        ("run", "claim and execute cells until the campaign drains"),
        ("resume", "alias of run, for post-crash readability"),
    ):
        run_p = campaign_sub.add_parser(verb, help=help_text)
        add_db(run_p)
        run_p.add_argument("--workers", type=int, default=1)
        run_p.add_argument(
            "--timeout", type=float, default=None, help="per-job timeout seconds"
        )
        run_p.add_argument(
            "--chunk",
            type=int,
            default=None,
            help="cells leased per claim round (default: workers * 2)",
        )
        run_p.add_argument(
            "--max-cells",
            type=int,
            default=None,
            help="stop (gracefully, releasing leases) after computing this "
            "many cells -- a deterministic mid-flight interruption",
        )
        run_p.add_argument(
            "--allow-code-drift",
            action="store_true",
            help="run even though the protocol source changed since init "
            "(mixes results computed by different code -- use knowingly)",
        )
        run_p.add_argument(
            "--quiet", action="store_true", help="suppress progress lines"
        )

    status_p = campaign_sub.add_parser("status", help="cell counts and audit")
    add_db(status_p)
    status_p.add_argument("--json", action="store_true", help="machine-readable")
    status_p.add_argument(
        "--assert-complete",
        action="store_true",
        help="exit 1 unless every cell is done (none pending/claimed/failed)",
    )
    status_p.add_argument(
        "--assert-no-recompute",
        action="store_true",
        help="exit 1 if any done cell was ever recomputed (redundant > 0)",
    )

    report_p = campaign_sub.add_parser(
        "report", help="fold newly-done cells and print the aggregate tables"
    )
    add_db(report_p)
    report_p.add_argument(
        "--bench-out", default=None, help="also write the tables as JSON here"
    )


# ----------------------------------------------------------------------
# grid parsing
# ----------------------------------------------------------------------
def _split_top_level(text: str) -> List[str]:
    """Split on commas that are not nested inside [] or {}."""
    parts, depth, current = [], 0, []
    for char in text:
        if char in "[{":
            depth += 1
        elif char in "]}":
            depth -= 1
        if char == "," and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(char)
    parts.append("".join(current))
    return [part for part in (p.strip() for p in parts) if part]


def _parse_value(text: str) -> Any:
    try:
        return json.loads(text)
    except ValueError:
        return text


def parse_grid(specs: Sequence[str]) -> List[Dict[str, Any]]:
    """``['n=16,24', 'family=ring']`` -> cross-product kwargs dicts."""
    axes: List[tuple] = []
    for spec in specs:
        key, eq, value_text = spec.partition("=")
        key = key.strip()
        if not eq or not key:
            raise ValueError(f"--grid wants KEY=V1,V2,..., got {spec!r}")
        values = [_parse_value(part) for part in _split_top_level(value_text)]
        if not values:
            raise ValueError(f"--grid axis {key!r} has no values")
        axes.append((key, values))
    combos: List[Dict[str, Any]] = [{}]
    for key, values in axes:
        combos = [{**combo, key: value} for combo in combos for value in values]
    return combos


def _parse_seeds(spec: str) -> List[int]:
    # Same grammar as the sweep command; re-implemented here to avoid a
    # circular import with repro.cli.
    spec = spec.strip()
    if ":" in spec:
        lo_text, _, hi_text = spec.partition(":")
        lo, hi = int(lo_text or 0), int(hi_text)
        if hi <= lo:
            raise ValueError(f"empty seed range {spec!r}")
        return list(range(lo, hi))
    return [int(part) for part in spec.split(",") if part.strip()]


# ----------------------------------------------------------------------
# command handlers
# ----------------------------------------------------------------------
def cmd_campaign(args: argparse.Namespace) -> int:
    handler = {
        "init": _cmd_init,
        "run": _cmd_run,
        "resume": _cmd_run,
        "status": _cmd_status,
        "report": _cmd_report,
    }[args.campaign_command]
    try:
        return handler(args)
    except CampaignError as exc:
        print(f"campaign: {exc}", file=sys.stderr)
        return 2


def _cmd_init(args: argparse.Namespace) -> int:
    try:
        experiment = experiment_name(args.exp)
        seeds = _parse_seeds(args.seeds)
        combos = parse_grid(args.grid)
    except ValueError as exc:
        print(f"campaign init: {exc}", file=sys.stderr)
        return 2
    if not seeds:
        print("campaign init: no seeds given", file=sys.stderr)
        return 2
    base: Dict[str, Any] = {}
    if args.quick:
        from repro.analysis.experiments import QUICK_SWEEP_KWARGS

        base = dict(QUICK_SWEEP_KWARGS.get(experiment, {}))
    jobs = [
        Job.create(experiment, {**base, **combo}, seed)
        for combo in combos
        for seed in seeds
    ]
    store = CampaignStore.create(
        args.db,
        jobs,
        max_attempts=args.max_attempts,
        backoff=args.backoff,
        lease=args.lease,
    )
    store.close()
    print(
        f"initialized {args.db}: {len(jobs)} cells "
        f"({len(combos)} kwargs combo(s) x {len(seeds)} seed(s)), "
        f"lease {args.lease:g}s, max {args.max_attempts} attempts"
    )
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    if args.workers < 1:
        print(f"bad --workers: must be >= 1, got {args.workers}", file=sys.stderr)
        return 2
    store = CampaignStore.open(args.db)
    try:
        try:
            store.check_code(allow_drift=args.allow_code_drift)
        except CampaignCodeDrift as exc:
            print(f"campaign: {exc}", file=sys.stderr)
            return 2
        log = (lambda line: None) if args.quiet else (
            lambda line: print(line, file=sys.stderr, flush=True)
        )
        runner = CampaignRunner(
            store,
            workers=args.workers,
            timeout=args.timeout,
            chunk=args.chunk,
            max_cells=args.max_cells,
            log=log,
        )
        report = runner.run()
        counts = report.counts
        print(
            f"campaign {args.campaign_command}: computed {report.computed} "
            f"cell(s) ({report.stored} stored, {report.redundant} redundant, "
            f"{report.retried} queued for retry), released {report.released}"
        )
        print(
            "status: "
            + ", ".join(f"{k}={v}" for k, v in sorted(counts.items()))
        )
        if report.interrupted:
            print("interrupted -- resume with `campaign resume`", file=sys.stderr)
            return EXIT_INTERRUPTED
        if counts.get("failed", 0):
            _print_failures(store)
            return 1
        return 0
    finally:
        store.close()


def _print_failures(store: CampaignStore) -> None:
    print(f"{store.counts()['failed']} cell(s) failed permanently:", file=sys.stderr)
    for cell in store.cells("failed"):
        print(
            f"  {cell.experiment} seed={cell.seed} "
            f"attempts={cell.attempts}: {cell.error}",
            file=sys.stderr,
        )


def _cmd_status(args: argparse.Namespace) -> int:
    store = CampaignStore.open(args.db)
    try:
        counts = store.counts()
        stats = store.compute_stats()
        total = store.total_cells()
        payload = {
            "cells": total,
            **counts,
            **stats,
            "lease_s": store.lease,
            "max_attempts": store.max_attempts,
        }
        if args.json:
            print(json.dumps(payload, sort_keys=True))
        else:
            print(
                f"{args.db}: {total} cells | "
                + " ".join(f"{k}={counts[k]}" for k in sorted(counts))
                + f" | computed={stats['computed']} redundant={stats['redundant']}"
            )
        if args.assert_complete and (counts["done"] != total):
            print(
                f"assert-complete failed: {total - counts['done']} cell(s) "
                "not done",
                file=sys.stderr,
            )
            return 1
        if args.assert_no_recompute and stats["redundant"] > 0:
            print(
                f"assert-no-recompute failed: {stats['redundant']} redundant "
                "computation(s) of done cells",
                file=sys.stderr,
            )
            return 1
        return 0
    finally:
        store.close()


def _cmd_report(args: argparse.Namespace) -> int:
    store = CampaignStore.open(args.db)
    try:
        folded = fold_done_cells(store)
        groups = report_tables(store)
        counts = store.counts()
        print(
            f"folded {folded} new cell(s); report covers "
            f"{sum(n for _g, n, _t in groups)} of {store.total_cells()} cells"
        )
        for descriptor, n_cells, (headers, rows) in groups:
            kwargs_text = json.dumps(descriptor["kwargs"], sort_keys=True)
            print(
                f"\n=== {descriptor['experiment']} {kwargs_text} "
                f"x {n_cells} cell(s) ==="
            )
            print(render_table(headers, rows))
        if counts["failed"]:
            print(
                f"\nWARNING: {counts['failed']} failed-permanent cell(s) "
                "excluded from the report",
                file=sys.stderr,
            )
        if args.bench_out:
            payload = [
                {
                    "experiment": descriptor["experiment"],
                    "kwargs": descriptor["kwargs"],
                    "cells": n_cells,
                    "headers": headers,
                    "rows": rows,
                }
                for descriptor, n_cells, (headers, rows) in groups
            ]
            with open(args.bench_out, "w", encoding="utf-8") as fh:
                json.dump(payload, fh, indent=2, sort_keys=True)
                fh.write("\n")
            print(f"wrote {args.bench_out}")
        return 0
    finally:
        store.close()
