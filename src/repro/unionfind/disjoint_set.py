"""Disjoint-set (Union-Find) forests with selectable heuristics.

The paper's Ad-hoc Resource Discovery algorithm "simulates a sequential
execution of Tarjan's classical union/find algorithm for disjoint sets"
(Lemma 5.6), and its lower bound (Theorem 2) reduces from Union-Find on a
pointer machine with the separation property.  This module provides the
sequential data structure in the configurations relevant to the paper:

* **linking rules**: by rank, by size, or naive (always link first root under
  second) -- the protocol's ``(phase, id)`` comparison corresponds to union
  by rank with ids breaking ties;
* **find rules**: full path compression, path splitting, path halving, or no
  compression -- the protocol's ``release`` messages implement full path
  compression along ``previous`` queues.

Instances also count pointer operations (parent reads and parent writes) so
benchmarks can compare the sequential cost curve against the distributed
algorithm's message curve (EXP-2, EXP-14).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, Iterator, List, Optional

__all__ = ["DisjointSet", "LINK_RULES", "FIND_RULES"]

LINK_RULES = ("rank", "size", "naive")
FIND_RULES = ("compress", "split", "halve", "none")


@dataclass
class _OpCounter:
    """Pointer-machine cost model: parent-pointer reads and writes."""

    reads: int = 0
    writes: int = 0

    @property
    def total(self) -> int:
        return self.reads + self.writes


class DisjointSet:
    """A forest of disjoint sets over arbitrary hashable elements.

    Elements are created lazily by :meth:`make_set` (or on first use when
    ``auto_create=True``).  The structure satisfies the *separation
    property*: no element of one set ever holds a pointer to an element of a
    different set, matching the pointer-machine model of Tarjan's lower
    bound that the paper's Theorem 2 invokes.

    Parameters
    ----------
    elements:
        Optional initial elements, each placed in its own singleton set.
    link_rule:
        One of ``"rank"``, ``"size"``, ``"naive"``.
    find_rule:
        One of ``"compress"``, ``"split"``, ``"halve"``, ``"none"``.
    auto_create:
        When true, :meth:`find` and :meth:`union` create unknown elements on
        the fly instead of raising ``KeyError``.
    """

    def __init__(
        self,
        elements: Optional[Iterable[Hashable]] = None,
        *,
        link_rule: str = "rank",
        find_rule: str = "compress",
        auto_create: bool = False,
    ) -> None:
        if link_rule not in LINK_RULES:
            raise ValueError(f"link_rule must be one of {LINK_RULES}, got {link_rule!r}")
        if find_rule not in FIND_RULES:
            raise ValueError(f"find_rule must be one of {FIND_RULES}, got {find_rule!r}")
        self.link_rule = link_rule
        self.find_rule = find_rule
        self.auto_create = auto_create
        self._parent: Dict[Hashable, Hashable] = {}
        self._rank: Dict[Hashable, int] = {}
        self._size: Dict[Hashable, int] = {}
        self._n_sets = 0
        self.counter = _OpCounter()
        for element in elements or ():
            self.make_set(element)

    # ------------------------------------------------------------------
    # Basic protocol
    # ------------------------------------------------------------------
    def make_set(self, x: Hashable) -> None:
        """Place ``x`` in a new singleton set; no-op if already present."""
        if x in self._parent:
            return
        self._parent[x] = x
        self._rank[x] = 0
        self._size[x] = 1
        self._n_sets += 1

    def __contains__(self, x: Hashable) -> bool:
        return x in self._parent

    def __len__(self) -> int:
        """Number of elements (not sets)."""
        return len(self._parent)

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._parent)

    @property
    def n_sets(self) -> int:
        """Number of disjoint sets currently in the forest."""
        return self._n_sets

    def _require(self, x: Hashable) -> None:
        if x not in self._parent:
            if self.auto_create:
                self.make_set(x)
            else:
                raise KeyError(f"unknown element {x!r}")

    # ------------------------------------------------------------------
    # Find
    # ------------------------------------------------------------------
    def find(self, x: Hashable) -> Hashable:
        """Return the representative of the set containing ``x``.

        Applies the configured compression heuristic and charges pointer
        reads/writes to :attr:`counter`.
        """
        self._require(x)
        if self.find_rule == "compress":
            return self._find_compress(x)
        if self.find_rule == "split":
            return self._find_split(x)
        if self.find_rule == "halve":
            return self._find_halve(x)
        return self._find_plain(x)

    def _root_of(self, x: Hashable) -> Hashable:
        while True:
            parent = self._parent[x]
            self.counter.reads += 1
            if parent == x:
                return x
            x = parent

    def _find_plain(self, x: Hashable) -> Hashable:
        return self._root_of(x)

    def _find_compress(self, x: Hashable) -> Hashable:
        root = self._root_of(x)
        while True:
            parent = self._parent[x]
            self.counter.reads += 1
            if parent == root or parent == x:
                break
            self._parent[x] = root
            self.counter.writes += 1
            x = parent
        return root

    def _find_split(self, x: Hashable) -> Hashable:
        while True:
            parent = self._parent[x]
            self.counter.reads += 1
            if parent == x:
                return x
            grandparent = self._parent[parent]
            self.counter.reads += 1
            if grandparent == parent:
                return parent
            self._parent[x] = grandparent
            self.counter.writes += 1
            x = parent

    def _find_halve(self, x: Hashable) -> Hashable:
        while True:
            parent = self._parent[x]
            self.counter.reads += 1
            if parent == x:
                return x
            grandparent = self._parent[parent]
            self.counter.reads += 1
            if grandparent == parent:
                return parent
            self._parent[x] = grandparent
            self.counter.writes += 1
            x = grandparent

    # ------------------------------------------------------------------
    # Union
    # ------------------------------------------------------------------
    def union(self, x: Hashable, y: Hashable) -> Hashable:
        """Merge the sets containing ``x`` and ``y``; return the new root."""
        self._require(x)
        self._require(y)
        root_x = self.find(x)
        root_y = self.find(y)
        if root_x == root_y:
            return root_x
        return self._link(root_x, root_y)

    def _link(self, root_x: Hashable, root_y: Hashable) -> Hashable:
        if self.link_rule == "rank":
            if self._rank[root_x] < self._rank[root_y]:
                root_x, root_y = root_y, root_x
            winner, loser = root_x, root_y
            if self._rank[winner] == self._rank[loser]:
                self._rank[winner] += 1
        elif self.link_rule == "size":
            if self._size[root_x] < self._size[root_y]:
                root_x, root_y = root_y, root_x
            winner, loser = root_x, root_y
        else:  # naive
            winner, loser = root_y, root_x
        self._parent[loser] = winner
        self.counter.writes += 1
        self._size[winner] += self._size[loser]
        self._n_sets -= 1
        return winner

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def connected(self, x: Hashable, y: Hashable) -> bool:
        """Return whether ``x`` and ``y`` are in the same set."""
        return self.find(x) == self.find(y)

    def set_size(self, x: Hashable) -> int:
        """Return the number of elements in the set containing ``x``."""
        return self._size[self.find(x)]

    def sets(self) -> Dict[Hashable, List[Hashable]]:
        """Return ``{representative: sorted members}`` for every set."""
        grouped: Dict[Hashable, List[Hashable]] = {}
        for element in self._parent:
            grouped.setdefault(self.find(element), []).append(element)
        for members in grouped.values():
            members.sort(key=repr)
        return grouped

    def depth_of(self, x: Hashable) -> int:
        """Return the current pointer-chain length from ``x`` to its root.

        Does not apply compression and does not charge the counter; used by
        tests asserting structural consequences of the heuristics.
        """
        self._require(x)
        depth = 0
        while self._parent[x] != x:
            x = self._parent[x]
            depth += 1
        return depth
