"""Sequential Union-Find substrate.

The paper ties Asynchronous Resource Discovery to the classic Union-Find
problem in both directions: the Ad-hoc algorithm's message complexity is
analysed as a sequential union/find execution (Lemma 5.6), and the
``Omega(n alpha(n, n))`` lower bound is proved by reduction from Union-Find
on a pointer machine (Theorem 2).  This package provides the sequential side
of that correspondence.
"""

from repro.unionfind.ackermann import ackermann, ackermann_exceeds, alpha, ilog2, inverse_ackermann
from repro.unionfind.disjoint_set import FIND_RULES, LINK_RULES, DisjointSet
from repro.unionfind.naive import QuickFind

__all__ = [
    "ackermann",
    "ackermann_exceeds",
    "alpha",
    "ilog2",
    "inverse_ackermann",
    "DisjointSet",
    "QuickFind",
    "LINK_RULES",
    "FIND_RULES",
]
