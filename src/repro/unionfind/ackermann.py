"""Ackermann's function and its functional inverse ``alpha``.

The paper (footnote 1) defines the inverse Ackermann function used in all of
its near-linear bounds as::

    alpha(m, n) = min{ i >= 1 : A(i, floor(m / n)) > log2 n }

where ``A`` is Ackermann's function in the Tarjan / van Leeuwen convention:

* ``A(0, n) = n + 1``
* ``A(m, 0) = A(m - 1, 1)``          for ``m > 0``
* ``A(m, n) = A(m - 1, A(m, n - 1))`` for ``m, n > 0``

``A`` grows so explosively that any direct recursion overflows both the
recursion limit and the age of the universe for tiny arguments; computing
``alpha`` only ever requires deciding whether ``A(i, j) > t`` for modest
thresholds ``t`` (``t = log2 n`` fits in a machine word for any ``n`` that
fits in memory).  We therefore evaluate ``A`` with a *threshold-clamped*
recursion: as soon as an intermediate value exceeds the threshold the exact
value no longer matters and we can stop growing it.

Everything in this module is exact integer arithmetic -- no floats -- so the
values reported in EXPERIMENTS.md are reproducible bit-for-bit.
"""

from __future__ import annotations

from functools import lru_cache

__all__ = [
    "ackermann",
    "ackermann_exceeds",
    "inverse_ackermann",
    "alpha",
    "ilog2",
]


def ilog2(n: int) -> int:
    """Return ``floor(log2 n)`` for ``n >= 1`` using exact integer math."""
    if n < 1:
        raise ValueError(f"ilog2 requires n >= 1, got {n}")
    return n.bit_length() - 1


@lru_cache(maxsize=None)
def _ack_clamped(m: int, n: int, clamp: int) -> int:
    """Ackermann ``A(m, n)`` computed exactly up to ``clamp``.

    Returns ``A(m, n)`` if it is ``<= clamp`` and some value ``> clamp``
    otherwise.  Rows 0-3 use their closed forms (``n+1``, ``n+2``,
    ``2n+3``, ``2^(n+3) - 3``) so the recursion depth never depends on
    ``n`` -- naive recursion on row 2 alone is ``O(n)`` deep and blows the
    stack for the large intermediate values rows >= 4 produce.
    """
    if m == 0:
        return min(n + 1, clamp + 1)
    if m == 1:
        return min(n + 2, clamp + 1)
    if m == 2:
        return min(2 * n + 3, clamp + 1)
    if m == 3:
        if n + 3 > 128:  # 2^131 dwarfs any sane clamp
            return clamp + 1
        return min(2 ** (n + 3) - 3, clamp + 1)
    if n == 0:
        return _ack_clamped(m - 1, 1, clamp)
    inner = _ack_clamped(m, n - 1, clamp)
    if inner > clamp:
        # A(m-1, inner) >= inner + 1 > clamp; the exact value is irrelevant.
        return clamp + 1
    return _ack_clamped(m - 1, inner, clamp)


def ackermann(m: int, n: int, *, clamp: int = 1 << 20) -> int:
    """Return ``A(m, n)``, exact when at most ``clamp``.

    Values above ``clamp`` are reported as ``clamp + 1``; callers that only
    compare against thresholds below ``clamp`` (the only sane use of this
    function) see exact behaviour.
    """
    if m < 0 or n < 0:
        raise ValueError(f"Ackermann arguments must be non-negative, got ({m}, {n})")
    return _ack_clamped(m, n, clamp)


def ackermann_exceeds(m: int, n: int, threshold: int) -> bool:
    """Return ``True`` iff ``A(m, n) > threshold`` (exact)."""
    if threshold < 0:
        return True
    return _ack_clamped(m, n, threshold) > threshold


def inverse_ackermann(m: int, n: int) -> int:
    """The paper's ``alpha(m, n) = min{i >= 1 : A(i, floor(m/n)) > log2 n}``.

    ``m`` is the number of operations and ``n`` the number of elements.  For
    every remotely realisable input the result is at most 4; the loop bound
    exists only to make failure loud rather than silent.
    """
    if n < 1:
        raise ValueError(f"alpha requires n >= 1, got n={n}")
    if m < 0:
        raise ValueError(f"alpha requires m >= 0, got m={m}")
    if n == 1:
        # log2(1) == 0 and A(1, j) >= 2 > 0 for all j.
        return 1
    threshold = ilog2(n)
    ratio = m // n
    for i in range(1, 64):
        if ackermann_exceeds(i, ratio, threshold):
            return i
    raise RuntimeError(
        f"alpha({m}, {n}) did not converge below i=64; arguments are absurd"
    )


def alpha(m: int, n: int) -> int:
    """Alias for :func:`inverse_ackermann`, matching the paper's notation."""
    return inverse_ackermann(m, n)
