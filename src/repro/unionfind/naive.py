"""Quick-find reference implementation of disjoint sets.

This is the obviously-correct O(n)-per-union structure used as a test oracle
for :class:`repro.unionfind.disjoint_set.DisjointSet` and for the Union-Find
reduction experiment (EXP-2): every configuration of the forest structure
must answer ``connected`` identically to this one on every operation
sequence.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional

__all__ = ["QuickFind"]


class QuickFind:
    """Disjoint sets as an explicit element -> label map."""

    def __init__(self, elements: Optional[Iterable[Hashable]] = None) -> None:
        self._label: Dict[Hashable, Hashable] = {}
        for element in elements or ():
            self.make_set(element)

    def make_set(self, x: Hashable) -> None:
        """Place ``x`` in a singleton set; no-op if present."""
        if x not in self._label:
            self._label[x] = x

    def __contains__(self, x: Hashable) -> bool:
        return x in self._label

    def __len__(self) -> int:
        return len(self._label)

    @property
    def n_sets(self) -> int:
        return len(set(self._label.values()))

    def find(self, x: Hashable) -> Hashable:
        """Return the label of the set containing ``x``."""
        return self._label[x]

    def union(self, x: Hashable, y: Hashable) -> Hashable:
        """Merge the sets of ``x`` and ``y``; the label of ``y``'s set wins."""
        label_x = self._label[x]
        label_y = self._label[y]
        if label_x == label_y:
            return label_x
        for element, label in list(self._label.items()):
            if label == label_x:
                self._label[element] = label_y
        return label_y

    def connected(self, x: Hashable, y: Hashable) -> bool:
        return self._label[x] == self._label[y]

    def members(self, x: Hashable) -> List[Hashable]:
        """Return the sorted members of ``x``'s set."""
        label = self._label[x]
        return sorted(
            (element for element, other in self._label.items() if other == label),
            key=repr,
        )
