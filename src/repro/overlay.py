"""Consuming discovery output: building a ring overlay with fingers.

The paper's introduction motivates Resource Discovery as the step *before*
cooperation: "Once all peers that are interested get to know of each other
they may cooperate on joint tasks (for example ... build an overlay
network and form a distributed hash table)".  This module closes that
loop: given a component's membership (a leader's knowledge set, or a probe
result), it deterministically constructs a Chord-style ring with finger
tables and answers greedy lookups in ``O(log n)`` hops.

The overlay is a *plan*, not a protocol: every peer can compute it locally
from the same membership set (the ordering is canonical), which is exactly
what the discovery guarantees enable -- no further coordination needed.

Example::

    result = run_adhoc(graph, seed=1)
    members = result.knowledge[result.leaders[0]]
    ring = RingOverlay.from_membership(members)
    path = ring.lookup_path(start=some_peer, key=other_peer)
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, List, Sequence, Tuple

NodeId = Hashable

__all__ = ["RingOverlay", "ring_position"]


def ring_position(node_id: NodeId, *, bits: int = 32) -> int:
    """A peer's canonical ring coordinate: a stable hash of its id.

    Uses sha256 of ``repr(node_id)`` so every peer computes the same
    coordinate without coordination (Python's builtin ``hash`` is salted
    per process and would not be stable).
    """
    digest = hashlib.sha256(repr(node_id).encode()).digest()
    return int.from_bytes(digest[: (bits + 7) // 8], "big") % (1 << bits)


@dataclass(frozen=True)
class RingOverlay:
    """A deterministic Chord-style ring over a fixed membership set.

    Attributes
    ----------
    order:
        Members sorted by ring position (ties broken by repr).
    positions:
        ``{member: ring coordinate}``.
    fingers:
        ``{member: [successor, +2, +4, ...]}`` -- index jumps of power-of-
        two ring distance, the classic finger table.
    """

    order: Tuple[NodeId, ...]
    positions: Dict[NodeId, int]
    fingers: Dict[NodeId, Tuple[NodeId, ...]]

    # ------------------------------------------------------------------
    @classmethod
    def from_membership(cls, members: Iterable[NodeId], *, bits: int = 32) -> "RingOverlay":
        """Build the canonical overlay for a membership set."""
        member_list = list(members)
        if not member_list:
            raise ValueError("membership must be non-empty")
        if len(set(member_list)) != len(member_list):
            raise ValueError("membership contains duplicates")
        positions = {member: ring_position(member, bits=bits) for member in member_list}
        order = tuple(
            sorted(member_list, key=lambda m: (positions[m], repr(m)))
        )
        n = len(order)
        index_of = {member: i for i, member in enumerate(order)}
        fingers: Dict[NodeId, Tuple[NodeId, ...]] = {}
        for member in order:
            i = index_of[member]
            table: List[NodeId] = []
            jump = 1
            while jump < n:
                table.append(order[(i + jump) % n])
                jump *= 2
            if not table and n == 1:
                table = []
            fingers[member] = tuple(table)
        return cls(order=order, positions=positions, fingers=fingers)

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return len(self.order)

    def successor(self, member: NodeId) -> NodeId:
        """The next member clockwise (itself in a singleton ring)."""
        i = self.order.index(member)
        return self.order[(i + 1) % self.n]

    def responsible_for(self, key: NodeId) -> NodeId:
        """The member owning ``key``'s ring position (first member at or
        clockwise after the key's coordinate)."""
        pos = ring_position(key)
        for member in self.order:
            if self.positions[member] >= pos:
                return member
        return self.order[0]

    def lookup_path(self, start: NodeId, key: NodeId) -> List[NodeId]:
        """Greedy finger routing from ``start`` to ``key``'s owner.

        Each hop jumps to the finger that gets closest to the target
        without overshooting (clockwise distance), the classic Chord
        argument giving ``O(log n)`` hops.
        """
        if start not in self.positions:
            raise KeyError(f"unknown member {start!r}")
        target = self.responsible_for(key)
        target_index = self.order.index(target)
        n = self.n
        index_of = {member: i for i, member in enumerate(self.order)}
        path = [start]
        current = start
        hops = 0
        while current != target:
            i = index_of[current]
            distance = (target_index - i) % n
            best = self.successor(current)
            best_jump = 1
            jump = 1
            for finger in self.fingers[current]:
                if jump <= distance and jump > best_jump:
                    best, best_jump = finger, jump
                jump *= 2
            current = best
            path.append(current)
            hops += 1
            if hops > n:
                raise RuntimeError("lookup did not converge (overlay bug)")
        return path

    def max_lookup_hops(self) -> int:
        """Exhaustive worst-case hop count (test/diagnostic helper; O(n^2)
        lookups, so use on small rings)."""
        worst = 0
        for start in self.order:
            for key in self.order:
                worst = max(worst, len(self.lookup_path(start, key)) - 1)
        return worst
