"""repro -- a reproduction of *Asynchronous Resource Discovery*
(Ittai Abraham and Danny Dolev, PODC 2003).

The package implements the paper's three algorithms (Generic/Oblivious,
Bounded, Ad-hoc) on a faithful asynchronous reliable-FIFO simulator, the
synchronous baselines it compares against, both lower-bound constructions,
and an evaluation harness that validates every theorem empirically.

Quickstart::

    from repro import random_weakly_connected, run_generic, verify_discovery

    graph = random_weakly_connected(200, extra_edges=400, seed=7)
    result = run_generic(graph, seed=7)
    verify_discovery(result, graph)
    print(result.summary())
"""

from repro.core import (
    AdhocNetwork,
    DiscoveryNode,
    DiscoveryResult,
    ProtocolError,
    run_adhoc,
    run_bounded,
    run_generic,
)
from repro.graphs import (
    KnowledgeGraph,
    complete_binary_tree,
    complete_graph,
    dense_layered,
    directed_cycle,
    directed_path,
    disjoint_union,
    erdos_renyi,
    inverted_star,
    is_strongly_connected,
    is_weakly_connected,
    preferential_attachment,
    random_arborescence,
    random_strongly_connected,
    random_weakly_connected,
    star,
    weakly_connected_components,
)
from repro.core.dynamic import ChurnScenario, random_churn
from repro.overlay import RingOverlay, ring_position
from repro.sim import (
    AdversarialScheduler,
    Adversary,
    GlobalFifoScheduler,
    LifoScheduler,
    MessageStats,
    RandomScheduler,
    RecordingScheduler,
    ReplayScheduler,
    Simulator,
    TimedScheduler,
)
from repro.parallel import Job, ParallelExecutor, ResultCache, sweep_jobs
from repro.unionfind import DisjointSet, QuickFind, ackermann, alpha
from repro.verification import (
    InvariantViolation,
    StepwiseMonitor,
    check_all_lemmas,
    staged_liveness_check,
    verify_discovery,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # algorithms
    "run_generic",
    "run_bounded",
    "run_adhoc",
    "AdhocNetwork",
    "DiscoveryNode",
    "DiscoveryResult",
    "ProtocolError",
    # graphs
    "KnowledgeGraph",
    "star",
    "inverted_star",
    "directed_path",
    "directed_cycle",
    "complete_binary_tree",
    "random_arborescence",
    "erdos_renyi",
    "dense_layered",
    "preferential_attachment",
    "random_weakly_connected",
    "random_strongly_connected",
    "complete_graph",
    "disjoint_union",
    "weakly_connected_components",
    "is_weakly_connected",
    "is_strongly_connected",
    # simulation
    "Simulator",
    "MessageStats",
    "GlobalFifoScheduler",
    "LifoScheduler",
    "RandomScheduler",
    "Adversary",
    "AdversarialScheduler",
    "TimedScheduler",
    "RecordingScheduler",
    "ReplayScheduler",
    "ChurnScenario",
    "random_churn",
    "RingOverlay",
    "ring_position",
    "StepwiseMonitor",
    "staged_liveness_check",
    # union-find
    "DisjointSet",
    "QuickFind",
    "alpha",
    "ackermann",
    # verification
    "verify_discovery",
    "check_all_lemmas",
    "InvariantViolation",
    # parallel execution
    "Job",
    "ParallelExecutor",
    "ResultCache",
    "sweep_jobs",
]
