"""Metrics: counters/gauges/histograms sampled into per-run time series.

The instruments are deliberately tiny (this is a simulator, not a metrics
vendor): a :class:`Counter` is a monotone int, a :class:`Gauge` reads a
callable at sample time, a :class:`Histogram` is a discrete value->count
map.  What makes them useful is the :class:`MetricsTimeline`: subscribed
to a :class:`~repro.obs.events.Recorder`, it snapshots every registered
instrument on a **virtual-time cadence** (every ``cadence`` executed
steps), producing the per-run evolution the final aggregates hide --
how the message mix shifts phase by phase, when the in-flight backlog
peaks, how the per-state node census drains toward quiescence.

All sampled values are JSON-representable (histogram keys are stringified)
so samples ride along in the JSONL timeline of :mod:`repro.obs.timeline`
and round-trip losslessly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Hashable, List, Optional, Sequence, Tuple

from repro.obs.events import Recorder, RunEvent

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsSample",
    "MetricsTimeline",
    "attach_metrics",
    "DEFAULT_CADENCE",
]

#: Steps between samples when the caller does not choose one.  Small enough
#: to see phase structure on n=32 runs, large enough that a timeline stays
#: a few hundred rows even on long chaotic executions.
DEFAULT_CADENCE = 64


class Counter:
    """A monotonically increasing event count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        self.value += amount

    def read(self) -> int:
        return self.value


class Gauge:
    """A point-in-time reading, either set explicitly or pulled from a
    callable at sample time (the usual mode: ``lambda: sim.in_flight()``)."""

    __slots__ = ("_fn", "_value")

    def __init__(self, fn: Optional[Callable[[], Any]] = None) -> None:
        self._fn = fn
        self._value: Any = 0

    def set(self, value: Any) -> None:
        self._value = value

    def read(self) -> Any:
        return self._fn() if self._fn is not None else self._value


class Histogram:
    """A discrete value -> count map (phases, states, message types).

    Either observe values one by one or pull a whole distribution from a
    callable at sample time; keys are stringified when read so samples are
    JSON-stable.
    """

    __slots__ = ("_fn", "_counts")

    def __init__(self, fn: Optional[Callable[[], Dict[Any, int]]] = None) -> None:
        self._fn = fn
        self._counts: Dict[Any, int] = {}

    def observe(self, value: Any, count: int = 1) -> None:
        self._counts[value] = self._counts.get(value, 0) + count

    def read(self) -> Dict[str, int]:
        counts = self._fn() if self._fn is not None else self._counts
        return {str(key): count for key, count in sorted(counts.items(), key=lambda kv: str(kv[0]))}

    # -- order statistics ----------------------------------------------
    def total(self) -> int:
        """Number of observations across all buckets."""
        counts = self._fn() if self._fn is not None else self._counts
        return sum(counts.values())

    def percentile(self, q: float) -> Optional[float]:
        """The ``q``-th percentile of the observed distribution.

        Keys must be numeric (the histogram is treated as an exact
        discrete distribution: the result is the smallest observed value
        whose cumulative count covers ``q`` percent of observations --
        the "nearest-rank" definition, which keeps results exact for
        integer-valued series like latencies in steps).  Returns ``None``
        on an empty histogram; raises :class:`TypeError` on non-numeric
        keys, since a percentile of e.g. a state census is meaningless.
        """
        if not 0 <= q <= 100:
            raise ValueError(f"percentile q must be in [0, 100], got {q}")
        counts = self._fn() if self._fn is not None else self._counts
        if not counts:
            return None
        for key in counts:
            if isinstance(key, bool) or not isinstance(key, (int, float)):
                raise TypeError(
                    f"percentile needs numeric histogram keys, got {key!r}"
                )
        total = sum(counts.values())
        # Nearest-rank: the value at position ceil(q/100 * total), 1-based.
        rank = max(1, -(-q * total // 100))
        cumulative = 0
        for value in sorted(counts):
            cumulative += counts[value]
            if cumulative >= rank:
                return float(value)
        return float(max(counts))  # pragma: no cover - rank <= total always

    def quantiles(
        self, qs: Sequence[float] = (50.0, 95.0, 99.0)
    ) -> Dict[str, Optional[float]]:
        """The standard SLO quantiles as ``{"p50": ..., ...}``.

        Convenience over :meth:`percentile`; the default set is what the
        service latency tables report.
        """
        return {f"p{q:g}": self.percentile(q) for q in qs}


class MetricsRegistry:
    """Named instruments, snapshot together by :meth:`sample`."""

    def __init__(self) -> None:
        self._instruments: Dict[str, Any] = {}

    def _register(self, name: str, instrument: Any) -> Any:
        if name in self._instruments:
            raise ValueError(f"duplicate metric {name!r}")
        self._instruments[name] = instrument
        return instrument

    def counter(self, name: str) -> Counter:
        return self._register(name, Counter())

    def gauge(self, name: str, fn: Optional[Callable[[], Any]] = None) -> Gauge:
        return self._register(name, Gauge(fn))

    def histogram(
        self, name: str, fn: Optional[Callable[[], Dict[Any, int]]] = None
    ) -> Histogram:
        return self._register(name, Histogram(fn))

    def names(self) -> List[str]:
        return sorted(self._instruments)

    def sample(self) -> Dict[str, Any]:
        """One flat snapshot of every instrument, name -> value."""
        return {name: inst.read() for name, inst in sorted(self._instruments.items())}


@dataclass(frozen=True)
class MetricsSample:
    """The registry's values at one virtual time."""

    step: int
    values: Dict[str, Any] = field(default_factory=dict)


class MetricsTimeline:
    """Virtual-time sampler: registry snapshots every ``cadence`` steps.

    Subscribe it to a recorder (:func:`attach_metrics` does the wiring) and
    each incoming event's step drives the sampling clock -- the pure
    event-driven design means zero cost when observability is off and no
    hooks inside the simulator loop.  Call :meth:`finish` after the run for
    the final (quiescent) sample.
    """

    def __init__(self, registry: MetricsRegistry, *, cadence: int = DEFAULT_CADENCE) -> None:
        if cadence < 1:
            raise ValueError(f"cadence must be >= 1 step, got {cadence}")
        self.registry = registry
        self.cadence = cadence
        self.samples: List[MetricsSample] = []
        self._next_due = 0

    def on_event(self, event: RunEvent) -> None:
        self.tick(event.step)

    def tick(self, step: int) -> None:
        """Advance the sampling clock to ``step``; sample if one is due.

        The event-bus path goes through :meth:`on_event`; drivers that own
        their virtual clock (the steady-state service loop) call ``tick``
        directly each step, paying one comparison when no sample is due.
        """
        if step >= self._next_due:
            self._take(step)

    def _take(self, step: int) -> None:
        self.samples.append(MetricsSample(step, self.registry.sample()))
        self._next_due = step + self.cadence

    def finish(self, step: int) -> None:
        """Force a final sample at ``step`` (idempotent per step)."""
        if not self.samples or self.samples[-1].step != step:
            self._take(step)

    # -- series access --------------------------------------------------
    def series(self, name: str) -> List[Tuple[int, Any]]:
        """One metric as ``[(step, value), ...]`` over the whole run."""
        return [(s.step, s.values.get(name)) for s in self.samples]

    def last(self) -> Optional[MetricsSample]:
        return self.samples[-1] if self.samples else None


def _census(nodes: Dict[Hashable, Any]) -> Dict[str, int]:
    """Per-state node counts; transport wrappers report their inner node."""
    counts: Dict[str, int] = {}
    for node in nodes.values():
        target = getattr(node, "inner", node)
        if not getattr(target, "awake", False):
            state = "asleep"
        else:
            state = str(getattr(target, "status", None) or "awake")
        counts[state] = counts.get(state, 0) + 1
    return counts


def _phases(nodes: Dict[Hashable, Any]) -> Dict[int, int]:
    counts: Dict[int, int] = {}
    for node in nodes.values():
        target = getattr(node, "inner", node)
        phase = getattr(target, "phase", None)
        if phase is not None:
            counts[phase] = counts.get(phase, 0) + 1
    return counts


def _live_count(sim: Any) -> int:
    """Awake nodes that have not crashed (per the fault plan, if any)."""
    crashed = frozenset()
    faults = getattr(sim, "faults", None)
    if faults is not None and hasattr(faults, "crashed_nodes"):
        crashed = faults.crashed_nodes(sim.steps)
    return sum(
        1
        for node_id, node in sim.nodes.items()
        if node_id not in crashed and getattr(getattr(node, "inner", node), "awake", False)
    )


def attach_metrics(
    sim: Any, recorder: Recorder, *, cadence: int = DEFAULT_CADENCE
) -> MetricsTimeline:
    """Wire the standard simulator metrics into a sampled timeline.

    The instruments every run gets: cumulative ``messages-by-type``, the
    ``in-flight`` backlog, the ``live-nodes`` count, the per-state node
    ``census``, and the ``phase-histogram`` -- the quantities the Section 5
    lemmas and the chaos taxonomy reason about, now as time series.
    """
    registry = MetricsRegistry()
    registry.gauge("steps", lambda: sim.steps)
    registry.gauge("in-flight", sim.in_flight)
    registry.gauge("live-nodes", lambda: _live_count(sim))
    registry.gauge("messages-total", lambda: sim.stats.total_messages)
    registry.gauge("bits-total", lambda: sim.stats.total_bits)
    registry.histogram("messages-by-type", lambda: dict(sim.stats.messages_by_type))
    registry.histogram("census", lambda: _census(sim.nodes))
    registry.histogram("phase-histogram", lambda: _phases(sim.nodes))
    timeline = MetricsTimeline(registry, cadence=cadence)
    recorder.subscribe(timeline.on_event)
    return timeline
