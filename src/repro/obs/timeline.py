"""JSONL timelines: export, import, summarize, diff.

A *timeline* is the durable form of a recorded run: one JSON object per
line, first a metadata header, then every run event in emission order,
then the sampled metrics.  The format is append-friendly, greppable, and
-- the property the tests pin -- **lossless**: ``read_timeline`` of a
``write_timeline`` output reproduces the exact event sequence, provided
event fields are JSON-representable (ints, strings, floats, bools, lists,
string-keyed dicts; node ids in every shipped graph family are ints).

``python -m repro trace`` is the human face of this module: ``record`` a
run to a file, ``summarize`` one, ``diff`` two (first divergence plus
per-kind and per-message-type deltas).
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.obs.events import Recorder, RunEvent
from repro.obs.metrics import MetricsSample, MetricsTimeline

PathLike = Union[str, pathlib.Path]

__all__ = [
    "TIMELINE_SCHEMA_VERSION",
    "Timeline",
    "timeline_from_run",
    "write_timeline",
    "read_timeline",
    "summarize_timeline",
    "diff_timelines",
]

#: Bumped when the line format changes shape; readers reject newer files
#: loudly instead of misparsing them.
TIMELINE_SCHEMA_VERSION = 1

_EVENT_FIELDS = ("step", "kind", "node", "peer", "msg_type", "value")


@dataclass
class Timeline:
    """An imported (or about-to-be-exported) run timeline."""

    meta: Dict[str, Any] = field(default_factory=dict)
    events: List[RunEvent] = field(default_factory=list)
    samples: List[MetricsSample] = field(default_factory=list)

    @property
    def steps_spanned(self) -> int:
        return self.events[-1].step if self.events else 0

    def counts_by_kind(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts

    def messages_by_type(self) -> Dict[str, int]:
        """Send counts per message type (the traffic-mix view)."""
        counts: Dict[str, int] = {}
        for event in self.events:
            if event.kind == "send" and event.msg_type is not None:
                counts[event.msg_type] = counts.get(event.msg_type, 0) + 1
        return counts


def timeline_from_run(
    recorder: Recorder,
    metrics: Optional[MetricsTimeline] = None,
    meta: Optional[Dict[str, Any]] = None,
) -> Timeline:
    """Package a finished run's recorder (and optional metrics) for export."""
    return Timeline(
        meta=dict(meta or {}),
        events=list(recorder.events),
        samples=list(metrics.samples) if metrics is not None else [],
    )


def write_timeline(path: PathLike, timeline: Timeline) -> pathlib.Path:
    """Write one JSONL file; returns the path.

    Line 1 is the header (schema version + caller metadata); ``event``
    lines carry the six :class:`RunEvent` fields; ``sample`` lines carry a
    metrics snapshot.  Events keep emission order, which is also step
    order.
    """
    path = pathlib.Path(path)
    with path.open("w", encoding="utf-8") as fh:
        header = {
            "line": "header",
            "schema": TIMELINE_SCHEMA_VERSION,
            "meta": timeline.meta,
        }
        fh.write(json.dumps(header, sort_keys=True) + "\n")
        for event in timeline.events:
            payload: Dict[str, Any] = {"line": "event"}
            for name in _EVENT_FIELDS:
                value = getattr(event, name)
                if value is not None:
                    payload[name] = value
            fh.write(json.dumps(payload, sort_keys=True) + "\n")
        for sample in timeline.samples:
            fh.write(
                json.dumps(
                    {"line": "sample", "step": sample.step, "values": sample.values},
                    sort_keys=True,
                )
                + "\n"
            )
    return path


def read_timeline(path: PathLike) -> Timeline:
    """Inverse of :func:`write_timeline` (the round-trip the tests pin)."""
    path = pathlib.Path(path)
    timeline = Timeline()
    with path.open("r", encoding="utf-8") as fh:
        for line_no, raw in enumerate(fh, start=1):
            raw = raw.strip()
            if not raw:
                continue
            try:
                payload = json.loads(raw)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{line_no}: not JSON ({exc})") from None
            shape = payload.get("line")
            if shape == "header":
                schema = payload.get("schema")
                if schema != TIMELINE_SCHEMA_VERSION:
                    raise ValueError(
                        f"{path}: timeline schema {schema!r}, "
                        f"this reader speaks {TIMELINE_SCHEMA_VERSION}"
                    )
                timeline.meta = dict(payload.get("meta", {}))
            elif shape == "event":
                timeline.events.append(
                    RunEvent(**{name: payload.get(name) for name in _EVENT_FIELDS})
                )
            elif shape == "sample":
                timeline.samples.append(
                    MetricsSample(payload["step"], dict(payload.get("values", {})))
                )
            else:
                raise ValueError(f"{path}:{line_no}: unknown line shape {shape!r}")
    return timeline


def summarize_timeline(timeline: Timeline) -> str:
    """Human-readable digest: provenance, event mix, traffic, final sample."""
    lines: List[str] = []
    meta = ", ".join(f"{k}={v}" for k, v in sorted(timeline.meta.items()))
    lines.append(f"timeline: {len(timeline.events)} events over "
                 f"{timeline.steps_spanned} steps" + (f" ({meta})" if meta else ""))
    counts = timeline.counts_by_kind()
    if counts:
        lines.append(
            "events: "
            + ", ".join(f"{kind}={count}" for kind, count in sorted(counts.items()))
        )
    traffic = timeline.messages_by_type()
    if traffic:
        lines.append(
            "sends by type: "
            + ", ".join(f"{t}={c}" for t, c in sorted(traffic.items()))
        )
    if timeline.samples:
        last = timeline.samples[-1]
        flat = {
            name: value
            for name, value in sorted(last.values.items())
            if not isinstance(value, dict)
        }
        lines.append(
            f"final sample @step {last.step}: "
            + ", ".join(f"{k}={v}" for k, v in flat.items())
        )
        census = last.values.get("census")
        if isinstance(census, dict) and census:
            lines.append(
                "final census: "
                + ", ".join(f"{k}={v}" for k, v in sorted(census.items()))
            )
    return "\n".join(lines)


def _first_divergence(
    a: List[RunEvent], b: List[RunEvent]
) -> Optional[Tuple[int, Optional[RunEvent], Optional[RunEvent]]]:
    for index in range(max(len(a), len(b))):
        left = a[index] if index < len(a) else None
        right = b[index] if index < len(b) else None
        if left != right:
            return index, left, right
    return None


def diff_timelines(a: Timeline, b: Timeline) -> Tuple[bool, str]:
    """Compare two timelines; returns ``(identical, report)``.

    The report names the first diverging event index (the scheduler-level
    cause) and the per-kind / per-message-type count deltas (the
    accounting-level effect) -- usually one of the two is the story.
    """
    lines: List[str] = []
    divergence = _first_divergence(a.events, b.events)
    if divergence is None:
        lines.append(
            f"identical: {len(a.events)} events, {a.steps_spanned} steps"
        )
        return True, "\n".join(lines)
    index, left, right = divergence
    lines.append(
        f"diverge at event {index} of {len(a.events)}/{len(b.events)}:"
    )
    lines.append(f"  a: {left}")
    lines.append(f"  b: {right}")
    kinds_a, kinds_b = a.counts_by_kind(), b.counts_by_kind()
    for kind in sorted(set(kinds_a) | set(kinds_b)):
        delta = kinds_b.get(kind, 0) - kinds_a.get(kind, 0)
        if delta:
            lines.append(f"  {kind}: {kinds_a.get(kind, 0)} -> {kinds_b.get(kind, 0)} ({delta:+d})")
    traffic_a, traffic_b = a.messages_by_type(), b.messages_by_type()
    for msg_type in sorted(set(traffic_a) | set(traffic_b)):
        delta = traffic_b.get(msg_type, 0) - traffic_a.get(msg_type, 0)
        if delta:
            lines.append(
                f"  sends[{msg_type}]: {traffic_a.get(msg_type, 0)} -> "
                f"{traffic_b.get(msg_type, 0)} ({delta:+d})"
            )
    return False, "\n".join(lines)
