"""Structured observability: run events, metrics timelines, profiling.

Everything an execution can tell you about itself flows through one seam,
the :class:`~repro.obs.events.Recorder`:

* :mod:`repro.obs.events` -- the typed **run-event bus**.  The simulator
  (and the reliable transport) emit send/deliver/drop/wake/timer/
  state-transition/phase-change/fault-action/retransmit events through
  ``Simulator.obs``; with no recorder attached each emit site costs one
  ``is not None`` predicate check and nothing else.
* :mod:`repro.obs.metrics` -- counters/gauges/histograms plus the
  virtual-time sampler that turns them into per-run **time series**
  (messages-by-type, in-flight backlog, live-node count, per-state node
  census, phase-histogram evolution).
* :mod:`repro.obs.profile` -- opt-in ``perf_counter_ns`` **profiling
  hooks** around the simulator's dispatch and every node handler, reported
  as a table of hot buckets.
* :mod:`repro.obs.timeline` -- **JSONL export/import** of a recorded run
  with a lossless round-trip guarantee, plus summarize/diff used by the
  ``python -m repro trace`` subcommand.

The overhead contract (benchmarked by ``benchmarks/bench_obs_overhead.py``
into ``BENCH_obs.json``): with the recorder disabled the instrumented
simulator stays within 5% of an uninstrumented one.
"""

from repro.obs.events import EVENT_KINDS, Recorder, RunEvent
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsSample,
    MetricsTimeline,
    attach_metrics,
)
from repro.obs.profile import Profiler
from repro.obs.timeline import (
    TIMELINE_SCHEMA_VERSION,
    Timeline,
    diff_timelines,
    read_timeline,
    summarize_timeline,
    timeline_from_run,
    write_timeline,
)

__all__ = [
    "EVENT_KINDS",
    "RunEvent",
    "Recorder",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsSample",
    "MetricsTimeline",
    "attach_metrics",
    "Profiler",
    "TIMELINE_SCHEMA_VERSION",
    "Timeline",
    "timeline_from_run",
    "write_timeline",
    "read_timeline",
    "summarize_timeline",
    "diff_timelines",
]
