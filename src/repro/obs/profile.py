"""Opt-in wall-time profiling of the simulator's hot paths.

The asynchronous simulator spends its life in two places: the step
dispatch (scheduler pop + token routing) and the node handlers the steps
invoke.  :class:`Profiler` wraps both with ``perf_counter_ns`` buckets so
a slow run is attributable -- is it the scheduler, one protocol's
``on_message``, or the reliable transport's timer storm?

Instrumentation is per-simulator-instance (bound-method shadowing on the
instance, never on the class), so profiling one run cannot slow any other.
The report is a plain ``(headers, rows)`` table that renders through
:func:`repro.analysis.tables.render_table` -- same as every experiment.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Tuple

__all__ = ["Profiler"]

Table = Tuple[List[str], List[List[Any]]]


class _Bucket:
    __slots__ = ("calls", "total_ns")

    def __init__(self) -> None:
        self.calls = 0
        self.total_ns = 0


class Profiler:
    """Accumulates ``perf_counter_ns`` buckets over one (or more) runs.

    Usage::

        profiler = Profiler()
        profiler.instrument(sim)   # after nodes are added
        sim.run()
        headers, rows = profiler.report()
    """

    def __init__(self) -> None:
        self.buckets: Dict[str, _Bucket] = {}

    # ------------------------------------------------------------------
    # wrapping
    # ------------------------------------------------------------------
    def wrap(self, name: str, fn: Callable) -> Callable:
        """Time every call of ``fn`` into bucket ``name``."""
        bucket = self.buckets.setdefault(name, _Bucket())
        clock = time.perf_counter_ns

        def timed(*args: Any, **kwargs: Any) -> Any:
            start = clock()
            try:
                return fn(*args, **kwargs)
            finally:
                bucket.total_ns += clock() - start
                bucket.calls += 1

        return timed

    def instrument(self, sim: Any) -> None:
        """Attach buckets to ``sim``'s dispatch and every node handler.

        Buckets: ``step`` (whole dispatch), ``dispatch.wake`` /
        ``dispatch.deliver`` / ``dispatch.timer`` (token routing including
        the handler), and ``<NodeClass>.on_message`` / ``.on_wake`` /
        ``.on_timer`` per node class (transport wrappers and their inner
        protocol nodes are both instrumented, so recovery overhead
        separates from protocol work).
        """
        sim.step = self.wrap("step", sim.step)
        sim._execute_wake = self.wrap("dispatch.wake", sim._execute_wake)
        sim._execute_deliver = self.wrap("dispatch.deliver", sim._execute_deliver)
        sim._execute_timer = self.wrap("dispatch.timer", sim._execute_timer)
        for node in sim.nodes.values():
            self._instrument_node(node)
            inner = getattr(node, "inner", None)
            if inner is not None:
                self._instrument_node(inner)

    def _instrument_node(self, node: Any) -> None:
        cls = type(node).__name__
        for handler in ("on_message", "on_wake", "on_timer"):
            fn = getattr(node, handler, None)
            if fn is not None:
                setattr(node, handler, self.wrap(f"{cls}.{handler}", fn))

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def report(self) -> Table:
        """Buckets with at least one call, hottest first."""
        total_ns = self.buckets["step"].total_ns if "step" in self.buckets else sum(
            b.total_ns for b in self.buckets.values()
        )
        rows: List[List[Any]] = []
        for name, bucket in sorted(
            self.buckets.items(), key=lambda kv: -kv[1].total_ns
        ):
            if bucket.calls == 0:
                continue
            rows.append(
                [
                    name,
                    bucket.calls,
                    round(bucket.total_ns / 1e6, 3),
                    round(bucket.total_ns / bucket.calls / 1e3, 3),
                    f"{bucket.total_ns / total_ns:.1%}" if total_ns else "-",
                ]
            )
        return ["bucket", "calls", "total-ms", "mean-us", "share-of-step"], rows

    def summary(self) -> str:
        headers, rows = self.report()
        width = max((len(str(row[0])) for row in rows), default=6)
        lines = [f"{'bucket':<{width}}  calls  total-ms  mean-us"]
        for name, calls, total_ms, mean_us, _share in rows:
            lines.append(f"{name:<{width}}  {calls:>5}  {total_ms:>8}  {mean_us:>7}")
        return "\n".join(lines)
