"""The run-event bus: typed events and the single ``Recorder`` seam.

Every instrumented layer (the asynchronous simulator, the reliable
transport, the chaos harness) reports what happened through one object.
The contract has two sides:

* **emitters** guard each emit site with ``if obs is not None`` -- a
  disabled run pays one predicate check per site and never constructs an
  event (the overhead contract of ``BENCH_obs.json``);
* **consumers** either read :attr:`Recorder.events` after the run or
  subscribe a callback and see events as they happen (that is how the
  metrics sampler of :mod:`repro.obs.metrics` builds its time series
  without a second pass).

Events are frozen dataclasses keyed by the virtual-time step at which they
occurred, so a recorded run is a totally ordered timeline that serializes
to JSONL (:mod:`repro.obs.timeline`) and replays deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Hashable, Iterator, List, Optional

__all__ = ["EVENT_KINDS", "RunEvent", "Recorder"]

#: The event taxonomy (DESIGN.md sections 10-11).  ``send`` .. ``timer`` are
#: transport mechanics, ``state-transition``/``phase-change`` are protocol
#: progress, ``fault-action``/``retransmit``/``nack`` are the fault layer's
#: doing (``nack`` is the selective-repeat receiver naming a detected gap),
#: ``job`` is the sweep engine's job-lifecycle analogue, ``service-op`` is
#: a completed service operation (``repro.service``; value = latency), and
#: ``crash``/``recover``/``epoch-fence`` belong to the crash-recovery model.
EVENT_KINDS = (
    "send",
    "deliver",
    "drop",
    "wake",
    "timer",
    "state-transition",
    "phase-change",
    "fault-action",
    "retransmit",
    "nack",
    "job",
    "service-op",
    "crash",
    "recover",
    "epoch-fence",
)


@dataclass(frozen=True)
class RunEvent:
    """One observed occurrence at virtual time ``step``.

    ``node`` is the primary actor (the receiver for deliveries, the sender
    for sends), ``peer`` the other endpoint when there is one, ``value`` a
    kind-specific payload: the new phase for ``phase-change``,
    ``"old->new"`` for ``state-transition``, the fault kind for
    ``fault-action``, a status dict for ``job`` events.  Values must stay
    JSON-representable so timelines round-trip losslessly.
    """

    step: int
    kind: str
    node: Optional[Hashable] = None
    peer: Optional[Hashable] = None
    msg_type: Optional[str] = None
    value: Any = None


class Recorder:
    """The seam every instrumented layer reports through.

    Attach one via ``Simulator(obs=...)`` (or ``build_simulation(obs=...)``)
    and the run fills :attr:`events`; leave it off and the emit sites cost
    one ``is not None`` check each.  ``keep_events=False`` keeps only the
    per-kind counters and feeds subscribers -- the memory-flat mode for
    long sweeps where only sampled metrics are wanted.
    """

    __slots__ = ("events", "counts", "keep_events", "_subscribers")

    def __init__(self, *, keep_events: bool = True) -> None:
        self.events: List[RunEvent] = []
        self.counts: Dict[str, int] = {}
        self.keep_events = keep_events
        self._subscribers: List[Callable[[RunEvent], None]] = []

    def subscribe(self, callback: Callable[[RunEvent], None]) -> None:
        """Invoke ``callback(event)`` on every subsequent emit."""
        self._subscribers.append(callback)

    def emit(self, event: RunEvent) -> None:
        """Record one event (the hot path when observability is on)."""
        self.counts[event.kind] = self.counts.get(event.kind, 0) + 1
        if self.keep_events:
            self.events.append(event)
        for callback in self._subscribers:
            callback(event)

    # -- inspection -----------------------------------------------------
    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[RunEvent]:
        return iter(self.events)

    @property
    def total_events(self) -> int:
        """Events emitted, whether or not they were kept."""
        return sum(self.counts.values())

    def of_kind(self, *kinds: str) -> List[RunEvent]:
        """Kept events matching any of ``kinds``, in emission order."""
        wanted = set(kinds)
        return [event for event in self.events if event.kind in wanted]
