"""Lock-step synchronous round engine.

The baselines the paper compares against (Harchol-Balter et al.'s
Name-Dropper, Law-Siu, the deterministic algorithm of Kutten-Peleg-Vishkin)
are *synchronous* algorithms: computation proceeds in global rounds, and
every message sent in round ``r`` is delivered at the start of round
``r + 1``.  This engine provides that model with the same message/bit
accounting interface as the asynchronous simulator, so comparison tables
(EXP-11) report like for like.
"""

from __future__ import annotations

from random import Random
from typing import Any, Dict, Hashable, Iterable, List, Optional, Tuple

from repro.sim.trace import MessageStats

NodeId = Hashable

__all__ = ["SyncNode", "SyncSimulator", "RoundFaults", "RoundLimitExceeded"]


class RoundLimitExceeded(RuntimeError):
    """The synchronous execution did not converge within the round budget."""


class SyncNode:
    """Base class for synchronous protocol participants.

    Subclasses implement :meth:`on_round`, which receives the messages
    delivered this round and returns the messages to send (delivered next
    round).  A node signals that it has locally converged by returning an
    empty outbox; the engine stops when a round moves no messages at all.
    """

    def __init__(self, node_id: NodeId) -> None:
        self.node_id = node_id

    def on_round(
        self, round_no: int, inbox: List[Tuple[NodeId, Any]]
    ) -> List[Tuple[NodeId, Any]]:
        raise NotImplementedError


class RoundFaults:
    """Seeded channel faults for the synchronous engine.

    The round-based analogue of the asynchronous
    :class:`~repro.faults.FaultInjector`, restricted to the faults that
    make sense in a lock-step model: independent message loss and
    transient partitions whose windows are measured in *rounds*.
    ``partitions`` accepts any objects with a ``severs(src, dst, round_no)``
    predicate -- :class:`repro.faults.PartitionSpec` qualifies (its step
    windows are reinterpreted as round windows), and the sync engine stays
    import-independent of the faults package.

    As in the asynchronous simulator, the sender is charged for a dropped
    message (it paid to send it); only the delivery is suppressed.
    """

    def __init__(self, *, loss: float = 0.0, partitions: Iterable[Any] = (), seed: int = 0) -> None:
        if not 0.0 <= loss < 1.0:
            raise ValueError(f"loss must be in [0, 1), got {loss}")
        self.loss = loss
        self.partitions = tuple(partitions)
        self._rng = Random(seed)
        self.dropped = 0

    def drops(self, src: NodeId, dst: NodeId, round_no: int) -> bool:
        for partition in self.partitions:
            if partition.severs(src, dst, round_no):
                self.dropped += 1
                return True
        if self.loss > 0.0 and self._rng.random() < self.loss:
            self.dropped += 1
            return True
        return False


class SyncSimulator:
    """Run :class:`SyncNode` instances in lock-step rounds.

    Parameters
    ----------
    id_bits:
        Bits charged per node id, as in the asynchronous simulator.
    faults:
        Optional :class:`RoundFaults`; dropped messages are charged to the
        sender but never delivered.  A lossy run that stops converging
        raises :class:`RoundLimitExceeded` -- the synchronous algorithms
        have no recovery layer, which is exactly what the fault tests
        document.
    """

    def __init__(self, *, id_bits: int = 32, faults: Optional[RoundFaults] = None) -> None:
        self.nodes: Dict[NodeId, SyncNode] = {}
        self.stats = MessageStats()
        self.id_bits = id_bits
        self.faults = faults
        self.rounds = 0
        self._mailboxes: Dict[NodeId, List[Tuple[NodeId, Any]]] = {}
        self._pending = 0  # incremental mirror of sum(mailbox lengths)

    def add_node(self, node: SyncNode) -> None:
        if node.node_id in self.nodes:
            raise ValueError(f"duplicate node id {node.node_id!r}")
        self.nodes[node.node_id] = node
        self._mailboxes[node.node_id] = []

    def pending(self) -> int:
        """Messages awaiting delivery at the next round.

        O(1): maintained incrementally as deliveries are enqueued.  The
        previous implementation summed every mailbox's length, which the
        round loop (and the cluster-merge baseline's drive loop) called
        once per round -- an O(n) scan per round, O(n * rounds) overall.
        """
        return self._pending

    def step_round(self) -> int:
        """Execute one global round; return the number of messages sent."""
        self.rounds += 1
        inboxes = self._mailboxes
        self._mailboxes = {node_id: [] for node_id in self.nodes}
        self._pending = 0
        sent = 0
        for node_id, node in self.nodes.items():
            outbox = node.on_round(self.rounds, inboxes[node_id])
            for dst, message in outbox:
                if dst == node_id:
                    raise ValueError(f"{node_id!r} sent a message to itself")
                if dst not in self.nodes:
                    raise KeyError(f"{node_id!r} sent to unknown node {dst!r}")
                self.stats.record(message.msg_type, message.bit_size(self.id_bits))
                sent += 1
                if self.faults is not None and self.faults.drops(
                    node_id, dst, self.rounds
                ):
                    continue
                self._mailboxes[dst].append((node_id, message))
                self._pending += 1
        return sent

    def run(self, max_rounds: int = 100_000) -> int:
        """Run rounds until one moves no messages; return rounds executed.

        The first round always executes (nodes act spontaneously on round
        1); afterwards a silent round -- nothing sent and nothing pending --
        terminates the run.
        """
        while True:
            sent = self.step_round()
            pending = self.pending()
            if sent == 0 and pending == 0:
                return self.rounds
            if self.rounds >= max_rounds:
                raise RoundLimitExceeded(
                    f"no convergence within {max_rounds} rounds "
                    f"({pending} messages pending)"
                )
