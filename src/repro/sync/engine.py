"""Lock-step synchronous round engine.

The baselines the paper compares against (Harchol-Balter et al.'s
Name-Dropper, Law-Siu, the deterministic algorithm of Kutten-Peleg-Vishkin)
are *synchronous* algorithms: computation proceeds in global rounds, and
every message sent in round ``r`` is delivered at the start of round
``r + 1``.  This engine provides that model with the same message/bit
accounting interface as the asynchronous simulator, so comparison tables
(EXP-11) report like for like.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Iterable, List, Optional, Tuple

from repro.sim.trace import MessageStats

NodeId = Hashable

__all__ = ["SyncNode", "SyncSimulator", "RoundLimitExceeded"]


class RoundLimitExceeded(RuntimeError):
    """The synchronous execution did not converge within the round budget."""


class SyncNode:
    """Base class for synchronous protocol participants.

    Subclasses implement :meth:`on_round`, which receives the messages
    delivered this round and returns the messages to send (delivered next
    round).  A node signals that it has locally converged by returning an
    empty outbox; the engine stops when a round moves no messages at all.
    """

    def __init__(self, node_id: NodeId) -> None:
        self.node_id = node_id

    def on_round(
        self, round_no: int, inbox: List[Tuple[NodeId, Any]]
    ) -> List[Tuple[NodeId, Any]]:
        raise NotImplementedError


class SyncSimulator:
    """Run :class:`SyncNode` instances in lock-step rounds.

    Parameters
    ----------
    id_bits:
        Bits charged per node id, as in the asynchronous simulator.
    """

    def __init__(self, *, id_bits: int = 32) -> None:
        self.nodes: Dict[NodeId, SyncNode] = {}
        self.stats = MessageStats()
        self.id_bits = id_bits
        self.rounds = 0
        self._mailboxes: Dict[NodeId, List[Tuple[NodeId, Any]]] = {}

    def add_node(self, node: SyncNode) -> None:
        if node.node_id in self.nodes:
            raise ValueError(f"duplicate node id {node.node_id!r}")
        self.nodes[node.node_id] = node
        self._mailboxes[node.node_id] = []

    def pending(self) -> int:
        """Messages awaiting delivery at the next round."""
        return sum(len(box) for box in self._mailboxes.values())

    def step_round(self) -> int:
        """Execute one global round; return the number of messages sent."""
        self.rounds += 1
        inboxes = self._mailboxes
        self._mailboxes = {node_id: [] for node_id in self.nodes}
        sent = 0
        for node_id, node in self.nodes.items():
            outbox = node.on_round(self.rounds, inboxes[node_id])
            for dst, message in outbox:
                if dst == node_id:
                    raise ValueError(f"{node_id!r} sent a message to itself")
                if dst not in self.nodes:
                    raise KeyError(f"{node_id!r} sent to unknown node {dst!r}")
                self.stats.record(message.msg_type, message.bit_size(self.id_bits))
                self._mailboxes[dst].append((node_id, message))
                sent += 1
        return sent

    def run(self, max_rounds: int = 100_000) -> int:
        """Run rounds until one moves no messages; return rounds executed.

        The first round always executes (nodes act spontaneously on round
        1); afterwards a silent round -- nothing sent and nothing pending --
        terminates the run.
        """
        while True:
            sent = self.step_round()
            pending = self.pending()
            if sent == 0 and pending == 0:
                return self.rounds
            if self.rounds >= max_rounds:
                raise RoundLimitExceeded(
                    f"no convergence within {max_rounds} rounds "
                    f"({pending} messages pending)"
                )
