"""Synchronous round-based execution model for the baselines."""

from repro.sync.engine import RoundFaults, RoundLimitExceeded, SyncNode, SyncSimulator

__all__ = ["SyncNode", "SyncSimulator", "RoundFaults", "RoundLimitExceeded"]
