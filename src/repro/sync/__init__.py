"""Synchronous round-based execution model for the baselines."""

from repro.sync.engine import RoundLimitExceeded, SyncNode, SyncSimulator

__all__ = ["SyncNode", "SyncSimulator", "RoundLimitExceeded"]
