"""Experiment runners: one function per EXP of DESIGN.md section 5.

Each function runs the workload, returns ``(headers, rows)`` ready for
:func:`repro.analysis.tables.render_table`, and asserts nothing itself --
the tests and EXPERIMENTS.md assert the shape criteria; the benchmarks
print the tables.  Keeping the runners here lets unit tests, benchmarks
and examples share one implementation.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, Iterable, List, Sequence, Tuple

from repro.baselines import (
    run_flooding,
    run_kpv_style,
    run_law_siu,
    run_name_dropper,
    run_pointer_jump,
    run_strong_election,
    run_swamping,
)
from repro.core.adhoc import AdhocNetwork, run_adhoc
from repro.core.bounded import run_bounded
from repro.core.generic import run_generic
from repro.graphs.generators import (
    community_graph,
    complete_binary_tree,
    dense_layered,
    erdos_renyi,
    grid,
    preferential_attachment,
    random_strongly_connected,
    random_weakly_connected,
    star,
)
from repro.graphs.knowledge_graph import KnowledgeGraph
from repro.graphs.reduction import (
    binomial_merge_schedule,
    interleaved_find_schedule,
    random_schedule,
)
from repro.lowerbounds.tree_adversary import run_tree_lower_bound
from repro.lowerbounds.unionfind_reduction import run_reduction
from repro.unionfind.ackermann import alpha, ilog2
from repro.unionfind.disjoint_set import DisjointSet
from repro.verification.invariants import verify_discovery
from repro.verification.lemmas import check_all_lemmas

Rows = List[List[Any]]
Table = Tuple[List[str], Rows]

__all__ = [
    "GRAPH_FAMILIES",
    "SWEEPABLE_EXPERIMENTS",
    "QUICK_SWEEP_KWARGS",
    "build_family",
    "exp_generic_scaling",
    "exp_near_linear_scaling",
    "exp_bit_complexity",
    "exp_message_lemmas",
    "exp_tree_lower_bound",
    "exp_unionfind_reduction",
    "exp_dynamic_additions",
    "exp_baseline_comparison",
    "exp_chaos",
    "exp_adhoc_probes",
    "exp_strongly_connected",
    "exp_sequential_unionfind",
    "exp_time_complexity",
    "exp_hbl_algorithms",
    "exp_kp_bit_improvement",
    "exp_service_slo",
]

#: The graph families used across the scaling experiments; every builder
#: takes ``(n, seed)`` and returns a weakly connected knowledge graph with
#: roughly ``n`` nodes.
GRAPH_FAMILIES: Dict[str, Callable[[int, int], KnowledgeGraph]] = {
    "star": lambda n, seed: star(n),
    "sparse-random": lambda n, seed: random_weakly_connected(n, n, seed),
    "dense-random": lambda n, seed: random_weakly_connected(
        n, n * max(1, ilog2(max(2, n))), seed
    ),
    "tree": lambda n, seed: complete_binary_tree(max(2, (n + 1).bit_length() - 1)),
    "preferential": lambda n, seed: preferential_attachment(n, 3, seed),
    "layered": lambda n, seed: dense_layered(
        max(2, n // max(1, ilog2(max(2, n)))), max(1, ilog2(max(2, n)))
    ),
    "grid": lambda n, seed: grid(
        max(1, int(n**0.5)), max(1, round(n / max(1, int(n**0.5))))
    ),
    "community": lambda n, seed: community_graph(
        max(1, n // 16), min(16, n), p_internal=0.25, seed=seed
    ),
}


def build_family(family: str, n: int, seed: int = 0) -> KnowledgeGraph:
    """Instantiate one of :data:`GRAPH_FAMILIES`."""
    return GRAPH_FAMILIES[family](n, seed)


def _run_variant(variant: str, graph: KnowledgeGraph, seed: int):
    if variant == "generic":
        return run_generic(graph, seed=seed)
    if variant == "bounded":
        return run_bounded(graph, seed=seed)
    if variant == "adhoc":
        return run_adhoc(graph, seed=seed)
    raise ValueError(f"unknown variant {variant!r}")


# ----------------------------------------------------------------------
# EXP-3: Generic message scaling (Theorem 5)
# ----------------------------------------------------------------------
def exp_generic_scaling(
    ns: Sequence[int] = (64, 128, 256, 512),
    families: Sequence[str] = ("star", "sparse-random", "dense-random"),
    seed: int = 0,
) -> Table:
    headers = ["family", "n", "|E0|", "messages", "msgs/(n log n)", "msgs/n"]
    rows: Rows = []
    for family in families:
        for n in ns:
            graph = build_family(family, n, seed)
            result = run_generic(graph, seed=seed)
            verify_discovery(result, graph)
            n_log_n = graph.n * math.log2(max(2, graph.n))
            rows.append(
                [
                    family,
                    graph.n,
                    graph.n_edges,
                    result.total_messages,
                    result.total_messages / n_log_n,
                    result.total_messages / graph.n,
                ]
            )
    return headers, rows


# ----------------------------------------------------------------------
# EXP-4: Bounded and Ad-hoc near-linear scaling (Theorem 6)
# ----------------------------------------------------------------------
def exp_near_linear_scaling(
    ns: Sequence[int] = (64, 128, 256, 512),
    variants: Sequence[str] = ("bounded", "adhoc"),
    families: Sequence[str] = ("sparse-random", "dense-random"),
    seed: int = 0,
) -> Table:
    headers = ["variant", "family", "n", "messages", "msgs/(n alpha)", "msgs/n"]
    rows: Rows = []
    for variant in variants:
        for family in families:
            for n in ns:
                graph = build_family(family, n, seed)
                result = _run_variant(variant, graph, seed)
                verify_discovery(result, graph)
                n_alpha = graph.n * alpha(graph.n, graph.n)
                rows.append(
                    [
                        variant,
                        family,
                        graph.n,
                        result.total_messages,
                        result.total_messages / n_alpha,
                        result.total_messages / graph.n,
                    ]
                )
    return headers, rows


# ----------------------------------------------------------------------
# EXP-5: bit complexity (Theorem 7)
# ----------------------------------------------------------------------
def exp_bit_complexity(
    ns: Sequence[int] = (64, 128, 256, 512),
    families: Sequence[str] = ("sparse-random", "dense-random", "layered"),
    seed: int = 0,
) -> Table:
    headers = ["family", "n", "|E0|", "bits", "bits/bound"]
    rows: Rows = []
    for family in families:
        for n in ns:
            graph = build_family(family, n, seed)
            result = run_generic(graph, seed=seed)
            log_n = math.log2(max(2, graph.n))
            bound = graph.n_edges * log_n + graph.n * log_n**2
            rows.append(
                [family, graph.n, graph.n_edges, result.total_bits, result.total_bits / bound]
            )
    return headers, rows


# ----------------------------------------------------------------------
# EXP-6..9: the per-message-type lemmas
# ----------------------------------------------------------------------
def exp_message_lemmas(
    ns: Sequence[int] = (64, 256),
    variants: Sequence[str] = ("generic", "bounded", "adhoc"),
    family: str = "dense-random",
    seed: int = 0,
) -> Table:
    headers = ["variant", "n", "lemma", "measured", "bound", "holds"]
    rows: Rows = []
    for variant in variants:
        for n in ns:
            graph = build_family(family, n, seed)
            result = _run_variant(variant, graph, seed)
            for check in check_all_lemmas(
                result.stats, graph.n, graph.n_edges, variant
            ):
                rows.append(
                    [variant, graph.n, check.name, check.measured, check.bound, check.holds]
                )
    return headers, rows


# ----------------------------------------------------------------------
# EXP-1: Theorem 1 adversarial lower bound
# ----------------------------------------------------------------------
def exp_tree_lower_bound(heights: Sequence[int] = (3, 5, 7, 9)) -> Table:
    headers = ["height", "n", "measured msgs", "thm-1 floor", "measured/floor", "floor holds"]
    rows: Rows = []
    for height in heights:
        outcome = run_tree_lower_bound(height)
        rows.append(
            [
                height,
                outcome.n,
                outcome.measured_messages,
                outcome.theorem_floor,
                outcome.measured_messages / max(1, outcome.theorem_floor),
                outcome.respects_floor,
            ]
        )
    return headers, rows


# ----------------------------------------------------------------------
# EXP-2: Union-Find reduction (Lemma 3.1 / Theorem 2)
# ----------------------------------------------------------------------
def exp_unionfind_reduction(
    ns: Sequence[int] = (16, 32, 64), seed: int = 0
) -> Table:
    headers = ["schedule", "n_sets", "ops", "messages", "msgs/op", "msgs/(m alpha)"]
    rows: Rows = []
    for n in ns:
        for name, schedule in (
            ("random", random_schedule(n, n, seed=seed)),
            ("binomial", binomial_merge_schedule(n, 2, seed=seed)),
            ("chain", interleaved_find_schedule(n, 2, seed=seed)),
        ):
            outcome = run_reduction(n, schedule, verify=False)
            rows.append(
                [
                    name,
                    n,
                    outcome.n_operations,
                    outcome.total_messages,
                    outcome.total_messages / max(1, outcome.n_operations),
                    outcome.alpha_bound_ratio,
                ]
            )
    return headers, rows


# ----------------------------------------------------------------------
# EXP-10: dynamic additions (Theorem 8)
# ----------------------------------------------------------------------
def exp_dynamic_additions(
    n_initial: int = 128,
    n_new: int = 64,
    links_new: int = 64,
    seed: int = 7,
) -> Table:
    """Incremental cost of additions vs. re-running from scratch.

    Builds an initial network, then adds ``n_new`` nodes and ``links_new``
    links one at a time, measuring the *marginal* messages per addition;
    compares the total against the cost of running discovery from scratch
    on the final graph.
    """
    import random as _random

    rng = _random.Random(seed)
    graph = random_weakly_connected(n_initial, 2 * n_initial, seed)
    net = AdhocNetwork(graph, seed=seed)
    net.run()
    base_messages = net.stats.total_messages

    headers = ["quantity", "value"]
    before = net.stats.snapshot()
    next_id = n_initial
    for _ in range(n_new):
        known = rng.sample(net.graph.nodes, k=min(3, len(net.graph.nodes)))
        net.add_node(next_id, known)
        next_id += 1
        net.run()
    node_delta = net.stats.delta_since(before).total_messages

    before = net.stats.snapshot()
    for _ in range(links_new):
        u, v = rng.sample(net.graph.nodes, k=2)
        net.add_link(u, v)
        net.run()
    link_delta = net.stats.delta_since(before).total_messages

    verify_discovery(net.result(), net.graph)
    scratch = run_adhoc(net.graph, seed=seed)
    rows: Rows = [
        ["initial run messages (n=%d)" % n_initial, base_messages],
        ["marginal messages for %d node joins" % n_new, node_delta],
        ["per node join", node_delta / max(1, n_new)],
        ["marginal messages for %d link adds" % links_new, link_delta],
        ["per link add", link_delta / max(1, links_new)],
        ["incremental total", net.stats.total_messages],
        ["from-scratch rerun on final graph", scratch.total_messages],
    ]
    return headers, rows


# ----------------------------------------------------------------------
# EXP-11: baseline comparison
# ----------------------------------------------------------------------
def exp_baseline_comparison(
    n: int = 256, extra_edges_factor: int = 4, seed: int = 3
) -> Table:
    graph = random_weakly_connected(n, extra_edges_factor * n, seed)
    headers = ["algorithm", "model", "messages", "bits", "rounds/steps"]
    rows: Rows = []
    for name, runner, model in (
        ("flooding", lambda: run_flooding(graph), "sync"),
        ("swamping [2]", lambda: run_swamping(graph), "sync"),
        ("name-dropper [2]", lambda: run_name_dropper(graph, seed=seed), "sync, randomized"),
        ("law-siu [5]", lambda: run_law_siu(graph, seed=seed), "sync, randomized"),
        ("kpv-style [4]", lambda: run_kpv_style(graph), "sync, deterministic"),
        ("generic (this paper)", lambda: run_generic(graph, seed=seed), "async, deterministic"),
        ("bounded (this paper)", lambda: run_bounded(graph, seed=seed), "async, knows n"),
        ("ad-hoc (this paper)", lambda: run_adhoc(graph, seed=seed), "async, relaxed prop. 3"),
    ):
        result = runner()
        rounds = result.rounds if hasattr(result, "rounds") else result.steps
        rows.append([name, model, result.total_messages, result.total_bits, rounds])
    return headers, rows


# ----------------------------------------------------------------------
# EXP-12: Ad-hoc probes amortization
# ----------------------------------------------------------------------
def exp_adhoc_probes(n: int = 256, probes: int = 512, seed: int = 11) -> Table:
    import random as _random

    rng = _random.Random(seed)
    graph = random_weakly_connected(n, 2 * n, seed)
    net = AdhocNetwork(graph, seed=seed)
    net.run()
    discovery_messages = net.stats.total_messages
    before = net.stats.snapshot()
    for _ in range(probes):
        net.probe(rng.choice(graph.nodes))
    probe_delta = net.stats.delta_since(before)
    m = probes
    bound = (m + graph.n) * alpha(max(1, m), graph.n)
    headers = ["quantity", "value"]
    rows: Rows = [
        ["discovery messages", discovery_messages],
        ["probe messages for %d probes" % probes, probe_delta.total_messages],
        ["per probe", probe_delta.total_messages / probes],
        ["amortized bound (m+n) alpha(m,n)", bound],
        ["probe+discovery / bound", (probe_delta.total_messages + discovery_messages) / bound],
    ]
    return headers, rows


# ----------------------------------------------------------------------
# EXP-13: strongly connected O(n)
# ----------------------------------------------------------------------
def exp_strongly_connected(ns: Sequence[int] = (64, 128, 256, 512), seed: int = 0) -> Table:
    headers = ["n", "messages", "messages/n", "bits"]
    rows: Rows = []
    for n in ns:
        graph = random_strongly_connected(n, n, seed)
        result = run_strong_election(graph)
        rows.append(
            [graph.n, result.total_messages, result.total_messages / graph.n, result.total_bits]
        )
    return headers, rows


# ----------------------------------------------------------------------
# EXP-14: sequential Union-Find cost curves
# ----------------------------------------------------------------------
def exp_sequential_unionfind(
    ns: Sequence[int] = (256, 1024, 4096), seed: int = 0
) -> Table:
    """Two workloads per size:

    * ``rank`` linking with a random union/find mix -- every find rule is
      near-linear there (union by rank alone bounds depths by ``log n``;
      at these depths compression's extra pointer writes can even exceed
      its savings, which the table makes visible);
    * ``naive`` linking with chain-building unions and many finds -- the
      adversarial regime where path compression's asymptotic win shows:
      uncompressed finds pay the chain depth, compressed ones flatten it.
    """
    import random as _random

    headers = ["workload", "n", "find rule", "pointer ops", "ops/(m alpha)"]
    rows: Rows = []
    for n in ns:
        rng = _random.Random(seed)
        operations = []
        order = list(range(1, n))
        rng.shuffle(order)
        for i in order:
            operations.append(("union", rng.randrange(i), i))
        for _ in range(n):
            operations.append(("find", rng.randrange(n), None))
        rng.shuffle(operations)
        m = len(operations)
        for rule in ("compress", "halve", "none"):
            ds = DisjointSet(range(n), link_rule="rank", find_rule=rule)
            for kind, a, b in operations:
                if kind == "union":
                    ds.union(a, b)
                else:
                    ds.find(a)
            rows.append(
                [
                    "rank/random",
                    n,
                    rule,
                    ds.counter.total,
                    ds.counter.total / (m * alpha(m, n)),
                ]
            )
        # Adversarial chains: naive linking, sequential unions, then finds.
        find_targets = [rng.randrange(n) for _ in range(2 * n)]
        m2 = (n - 1) + len(find_targets)
        for rule in ("compress", "none"):
            ds = DisjointSet(range(n), link_rule="naive", find_rule=rule)
            for i in range(1, n):
                ds.union(i - 1, i)
            for target in find_targets:
                ds.find(target)
            rows.append(
                [
                    "naive/chain",
                    n,
                    rule,
                    ds.counter.total,
                    ds.counter.total / (m2 * alpha(m2, n)),
                ]
            )
    return headers, rows


# ----------------------------------------------------------------------
# EXP-15: time complexity (Section 7 discussion)
# ----------------------------------------------------------------------
def exp_time_complexity(
    ns: Sequence[int] = (64, 128, 256, 512), seed: int = 0
) -> Table:
    """Completion time under the normalized async time measure (every
    message takes one unit; :class:`~repro.sim.timed.TimedScheduler`)
    against the synchronous baselines' round counts.

    Expected shape (Section 7): this paper's algorithms take Theta(n) time
    (conquests serialize along the (phase, id) order) while the
    synchronous baselines finish in polylogarithmic rounds -- the paper
    trades time for asynchrony, determinism and optimal messages.
    """
    from repro.baselines import run_law_siu, run_name_dropper
    from repro.core.runner import build_simulation
    from repro.sim.timed import TimedScheduler

    headers = [
        "n",
        "generic time",
        "adhoc time",
        "generic time/n",
        "name-dropper rounds",
        "law-siu rounds",
    ]
    rows: Rows = []
    for n in ns:
        graph = random_weakly_connected(n, 2 * n, seed)
        times = {}
        for variant in ("generic", "adhoc"):
            scheduler = TimedScheduler()
            sim, nodes = build_simulation(graph, variant, scheduler=scheduler)
            sim.run(10**7)
            times[variant] = scheduler.now
        nd = run_name_dropper(graph, seed=seed)
        ls = run_law_siu(graph, seed=seed)
        rows.append(
            [
                graph.n,
                times["generic"],
                times["adhoc"],
                times["generic"] / graph.n,
                nd.rounds,
                ls.rounds,
            ]
        )
    return headers, rows


# ----------------------------------------------------------------------
# EXP-17: the four algorithms of Harchol-Balter, Leighton, Lewin [2]
# ----------------------------------------------------------------------
def exp_hbl_algorithms(
    ns: Sequence[int] = (32, 64, 128), seed: int = 0
) -> Table:
    """Reproduces [2]'s internal comparison on strongly connected graphs
    (the only setting where all four of its algorithms converge):
    flooding is round-optimal-ish but message-heavy; swamping converges
    fastest but floods bits; random pointer jump is frugal per round but
    needs more rounds; Name-Dropper balances both -- which is why the
    paper's related-work discussion singles it out.
    """
    headers = ["algorithm", "n", "rounds", "messages", "bits"]
    rows: Rows = []
    for n in ns:
        graph = random_strongly_connected(n, 2 * n, seed)
        for name, runner in (
            ("flooding", lambda g=graph: run_flooding(g)),
            ("swamping", lambda g=graph: run_swamping(g)),
            ("pointer-jump", lambda g=graph: run_pointer_jump(g, seed=seed)),
            ("name-dropper", lambda g=graph: run_name_dropper(g, seed=seed)),
        ):
            result = runner()
            rows.append([name, graph.n, result.rounds, result.total_messages, result.total_bits])
    return headers, rows


# ----------------------------------------------------------------------
# EXP-18: the bit-complexity improvement over Kutten-Peleg [3]
# ----------------------------------------------------------------------
def exp_kp_bit_improvement(
    ns: Sequence[int] = (128, 256, 512, 1024), seed: int = 0
) -> Table:
    """The paper's headline vs [3]: O(|E0| log n + n log^2 n) bits against
    O(|E0| log^2 n).  Both algorithms run asynchronously on identical dense
    graphs (|E0| ~ n log n, the regime where the terms separate); the
    KP-style baseline re-ships whole frontiers at each merge while the
    Generic algorithm drip-feeds ids with the Section 4.1 balance.  The
    expected shape: the bit ratio grows with n (one log factor)."""
    from repro.baselines.kp_async import run_kp_async

    headers = ["n", "|E0|", "kp-async bits", "generic bits", "bit ratio", "kp msgs", "generic msgs"]
    rows: Rows = []
    for n in ns:
        graph = random_weakly_connected(n, n * max(1, ilog2(max(2, n))), seed)
        kp = run_kp_async(graph, seed=seed)
        gen = run_generic(graph, seed=seed)
        rows.append(
            [
                graph.n,
                graph.n_edges,
                kp.total_bits,
                gen.total_bits,
                kp.total_bits / gen.total_bits,
                kp.total_messages,
                gen.total_messages,
            ]
        )
    return headers, rows


# ----------------------------------------------------------------------
# EXP-chaos: degradation under fault injection (DESIGN.md section 9)
# ----------------------------------------------------------------------
def exp_chaos(*args: Any, **kwargs: Any) -> Table:
    """Degradation table over fault scenarios; see
    :func:`repro.faults.harness.exp_chaos` for the real implementation.

    This thin module-level wrapper exists so the chaos sweep is
    addressable through the job registry by a picklable name without a
    circular import (``repro.faults.harness`` builds on this module's
    graph families).
    """
    from repro.faults.harness import exp_chaos as _exp_chaos

    return _exp_chaos(*args, **kwargs)


# ----------------------------------------------------------------------
# EXP-19: steady-state service SLOs (Theorem 8 under open-loop load)
# ----------------------------------------------------------------------
def exp_service_slo(
    n: int = 64,
    rate: float = 8.0,
    duration: int = 3000,
    kinds: Sequence[str] = ("poisson", "constant", "bursty"),
    family: str = "sparse-random",
    seed: int = 7,
) -> Table:
    """Run the discovery service under each workload kind and compare SLOs.

    One row per arrival process at the same offered rate: latency
    percentiles, throughput, amortized message cost and its
    ``alpha(m, n + n-hat)``-normalized form (Theorem 8 says the latter
    stays bounded), plus reconvergence lag for the bursty row.  Imported
    lazily so the job registry can address this runner without pulling
    the service package into every sweep worker.
    """
    from repro.core.adhoc import AdhocNetwork as _AdhocNetwork
    from repro.service import ServiceDriver, build_workload, summarize_service

    headers = [
        "workload",
        "ops",
        "p50",
        "p95",
        "p99",
        "probes/kstep",
        "msgs/op",
        "msgs/(op*alpha)",
        "reconv lag max",
    ]
    rows: Rows = []
    for kind in kinds:
        graph = build_family(family, n, seed)
        workload = build_workload(kind, graph, rate=rate, duration=duration, seed=seed)
        net = _AdhocNetwork(graph, seed=seed)
        report = ServiceDriver(net, workload).run()
        summary = summarize_service(report)
        rows.append(
            [
                kind,
                summary.operations,
                summary.latency_p50 if summary.latency_p50 is not None else "-",
                summary.latency_p95 if summary.latency_p95 is not None else "-",
                summary.latency_p99 if summary.latency_p99 is not None else "-",
                round(summary.throughput_per_kstep, 2),
                round(summary.amortized_cost, 2),
                round(summary.amortized_over_alpha, 2),
                summary.reconvergence_lag_max
                if summary.reconvergence_lag_max is not None
                else "-",
            ]
        )
    return headers, rows


# ----------------------------------------------------------------------
# Sweep registry: the seed-taking runners, addressable by name
# ----------------------------------------------------------------------
#: Experiments that accept a ``seed`` kwarg, keyed by the short names the
#: job system (`repro.parallel`) and ``python -m repro sweep`` use.  Every
#: value is a module-level function so job specs stay picklable.
SWEEPABLE_EXPERIMENTS: Dict[str, Callable[..., Table]] = {
    "generic-scaling": exp_generic_scaling,
    "near-linear": exp_near_linear_scaling,
    "bit-complexity": exp_bit_complexity,
    "message-lemmas": exp_message_lemmas,
    "unionfind-reduction": exp_unionfind_reduction,
    "dynamic-additions": exp_dynamic_additions,
    "baseline-comparison": exp_baseline_comparison,
    "adhoc-probes": exp_adhoc_probes,
    "strongly-connected": exp_strongly_connected,
    "sequential-unionfind": exp_sequential_unionfind,
    "time-complexity": exp_time_complexity,
    "hbl-algorithms": exp_hbl_algorithms,
    "kp-bit-improvement": exp_kp_bit_improvement,
    "chaos": exp_chaos,
    "service-slo": exp_service_slo,
}

#: Reduced-size kwargs per sweepable experiment (the ``--quick`` sizes of
#: the CLI, mirroring the quick lambdas of ``repro.cli.EXPERIMENTS``).
QUICK_SWEEP_KWARGS: Dict[str, Dict[str, Any]] = {
    "generic-scaling": {"ns": (32, 64)},
    "near-linear": {"ns": (32, 64)},
    "bit-complexity": {"ns": (32, 64)},
    "message-lemmas": {"ns": (32,)},
    "unionfind-reduction": {"ns": (16, 32)},
    "dynamic-additions": {"n_initial": 32, "n_new": 8, "links_new": 8},
    "baseline-comparison": {"n": 64},
    "adhoc-probes": {"n": 64, "probes": 64},
    "strongly-connected": {"ns": (32, 64)},
    "sequential-unionfind": {"ns": (64, 256)},
    "time-complexity": {"ns": (32, 64)},
    "hbl-algorithms": {"ns": (16, 32)},
    "kp-bit-improvement": {"ns": (64, 128)},
    "chaos": {"scenarios": ("baseline", "loss-10", "crash-2"), "n": 24},
    "service-slo": {"n": 24, "rate": 6.0, "duration": 800},
}
