"""Plain-text table rendering for experiment reports.

Every benchmark prints its table through :func:`render_table` so the output
in ``bench_output.txt`` / EXPERIMENTS.md has one consistent format.
"""

from __future__ import annotations

from typing import Any, List, Sequence

__all__ = ["render_table", "format_number"]


def format_number(value: Any) -> str:
    """Human-friendly cell formatting: floats to 3 significant-ish digits."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def render_table(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """Render an aligned monospace table with a header rule."""
    cells: List[List[str]] = [[format_number(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}: {row}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)).rstrip(),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in cells:
        lines.append(
            "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)).rstrip()
        )
    return "\n".join(lines)
