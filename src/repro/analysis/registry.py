"""Persistent experiment records and drift detection.

Benchmarks write their tables as JSON records next to the rendered text;
:func:`compare_records` diffs two records cell by cell and reports numeric
drifts beyond a relative tolerance.  A downstream user can commit one run's
``benchmarks/results/*.json`` as golden data and fail CI when a change
shifts the measured complexity tables -- shape regression testing for a
protocol stack whose "performance" is message counts.
"""

from __future__ import annotations

import datetime
import json
import pathlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Union

PathLike = Union[str, pathlib.Path]

__all__ = ["ExperimentRecord", "save_record", "load_record", "compare_records"]


@dataclass
class ExperimentRecord:
    """One experiment table plus provenance metadata."""

    name: str
    headers: List[str]
    rows: List[List[Any]]
    metadata: Dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> str:
        return json.dumps(
            {
                "name": self.name,
                "headers": self.headers,
                "rows": self.rows,
                "metadata": self.metadata,
            },
            indent=1,
        )

    @classmethod
    def from_json(cls, text: str) -> "ExperimentRecord":
        payload = json.loads(text)
        missing = {"name", "headers", "rows"} - set(payload)
        if missing:
            raise ValueError(f"record missing fields: {sorted(missing)}")
        return cls(
            name=payload["name"],
            headers=list(payload["headers"]),
            rows=[list(row) for row in payload["rows"]],
            metadata=dict(payload.get("metadata", {})),
        )


def save_record(
    directory: PathLike,
    name: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    *,
    metadata: Optional[Dict[str, Any]] = None,
) -> pathlib.Path:
    """Write ``<directory>/<name>.json``; returns the path."""
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    record = ExperimentRecord(
        name=name,
        headers=list(headers),
        rows=[list(row) for row in rows],
        metadata={"saved": datetime.date.today().isoformat(), **(metadata or {})},
    )
    path = directory / f"{name}.json"
    path.write_text(record.to_json())
    return path


def load_record(directory: PathLike, name: str) -> ExperimentRecord:
    """Read ``<directory>/<name>.json``."""
    path = pathlib.Path(directory) / f"{name}.json"
    return ExperimentRecord.from_json(path.read_text())


def compare_records(
    golden: ExperimentRecord,
    fresh: ExperimentRecord,
    *,
    rel_tolerance: float = 0.25,
) -> List[str]:
    """Return human-readable drift descriptions (empty list = no drift).

    Structural changes (headers, row count, non-numeric cells) are always
    reported; numeric cells are compared with relative tolerance, so the
    exact-count columns stay pinned while timing-ish columns get slack by
    choosing the tolerance.
    """
    if rel_tolerance < 0:
        raise ValueError(f"rel_tolerance must be >= 0, got {rel_tolerance}")
    drifts: List[str] = []
    if golden.headers != fresh.headers:
        drifts.append(f"headers changed: {golden.headers} -> {fresh.headers}")
        return drifts
    if len(golden.rows) != len(fresh.rows):
        drifts.append(f"row count changed: {len(golden.rows)} -> {len(fresh.rows)}")
        return drifts
    for row_index, (old_row, new_row) in enumerate(zip(golden.rows, fresh.rows)):
        if len(old_row) != len(new_row):
            drifts.append(f"row {row_index}: cell count changed")
            continue
        for col_index, (old, new) in enumerate(zip(old_row, new_row)):
            column = golden.headers[col_index]
            if isinstance(old, bool) or isinstance(new, bool):
                # A bool-vs-int flip (True -> 1) means the producer changed
                # its cell type even though the values compare equal.
                if old != new or isinstance(old, bool) != isinstance(new, bool):
                    drifts.append(
                        f"row {row_index} [{column}]: {old!r} -> {new!r}"
                    )
                continue
            if isinstance(old, (int, float)) and isinstance(new, (int, float)):
                scale = max(abs(old), abs(new), 1e-12)
                if abs(old - new) / scale > rel_tolerance:
                    drifts.append(
                        f"row {row_index} [{column}]: {old} -> {new} "
                        f"(drift {abs(old - new) / scale:.0%} > {rel_tolerance:.0%})"
                    )
                continue
            if old != new:
                drifts.append(f"row {row_index} [{column}]: {old!r} -> {new!r}")
    return drifts
