"""Complexity-model fitting, table rendering, and experiment runners."""

from repro.analysis.experiments import (
    GRAPH_FAMILIES,
    build_family,
    exp_adhoc_probes,
    exp_baseline_comparison,
    exp_bit_complexity,
    exp_dynamic_additions,
    exp_generic_scaling,
    exp_hbl_algorithms,
    exp_kp_bit_improvement,
    exp_message_lemmas,
    exp_near_linear_scaling,
    exp_sequential_unionfind,
    exp_strongly_connected,
    exp_time_complexity,
    exp_tree_lower_bound,
    exp_unionfind_reduction,
)
from repro.analysis.fitting import (
    COST_MODELS,
    crossover,
    CostModel,
    FitResult,
    best_model,
    fit_model,
    ratio_series,
)
from repro.analysis.protocol_stats import ProtocolProfile, profile_execution
from repro.analysis.sweep import aggregate_tables, sweep_seeds
from repro.analysis.registry import (
    ExperimentRecord,
    compare_records,
    load_record,
    save_record,
)
from repro.analysis.report import build_report
from repro.analysis.tables import format_number, render_table
from repro.analysis.traceview import format_trace, sequence_diagram, trace_summary

__all__ = [
    "GRAPH_FAMILIES",
    "build_family",
    "exp_generic_scaling",
    "exp_near_linear_scaling",
    "exp_bit_complexity",
    "exp_message_lemmas",
    "exp_tree_lower_bound",
    "exp_unionfind_reduction",
    "exp_dynamic_additions",
    "exp_baseline_comparison",
    "exp_adhoc_probes",
    "exp_strongly_connected",
    "exp_sequential_unionfind",
    "exp_time_complexity",
    "exp_hbl_algorithms",
    "exp_kp_bit_improvement",
    "COST_MODELS",
    "CostModel",
    "FitResult",
    "best_model",
    "crossover",
    "fit_model",
    "ratio_series",
    "render_table",
    "format_number",
    "build_report",
    "ExperimentRecord",
    "ProtocolProfile",
    "profile_execution",
    "sweep_seeds",
    "aggregate_tables",
    "save_record",
    "load_record",
    "compare_records",
    "format_trace",
    "sequence_diagram",
    "trace_summary",
]
