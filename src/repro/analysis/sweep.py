"""Multi-seed aggregation for experiment tables.

The experiment runners are single-seed by design (deterministic tables);
for claims about *randomized* behaviour -- scheduler sensitivity, the
randomized baselines -- :func:`sweep_seeds` reruns a table-producing
function across seeds and aggregates every numeric column into
``mean [min, max]`` cells, keyed by the non-numeric columns.

Example::

    headers, rows = sweep_seeds(
        lambda seed: exp_near_linear_scaling(ns=(64, 128), seed=seed),
        seeds=range(5),
    )
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence, Tuple

Table = Tuple[List[str], List[List[Any]]]
#: Hook signature: (experiment, seeds) -> one table per seed, seed order.
MapFn = Callable[[Callable[[int], Table], Sequence[int]], Sequence[Table]]

__all__ = ["sweep_seeds", "aggregate_tables"]


def _is_numeric(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def aggregate_tables(tables: Sequence[Table]) -> Table:
    """Merge same-shaped tables: numeric cells become ``mean [min, max]``.

    Rows are matched positionally; the non-numeric cells of each row must
    agree across tables (they are the row's identity) or ``ValueError`` is
    raised.
    """
    if not tables:
        raise ValueError("need at least one table")
    headers = tables[0][0]
    n_rows = len(tables[0][1])
    for other_headers, other_rows in tables[1:]:
        if other_headers != headers:
            raise ValueError(f"header mismatch: {headers} vs {other_headers}")
        if len(other_rows) != n_rows:
            raise ValueError("row-count mismatch between tables")

    merged: List[List[Any]] = []
    for row_index in range(n_rows):
        variants = [rows[row_index] for _h, rows in tables]
        first = variants[0]
        out_row: List[Any] = []
        for col_index, cell in enumerate(first):
            column = [variant[col_index] for variant in variants]
            if _is_numeric(cell):
                values = [float(v) for v in column]
                mean = sum(values) / len(values)
                lo, hi = min(values), max(values)
                if lo == hi:
                    out_row.append(lo if lo != int(lo) else int(lo))
                else:
                    out_row.append(f"{mean:.4g} [{lo:.4g}, {hi:.4g}]")
            else:
                if any(v != cell for v in column):
                    raise ValueError(
                        f"row {row_index} col {col_index}: identity cell "
                        f"differs across tables: {column}"
                    )
                out_row.append(cell)
        merged.append(out_row)
    return headers, merged


def sweep_seeds(
    experiment: Callable[[int], Table],
    seeds: Sequence[int],
    map_fn: Optional[MapFn] = None,
) -> Table:
    """Run ``experiment(seed)`` for every seed and aggregate the tables.

    ``map_fn`` replaces the serial per-seed loop with an alternative
    execution strategy -- notably
    :meth:`repro.parallel.ParallelExecutor.map_seeds`, which fans the
    seeds out over a process pool.  It must return exactly one table per
    seed, in seed order, so aggregation stays deterministic.
    """
    if not seeds:
        raise ValueError("need at least one seed")
    if map_fn is None:
        tables: Sequence[Table] = [experiment(seed) for seed in seeds]
    else:
        tables = list(map_fn(experiment, seeds))
        if len(tables) != len(seeds):
            raise ValueError(
                f"map_fn returned {len(tables)} tables for {len(seeds)} seeds"
            )
    return aggregate_tables(tables)
