"""One-shot report generation: every experiment table in one document.

``build_report()`` runs every registered experiment (at full or quick
sizes) and renders a single markdown document mirroring EXPERIMENTS.md's
structure, with fresh numbers.  Exposed on the CLI as
``python -m repro report [--quick] [--out FILE]``.
"""

from __future__ import annotations

import datetime
import platform
from typing import Callable, Dict, List, Optional, Tuple

from repro.analysis.tables import render_table

__all__ = ["REPORT_SECTIONS", "build_report"]

#: section title -> (description, full runner, quick runner); populated
#: lazily to avoid import cycles with repro.cli.
REPORT_SECTIONS: "List[Tuple[str, str]]" = [
    ("EXP-1", "Theorem 1 lower bound: adversarial executions on T(i)"),
    ("EXP-2", "Theorem 2 / Lemma 3.1: the Union-Find reduction"),
    ("EXP-3", "Theorem 5: Generic message scaling (O(n log n))"),
    ("EXP-4", "Theorem 6: Bounded/Ad-hoc near-linear scaling (O(n alpha))"),
    ("EXP-5", "Theorem 7: bit complexity"),
    ("EXP-6-9", "Lemmas 5.5-5.8 + Theorem 7: per-message-type bounds"),
    ("EXP-10", "Theorem 8: dynamic node and link additions"),
    ("EXP-11", "Section 1.1: baseline comparison"),
    ("EXP-12", "Section 4.5.2: probe amortization"),
    ("EXP-13", "Section 1: strongly connected => O(n) messages"),
    ("EXP-14", "Union-Find substrate cost curves"),
    ("EXP-15", "Section 7: time complexity (O(T + n) vs polylog rounds)"),
    ("EXP-17", "Harchol-Balter/Leighton/Lewin [2]: internal comparison"),
    ("EXP-18", "The bit-complexity improvement over Kutten-Peleg [3]"),
    ("EXP-19", "Theorem 8 as a service: latency SLOs under open-loop load"),
]


def build_report(*, quick: bool = False, only: Optional[List[str]] = None) -> str:
    """Run the experiments and return the markdown report."""
    from repro.cli import EXPERIMENTS  # late import: cli imports analysis

    names = [name for name, _ in REPORT_SECTIONS]
    if only:
        unknown = [name for name in only if name not in names]
        if unknown:
            raise ValueError(f"unknown section(s): {unknown}; choose from {names}")
        names = [name for name in names if name in only]

    lines = [
        "# Experiment report — Asynchronous Resource Discovery (PODC 2003)",
        "",
        f"Generated {datetime.date.today().isoformat()} on Python "
        f"{platform.python_version()}"
        + (" (quick sizes)" if quick else " (full sizes)")
        + ".",
        "",
        "Static analysis of these tables, including the shape criteria and",
        "the reproduction findings, lives in EXPERIMENTS.md; this document",
        "is the regenerated raw data.",
    ]
    descriptions = dict(REPORT_SECTIONS)
    for name in names:
        full, quick_runner = EXPERIMENTS[name]
        headers, rows = (quick_runner if quick else full)()
        lines += [
            "",
            f"## {name} — {descriptions[name]}",
            "",
            "```",
            render_table(headers, rows),
            "```",
        ]
    return "\n".join(lines) + "\n"
