"""Complexity-model fitting for the scaling experiments.

The evaluation's "shape" claims -- Generic messages grow like ``n log n``,
Bounded/Ad-hoc like ``n alpha(n, n)``, bits like ``|E0| log n + n log^2 n``
-- are validated by fitting measured series against a family of candidate
cost models and reporting which model explains the data best.

Fitting is single-parameter least squares on the *relative* scale: for a
candidate model ``f`` we choose ``c`` minimising
``sum((y_i - c f(n_i))^2 / f(n_i)^2)`` (so every point counts equally
regardless of magnitude) and score the fit by the maximum relative
residual.  Pure stdlib implementation -- numpy is an optional extra, and
the quantities here are tiny.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

from repro.unionfind.ackermann import alpha

__all__ = ["CostModel", "FitResult", "COST_MODELS", "fit_model", "best_model", "ratio_series", "crossover"]


@dataclass(frozen=True)
class CostModel:
    """A named candidate cost function ``f(n)``."""

    name: str
    fn: Callable[[int], float]

    def __call__(self, n: int) -> float:
        return self.fn(n)


def _log2(n: int) -> float:
    return math.log2(max(2, n))


COST_MODELS: Dict[str, CostModel] = {
    model.name: model
    for model in (
        CostModel("n", lambda n: float(n)),
        CostModel("n alpha(n,n)", lambda n: n * alpha(max(1, n), max(1, n))),
        CostModel("n log n", lambda n: n * _log2(n)),
        CostModel("n log^2 n", lambda n: n * _log2(n) ** 2),
        CostModel("n^2", lambda n: float(n) * n),
        CostModel("n sqrt n", lambda n: n * math.sqrt(n)),
    )
}


@dataclass(frozen=True)
class FitResult:
    """Outcome of fitting one cost model to a measured series."""

    model: CostModel
    constant: float
    max_relative_residual: float
    mean_relative_residual: float

    def __str__(self) -> str:
        return (
            f"{self.model.name}: c={self.constant:.3f} "
            f"max-res={self.max_relative_residual:.3f} "
            f"mean-res={self.mean_relative_residual:.3f}"
        )


def fit_model(
    ns: Sequence[int], ys: Sequence[float], model: CostModel
) -> FitResult:
    """Least-squares fit of ``y = c * model(n)`` on the relative scale."""
    if len(ns) != len(ys) or not ns:
        raise ValueError("ns and ys must be equal-length, non-empty sequences")
    ratios = [y / model(n) for n, y in zip(ns, ys)]
    constant = sum(ratios) / len(ratios)
    if constant == 0:
        return FitResult(model, 0.0, float("inf"), float("inf"))
    residuals = [abs(r - constant) / constant for r in ratios]
    return FitResult(
        model,
        constant,
        max(residuals),
        sum(residuals) / len(residuals),
    )


def best_model(
    ns: Sequence[int],
    ys: Sequence[float],
    candidates: Sequence[str] = ("n", "n alpha(n,n)", "n log n", "n log^2 n", "n^2"),
) -> FitResult:
    """Fit every candidate and return the one with smallest max residual.

    Note that ``n`` and ``n alpha(n,n)`` are numerically almost parallel at
    laptop scales (alpha is a small constant); the scaling experiments
    therefore distinguish *near-linear* from *superlinear* shapes rather
    than claiming to resolve alpha against a constant.
    """
    fits = [fit_model(ns, ys, COST_MODELS[name]) for name in candidates]
    return min(fits, key=lambda fit: fit.max_relative_residual)


def ratio_series(
    ns: Sequence[int], ys: Sequence[float], model_name: str
) -> List[Tuple[int, float]]:
    """``[(n, y / model(n))]`` -- flat iff the model matches the data."""
    model = COST_MODELS[model_name]
    return [(n, y / model(n)) for n, y in zip(ns, ys)]


def crossover(
    ns: Sequence[int], ys_a: Sequence[float], ys_b: Sequence[float]
) -> Tuple[str, float]:
    """Locate where series A overtakes series B (or vice versa).

    Returns ``(kind, x)`` where kind is ``"a_wins"`` (A below B everywhere),
    ``"b_wins"``, or ``"crossover"`` with ``x`` the linearly-interpolated
    crossing point.  Used by comparison experiments to report "who wins,
    and where the lead changes".
    """
    if not (len(ns) == len(ys_a) == len(ys_b)) or len(ns) < 2:
        raise ValueError("need three equal-length series of length >= 2")
    diffs = [a - b for a, b in zip(ys_a, ys_b)]
    if all(d <= 0 for d in diffs):
        return ("a_wins", float("nan"))
    if all(d >= 0 for d in diffs):
        return ("b_wins", float("nan"))
    for i in range(len(diffs) - 1):
        if diffs[i] == 0:
            return ("crossover", float(ns[i]))
        if diffs[i] * diffs[i + 1] < 0:
            x0, x1 = ns[i], ns[i + 1]
            d0, d1 = diffs[i], diffs[i + 1]
            return ("crossover", x0 + (x1 - x0) * (-d0) / (d1 - d0))
    return ("crossover", float(ns[-1]))
