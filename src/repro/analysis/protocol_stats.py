"""Post-execution protocol profiling.

Beyond the aggregate message counts, several quantities inside the
protocol are bounded by the analysis and worth inspecting:

* **phases** -- Lemma 5.8's proof states "the maximum phase of any leader
  is log n" (the union-by-rank correspondence: a leader reaches phase ``p``
  only with a cluster of size ``>= 2^(p-1)``).  The profile records the
  full final-phase histogram and checks the bound.
* **pointer depths** -- property 3 (direct pointers) vs 3b (paths); the
  depth distribution quantifies how much path compression saved.
* **traffic mix** -- per-message-type share of messages and bits, the
  empirical face of the Section 5 lemma decomposition.

Profiles are produced from the quiescent node map that the runners and
:func:`~repro.core.runner.build_simulation` expose; with an observability
timeline (:mod:`repro.obs`) attached, :func:`phase_evolution` additionally
recovers the phase histogram *over time*, not just at rest.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Tuple

from repro.core.node import DiscoveryNode
from repro.obs.timeline import Timeline
from repro.sim.trace import MessageStats

NodeId = Hashable

__all__ = ["ProtocolProfile", "profile_execution", "phase_evolution"]


@dataclass
class ProtocolProfile:
    """Distributional statistics of one finished execution."""

    n: int
    phase_histogram: Dict[int, int]
    max_phase: int
    phase_bound: int
    depth_histogram: Dict[int, int]
    max_depth: int
    message_share: Dict[str, float]
    bit_share: Dict[str, float]

    @property
    def phase_bound_holds(self) -> bool:
        """Lemma 5.8's companion claim: max phase <= log2 n (+1 slack for
        the initial phase-1 convention)."""
        return self.max_phase <= self.phase_bound

    def summary(self) -> str:
        phases = ", ".join(
            f"{phase}:{count}" for phase, count in sorted(self.phase_histogram.items())
        )
        return (
            f"n={self.n} max_phase={self.max_phase} (bound {self.phase_bound}) "
            f"phases[{phases}] max_depth={self.max_depth}"
        )


def profile_execution(
    nodes: Dict[NodeId, DiscoveryNode],
    stats: MessageStats,
) -> ProtocolProfile:
    """Profile a quiescent execution's node map and accounting."""
    n = len(nodes)
    phase_histogram: Dict[int, int] = {}
    for node in nodes.values():
        phase_histogram[node.phase] = phase_histogram.get(node.phase, 0) + 1
    max_phase = max((node.phase for node in nodes.values()), default=0)
    phase_bound = int(math.log2(max(2, n))) + 1

    depth_histogram: Dict[int, int] = {}
    for node_id, node in nodes.items():
        depth = 0
        current = node_id
        hops = 0
        while not nodes[current].is_leader and nodes[current].next != current:
            current = nodes[current].next
            depth += 1
            hops += 1
            if hops > n:
                raise RuntimeError(f"pointer chain from {node_id!r} does not resolve")
        depth_histogram[depth] = depth_histogram.get(depth, 0) + 1
    max_depth = max(depth_histogram, default=0)

    total_messages = max(1, stats.total_messages)
    total_bits = max(1, stats.total_bits)
    message_share = {
        msg_type: count / total_messages
        for msg_type, count in sorted(stats.messages_by_type.items())
    }
    bit_share = {
        msg_type: bits / total_bits
        for msg_type, bits in sorted(stats.bits_by_type.items())
    }
    return ProtocolProfile(
        n=n,
        phase_histogram=phase_histogram,
        max_phase=max_phase,
        phase_bound=phase_bound,
        depth_histogram=depth_histogram,
        max_depth=max_depth,
        message_share=message_share,
        bit_share=bit_share,
    )


def phase_evolution(timeline: Timeline) -> List[Tuple[int, Dict[int, int]]]:
    """Phase-histogram trajectory recovered from a recorded timeline.

    Replays the ``phase-change`` events of an observability timeline and
    returns one ``(step, histogram)`` snapshot per step at which any node
    changed phase.  Only nodes that appear in the timeline are counted
    (nodes that never advance past their initial phase emit no events), so
    the trajectory shows how far the merge cascade of Lemma 5.8 has
    climbed at each point of the run -- the final snapshot matches the
    leaders' portion of :attr:`ProtocolProfile.phase_histogram`.
    """
    current: Dict[Hashable, int] = {}
    snapshots: List[Tuple[int, Dict[int, int]]] = []
    for event in timeline.events:
        if event.kind != "phase-change" or event.value is None:
            continue
        current[event.node] = int(event.value)
        histogram: Dict[int, int] = {}
        for phase in current.values():
            histogram[phase] = histogram.get(phase, 0) + 1
        if snapshots and snapshots[-1][0] == event.step:
            snapshots[-1] = (event.step, histogram)
        else:
            snapshots.append((event.step, histogram))
    return snapshots
