"""Human-readable rendering of execution traces.

Small protocol executions are easiest to understand as an event log or an
ASCII sequence diagram.  Both renderers work on the simulator's
:class:`~repro.sim.trace.ExecutionTrace` (``keep_trace=True``):

>>> result = run_generic(graph, keep_trace=True)   # doctest: +SKIP
... # via the simulator: sim.trace

The sequence diagram draws one lane per node and one row per delivery::

    a         b         c
    |         |         |
    o wake    |         |
    |-search->|         |
    |         |-search------------>|
    ...

Intended for debugging and documentation of executions with at most a few
dozen nodes; the event log scales to anything.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence

from repro.sim.trace import ExecutionTrace, TraceEvent

NodeId = Hashable

__all__ = ["format_trace", "sequence_diagram", "trace_summary"]


def format_trace(trace: ExecutionTrace, *, limit: Optional[int] = None) -> str:
    """One line per event: ``step  kind  src -> dst  [msg-type]``."""
    lines: List[str] = []
    events = trace.events if limit is None else trace.events[:limit]
    for event in events:
        if event.kind == "deliver":
            lines.append(
                f"{event.step:>6}  {event.src!r} --{event.msg_type}--> {event.dst!r}"
            )
        elif event.kind == "wake":
            lines.append(f"{event.step:>6}  wake {event.dst!r}")
        else:
            lines.append(f"{event.step:>6}  {event.kind} {event.dst!r}")
    if limit is not None and len(trace.events) > limit:
        lines.append(f"... ({len(trace.events) - limit} more events)")
    return "\n".join(lines)


def trace_summary(trace: ExecutionTrace) -> Dict[str, int]:
    """Counts per event kind and per delivered message type."""
    summary: Dict[str, int] = {}
    for event in trace.events:
        key = event.kind if event.kind != "deliver" else f"deliver:{event.msg_type}"
        summary[key] = summary.get(key, 0) + 1
    return summary


def sequence_diagram(
    trace: ExecutionTrace,
    nodes: Sequence[NodeId],
    *,
    lane_width: int = 10,
    limit: Optional[int] = 200,
) -> str:
    """An ASCII sequence diagram with one lane per node.

    ``nodes`` fixes the lane order (pass ``graph.nodes``).  Events touching
    nodes not in ``nodes`` raise ``KeyError`` -- pass the complete list.
    """
    if not nodes:
        return ""
    lane_of = {node: i for i, node in enumerate(nodes)}
    if len(lane_of) != len(nodes):
        raise ValueError("duplicate node in lane order")
    width = max(lane_width, 4)
    total = len(nodes) * width

    def blank_row() -> List[str]:
        row = [" "] * total
        for i in range(len(nodes)):
            row[i * width] = "|"
        return row

    lines: List[str] = []
    header = "".join(str(node)[: width - 1].ljust(width) for node in nodes)
    lines.append(header.rstrip())

    events = trace.events if limit is None else trace.events[:limit]
    for event in events:
        row = blank_row()
        if event.kind in ("wake", "wake-noop"):
            lane = lane_of[event.dst]
            row[lane * width] = "o"
            text = "".join(row).rstrip() + "  wake"
            lines.append(text)
            continue
        if event.kind != "deliver":
            continue
        src_lane = lane_of[event.src]
        dst_lane = lane_of[event.dst]
        left, right = sorted((src_lane * width, dst_lane * width))
        for pos in range(left + 1, right):
            row[pos] = "-"
        label = str(event.msg_type or "?")
        span = right - left - 1
        if span > len(label) + 1:
            start = left + 1 + (span - len(label)) // 2
            for offset, ch in enumerate(label):
                row[start + offset] = ch
            suffix = ""
        else:
            suffix = f"  {label}"
        if src_lane < dst_lane:
            row[right - 1] = ">"
        else:
            row[left + 1] = "<"
        lines.append("".join(row).rstrip() + suffix)
    if limit is not None and len(trace.events) > limit:
        lines.append(f"... ({len(trace.events) - limit} more events)")
    return "\n".join(lines)
