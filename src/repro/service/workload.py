"""Open-loop arrival schedules for the steady-state discovery service.

A *workload* is a seeded, timestamped sequence of dynamic events -- node
joins, link additions, leader probes -- to be injected into a running
:class:`~repro.core.adhoc.AdhocNetwork` at their virtual-time arrivals.
Open-loop means the schedule is fixed up front: arrivals do not wait for
the system to finish earlier work, so a service that falls behind builds
a backlog instead of silently throttling the load (the distinction that
makes latency percentiles honest; closed-loop generators measure their
own politeness).

Three arrival processes, all deterministic functions of the seed:

* :func:`poisson_workload` -- exponential inter-arrival gaps at a target
  mean rate, the memoryless default for steady-state traffic;
* :func:`constant_workload` -- fixed gaps, the zero-variance baseline
  that isolates protocol jitter from arrival jitter;
* :func:`bursty_workload` -- an on-off modulated process: baseline
  probe traffic with periodic churn bursts (joins and links arriving at
  a multiplied rate inside short windows).  Burst windows are recorded
  on the workload so the driver can measure reconvergence lag per burst.

Rates are expressed in **events per 1000 virtual steps** ("kilostep"):
one step is one atomic delivery or wake-up, the only clock the
asynchronous model has, and typical join/probe service times are tens of
steps, so single-digit rates are moderate load and tens are saturation.

Event payloads are built by :class:`~repro.core.dynamic.EventFactory`,
the same seam scripted :func:`~repro.core.dynamic.random_churn`
scenarios use, so workload events are valid churn events by
construction (joins know existing ids, probes target existing nodes).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.dynamic import Event, EventFactory
from repro.graphs.knowledge_graph import KnowledgeGraph

__all__ = [
    "EventMix",
    "ScheduledEvent",
    "Workload",
    "poisson_workload",
    "constant_workload",
    "bursty_workload",
    "build_workload",
    "WORKLOAD_KINDS",
    "RATE_UNIT",
]

#: Rates are events per this many virtual steps.
RATE_UNIT = 1000.0


@dataclass(frozen=True)
class EventMix:
    """Relative weights of the three event kinds (need not sum to one)."""

    join: float = 0.2
    link: float = 0.2
    probe: float = 0.6

    def validate(self) -> None:
        if min(self.join, self.link, self.probe) < 0:
            raise ValueError(f"negative weight in {self}")
        if self.join + self.link + self.probe <= 0:
            raise ValueError("at least one weight must be positive")


#: Default steady-state mix: probe-heavy (discovery services answer far
#: more lookups than they absorb membership changes) with symmetric churn.
DEFAULT_MIX = EventMix()

#: Churn-only mix used inside burst windows.
BURST_MIX = EventMix(join=0.6, link=0.4, probe=0.0)


@dataclass(frozen=True)
class ScheduledEvent:
    """One arrival: a churn event due at virtual time ``at``."""

    at: int
    event: Event


@dataclass
class Workload:
    """A fully materialized open-loop schedule plus its provenance."""

    kind: str
    rate: float
    duration: int
    seed: int
    events: List[ScheduledEvent] = field(default_factory=list)
    #: ``(start, end)`` virtual-time windows of churn bursts (bursty only).
    bursts: List[Tuple[int, int]] = field(default_factory=list)

    def counts_by_kind(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for scheduled in self.events:
            kind = scheduled.event[0]
            counts[kind] = counts.get(kind, 0) + 1
        return counts

    def describe(self) -> str:
        counts = self.counts_by_kind()
        mix = ", ".join(f"{kind}: {counts[kind]}" for kind in sorted(counts))
        return (
            f"{self.kind} workload: {len(self.events)} events over "
            f"{self.duration} steps (rate {self.rate:g}/kstep"
            + (f", {len(self.bursts)} bursts" if self.bursts else "")
            + (f"; {mix}" if mix else "")
            + ")"
        )


def _check_args(rate: float, duration: int) -> None:
    if rate <= 0:
        raise ValueError(f"rate must be positive, got {rate}")
    if duration < 1:
        raise ValueError(f"duration must be >= 1 step, got {duration}")


def poisson_workload(
    initial_graph: KnowledgeGraph,
    *,
    rate: float,
    duration: int,
    seed: int = 0,
    mix: EventMix = DEFAULT_MIX,
) -> Workload:
    """Memoryless arrivals: exponential gaps with mean ``RATE_UNIT/rate``."""
    _check_args(rate, duration)
    mix.validate()
    rng = random.Random(seed)
    factory = EventFactory(initial_graph.nodes, rng)
    events: List[ScheduledEvent] = []
    clock = 0.0
    while True:
        clock += rng.expovariate(rate / RATE_UNIT)
        at = int(clock)
        if at >= duration:
            break
        events.append(ScheduledEvent(at, factory.draw(mix.join, mix.link, mix.probe)))
    return Workload("poisson", rate, duration, seed, events)


def constant_workload(
    initial_graph: KnowledgeGraph,
    *,
    rate: float,
    duration: int,
    seed: int = 0,
    mix: EventMix = DEFAULT_MIX,
) -> Workload:
    """Fixed inter-arrival gaps; only the event payloads are random."""
    _check_args(rate, duration)
    mix.validate()
    rng = random.Random(seed)
    factory = EventFactory(initial_graph.nodes, rng)
    gap = RATE_UNIT / rate
    events: List[ScheduledEvent] = []
    index = 1
    while True:
        at = int(index * gap)
        if at >= duration:
            break
        events.append(ScheduledEvent(at, factory.draw(mix.join, mix.link, mix.probe)))
        index += 1
    return Workload("constant", rate, duration, seed, events)


def bursty_workload(
    initial_graph: KnowledgeGraph,
    *,
    rate: float,
    duration: int,
    seed: int = 0,
    mix: EventMix = DEFAULT_MIX,
    burst_every: int = 500,
    burst_len: int = 50,
    burst_factor: float = 10.0,
    burst_mix: EventMix = BURST_MIX,
) -> Workload:
    """On-off load: baseline Poisson traffic plus periodic churn bursts.

    Every ``burst_every`` steps a window of ``burst_len`` steps opens in
    which *additional* arrivals occur at ``burst_factor`` times the base
    rate, drawn from ``burst_mix`` (churn-only by default).  The windows
    are recorded in :attr:`Workload.bursts`; the driver measures, per
    window, how long the service takes to reconverge once it closes.
    """
    _check_args(rate, duration)
    if burst_every < 1 or burst_len < 1:
        raise ValueError(
            f"burst_every/burst_len must be >= 1, got {burst_every}/{burst_len}"
        )
    if burst_factor <= 0:
        raise ValueError(f"burst_factor must be positive, got {burst_factor}")
    mix.validate()
    burst_mix.validate()
    rng = random.Random(seed)
    factory = EventFactory(initial_graph.nodes, rng)

    arrivals: List[Tuple[int, EventMix]] = []
    clock = 0.0
    while True:  # baseline process over the whole run
        clock += rng.expovariate(rate / RATE_UNIT)
        at = int(clock)
        if at >= duration:
            break
        arrivals.append((at, mix))
    bursts: List[Tuple[int, int]] = []
    start = burst_every
    while start < duration:  # superimposed burst processes
        end = min(start + burst_len, duration)
        bursts.append((start, end))
        clock = float(start)
        while True:
            clock += rng.expovariate(burst_factor * rate / RATE_UNIT)
            at = int(clock)
            if at >= end:
                break
            arrivals.append((at, burst_mix))
        start += burst_every

    # Materialize payloads in arrival order so joins always reference ids
    # that exist by their own arrival time; the sort key includes the
    # original position to keep same-step orderings deterministic.
    arrivals = [
        (at, index, window_mix) for index, (at, window_mix) in enumerate(arrivals)
    ]
    arrivals.sort(key=lambda item: (item[0], item[1]))
    events = [
        ScheduledEvent(at, factory.draw(m.join, m.link, m.probe))
        for at, _index, m in arrivals
    ]
    workload = Workload("bursty", rate, duration, seed, events)
    workload.bursts = bursts
    return workload


WORKLOAD_KINDS = {
    "poisson": poisson_workload,
    "constant": constant_workload,
    "bursty": bursty_workload,
}


def build_workload(
    kind: str,
    initial_graph: KnowledgeGraph,
    *,
    rate: float,
    duration: int,
    seed: int = 0,
    mix: Optional[EventMix] = None,
    **kwargs,
) -> Workload:
    """Instantiate one of :data:`WORKLOAD_KINDS` by name."""
    if kind not in WORKLOAD_KINDS:
        raise ValueError(
            f"unknown workload kind {kind!r}; choose from "
            f"{', '.join(sorted(WORKLOAD_KINDS))}"
        )
    if mix is not None:
        kwargs["mix"] = mix
    return WORKLOAD_KINDS[kind](
        initial_graph, rate=rate, duration=duration, seed=seed, **kwargs
    )
