"""``repro.service`` -- the discovery system run as a *service*.

The paper's Dynamic Ad-hoc analysis (Theorem 8) is a statement about a
system absorbing an unbounded stream of joins, link additions, and
leader probes -- not about a single run to quiescence.  This package is
that regime made executable:

* :mod:`repro.service.workload` -- seeded open-loop arrival schedules
  (Poisson, constant-rate, bursty on-off) in virtual time;
* :mod:`repro.service.driver` -- the steady-state run loop: injects
  events at their arrivals with no terminal quiescence requirement,
  tracks each probe from injection to answer, enforces a step budget;
* :mod:`repro.service.slo` -- latency percentiles (p50/p95/p99),
  throughput, reconvergence lag after churn bursts, and the amortized
  message cost curve that empirically validates Theorem 8's
  ``O(m * alpha(m, n + n-hat))`` bound.

``python -m repro serve-sim`` is the CLI face; DESIGN.md section 13
documents the architecture.
"""

from repro.service.driver import (
    BurstRecord,
    ProbeRecord,
    ServiceDriver,
    ServiceReport,
)
from repro.service.slo import (
    SLOSummary,
    amortized_table,
    service_timeline,
    slo_table,
    summarize_service,
)
from repro.service.workload import (
    EventMix,
    ScheduledEvent,
    Workload,
    build_workload,
    bursty_workload,
    constant_workload,
    poisson_workload,
)

__all__ = [
    "BurstRecord",
    "ProbeRecord",
    "ServiceDriver",
    "ServiceReport",
    "SLOSummary",
    "summarize_service",
    "slo_table",
    "amortized_table",
    "service_timeline",
    "EventMix",
    "ScheduledEvent",
    "Workload",
    "build_workload",
    "poisson_workload",
    "constant_workload",
    "bursty_workload",
]
