"""Latency SLOs, throughput, and amortized cost from a service run.

Turns a :class:`~repro.service.driver.ServiceReport` into the numbers a
service operator (or Theorem 8) cares about:

* **latency percentiles** -- p50/p95/p99 virtual-time probe latency,
  computed from the exact discrete latency histogram via the
  :meth:`~repro.obs.metrics.Histogram.percentile` helper (nearest-rank,
  so integer step latencies stay integers);
* **throughput** -- completed probes and injected operations per 1000
  steps of the service clock;
* **reconvergence lag** -- per churn burst, steps past the window's
  close until the system next reached a quiescent census;
* **amortized cost** -- cumulative service messages per operation as the
  operation count grows, normalized by ``alpha(m, n + n-hat)``.  Theorem
  8 says the total work for ``m`` operations is ``O(m * alpha(m, n +
  n-hat))``; empirically the normalized column should stay bounded (and
  flatten) as ``m`` grows, which :func:`amortized_table` exposes row by
  row and ``tests/test_service_slo.py`` pins across scales.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.events import RunEvent
from repro.obs.timeline import Timeline
from repro.service.driver import ServiceReport
from repro.unionfind.ackermann import alpha

__all__ = [
    "SLOSummary",
    "summarize_service",
    "slo_table",
    "amortized_table",
    "service_timeline",
]

Rows = List[List[Any]]
Table = Tuple[List[str], Rows]


@dataclass(frozen=True)
class SLOSummary:
    """The headline numbers of one steady-state run."""

    operations: int
    probes_total: int
    probes_completed: int
    probes_immediate: int
    probes_incomplete: int
    probes_dropped: int
    deferrals: int
    latency_p50: Optional[float]
    latency_p95: Optional[float]
    latency_p99: Optional[float]
    latency_mean: Optional[float]
    latency_max: Optional[int]
    throughput_per_kstep: float
    offered_per_kstep: float
    amortized_cost: float
    alpha_bound: int
    amortized_over_alpha: float
    bursts_total: int
    bursts_reconverged: int
    reconvergence_lag_mean: Optional[float]
    reconvergence_lag_max: Optional[int]


def summarize_service(report: ServiceReport) -> SLOSummary:
    """Compute every SLO quantity from one finished run."""
    completed = report.completed_probes
    latencies = [probe.latency for probe in completed]
    histogram = report.latency_histogram()
    quantiles = histogram.quantiles((50.0, 95.0, 99.0))
    clock = max(1, report.clock)
    joined = report.injected.get("join", 0)
    operations = report.operations
    bound = alpha(max(1, operations), report.n_initial + joined)
    lags = [burst.lag for burst in report.bursts if burst.lag is not None]
    return SLOSummary(
        operations=operations,
        probes_total=len(report.probes),
        probes_completed=len(completed),
        probes_immediate=sum(1 for probe in completed if probe.immediate),
        probes_incomplete=report.incomplete_probes,
        probes_dropped=report.dropped_probes,
        deferrals=report.deferrals,
        latency_p50=quantiles["p50"],
        latency_p95=quantiles["p95"],
        latency_p99=quantiles["p99"],
        latency_mean=(sum(latencies) / len(latencies)) if latencies else None,
        latency_max=max(latencies) if latencies else None,
        throughput_per_kstep=1000.0 * len(completed) / clock,
        offered_per_kstep=1000.0 * operations / clock,
        amortized_cost=report.amortized_cost,
        alpha_bound=bound,
        amortized_over_alpha=report.amortized_cost / max(1, bound),
        bursts_total=len(report.bursts),
        bursts_reconverged=sum(
            1 for burst in report.bursts if burst.reconverged_at is not None
        ),
        reconvergence_lag_mean=(sum(lags) / len(lags)) if lags else None,
        reconvergence_lag_max=max(lags) if lags else None,
    )


def _cell(value: Optional[float], digits: int = 1) -> Any:
    """Numbers render as-is; absent measurements render as ``-``."""
    if value is None:
        return "-"
    if isinstance(value, float):
        return round(value, digits)
    return value


def slo_table(report: ServiceReport, summary: Optional[SLOSummary] = None) -> Table:
    """The latency / throughput table ``serve-sim`` prints."""
    if summary is None:
        summary = summarize_service(report)
    headers = ["quantity", "value"]
    rows: Rows = [
        ["workload", f"{report.workload_kind} rate={report.rate:g}/kstep"],
        ["initial nodes", report.n_initial],
        ["service clock (steps)", report.clock],
        ["steps executed", report.steps_executed],
        ["operations injected", summary.operations],
        ["  joins", report.injected.get("join", 0)],
        ["  links", report.injected.get("link", 0)],
        ["  probes", report.injected.get("probe", 0)],
        ["probes completed", summary.probes_completed],
        ["  answered locally", summary.probes_immediate],
        ["  deferral retries", summary.deferrals],
        ["  incomplete", summary.probes_incomplete],
        ["probe latency p50 (steps)", _cell(summary.latency_p50)],
        ["probe latency p95 (steps)", _cell(summary.latency_p95)],
        ["probe latency p99 (steps)", _cell(summary.latency_p99)],
        ["probe latency mean (steps)", _cell(summary.latency_mean, 2)],
        ["probe latency max (steps)", _cell(summary.latency_max)],
        ["throughput (probes/kstep)", _cell(summary.throughput_per_kstep, 3)],
        ["offered load (ops/kstep)", _cell(summary.offered_per_kstep, 3)],
        ["service messages", report.service_messages],
        ["amortized msgs/op", _cell(summary.amortized_cost, 2)],
        ["alpha(m, n+n^)", summary.alpha_bound],
        ["amortized / alpha", _cell(summary.amortized_over_alpha, 2)],
    ]
    if report.bursts:
        rows.extend(
            [
                ["churn bursts", summary.bursts_total],
                ["  reconverged", summary.bursts_reconverged],
                ["  lag mean (steps)", _cell(summary.reconvergence_lag_mean, 1)],
                ["  lag max (steps)", _cell(summary.reconvergence_lag_max)],
            ]
        )
    if report.budget_exhausted:
        rows.append(["step budget", f"EXHAUSTED at {report.step_budget}"])
    return headers, rows


def amortized_table(report: ServiceReport) -> Table:
    """The Theorem 8 curve: cumulative cost per operation as ``m`` grows."""
    joined = report.injected.get("join", 0)
    n_hat = report.n_initial + joined
    headers = ["ops (m)", "messages", "msgs/op", "alpha(m, n+n^)", "msgs/(op*alpha)"]
    rows: Rows = []
    for operations, messages in report.curve:
        bound = alpha(max(1, operations), n_hat)
        per_op = messages / max(1, operations)
        rows.append(
            [operations, messages, round(per_op, 2), bound, round(per_op / max(1, bound), 2)]
        )
    return headers, rows


def service_timeline(
    report: ServiceReport, meta: Optional[Dict[str, Any]] = None
) -> Timeline:
    """Package a run for JSONL export (``repro trace summarize`` etc.).

    Events are service-level, not transport-level: one ``service-op`` per
    completed probe at its completion step (value = latency), so long
    steady-state runs export compactly; the sampled metrics timeline
    carries the rest (backlog, census, injected counters).
    """
    events = [
        RunEvent(
            step=probe.completed_at,
            kind="service-op",
            node=probe.target,
            msg_type="probe",
            value=probe.latency,
        )
        for probe in report.completed_probes
    ]
    events.sort(key=lambda event: event.step)
    return Timeline(
        meta={
            "command": "serve-sim",
            "workload": report.workload_kind,
            "rate": report.rate,
            "duration": report.duration,
            "seed": report.seed,
            "n": report.n_initial,
            **(meta or {}),
        },
        events=events,
        samples=list(report.metrics.samples) if report.metrics is not None else [],
    )
