"""The steady-state service driver: open-loop load, no terminal quiescence.

Every other harness in the repo runs *convergence* experiments -- start,
quiesce, verify.  :class:`ServiceDriver` instead treats the Dynamic
Ad-hoc system (Section 6) as a long-running service: it replays a
:class:`~repro.service.workload.Workload` against a live
:class:`~repro.core.adhoc.AdhocNetwork`, injecting each join / link /
probe at its virtual-time arrival while the simulator keeps executing,
and tracks every probe from injection to answer.

The service clock
-----------------
Virtual time is the executed-step counter: each atomic delivery or
wake-up advances the clock by one.  When the system goes idle *between*
arrivals the clock jumps forward to the next arrival (idle virtual time
is free -- nothing is pending, so no steps exist to execute).  A probe's
latency is therefore "steps of system work between injection and
answer", the asynchronous analogue of wall-clock service latency.

Probes that cannot be injected yet -- the target is still asleep (a join
whose wake-up has not fired) or already has a probe of its own
outstanding (the protocol carries one per initiator) -- are *deferred*
and retried a few steps later; the deferral count is part of the report,
since under overload it is exactly the queueing the open-loop model is
supposed to expose.

Budgets
-------
A steady-state run cannot rely on quiescence to terminate, so the driver
enforces a hard ``step_budget``; exhausting it sets
``report.budget_exhausted`` rather than raising -- for an overloaded
service that *is* the result.  After the workload window closes the
driver drains remaining in-flight work (bounded by the same budget) so
late probes still resolve to latencies instead of being lost.

Faults in the service loop
--------------------------
Pass ``faults=FaultPlan(...)`` (written in *window-relative* virtual
time) and the driver attaches a seeded
:class:`~repro.faults.FaultInjector` to the simulator **after** warmup,
shifting every time-anchored spec by the steps warmup consumed
(:meth:`FaultPlan.shifted`).  Warmup therefore always establishes a
clean converged census; the faults hit the *steady state*, which is the
regime the latency SLOs describe.  Build the network with
``AdhocNetwork(reliable=True)`` when the plan drops messages -- the
protocol assumes exactly-once FIFO channels, and without the transport
a lossy open-loop run measures a broken system, not a degraded one.
"""

from __future__ import annotations

import heapq
from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.adhoc import AdhocNetwork, ProbeHandle
from repro.core.dynamic import NodeId
from repro.faults.plan import FaultInjector, FaultPlan
from repro.obs.metrics import (
    DEFAULT_CADENCE,
    Histogram,
    MetricsRegistry,
    MetricsTimeline,
)
from repro.service.workload import Workload
from repro.verification.invariants import verify_discovery

__all__ = ["ProbeRecord", "BurstRecord", "ServiceReport", "ServiceDriver"]

#: Steps between retries of a deferred probe.
DEFER_RETRY_GAP = 8
#: A probe still deferred after this many retries is dropped (counted).
DEFER_MAX_RETRIES = 64


@dataclass
class ProbeRecord:
    """One tracked probe: injection, completion, latency (virtual steps)."""

    at: int
    target: NodeId
    completed_at: Optional[int] = None
    immediate: bool = False

    @property
    def latency(self) -> Optional[int]:
        if self.completed_at is None:
            return None
        return self.completed_at - self.at


@dataclass
class BurstRecord:
    """One churn-burst window and the service's recovery from it."""

    start: int
    end: int
    reconverged_at: Optional[int] = None
    verified: Optional[bool] = None

    @property
    def lag(self) -> Optional[int]:
        """Steps past the window's close until the census reconverged."""
        if self.reconverged_at is None:
            return None
        return max(0, self.reconverged_at - self.end)


@dataclass
class ServiceReport:
    """Everything one steady-state run produced."""

    workload_kind: str
    rate: float
    duration: int
    seed: int
    n_initial: int
    warmup_steps: int = 0
    warmup_messages: int = 0
    clock: int = 0
    steps_executed: int = 0
    step_budget: int = 0
    budget_exhausted: bool = False
    injected: Dict[str, int] = field(default_factory=dict)
    deferrals: int = 0
    dropped_probes: int = 0
    probes: List[ProbeRecord] = field(default_factory=list)
    bursts: List[BurstRecord] = field(default_factory=list)
    #: cumulative ``(operations injected, service messages)`` checkpoints,
    #: roughly geometric in operation count -- the amortized-cost curve.
    curve: List[Tuple[int, int]] = field(default_factory=list)
    service_messages: int = 0
    service_bits: int = 0
    metrics: Optional[MetricsTimeline] = None
    #: What the attached fault injector actually did during the window
    #: (per-kind counts), empty for fault-free runs.
    fault_counts: Dict[str, int] = field(default_factory=dict)
    #: Aggregated reliable-transport telemetry (retransmissions, acks,
    #: undeliverable, ...) when the network runs the transport, else empty.
    transport_totals: Dict[str, int] = field(default_factory=dict)

    @property
    def operations(self) -> int:
        """Total injected operations (joins + links + probes)."""
        return sum(self.injected.values())

    @property
    def completed_probes(self) -> List[ProbeRecord]:
        return [p for p in self.probes if p.completed_at is not None]

    @property
    def incomplete_probes(self) -> int:
        return sum(1 for p in self.probes if p.completed_at is None)

    def latency_histogram(self) -> Histogram:
        """Completed-probe latencies as an exact discrete histogram."""
        histogram = Histogram()
        for probe in self.completed_probes:
            histogram.observe(probe.latency)
        return histogram

    @property
    def amortized_cost(self) -> float:
        """Service messages per injected operation (Theorem 8's quantity)."""
        return self.service_messages / max(1, self.operations)


class ServiceDriver:
    """Drive an :class:`AdhocNetwork` under an open-loop workload.

    Parameters
    ----------
    network:
        A (fresh or pre-warmed) Dynamic Ad-hoc handle.  The driver runs
        it to quiescence once before the clock starts -- the initial
        census is warmup, not service load.
    workload:
        The arrival schedule to inject.
    step_budget:
        Hard cap on executed steps (warmup excluded); ``None`` derives a
        generous default from the duration and workload size.
    cadence:
        Virtual-time sampling cadence for the metrics timeline (the same
        meaning as :func:`repro.obs.metrics.attach_metrics`).
    verify_on_reconvergence:
        After each churn burst's window closes and the system next goes
        quiescent, run the full discovery invariants (slow; tests use it
        to pin that the service returns to a *converged* census between
        bursts).
    faults:
        A :class:`~repro.faults.FaultPlan` in window-relative virtual
        time, attached (seeded with ``fault_seed``) after warmup -- see
        the module docstring.  The network must not already carry an
        injector of its own.
    """

    def __init__(
        self,
        network: AdhocNetwork,
        workload: Workload,
        *,
        step_budget: Optional[int] = None,
        cadence: int = DEFAULT_CADENCE,
        verify_on_reconvergence: bool = False,
        faults: Optional[FaultPlan] = None,
        fault_seed: int = 0,
    ) -> None:
        self.net = network
        self.workload = workload
        if faults is not None and network.sim.faults is not None:
            raise ValueError(
                "the network already has a fault injector attached; pass the "
                "plan to ServiceDriver(faults=...) or to the network, not both"
            )
        self.faults = faults
        self.fault_seed = fault_seed
        if step_budget is None:
            # Enough for every operation to cost hundreds of steps plus a
            # drain tail; an overloaded service hits this and reports it.
            step_budget = 50_000 + 100 * workload.duration + 500 * len(workload.events)
        if step_budget < 1:
            raise ValueError(f"step_budget must be >= 1, got {step_budget}")
        self.step_budget = step_budget
        self.verify_on_reconvergence = verify_on_reconvergence
        self._cadence = cadence
        self._clock = 0

    # -- metrics wiring -------------------------------------------------
    def _build_metrics(self) -> Tuple[MetricsRegistry, MetricsTimeline]:
        sim = self.net.sim
        registry = MetricsRegistry()
        registry.gauge("service-clock", lambda: self._clock)
        registry.gauge("in-flight", sim.in_flight)
        registry.gauge("messages-total", lambda: sim.stats.total_messages)
        registry.gauge("nodes-total", lambda: len(sim.nodes))
        self._c_join = registry.counter("injected-joins")
        self._c_link = registry.counter("injected-links")
        self._c_probe = registry.counter("injected-probes")
        self._c_done = registry.counter("probes-completed")
        self._c_defer = registry.counter("probes-deferred")
        self._h_latency = registry.histogram("probe-latency")
        return registry, MetricsTimeline(registry, cadence=self._cadence)

    # -- the run loop ---------------------------------------------------
    def run(self) -> ServiceReport:
        net, workload = self.net, self.workload
        sim = net.sim
        report = ServiceReport(
            workload_kind=workload.kind,
            rate=workload.rate,
            duration=workload.duration,
            seed=workload.seed,
            n_initial=len(net.graph.nodes),
            step_budget=self.step_budget,
            bursts=[BurstRecord(start, end) for start, end in workload.bursts],
        )
        report.warmup_steps = net.run()
        report.warmup_messages = sim.stats.total_messages
        warmup_stats = sim.stats.snapshot()
        warmup_bits = sim.stats.total_bits

        injector: Optional[FaultInjector] = None
        if self.faults is not None:
            # Anchor the window-relative plan to the steps warmup actually
            # consumed, then let the injector loose on the steady state.
            injector = FaultInjector(
                self.faults.shifted(sim.steps), seed=self.fault_seed, keep_log=False
            )
            sim.faults = injector

        _registry, metrics = self._build_metrics()
        report.metrics = metrics

        events = workload.events
        arrival_times = [scheduled.at for scheduled in events]
        # A burst is "fully injected" once the arrival index passes every
        # event due strictly before its window closes.
        burst_thresholds = [
            bisect_left(arrival_times, burst.end) for burst in report.bursts
        ]
        pending_bursts = list(range(len(report.bursts)))

        next_index = 0
        retries: List[Tuple[int, int]] = []  # (due step, probe-list index)
        retry_counts: Dict[int, int] = {}
        outstanding: Dict[int, ProbeHandle] = {}  # probe-list index -> handle
        next_curve_at = 1
        self._clock = 0

        def inject(event) -> None:
            kind = event[0]
            report.injected[kind] = report.injected.get(kind, 0) + 1
            if kind == "join":
                _, node_id, known = event
                net.add_node(node_id, known)
                self._c_join.inc()
            elif kind == "link":
                _, u, v = event
                net.add_link(u, v)
                self._c_link.inc()
            else:
                self._inject_probe(event[1], report, outstanding, retries, retry_counts)

        def checkpoint_curve(force: bool = False) -> None:
            nonlocal next_curve_at
            operations = report.operations
            if operations < 1:
                return
            messages = sim.stats.total_messages - report.warmup_messages
            if operations >= next_curve_at:
                report.curve.append((operations, messages))
                while next_curve_at <= operations:
                    next_curve_at *= 2
            elif force and (
                not report.curve or report.curve[-1][0] != operations
            ):
                report.curve.append((operations, messages))

        while True:
            # 1. inject everything due now: scheduled arrivals, then retries
            injected_any = False
            while next_index < len(events) and events[next_index].at <= self._clock:
                inject(events[next_index].event)
                next_index += 1
                injected_any = True
            while retries and retries[0][0] <= self._clock:
                _due, probe_index = heapq.heappop(retries)
                self._retry_probe(
                    probe_index, report, outstanding, retries, retry_counts
                )
                injected_any = True
            if injected_any:
                checkpoint_curve()

            # 2. execute one atomic step
            if report.steps_executed >= self.step_budget:
                report.budget_exhausted = True
                break
            if sim.step():
                report.steps_executed += 1
                self._clock += 1
                metrics.tick(self._clock)
                if outstanding:
                    self._collect_completions(report, outstanding)
                continue

            # 3. quiescent: settle bursts, then jump the idle clock
            self._settle_bursts(pending_bursts, burst_thresholds, next_index, report)
            next_due = None
            if next_index < len(events):
                next_due = events[next_index].at
            if retries:
                retry_due = retries[0][0]
                next_due = retry_due if next_due is None else min(next_due, retry_due)
            if next_due is None:
                break  # schedule exhausted and the system is at rest
            self._clock = max(self._clock, next_due)
            metrics.tick(self._clock)

        delta = sim.stats.delta_since(warmup_stats)
        report.clock = self._clock
        report.service_messages = delta.total_messages
        report.service_bits = sim.stats.total_bits - warmup_bits
        if injector is not None:
            report.fault_counts = dict(injector.counts)
        if self.net.reliable:
            from repro.faults.reliable import ReliableNode, transport_totals

            wrappers = {
                node.node_id: node
                for node in sim.nodes.values()
                if isinstance(node, ReliableNode)
            }
            report.transport_totals = transport_totals(wrappers)
        checkpoint_curve(force=True)
        metrics.finish(self._clock)
        return report

    # -- probe bookkeeping ----------------------------------------------
    def _inject_probe(self, target, report, outstanding, retries, retry_counts):
        if self.net.can_probe(target):
            index = len(report.probes)
            record = ProbeRecord(at=self._clock, target=target)
            report.probes.append(record)
            handle = self.net.probe_async(target)
            self._c_probe.inc()
            if handle.done:
                record.completed_at = self._clock
                record.immediate = True
                self._finish_probe(record)
            else:
                outstanding[index] = handle
            return
        # Target asleep or busy: park the probe and retry a little later.
        index = len(report.probes)
        report.probes.append(ProbeRecord(at=self._clock, target=target))
        self._c_probe.inc()
        self._defer_probe(index, report, retries, retry_counts)

    def _defer_probe(self, probe_index, report, retries, retry_counts):
        attempts = retry_counts.get(probe_index, 0)
        if attempts >= DEFER_MAX_RETRIES:
            report.dropped_probes += 1
            return
        retry_counts[probe_index] = attempts + 1
        report.deferrals += 1
        self._c_defer.inc()
        heapq.heappush(retries, (self._clock + DEFER_RETRY_GAP, probe_index))

    def _retry_probe(self, probe_index, report, outstanding, retries, retry_counts):
        record = report.probes[probe_index]
        if not self.net.can_probe(record.target):
            self._defer_probe(probe_index, report, retries, retry_counts)
            return
        handle = self.net.probe_async(record.target)
        if handle.done:
            record.completed_at = self._clock
            record.immediate = True
            self._finish_probe(record)
        else:
            outstanding[probe_index] = handle

    def _collect_completions(self, report, outstanding):
        finished = [index for index, handle in outstanding.items() if handle.done]
        for index in finished:
            record = report.probes[index]
            record.completed_at = self._clock
            self._finish_probe(record)
            del outstanding[index]

    def _finish_probe(self, record: ProbeRecord) -> None:
        self._c_done.inc()
        self._h_latency.observe(record.latency)

    # -- burst reconvergence --------------------------------------------
    def _settle_bursts(self, pending, thresholds, next_index, report):
        """At a quiescent instant, resolve every fully-injected burst."""
        settled = []
        for position, burst_index in enumerate(pending):
            if next_index < thresholds[burst_index]:
                break  # bursts are chronological; later ones aren't done either
            burst = report.bursts[burst_index]
            burst.reconverged_at = self._clock
            if self.verify_on_reconvergence:
                verify_discovery(self.net.result(), self.net.graph)
                burst.verified = True
            settled.append(position)
        for position in reversed(settled):
            del pending[position]
