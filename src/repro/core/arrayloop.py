"""Compile-on-first-use loader for the C delivery loop of ``arraystate``.

``_arrayloop.c`` is shipped as source and built lazily with the platform C
compiler into a content-hash-keyed cache (``~/.cache/repro-arrayloop``), so
the repo needs no build step, no setuptools machinery, and no wheel: the
first eligible run pays ~1s of ``cc -O2`` once per source revision and
every later process dlopens the cached object.  Anything going wrong --
no compiler, sandboxed filesystem, constant drift between the C file and
the Python modules it mirrors -- degrades to ``None`` and the pure-Python
loop in :meth:`ArrayCore.run_loop` keeps running, bit-identically.

Set ``REPRO_PURE_PYTHON=1`` to force the fallback (the differential suite
uses it to pin C-vs-Python equivalence).
"""

from __future__ import annotations

import hashlib
import importlib.util
import os
import shutil
import subprocess
import sys
import sysconfig
from pathlib import Path
from typing import Optional

from collections import deque

from repro.core.messages import (
    MSG_TYPES,
    T_CONQUER,
    T_INFO,
    T_MERGE_ACCEPT,
    T_MERGE_FAIL,
    T_MORE_DONE,
    T_PROBE,
    T_PROBE_REPLY,
    T_QUERY,
    T_QUERY_REPLY,
    T_RELEASE,
    T_SEARCH,
    WIRE_MERGE_ACCEPT,
    WIRE_MERGE_FAIL,
    WIRE_MORE_DONE_FALSE,
    WIRE_MORE_DONE_TRUE,
)
from repro.core.node import STATUS_CODES, VARIANTS
from repro.sim.network import SimulationError

__all__ = ["load"]

_SOURCE = Path(__file__).with_name("_arrayloop.c")

#: sentinel distinguishing "never tried" from "tried and unavailable"
_UNSET = object()
_module = _UNSET


def _constants_match() -> bool:
    """The C file hardcodes the wire/status/variant encodings; refuse to
    load it if the Python side ever drifts (fallback stays correct)."""
    tags = (
        (T_QUERY, 0),
        (T_QUERY_REPLY, 1),
        (T_SEARCH, 2),
        (T_RELEASE, 3),
        (T_MERGE_ACCEPT, 4),
        (T_MERGE_FAIL, 5),
        (T_INFO, 6),
        (T_CONQUER, 7),
        (T_MORE_DONE, 8),
        (T_PROBE, 9),
        (T_PROBE_REPLY, 10),
    )
    if any(py != c for py, c in tags) or len(MSG_TYPES) != 11:
        return False
    statuses = (
        ("asleep", 0),
        ("explore", 1),
        ("wait", 2),
        ("conquered", 3),
        ("conqueror", 4),
        ("passive", 5),
        ("inactive", 6),
        ("terminated", 7),
    )
    if any(STATUS_CODES.get(name) != code for name, code in statuses):
        return False
    return tuple(VARIANTS) == ("generic", "bounded", "adhoc")


def _build() -> Optional[Path]:
    """Compile ``_arrayloop.c`` into the cache; return the .so path."""
    try:
        source = _SOURCE.read_bytes()
    except OSError:
        return None
    tag = hashlib.sha256(source).hexdigest()[:16]
    cache = Path(
        os.environ.get("REPRO_ARRAYLOOP_CACHE")
        or Path.home() / ".cache" / "repro-arrayloop"
    )
    name = f"_arrayloop_{tag}_cp{sys.version_info[0]}{sys.version_info[1]}"
    so_path = cache / (name + ".so")
    if so_path.exists():
        return so_path
    cc = (sysconfig.get_config_var("CC") or "cc").split()[0]
    if shutil.which(cc) is None:
        cc = "cc"
        if shutil.which(cc) is None:
            return None
    include = sysconfig.get_paths().get("include")
    if not include:
        return None
    tmp = so_path.with_name(f"{name}.{os.getpid()}.tmp.so")
    try:
        cache.mkdir(parents=True, exist_ok=True)
        proc = subprocess.run(
            [cc, "-O2", "-fPIC", "-shared", "-I" + include,
             str(_SOURCE), "-o", str(tmp)],
            capture_output=True,
            timeout=300,
        )
        if proc.returncode != 0:
            return None
        os.replace(tmp, so_path)  # atomic: concurrent builders converge
        return so_path
    except (OSError, subprocess.SubprocessError):
        return None
    finally:
        try:
            if tmp.exists():
                tmp.unlink()
        except OSError:
            pass


def load():
    """Return the configured ``_arrayloop`` module, or ``None``.

    Idempotent and memoized (including the ``None`` outcome); safe to call
    per ``run_loop`` entry.
    """
    global _module
    if _module is not _UNSET:
        return _module
    _module = None  # any failure below stays a cheap memoized miss
    if os.environ.get("REPRO_PURE_PYTHON"):
        return None
    if not _constants_match():
        return None
    so_path = _build()
    if so_path is None:
        return None
    try:
        spec = importlib.util.spec_from_file_location(
            "repro.core._arrayloop", so_path
        )
        if spec is None or spec.loader is None:
            return None
        mod = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(mod)
        mod.configure(
            {
                "deque": deque,
                "simulation_error": SimulationError,
                "msg_types": MSG_TYPES,
                "wire_merge_accept": WIRE_MERGE_ACCEPT,
                "wire_merge_fail": WIRE_MERGE_FAIL,
                "wire_md_true": WIRE_MORE_DONE_TRUE,
                "wire_md_false": WIRE_MORE_DONE_FALSE,
                "greedy_k": 1 << 62,
            }
        )
    except Exception:
        return None
    _module = mod
    return mod
