"""The Bounded-model runner (Section 4.5.1, Theorems 4, 6).

In the Bounded model every node knows the size of its weakly connected
component.  The variant drops the ``unaware`` bookkeeping entirely; when a
leader's ``done`` set reaches the known component size it broadcasts one
final round of ``conquer`` messages and *terminates* -- the paper's answer
to the termination-detection question of Harchol-Balter et al.

Message complexity drops to ``O(n alpha(n, n))`` because the per-phase
conquer broadcasts of the Generic algorithm (the ``2 n log n`` term of
Lemma 5.8) are replaced by a single final broadcast of ``2n`` messages.
"""

from __future__ import annotations

from typing import Hashable, Optional, Sequence

from repro.core.result import DiscoveryResult, collect_result
from repro.core.runner import build_simulation, default_step_budget
from repro.graphs.knowledge_graph import KnowledgeGraph
from repro.sim.scheduler import Scheduler

__all__ = ["run_bounded"]


def run_bounded(
    graph: KnowledgeGraph,
    *,
    seed: Optional[int] = None,
    scheduler: Optional[Scheduler] = None,
    wake_order: Optional[Sequence[Hashable]] = None,
    keep_trace: bool = False,
    max_steps: Optional[int] = None,
    fast: bool = True,
) -> DiscoveryResult:
    """Run the Bounded algorithm on ``graph`` until quiescence.

    Component sizes are computed from the graph and given to each node,
    exactly the Bounded model's prior knowledge.  At quiescence each
    component's leader is in the ``terminated`` state (explicit termination
    detection, Theorem 4).
    """
    sim, nodes = build_simulation(
        graph,
        "bounded",
        seed=seed,
        scheduler=scheduler,
        keep_trace=keep_trace,
        wake_order=wake_order,
        fast=fast,
    )
    sim.run(max_steps if max_steps is not None else default_step_budget(graph))
    return collect_result(graph, nodes, sim, "bounded")
