"""Scripted churn scenarios for Ad-hoc Resource Discovery (Section 6).

A :class:`ChurnScenario` is a reproducible sequence of dynamic events --
node joins, link additions, leader probes -- replayed against an
:class:`~repro.core.adhoc.AdhocNetwork` with per-event cost accounting and
(optionally) invariant verification after every event.  EXP-10, the
dynamic-overlay example, and the stateful property tests all express their
workloads this way.

Events are plain tuples so scenarios serialize trivially:

* ``("join", node_id, known_ids)``
* ``("link", u, v)``
* ``("probe", node_id)``

:func:`random_churn` generates seeded random scenarios mixing the three.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Hashable, List, Optional, Sequence, Tuple

from repro.core.adhoc import AdhocNetwork
from repro.graphs.knowledge_graph import KnowledgeGraph
from repro.verification.invariants import verify_discovery

NodeId = Hashable
Event = Tuple  # ("join", id, known) | ("link", u, v) | ("probe", id)

__all__ = [
    "EventCost",
    "ChurnOutcome",
    "ChurnScenario",
    "EventFactory",
    "random_churn",
]


@dataclass(frozen=True)
class EventCost:
    """Marginal cost of one replayed event."""

    event: Event
    messages: int
    bits: int


@dataclass
class ChurnOutcome:
    """Everything a replayed scenario produced."""

    costs: List[EventCost] = field(default_factory=list)
    probe_answers: List[Tuple[NodeId, frozenset]] = field(default_factory=list)

    @property
    def total_messages(self) -> int:
        return sum(cost.messages for cost in self.costs)

    def messages_for(self, kind: str) -> List[int]:
        """Marginal message counts of all events of one kind."""
        return [cost.messages for cost in self.costs if cost.event[0] == kind]

    def summary(self) -> str:
        parts = []
        for kind in ("join", "link", "probe"):
            series = self.messages_for(kind)
            if series:
                parts.append(
                    f"{kind}: {len(series)} events, "
                    f"avg {sum(series) / len(series):.1f} msgs"
                )
        return "; ".join(parts) if parts else "no events"


class ChurnScenario:
    """A reproducible event script over an initial knowledge graph."""

    def __init__(
        self,
        initial_graph: KnowledgeGraph,
        events: Sequence[Event],
        *,
        seed: Optional[int] = None,
    ) -> None:
        self.initial_graph = initial_graph
        self.events = list(events)
        self.seed = seed
        self._validate()

    def _validate(self) -> None:
        self.validate_against(self.initial_graph.nodes)

    def validate_against(self, initial_ids: Sequence[NodeId]) -> None:
        """Check every event is well-formed over ``initial_ids``.

        Raised errors name the offending event index; a reference to a
        node that only *joins later in the same scenario* says so
        explicitly -- replaying such a script would otherwise surface as
        an opaque ProtocolError (or KeyError) deep inside the protocol,
        long after the mistake was made.
        """
        join_at = {
            event[1]: index
            for index, event in enumerate(self.events)
            if event and event[0] == "join"
        }

        def describe(node_id: NodeId, index: int) -> str:
            later = join_at.get(node_id)
            if later is not None and later > index:
                return f"{node_id!r} joins later (event {later})"
            return f"{node_id!r} unknown"

        known_ids = set(initial_ids)
        for index, event in enumerate(self.events):
            kind = event[0]
            if kind == "join":
                _, node_id, known = event
                if node_id in known_ids:
                    raise ValueError(f"event {index}: {node_id!r} already exists")
                unknown = [other for other in known if other not in known_ids]
                if unknown:
                    raise ValueError(
                        f"event {index}: join references "
                        + ", ".join(describe(other, index) for other in unknown)
                    )
                known_ids.add(node_id)
            elif kind == "link":
                _, u, v = event
                for endpoint in (u, v):
                    if endpoint not in known_ids:
                        raise ValueError(
                            f"event {index}: link endpoint "
                            f"{describe(endpoint, index)}"
                        )
            elif kind == "probe":
                _, node_id = event
                if node_id not in known_ids:
                    raise ValueError(
                        f"event {index}: probe target {describe(node_id, index)}"
                    )
            else:
                raise ValueError(f"event {index}: unknown kind {kind!r}")

    def replay(
        self,
        *,
        verify_each: bool = False,
        network: Optional[AdhocNetwork] = None,
    ) -> Tuple[AdhocNetwork, ChurnOutcome]:
        """Run the scenario; return the network and the per-event costs.

        With ``verify_each`` the full quiescence invariants are checked
        after every event (slow; used in tests).
        """
        if network is not None:
            # The constructor validated against ``initial_graph``; a caller-
            # supplied network may hold a different node set, so re-validate
            # against what the events will actually run on -- a mismatch
            # would otherwise fail mid-replay with an opaque KeyError or
            # ProtocolError after some events already mutated the network.
            self.validate_against(network.graph.nodes)
        net = network or AdhocNetwork(self.initial_graph, seed=self.seed)
        net.run()
        outcome = ChurnOutcome()
        for event in self.events:
            before = net.stats.snapshot()
            if event[0] == "join":
                _, node_id, known = event
                net.add_node(node_id, known)
                net.run()
            elif event[0] == "link":
                _, u, v = event
                net.add_link(u, v)
                net.run()
            else:
                _, node_id = event
                outcome.probe_answers.append(net.probe(node_id))
            delta = net.stats.delta_since(before)
            outcome.costs.append(
                EventCost(event, delta.total_messages, delta.total_bits)
            )
            if verify_each:
                verify_discovery(net.result(), net.graph)
        return net, outcome


class EventFactory:
    """Seeded generator of well-formed churn events over a growing id set.

    The event-construction seam shared by :func:`random_churn` (scripted
    scenarios) and :mod:`repro.service.workload` (open-loop arrival
    schedules): both need joins with fresh orderable ids that know a few
    existing nodes, links between existing endpoints, and probes of
    existing nodes, all drawn from one seeded RNG so the resulting event
    sequence is a pure function of ``(initial ids, seed, call order)``.
    """

    def __init__(self, initial_ids: Sequence[NodeId], rng: random.Random) -> None:
        self.rng = rng
        self.ids: List[NodeId] = list(initial_ids)
        self._existing = set(self.ids)
        # Ids within one system must stay mutually orderable: integer
        # joiner ids for integer graphs, string ids otherwise.
        if self.ids and all(isinstance(node, int) for node in self.ids):
            self._counter = max(self.ids) + 1
            self._fresh_id = lambda k: k
        else:
            self._counter = 0
            self._fresh_id = lambda k: f"joiner{k}"

    def join(self) -> Event:
        """A new node joins, knowing 1-3 uniformly chosen existing ids."""
        while self._fresh_id(self._counter) in self._existing:  # pragma: no cover
            self._counter += 1
        node_id = self._fresh_id(self._counter)
        self._counter += 1
        known = self.rng.sample(self.ids, k=min(len(self.ids), self.rng.randint(1, 3)))
        self._existing.add(node_id)
        self.ids.append(node_id)
        return ("join", node_id, tuple(known))

    def link(self) -> Event:
        """A new knowledge edge between uniform existing endpoints."""
        if len(self.ids) >= 2:
            u, v = self.rng.sample(self.ids, k=2)
        else:
            u = v = self.ids[0]
        return ("link", u, v)

    def probe(self) -> Event:
        """A leader probe from a uniform existing node."""
        return ("probe", self.rng.choice(self.ids))

    def draw(
        self, join_weight: float, link_weight: float, probe_weight: float
    ) -> Event:
        """One event with kind chosen by weight (weights need not sum to 1)."""
        total = join_weight + link_weight + probe_weight
        if total <= 0:
            raise ValueError("at least one weight must be positive")
        roll = self.rng.random() * total
        if roll < join_weight:
            return self.join()
        if roll < join_weight + link_weight:
            return self.link()
        return self.probe()


def random_churn(
    initial_graph: KnowledgeGraph,
    n_events: int,
    *,
    seed: int = 0,
    join_weight: float = 0.3,
    link_weight: float = 0.4,
    probe_weight: float = 0.3,
) -> ChurnScenario:
    """Generate a seeded random scenario over ``initial_graph``.

    Joins know 1-3 uniformly chosen existing ids; links and probes pick
    uniform existing endpoints.  Weights need not sum to one.
    """
    if n_events < 0:
        raise ValueError(f"n_events must be >= 0, got {n_events}")
    factory = EventFactory(initial_graph.nodes, random.Random(seed))
    events: List[Event] = [
        factory.draw(join_weight, link_weight, probe_weight) for _ in range(n_events)
    ]
    return ChurnScenario(initial_graph, events, seed=seed)
