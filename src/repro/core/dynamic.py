"""Scripted churn scenarios for Ad-hoc Resource Discovery (Section 6).

A :class:`ChurnScenario` is a reproducible sequence of dynamic events --
node joins, link additions, leader probes -- replayed against an
:class:`~repro.core.adhoc.AdhocNetwork` with per-event cost accounting and
(optionally) invariant verification after every event.  EXP-10, the
dynamic-overlay example, and the stateful property tests all express their
workloads this way.

Events are plain tuples so scenarios serialize trivially:

* ``("join", node_id, known_ids)``
* ``("link", u, v)``
* ``("probe", node_id)``

:func:`random_churn` generates seeded random scenarios mixing the three.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Hashable, List, Optional, Sequence, Tuple

from repro.core.adhoc import AdhocNetwork
from repro.graphs.knowledge_graph import KnowledgeGraph
from repro.verification.invariants import verify_discovery

NodeId = Hashable
Event = Tuple  # ("join", id, known) | ("link", u, v) | ("probe", id)

__all__ = ["EventCost", "ChurnOutcome", "ChurnScenario", "random_churn"]


@dataclass(frozen=True)
class EventCost:
    """Marginal cost of one replayed event."""

    event: Event
    messages: int
    bits: int


@dataclass
class ChurnOutcome:
    """Everything a replayed scenario produced."""

    costs: List[EventCost] = field(default_factory=list)
    probe_answers: List[Tuple[NodeId, frozenset]] = field(default_factory=list)

    @property
    def total_messages(self) -> int:
        return sum(cost.messages for cost in self.costs)

    def messages_for(self, kind: str) -> List[int]:
        """Marginal message counts of all events of one kind."""
        return [cost.messages for cost in self.costs if cost.event[0] == kind]

    def summary(self) -> str:
        parts = []
        for kind in ("join", "link", "probe"):
            series = self.messages_for(kind)
            if series:
                parts.append(
                    f"{kind}: {len(series)} events, "
                    f"avg {sum(series) / len(series):.1f} msgs"
                )
        return "; ".join(parts) if parts else "no events"


class ChurnScenario:
    """A reproducible event script over an initial knowledge graph."""

    def __init__(
        self,
        initial_graph: KnowledgeGraph,
        events: Sequence[Event],
        *,
        seed: Optional[int] = None,
    ) -> None:
        self.initial_graph = initial_graph
        self.events = list(events)
        self.seed = seed
        self._validate()

    def _validate(self) -> None:
        known_ids = set(self.initial_graph.nodes)
        for index, event in enumerate(self.events):
            kind = event[0]
            if kind == "join":
                _, node_id, known = event
                if node_id in known_ids:
                    raise ValueError(f"event {index}: {node_id!r} already exists")
                unknown = [other for other in known if other not in known_ids]
                if unknown:
                    raise ValueError(
                        f"event {index}: join references unknown ids {unknown}"
                    )
                known_ids.add(node_id)
            elif kind == "link":
                _, u, v = event
                for endpoint in (u, v):
                    if endpoint not in known_ids:
                        raise ValueError(
                            f"event {index}: link endpoint {endpoint!r} unknown"
                        )
            elif kind == "probe":
                _, node_id = event
                if node_id not in known_ids:
                    raise ValueError(f"event {index}: probe target {node_id!r} unknown")
            else:
                raise ValueError(f"event {index}: unknown kind {kind!r}")

    def replay(
        self,
        *,
        verify_each: bool = False,
        network: Optional[AdhocNetwork] = None,
    ) -> Tuple[AdhocNetwork, ChurnOutcome]:
        """Run the scenario; return the network and the per-event costs.

        With ``verify_each`` the full quiescence invariants are checked
        after every event (slow; used in tests).
        """
        net = network or AdhocNetwork(self.initial_graph, seed=self.seed)
        net.run()
        outcome = ChurnOutcome()
        for event in self.events:
            before = net.stats.snapshot()
            if event[0] == "join":
                _, node_id, known = event
                net.add_node(node_id, known)
                net.run()
            elif event[0] == "link":
                _, u, v = event
                net.add_link(u, v)
                net.run()
            else:
                _, node_id = event
                outcome.probe_answers.append(net.probe(node_id))
            delta = net.stats.delta_since(before)
            outcome.costs.append(
                EventCost(event, delta.total_messages, delta.total_bits)
            )
            if verify_each:
                verify_discovery(net.result(), net.graph)
        return net, outcome


def random_churn(
    initial_graph: KnowledgeGraph,
    n_events: int,
    *,
    seed: int = 0,
    join_weight: float = 0.3,
    link_weight: float = 0.4,
    probe_weight: float = 0.3,
) -> ChurnScenario:
    """Generate a seeded random scenario over ``initial_graph``.

    Joins know 1-3 uniformly chosen existing ids; links and probes pick
    uniform existing endpoints.  Weights need not sum to one.
    """
    if n_events < 0:
        raise ValueError(f"n_events must be >= 0, got {n_events}")
    total = join_weight + link_weight + probe_weight
    if total <= 0:
        raise ValueError("at least one weight must be positive")
    rng = random.Random(seed)
    ids: List[NodeId] = list(initial_graph.nodes)
    # Ids within one system must stay mutually orderable: integer joiner
    # ids for integer graphs, string ids otherwise.
    if ids and all(isinstance(node, int) for node in ids):
        counter = max(ids) + 1
        fresh_id = lambda k: k  # noqa: E731 - tiny local adapter
    else:
        counter = 0
        fresh_id = lambda k: f"joiner{k}"  # noqa: E731
    existing = set(ids)
    events: List[Event] = []
    for _ in range(n_events):
        roll = rng.random() * total
        if roll < join_weight:
            while fresh_id(counter) in existing:  # pragma: no cover - defensive
                counter += 1
            node_id = fresh_id(counter)
            counter += 1
            existing.add(node_id)
            known = rng.sample(ids, k=min(len(ids), rng.randint(1, 3)))
            events.append(("join", node_id, tuple(known)))
            ids.append(node_id)
        elif roll < join_weight + link_weight:
            u, v = rng.sample(ids, k=2) if len(ids) >= 2 else (ids[0], ids[0])
            events.append(("link", u, v))
        else:
            events.append(("probe", rng.choice(ids)))
    return ChurnScenario(initial_graph, events, seed=seed)
